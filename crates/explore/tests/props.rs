//! Property-based tests for the guided explorer.
//!
//! Three properties anchor the explorer's correctness story:
//! 1. **Determinism** — the same [`SchedulePlan`] always produces a
//!    bit-identical run (same delivery fingerprint, same outcome).
//! 2. **Canonical equivalence** — plans that realize the same
//!    per-destination delivery order map to one fingerprint, so dedupe
//!    collapses them to a single equivalence class.
//! 3. **Shrink minimality** — the shrinker's output is 1-minimal:
//!    removing any single remaining perturbation no longer reproduces
//!    the failure.

use carlos_explore::{fingerprint, shrink_plan, App, AppHarness, Observation, RunStatus};
use carlos_sim::time::us;
use carlos_sim::SchedulePlan;
use proptest::prelude::*;

/// A plan built from arbitrary (src, dst, seq, delay) tuples. Flows that
/// name a (src, dst, seq) never sent are legal — they simply match no
/// frame — so arbitrary tuples exercise the full plan surface.
fn plan_from(tuples: &[(u32, u32, u32, u64)]) -> SchedulePlan {
    let mut plan = SchedulePlan::new();
    for &(src, dst, seq, delay) in tuples {
        let (src, dst) = (src % 3, dst % 3);
        if src != dst {
            plan.add(src, dst, seq % 40, us(1) + delay % us(300));
        }
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Same plan in, bit-identical run out: equal delivery fingerprints,
    /// equal outcome, equal violation count — on every rerun.
    #[test]
    fn same_plan_is_bit_identical(
        tuples in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u32>(), any::<u64>()), 0..4)
    ) {
        let plan = plan_from(&tuples);
        let h = AppHarness::new(App::Sor, 3);
        let a = h.run(&plan);
        let b = h.run(&plan);
        prop_assert_eq!(fingerprint(&a.deliveries), fingerprint(&b.deliveries));
        prop_assert_eq!(a.status, b.status);
        prop_assert_eq!(a.violations.len(), b.violations.len());
        prop_assert_eq!(a.deliveries.len(), b.deliveries.len());
    }

    /// Plans that realize the same delivery order are one equivalence
    /// class: padding a plan with perturbations of flows that are never
    /// sent (seq far beyond the run's traffic) changes nothing, so the
    /// padded plan must land on the same canonical fingerprint.
    #[test]
    fn equivalent_plans_share_one_fingerprint(
        tuples in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u32>(), any::<u64>()), 0..3),
        pad_src in 0u32..3,
        pad_delay in 1u64..1_000_000,
    ) {
        let plan = plan_from(&tuples);
        let padded = plan.clone().delay(pad_src, (pad_src + 1) % 3, 1_000_000, pad_delay);
        prop_assert_ne!(&plan, &padded);
        let h = AppHarness::new(App::Sor, 3);
        let a = h.run(&plan);
        let b = h.run(&padded);
        prop_assert_eq!(fingerprint(&a.deliveries), fingerprint(&b.deliveries));
    }

    /// Shrink output is 1-minimal. The failure model: a run fails iff its
    /// plan still contains every flow of a hidden culprit subset. The
    /// shrinker must strip all the noise and keep exactly the culprits —
    /// and removing any single survivor must break reproduction.
    #[test]
    fn shrink_keeps_exactly_the_culprits(
        tuples in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u32>(), any::<u64>()), 1..6),
        culprit_mask in any::<u32>(),
    ) {
        let noisy = plan_from(&tuples);
        if noisy.is_empty() {
            return;
        }
        let flows: Vec<_> = noisy.iter().map(|(f, _)| f).collect();
        let culprits: Vec<_> = flows
            .iter()
            .enumerate()
            .filter(|(i, _)| culprit_mask >> (i % 32) & 1 == 1)
            .map(|(_, f)| *f)
            .collect();
        let fails = |p: &SchedulePlan| culprits.iter().all(|&(s, d, q)| p.contains(s, d, q));
        let mut run = |p: &SchedulePlan| Observation {
            status: if fails(p) { RunStatus::WrongAnswer } else { RunStatus::Ok },
            violations: Vec::new(),
            deliveries: Vec::new(),
        };
        let first = run(&noisy);
        prop_assert!(first.failed(), "noisy plan contains all culprits by construction");
        let (minimal, last, execs) = shrink_plan(noisy, first, &mut run);
        // Exactly the culprit set survives.
        let kept: Vec<_> = minimal.iter().map(|(f, _)| f).collect();
        prop_assert_eq!(&kept, &culprits);
        prop_assert!(last.failed());
        prop_assert!(execs >= kept.len(), "final pass re-tries every survivor");
        // 1-minimality, verified directly: no single removal still fails.
        for (src, dst, seq) in kept {
            let mut probe = minimal.clone();
            probe.remove(src, dst, seq);
            prop_assert!(!run(&probe).failed());
        }
    }
}
