//! Guided schedule exploration for the CarlOS simulator.
//!
//! Random jitter sweeps sample delivery interleavings blindly; this crate
//! searches them. One observed run yields, through the checker's wire
//! delivery log ([`carlos_check::DeliveryEvent`]), its **racing-delivery
//! frontier**: pairs of deliveries at the same node, from different
//! senders, whose order is not fixed by happens-before — the classic
//! dynamic partial-order-reduction (DPOR) race condition for
//! message-passing systems. For each racing pair the explorer re-executes
//! the run with a targeted [`carlos_sim::SchedulePlan`] perturbation that
//! delays the earlier delivery past the later one, realizing the flipped
//! order without disturbing anything else.
//!
//! Two runs that deliver the same frames in the same per-node order are
//! equivalent — in a message-passing system the per-destination delivery
//! order determines the computation — so schedules are deduplicated by a
//! canonical **happens-before fingerprint** over per-destination delivery
//! sequences. Predicted child fingerprints prune redundant executions
//! before they run; actual fingerprints catch mispredictions after.
//!
//! On any oracle violation, wrong answer, or crash, the explorer runs
//! **delta-debugging shrink**: greedily removing perturbations until no
//! single removal still reproduces the failure, yielding a 1-minimal
//! counterexample plan.
//!
//! Everything is deterministic: no randomness, BTree-ordered worklists,
//! and the simulator's bit-identical replay guarantee. The same harness
//! and budget produce the same executions, the same fingerprints, and the
//! same shrunk counterexample on every rerun.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explorer;
mod harness;
mod summary;

pub use explorer::{
    explore, fingerprint, frontier_pairs, shrink_plan, Counterexample, ExploreConfig,
    ExploreResult, ExploreStats,
};
pub use harness::{App, AppHarness, Observation, RunStatus};
pub use summary::{guided_sweep, random_sweep, render_counterexample, ExploreSummary};
