//! Shared outcome bookkeeping for random-sweep and guided exploration.

use carlos_sim::time::us;

use crate::explorer::{fingerprint, Counterexample, ExploreConfig, ExploreResult};
use crate::harness::{AppHarness, RunStatus};

/// One exploration campaign's outcome, in the shape both the random
/// jitter sweep and the guided explorer produce — one bookkeeping type,
/// one nonzero-exit rule, one machine-readable JSON line.
#[derive(Debug, Clone)]
pub struct ExploreSummary {
    /// Application name.
    pub app: String,
    /// Campaign mode: `"random"`, `"guided"`, or `"frontier-full"`.
    pub mode: String,
    /// Executions performed (exploration only).
    pub executions: usize,
    /// Executions whose checker recorded at least one violation.
    pub violations: usize,
    /// Executions that finished with a wrong answer.
    pub wrong_answers: usize,
    /// Executions that stalled, aborted, or panicked.
    pub crashes: usize,
    /// Distinct happens-before equivalence classes observed.
    pub distinct_classes: usize,
    /// Children pruned by fingerprint dedupe (guided modes).
    pub dedupe_hits: usize,
    /// Extra executions spent shrinking a counterexample.
    pub shrink_executions: usize,
    /// Rendered minimal counterexample plan, when one was found.
    pub counterexample: Option<String>,
}

impl ExploreSummary {
    /// True when the campaign found any misbehavior.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.violations > 0 || self.wrong_answers > 0 || self.crashes > 0
    }

    /// One-line human-readable report.
    #[must_use]
    pub fn human_line(&self) -> String {
        let mut s = format!(
            "{} [{}]: {} executions, {} classes, {} violations, {} wrong answers, {} crashes",
            self.app,
            self.mode,
            self.executions,
            self.distinct_classes,
            self.violations,
            self.wrong_answers,
            self.crashes
        );
        if self.dedupe_hits > 0 {
            s.push_str(&format!(", {} deduped", self.dedupe_hits));
        }
        if let Some(ce) = &self.counterexample {
            s.push_str(&format!(
                ", counterexample [{}] after {} shrink runs",
                ce, self.shrink_executions
            ));
        }
        s
    }

    /// Machine-readable JSON summary line for CI (single line, stable
    /// key order).
    #[must_use]
    pub fn json_line(&self) -> String {
        let ce = match &self.counterexample {
            None => "null".to_string(),
            Some(c) => format!("\"{}\"", escape_json(c)),
        };
        format!(
            concat!(
                "{{\"app\":\"{}\",\"mode\":\"{}\",\"executions\":{},",
                "\"violations\":{},\"wrong_answers\":{},\"crashes\":{},",
                "\"distinct_classes\":{},\"dedupe_hits\":{},",
                "\"shrink_executions\":{},\"counterexample\":{}}}"
            ),
            escape_json(&self.app),
            escape_json(&self.mode),
            self.executions,
            self.violations,
            self.wrong_answers,
            self.crashes,
            self.distinct_classes,
            self.dedupe_hits,
            self.shrink_executions,
            ce
        )
    }

    /// Builds a summary from a guided [`ExploreResult`].
    #[must_use]
    pub fn from_guided(app: &str, mode: &str, result: &ExploreResult) -> Self {
        let mut s = Self {
            app: app.to_string(),
            mode: mode.to_string(),
            executions: result.stats.executions,
            violations: 0,
            wrong_answers: 0,
            crashes: 0,
            distinct_classes: result.stats.distinct_classes,
            dedupe_hits: result.stats.dedupe_hits,
            shrink_executions: result.stats.shrink_executions,
            counterexample: None,
        };
        if let Some(ce) = &result.counterexample {
            match &ce.status {
                RunStatus::Ok => {}
                RunStatus::WrongAnswer => s.wrong_answers += 1,
                RunStatus::Crashed(_) => s.crashes += 1,
            }
            if !ce.violations.is_empty() {
                s.violations += 1;
            }
            s.counterexample = Some(render_counterexample(ce));
        }
        s
    }
}

/// Renders a counterexample plan compactly: `src->dst#seq+<delay>ns`
/// joined by commas (empty plan renders as `baseline`).
#[must_use]
pub fn render_counterexample(ce: &Counterexample) -> String {
    if ce.plan.is_empty() {
        return "baseline".to_string();
    }
    ce.plan
        .iter()
        .map(|((src, dst, seq), delay)| format!("{src}->{dst}#{seq}+{delay}ns"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Runs the historical random jitter sweep — every (jitter, seed) cell —
/// through `harness`, producing the same summary shape as the guided
/// explorer. The sweep draws delivery delays blindly from an RNG; it
/// covers whatever classes it happens to hit.
#[must_use]
pub fn random_sweep(
    harness: &AppHarness,
    jitters_us: &[u64],
    seeds: &[u64],
    verbose: bool,
) -> ExploreSummary {
    let mut summary = ExploreSummary {
        app: harness.app.name().to_string(),
        mode: "random".to_string(),
        executions: 0,
        violations: 0,
        wrong_answers: 0,
        crashes: 0,
        distinct_classes: 0,
        dedupe_hits: 0,
        shrink_executions: 0,
        counterexample: None,
    };
    let mut classes = std::collections::BTreeSet::new();
    for &jitter in jitters_us {
        for &seed in seeds {
            let sim = harness.sim.clone().with_jitter(us(jitter), seed);
            let obs = harness.run_with_sim(sim);
            summary.executions += 1;
            classes.insert(fingerprint(&obs.deliveries));
            match &obs.status {
                RunStatus::Ok => {}
                RunStatus::WrongAnswer => {
                    summary.wrong_answers += 1;
                    if verbose {
                        println!(
                            "  {}: WRONG ANSWER at jitter={jitter}us seed={seed:#x}",
                            summary.app
                        );
                    }
                }
                RunStatus::Crashed(why) => {
                    summary.crashes += 1;
                    if verbose {
                        println!(
                            "  {}: CRASH at jitter={jitter}us seed={seed:#x}: {why}",
                            summary.app
                        );
                    }
                }
            }
            if !obs.violations.is_empty() {
                summary.violations += 1;
                if verbose {
                    for v in &obs.violations {
                        println!("  {}: jitter={jitter}us seed={seed:#x}: {v}", summary.app);
                    }
                }
            }
        }
    }
    summary.distinct_classes = classes.len();
    summary
}

/// Runs the guided explorer over `harness` and summarizes it.
#[must_use]
pub fn guided_sweep(harness: &AppHarness, cfg: &ExploreConfig) -> ExploreSummary {
    let result = crate::explorer::explore(cfg, |plan| harness.run(plan));
    let mode = if cfg.dedupe { "guided" } else { "frontier-full" };
    let label = if harness.vg {
        format!("{}+vg", harness.app.name())
    } else {
        harness.app.name().to_string()
    };
    ExploreSummary::from_guided(&label, mode, &result)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_is_parseable() {
        let s = ExploreSummary {
            app: "tsp".into(),
            mode: "guided".into(),
            executions: 12,
            violations: 1,
            wrong_answers: 0,
            crashes: 0,
            distinct_classes: 9,
            dedupe_hits: 30,
            shrink_executions: 4,
            counterexample: Some("0->2#7+5000ns".into()),
        };
        let parsed = carlos_trace::json::parse(&s.json_line()).expect("valid json");
        assert_eq!(parsed.get("app").and_then(|v| v.as_str()), Some("tsp"));
        assert_eq!(parsed.get("executions").and_then(|v| v.as_f64()), Some(12.0));
        assert_eq!(
            parsed.get("counterexample").and_then(|v| v.as_str()),
            Some("0->2#7+5000ns")
        );
        assert!(s.failed());
    }

    #[test]
    fn clean_summary_does_not_fail() {
        let s = ExploreSummary {
            app: "sor".into(),
            mode: "random".into(),
            executions: 3,
            violations: 0,
            wrong_answers: 0,
            crashes: 0,
            distinct_classes: 3,
            dedupe_hits: 0,
            shrink_executions: 0,
            counterexample: None,
        };
        assert!(!s.failed());
        let parsed = carlos_trace::json::parse(&s.json_line()).expect("valid json");
        assert!(parsed.get("counterexample").is_some());
    }
}
