//! Application harnesses: run one app under one schedule and observe it.

use std::panic::{catch_unwind, AssertUnwindSafe};

use carlos_apps::qsort::{try_run_qsort, QsortConfig, QsortVariant};
use carlos_apps::sor::{sequential_reference, try_run_sor, SorConfig};
use carlos_apps::tsp::{try_run_tsp, Cities, TspConfig, TspVariant};
use carlos_apps::water::{try_run_water, WaterConfig, WaterVariant};
use carlos_check::{Checker, Violation};
use carlos_serve::run::{try_run_serve, ServeConfig};
use carlos_core::CoreConfig;
use carlos_sim::{SchedulePlan, SimConfig};

/// How one execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// The run completed and the answer matched the reference.
    Ok,
    /// The run completed with an answer that contradicts the reference.
    WrongAnswer,
    /// The run did not complete: stall, abort, runaway, or panic.
    Crashed(String),
}

/// Everything the explorer learns from one execution.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Outcome of the run.
    pub status: RunStatus,
    /// Oracle violations the checker recorded.
    pub violations: Vec<Violation>,
    /// The checker's wire-delivery log (frontier and fingerprint input).
    pub deliveries: Vec<carlos_check::DeliveryEvent>,
}

impl Observation {
    /// True when this execution is a counterexample: the oracle objected,
    /// the answer was wrong, or the run did not finish.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.status != RunStatus::Ok || !self.violations.is_empty()
    }
}

/// Which application to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Red-black successive over-relaxation (barrier-heavy).
    Sor,
    /// Distributed quicksort (lock + work-queue).
    Qsort,
    /// Branch-and-bound traveling salesman (lock + racy bound).
    Tsp,
    /// Water N-body molecular dynamics (lock + barrier mix).
    Water,
    /// Open-loop KV serving over the sharded store (message-driven
    /// request/reply + CAS counter chains).
    Serve,
}

impl App {
    /// Display name used in summaries.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            App::Sor => "sor",
            App::Qsort => "qsort",
            App::Tsp => "tsp",
            App::Water => "water",
            App::Serve => "serve",
        }
    }
}

/// The serving workload the explorer drives: a shrunk `test` schedule
/// (fewer ops, so one execution stays cheap at sweep counts) with
/// deadlines far beyond the runaway cap. The explorer's hostile schedules
/// may delay any message up to the jitter bound; generous deadlines keep
/// exactness a hard oracle — a timed-out op would otherwise relax the
/// expected CAS counter totals to a liveness question.
fn serve_explore_cfg(n_nodes: usize) -> ServeConfig {
    let mut cfg = ServeConfig::test(n_nodes);
    cfg.ops_per_client = 96;
    cfg.cas_per_client = 12;
    cfg.op_timeout = carlos_sim::time::secs(2);
    cfg.drain = carlos_sim::time::secs(4);
    cfg
}

/// Reference answers are computed once, from clean single-reference
/// configurations, so every later (possibly bug-seeded) run compares
/// against ground truth.
#[derive(Debug, Clone)]
enum Reference {
    Sor(Vec<f64>),
    Qsort,
    Tsp(u32),
    Water(Vec<[f64; 3]>),
    /// Expected CAS counter values (exact under fault-free serving).
    Serve(Vec<u64>),
}

/// Runs one application under arbitrary `SimConfig`s and classifies each
/// execution against a pre-computed reference answer.
///
/// The harness owns the base simulator and runtime configurations; the
/// explorer swaps in a [`SchedulePlan`] per execution, the random sweep
/// swaps in jitter. Seeded-bug tests inject their mutation through
/// [`AppHarness::with_core`] — the reference is always computed clean.
#[derive(Debug, Clone)]
pub struct AppHarness {
    /// Application under test.
    pub app: App,
    /// Cluster size.
    pub n_nodes: usize,
    /// Mixed-granularity mode: granularity hints + aggregated notices +
    /// coalesced fetches (the benchmark suite's "+vg" rows).
    pub vg: bool,
    /// Base simulator config (schedule/jitter applied per run).
    pub sim: SimConfig,
    /// Base runtime config (seeded bugs injected here by tests).
    pub core: CoreConfig,
    reference: Reference,
}

impl AppHarness {
    /// A harness for `app` on `n_nodes` nodes with `fast_test` models.
    /// Computes the app's reference answer eagerly from a clean config.
    #[must_use]
    pub fn new(app: App, n_nodes: usize) -> Self {
        let reference = match app {
            App::Sor => Reference::Sor(sequential_reference(&SorConfig::test(1))),
            App::Qsort => Reference::Qsort,
            App::Tsp => {
                let base = TspConfig::test(n_nodes, TspVariant::Lock);
                Reference::Tsp(Cities::generate(base.n_cities, base.seed).held_karp())
            }
            App::Water => {
                let r = try_run_water(&WaterConfig::test(1, WaterVariant::Lock))
                    .expect("reference water run");
                Reference::Water(r.positions)
            }
            App::Serve => {
                let cfg = serve_explore_cfg(n_nodes);
                let clients = cfg.n_clients() as u64;
                let per_key = clients * cfg.cas_per_client / cfg.counter_keys;
                #[allow(clippy::cast_possible_truncation)]
                Reference::Serve(vec![per_key; cfg.counter_keys as usize])
            }
        };
        // Clean fast_test runs of every app finish in well under a virtual
        // second; a tight runaway cap turns livelocked counterexamples
        // (which otherwise burn the full 7200-virtual-second budget) into
        // promptly-detected crashes.
        let mut sim = SimConfig::fast_test();
        sim.max_virtual_time = Some(carlos_sim::time::secs(10));
        Self {
            app,
            n_nodes,
            vg: false,
            sim,
            core: CoreConfig::fast_test(),
            reference,
        }
    }

    /// Returns `self` in mixed-granularity ("+vg") mode: granularity
    /// hints on, aggregated write notices, coalesced batch fetches.
    #[must_use]
    pub fn vg(mut self) -> Self {
        self.vg = true;
        self
    }

    /// Returns `self` with the given base runtime config (builder style).
    #[must_use]
    pub fn with_core(mut self, core: CoreConfig) -> Self {
        self.core = core;
        self
    }

    /// Returns `self` with the given base simulator config (builder style).
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Executes the app once under `plan` and observes the outcome.
    #[must_use]
    pub fn run(&self, plan: &SchedulePlan) -> Observation {
        self.run_with_sim(self.sim.clone().with_schedule(plan.clone()))
    }

    /// Executes the app once under an explicit simulator config (used by
    /// the random jitter sweep). Node panics are contained and reported as
    /// [`RunStatus::Crashed`], so a seeded bug that trips a runtime
    /// assertion still yields an observation instead of unwinding the
    /// explorer.
    #[must_use]
    pub fn run_with_sim(&self, sim: SimConfig) -> Observation {
        let check = Checker::new(self.n_nodes);
        let core = if self.vg {
            self.core.clone().with_coalesced_fetches().with_aggregated_notices()
        } else {
            self.core.clone()
        };
        let status = {
            let check = check.clone();
            let outcome = catch_unwind(AssertUnwindSafe(|| self.dispatch(sim, core, check)));
            match outcome {
                Ok(status) => status,
                Err(p) => RunStatus::Crashed(format!("panic: {}", panic_text(&p))),
            }
        };
        Observation {
            status,
            violations: check.violations(),
            deliveries: check.deliveries(),
        }
    }

    fn dispatch(&self, sim: SimConfig, core: CoreConfig, check: Checker) -> RunStatus {
        match self.app {
            App::Sor => {
                let mut cfg = SorConfig::test(self.n_nodes);
                cfg.sim = sim;
                cfg.core = core;
                cfg.check = Some(check);
                cfg.granularity_hints = self.vg;
                match try_run_sor(&cfg) {
                    Err(e) => RunStatus::Crashed(e.to_string()),
                    Ok(r) => {
                        let Reference::Sor(grid) = &self.reference else {
                            unreachable!("reference matches app");
                        };
                        if &r.grid == grid {
                            RunStatus::Ok
                        } else {
                            RunStatus::WrongAnswer
                        }
                    }
                }
            }
            App::Qsort => {
                let mut cfg = QsortConfig::test(self.n_nodes, QsortVariant::Lock);
                cfg.sim = sim;
                cfg.core = core;
                cfg.check = Some(check);
                cfg.granularity_hints = self.vg;
                match try_run_qsort(&cfg) {
                    Err(e) => RunStatus::Crashed(e.to_string()),
                    Ok(r) if r.sorted && r.permutation_ok => RunStatus::Ok,
                    Ok(_) => RunStatus::WrongAnswer,
                }
            }
            App::Tsp => {
                let mut cfg = TspConfig::test(self.n_nodes, TspVariant::Lock);
                cfg.sim = sim;
                cfg.core = core;
                cfg.check = Some(check);
                cfg.granularity_hints = self.vg;
                match try_run_tsp(&cfg) {
                    Err(e) => RunStatus::Crashed(e.to_string()),
                    Ok(r) => {
                        let Reference::Tsp(optimum) = &self.reference else {
                            unreachable!("reference matches app");
                        };
                        if r.best_len == *optimum {
                            RunStatus::Ok
                        } else {
                            RunStatus::WrongAnswer
                        }
                    }
                }
            }
            App::Water => {
                let mut cfg = WaterConfig::test(self.n_nodes, WaterVariant::Lock);
                cfg.sim = sim;
                cfg.core = core;
                cfg.check = Some(check);
                cfg.granularity_hints = self.vg;
                match try_run_water(&cfg) {
                    Err(e) => RunStatus::Crashed(e.to_string()),
                    Ok(r) => {
                        let Reference::Water(positions) = &self.reference else {
                            unreachable!("reference matches app");
                        };
                        let close = r.positions.len() == positions.len()
                            && r.positions
                                .iter()
                                .zip(positions)
                                .all(|(a, b)| (0..3).all(|d| (a[d] - b[d]).abs() < 1e-6));
                        if close {
                            RunStatus::Ok
                        } else {
                            RunStatus::WrongAnswer
                        }
                    }
                }
            }
            App::Serve => {
                let mut cfg = serve_explore_cfg(self.n_nodes);
                cfg.sim = sim;
                cfg.core = core;
                cfg.check = Some(check);
                cfg.granularity_hints = self.vg;
                match try_run_serve(&cfg) {
                    Err(e) => RunStatus::Crashed(e.to_string()),
                    Ok(r) => {
                        let Reference::Serve(counters) = &self.reference else {
                            unreachable!("reference matches app");
                        };
                        let t = &r.totals;
                        // Fault-free serving is exact under any schedule:
                        // nothing may time out, arrive late, fail the value
                        // self-tag, or disagree with the server's private
                        // version mirror, and every CAS intent must land
                        // exactly once.
                        let exact = &r.counters == counters
                            && t.client.timed_out == 0
                            && t.client.late_replies == 0
                            && t.client.value_check_failures == 0
                            && t.mirror_mismatches == 0
                            && t.client.attempted == t.client.completed;
                        if exact {
                            RunStatus::Ok
                        } else {
                            RunStatus::WrongAnswer
                        }
                    }
                }
            }
        }
    }
}

fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
