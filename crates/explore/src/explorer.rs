//! The guided search: racing frontier, fingerprint dedupe, delta shrink.

use std::collections::{BTreeSet, VecDeque};

use carlos_check::{DeliveryEvent, Violation};
use carlos_sim::time::us;
use carlos_sim::{Ns, SchedulePlan};
use carlos_trace::FlowKey;

use crate::harness::{Observation, RunStatus};

/// Tuning for one guided exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum exploration executions (root included; shrink executions
    /// are budgeted separately and reported in the stats).
    pub budget: usize,
    /// Prune children by equivalence-class reasoning: skip a racing pair
    /// whose earlier flow is already perturbed on this path (its flip
    /// revisits an ancestor's class) and prune children whose predicted
    /// happens-before fingerprint was already planned or observed.
    /// Disabling this enumerates the naive frontier — every racing pair
    /// of every run spawns a child — the baseline the
    /// dedupe-effectiveness gate compares against.
    pub dedupe: bool,
    /// Safety margin added past the flip target: a perturbed delivery is
    /// delayed to `t_later - t_earlier + margin`. Large enough to survive
    /// small knock-on timing shifts, small enough not to leapfrog
    /// unrelated deliveries.
    pub margin: Ns,
    /// Stop once this many distinct equivalence classes have been
    /// observed (used to compare search modes at equal coverage).
    pub stop_at_classes: Option<usize>,
    /// Restrict the search to the first `window` deliveries of each run:
    /// only races inside the window spawn children, and equivalence is
    /// judged by the windowed prefix's fingerprint. A window bounds the
    /// reachable class space, so the guided search can *exhaust* it (the
    /// worklist runs dry) — the regime where deduplication is measurable,
    /// since an un-deduplicated enumeration keeps revisiting prefix
    /// orders it has already seen. `None` searches the whole run.
    pub window: Option<usize>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            budget: 64,
            dedupe: true,
            margin: us(2),
            stop_at_classes: None,
            window: None,
        }
    }
}

/// Counters describing one exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Exploration executions performed (≤ budget).
    pub executions: usize,
    /// Distinct happens-before equivalence classes observed.
    pub distinct_classes: usize,
    /// Children pruned because their predicted class was already covered.
    pub dedupe_hits: usize,
    /// Racing-frontier children generated across all executed runs.
    pub frontier_children: usize,
    /// Extra executions spent shrinking the counterexample.
    pub shrink_executions: usize,
}

/// A failing schedule, shrunk to a 1-minimal perturbation set.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The minimal plan that still reproduces the failure.
    pub plan: SchedulePlan,
    /// How the failing run ended.
    pub status: RunStatus,
    /// Oracle violations of the failing run.
    pub violations: Vec<Violation>,
}

/// Outcome of [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// Search counters.
    pub stats: ExploreStats,
    /// The shrunk counterexample, if any execution failed.
    pub counterexample: Option<Counterexample>,
}

/// Canonical happens-before fingerprint of one run.
///
/// In a message-passing system the computation is determined by the order
/// in which each node consumes messages, so two runs whose per-destination
/// delivery sequences of `(src, kind, seq)` agree are equivalent — timing
/// differences that do not reorder any mailbox are invisible. FNV-1a over
/// the per-destination streams in destination order.
#[must_use]
pub fn fingerprint(deliveries: &[DeliveryEvent]) -> u64 {
    let dsts: BTreeSet<u32> = deliveries.iter().map(|d| d.dst).collect();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut upd = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for dst in dsts {
        upd(0xd5e1_0000_0000_0000 | u64::from(dst));
        for d in deliveries.iter().filter(|d| d.dst == dst) {
            upd((u64::from(d.src) << 40) | (u64::from(d.kind) << 32) | u64::from(d.seq));
        }
    }
    h
}

/// The racing-delivery frontier of one run: for each DATA delivery `i`,
/// the first later delivery at the same node from a different sender
/// whose flip is not ordered by happens-before. Only the **closest**
/// race per flow is kept — if another delivery of `i`'s (src, dst) flow
/// sits between `i` and `j`, the pair is dropped, because delaying `i`
/// drags that whole same-flow tail along (the FIFO clamp), and the
/// resulting order is reachable by first flipping the closest delivery
/// and recursing on the child's own frontier. Enumerating every prefix
/// block up front would blow the root frontier past any useful budget
/// (the classic DPOR argument for exploring only immediate races).
/// Returns `(earlier, later)` index pairs into `deliveries`.
#[must_use]
pub fn frontier_pairs(deliveries: &[DeliveryEvent]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for (i, di) in deliveries.iter().enumerate() {
        if !di.is_data() {
            continue;
        }
        let race = deliveries
            .iter()
            .enumerate()
            .skip(i + 1)
            .find(|(_, dj)| di.flip_unordered(dj));
        if let Some((j, _)) = race {
            let has_closer_same_flow = deliveries[i + 1..j]
                .iter()
                .any(|d| d.src == di.src && d.dst == di.dst);
            if !has_closer_same_flow {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

/// Predicted fingerprint of the child schedule that delays delivery `i`
/// past delivery `j`: the earlier frame — together with any later frames
/// of the same (src, dst) pair before `j`, which the FIFO clamp drags
/// along — moves to just after `j` in the destination's stream. The
/// prediction ignores knock-on effects (the re-execution decides ground
/// truth); it only has to be canonical enough to prune duplicates.
fn predicted_fingerprint(deliveries: &[DeliveryEvent], i: usize, j: usize) -> u64 {
    let (src, dst) = (deliveries[i].src, deliveries[i].dst);
    let mut reordered: Vec<&DeliveryEvent> = Vec::with_capacity(deliveries.len());
    let mut moved: Vec<&DeliveryEvent> = Vec::new();
    for (k, d) in deliveries.iter().enumerate() {
        if k >= i && k < j && d.src == src && d.dst == dst {
            moved.push(d);
        } else {
            reordered.push(d);
            if k == j {
                reordered.append(&mut moved);
            }
        }
    }
    reordered.append(&mut moved);
    let owned: Vec<DeliveryEvent> = reordered.into_iter().cloned().collect();
    fingerprint(&owned)
}

/// Runs the guided DPOR-style search.
///
/// Starting from the unperturbed schedule, each executed run contributes
/// its racing frontier; every racing pair spawns a child plan that delays
/// the earlier flow past the later delivery. Children whose predicted
/// equivalence class is already covered are pruned (when
/// [`ExploreConfig::dedupe`] is on). The first failing execution is
/// shrunk to a 1-minimal plan and returned; a clean search returns the
/// coverage statistics.
///
/// Fully deterministic: the worklist is FIFO over deterministically
/// ordered frontiers, no randomness is consulted, and the simulator
/// replays plans bit-identically.
pub fn explore(
    cfg: &ExploreConfig,
    mut run: impl FnMut(&SchedulePlan) -> Observation,
) -> ExploreResult {
    let mut stats = ExploreStats::default();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut planned: BTreeSet<u64> = BTreeSet::new();
    let mut queue: VecDeque<SchedulePlan> = VecDeque::new();
    queue.push_back(SchedulePlan::new());

    while let Some(plan) = queue.pop_front() {
        if stats.executions >= cfg.budget {
            break;
        }
        let obs = run(&plan);
        stats.executions += 1;
        let view = match cfg.window {
            Some(w) => &obs.deliveries[..w.min(obs.deliveries.len())],
            None => &obs.deliveries[..],
        };
        let fp = fingerprint(view);
        seen.insert(fp);
        planned.insert(fp);
        stats.distinct_classes = seen.len();

        if obs.failed() {
            let (minimal, last) = shrink(plan, obs, &mut run, &mut stats.shrink_executions);
            return ExploreResult {
                stats,
                counterexample: Some(Counterexample {
                    plan: minimal,
                    status: last.status,
                    violations: last.violations,
                }),
            };
        }
        if let Some(target) = cfg.stop_at_classes {
            if seen.len() >= target {
                break;
            }
        }

        for (i, j) in frontier_pairs(view) {
            let d = &view[i];
            let flow = FlowKey {
                src: d.src,
                dst: d.dst,
                seq: d.seq,
            };
            if cfg.dedupe && plan.contains(flow.src, flow.dst, flow.seq) {
                // Already perturbed on this path; flipping back would
                // revisit an ancestor's class. This skip is itself
                // equivalence reasoning, so the naive baseline keeps the
                // pair and re-executes the revisit.
                continue;
            }
            stats.frontier_children += 1;
            let extra = view[j].delivered_at - d.delivered_at + cfg.margin;
            if cfg.dedupe {
                let pred = predicted_fingerprint(view, i, j);
                if !planned.insert(pred) {
                    stats.dedupe_hits += 1;
                    continue;
                }
            }
            queue.push_back(plan.clone().delay(flow.src, flow.dst, flow.seq, extra));
        }
    }

    ExploreResult {
        stats,
        counterexample: None,
    }
}

/// Standalone entry point to the delta-debugging shrinker: reduces a
/// failing `plan` (whose run produced `failing`) to a 1-minimal plan —
/// one from which removing any single perturbation no longer reproduces
/// a failure. Returns the minimal plan, the observation of its failing
/// run, and how many executions the shrink spent.
pub fn shrink_plan(
    plan: SchedulePlan,
    failing: Observation,
    run: &mut impl FnMut(&SchedulePlan) -> Observation,
) -> (SchedulePlan, Observation, usize) {
    let mut executions = 0;
    let (minimal, last) = shrink(plan, failing, run, &mut executions);
    (minimal, last, executions)
}

/// Greedy delta-debugging shrink: repeatedly drop any single perturbation
/// whose removal still reproduces a failure, until none does. The result
/// is 1-minimal by construction — the final pass has tried and failed to
/// remove every remaining perturbation. Returns the minimal plan and the
/// observation of its (still failing) run.
fn shrink(
    mut plan: SchedulePlan,
    mut last: Observation,
    run: &mut impl FnMut(&SchedulePlan) -> Observation,
    executions: &mut usize,
) -> (SchedulePlan, Observation) {
    loop {
        let flows: Vec<_> = plan.iter().map(|(flow, _)| flow).collect();
        let mut improved = false;
        for (src, dst, seq) in flows {
            let mut candidate = plan.clone();
            candidate.remove(src, dst, seq);
            let obs = run(&candidate);
            *executions += 1;
            if obs.failed() {
                plan = candidate;
                last = obs;
                improved = true;
                break;
            }
        }
        if !improved {
            return (plan, last);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carlos_check::DeliveryEvent;

    fn ev(src: u32, dst: u32, seq: u32, at: u64, n: usize) -> DeliveryEvent {
        DeliveryEvent {
            src,
            dst,
            kind: 0,
            seq,
            sent_at: at.saturating_sub(5),
            delivered_at: at,
            send_clock: vec![0; n],
            deliver_clock: vec![0; n],
        }
    }

    #[test]
    fn fingerprint_ignores_timing_but_not_order() {
        let a = vec![ev(0, 2, 0, 10, 3), ev(1, 2, 0, 20, 3)];
        let mut b = a.clone();
        b[0].delivered_at = 99;
        b[0].sent_at = 90;
        assert_eq!(fingerprint(&a), fingerprint(&b), "timing must not matter");
        let swapped = vec![a[1].clone(), a[0].clone()];
        assert_ne!(fingerprint(&a), fingerprint(&swapped), "order must matter");
    }

    #[test]
    fn fingerprint_separates_destinations() {
        let a = vec![ev(0, 1, 0, 10, 3), ev(0, 2, 0, 20, 3)];
        let b = vec![ev(0, 2, 0, 10, 3), ev(0, 1, 0, 20, 3)];
        // Per-destination streams are identical; interleaving across
        // destinations is not observable by any single node.
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn frontier_finds_unordered_pairs_only() {
        let n = 3;
        let mut d1 = ev(0, 2, 0, 10, n);
        d1.deliver_clock = vec![1, 0, 1];
        let mut d2 = ev(1, 2, 0, 20, n);
        d2.send_clock = vec![0, 1, 0]; // never saw d1's delivery: races
        let pairs = frontier_pairs(&[d1.clone(), d2.clone()]);
        assert_eq!(pairs, vec![(0, 1)]);
        // A causally ordered successor is not in the frontier.
        let mut d3 = ev(1, 2, 0, 20, n);
        d3.send_clock = vec![1, 1, 1]; // includes d1's delivery
        assert!(frontier_pairs(&[d1, d3]).is_empty());
    }

    #[test]
    fn predicted_fingerprint_matches_flipped_order() {
        let n = 3;
        let a = ev(0, 2, 0, 10, n);
        let b = ev(1, 2, 0, 20, n);
        let flipped = vec![b.clone(), a.clone()];
        assert_eq!(
            predicted_fingerprint(&[a, b], 0, 1),
            fingerprint(&flipped),
            "two-event flip prediction must be exact"
        );
    }

    #[test]
    fn shrink_is_one_minimal() {
        // Failure reproduces iff the plan contains flow (0, 1, 7);
        // everything else is noise the shrinker must strip.
        let noisy = SchedulePlan::new()
            .delay(0, 1, 7, 100)
            .delay(1, 2, 3, 50)
            .delay(2, 0, 9, 25);
        let mut runs = 0usize;
        let mut runner = |p: &SchedulePlan| {
            runs += 1;
            let failed = p.contains(0, 1, 7);
            Observation {
                status: if failed {
                    RunStatus::WrongAnswer
                } else {
                    RunStatus::Ok
                },
                violations: Vec::new(),
                deliveries: Vec::new(),
            }
        };
        let first = runner(&noisy);
        let mut shrink_execs = 0;
        let (minimal, last) = shrink(noisy, first, &mut runner, &mut shrink_execs);
        assert_eq!(minimal.len(), 1);
        assert!(minimal.contains(0, 1, 7));
        assert_eq!(last.status, RunStatus::WrongAnswer);
        assert!(shrink_execs > 0);
    }
}
