//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! member implements the subset of the criterion API the benches use:
//! [`Criterion`], `benchmark_group`, `bench_function`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up, then timed over a fixed
//! number of samples; the reported figure is the median ns/iter. Set
//! `CARLOS_BENCH_QUICK=1` to shrink warmup and sample counts (used by
//! `ci.sh`). Completed measurements are retained on the [`Criterion`]
//! object ([`Criterion::results`]) so harness-mode benches can export them
//! (e.g. to `BENCH_hotpath.json`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for source compatibility.
/// This shim always runs setup once per routine invocation and times only
/// the routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (from `benchmark_group`).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Total timed iterations contributing to the estimate.
    pub iters: u64,
}

/// The benchmark driver.
pub struct Criterion {
    warmup: Duration,
    sample_target: Duration,
    samples: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("CARLOS_BENCH_QUICK")
            .is_ok_and(|v| v != "0" && !v.is_empty());
        if quick {
            Self {
                warmup: Duration::from_millis(20),
                sample_target: Duration::from_millis(5),
                samples: 9,
                results: Vec::new(),
            }
        } else {
            Self {
                warmup: Duration::from_millis(200),
                sample_target: Duration::from_millis(25),
                samples: 21,
                results: Vec::new(),
            }
        }
    }
}

impl Criterion {
    /// Accepted for source compatibility with real criterion binaries.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks directly on the driver (group name = "").
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(String::new(), id.into(), f);
        self
    }

    /// All measurements completed so far, in execution order.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        eprintln!("criterion shim: {} benchmarks measured", self.results.len());
    }

    fn run_one<F>(&mut self, group: String, id: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        // Warmup: run the routine repeatedly until the warmup budget is
        // spent, and use the observed rate to size measurement samples.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(100);
        while warm_start.elapsed() < self.warmup {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed > Duration::ZERO {
                per_iter = b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX);
            }
            let target_iters = if per_iter.is_zero() {
                b.iters.saturating_mul(2)
            } else {
                (self.sample_target.as_nanos() / per_iter.as_nanos().max(1)) as u64
            };
            b.iters = target_iters.clamp(1, 1 << 28);
        }

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            total_iters += b.iters;
            #[allow(clippy::cast_precision_loss)]
            sample_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let median_ns = sample_ns[sample_ns.len() / 2];

        let label = if group.is_empty() {
            id.clone()
        } else {
            format!("{group}/{id}")
        };
        eprintln!("bench {label:<48} {median_ns:>12.1} ns/iter ({total_iters} iters)");
        self.results.push(BenchResult {
            group,
            id,
            median_ns,
            iters: total_iters,
        });
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Measures one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.name.clone();
        self.criterion.run_one(group, id.into(), f);
        self
    }

    /// Accepted for source compatibility; measurement already happened.
    pub fn finish(self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            elapsed += start.elapsed();
            drop(black_box(out));
        }
        self.elapsed = elapsed;
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        std::env::set_var("CARLOS_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
            g.bench_function("batched", |b| {
                b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
            });
            g.finish();
        }
        let r = c.results();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].group, "demo");
        assert_eq!(r[0].id, "add");
        assert!(r[0].median_ns >= 0.0);
        assert!(r[1].iters > 0);
    }
}
