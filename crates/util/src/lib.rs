//! Small self-contained utilities shared by every CarlOS-rs crate.
//!
//! This crate has no knowledge of the DSM protocol. It provides:
//!
//! - [`rng`] — deterministic pseudo-random number generators
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256`]) used everywhere a seeded,
//!   reproducible stream is needed (workload generation, loss injection).
//! - [`codec`] — an explicit binary wire codec. The paper's tables report
//!   message counts and *sizes in bytes*, so every protocol message in this
//!   repository is serialized through this codec and its size is the size
//!   that crosses the simulated wire.
//! - [`fmt`] — tiny table/duration formatting helpers used by the bench
//!   harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod fmt;
pub mod rng;
