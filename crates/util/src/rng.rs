//! Deterministic pseudo-random number generators.
//!
//! The cluster simulator must be bit-for-bit reproducible across runs and
//! platforms, so we avoid `StdRng` (whose algorithm is not stable across
//! `rand` releases) and implement two tiny, well-known generators:
//! SplitMix64 (for seeding and throwaway streams) and xoshiro256\*\*
//! (for longer-lived workload streams).

/// SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// Passes BigCrush when used as a 64-bit generator; its main role here is
/// seeding [`Xoshiro256`] and producing short deterministic streams.
///
/// # Examples
///
/// ```
/// let mut a = carlos_util::rng::SplitMix64::new(42);
/// let mut b = carlos_util::rng::SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed, including 0, is fine.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* generator (Blackman & Vigna 2018).
///
/// The workhorse generator for workload construction (city coordinates,
/// array shuffles, molecule positions) and for network loss injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose state is expanded from `seed` via SplitMix64,
    /// as the xoshiro authors recommend.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution is
    /// exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a non-zero bound");
        // Lemire's method: widen to 128 bits, reject the biased low zone.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 significant bits, the standard mapping.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed `f64` in `[lo, hi)`.
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut r = SplitMix64::new(1234567);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        // Determinism across instances.
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(r2.next_u64(), a);
        assert_eq!(r2.next_u64(), b);
    }

    #[test]
    fn splitmix_zero_seed_is_usable() {
        let mut r = SplitMix64::new(0);
        let vals: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        // All distinct — the stream does not get stuck at zero.
        for i in 0..vals.len() {
            for j in i + 1..vals.len() {
                assert_ne!(vals[i], vals[j]);
            }
        }
    }

    #[test]
    fn xoshiro_determinism() {
        let mut a = Xoshiro256::new(99);
        let mut b = Xoshiro256::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_seeds_differ() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Xoshiro256::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = Xoshiro256::new(8);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn next_below_zero_panics() {
        Xoshiro256::new(1).next_below(0);
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut r = Xoshiro256::new(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_range_f64_respects_bounds() {
        let mut r = Xoshiro256::new(4);
        for _ in 0..1000 {
            let x = r.next_range_f64(-2.5, 7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        // And it actually moved something (astronomically unlikely not to).
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_handles_degenerate_sizes() {
        let mut r = Xoshiro256::new(6);
        let mut empty: Vec<u32> = vec![];
        r.shuffle(&mut empty);
        let mut one = vec![42u32];
        r.shuffle(&mut one);
        assert_eq!(one, vec![42]);
    }
}
