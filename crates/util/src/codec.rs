//! Explicit binary wire codec.
//!
//! Every protocol message in CarlOS-rs crosses the simulated network as a
//! byte vector produced by this codec, so the message *sizes* reported by
//! the benchmark tables are the sizes of real encodings, not estimates.
//!
//! The format is little-endian, length-prefixed, and deliberately simple:
//! fixed-width integers, `u32`-length-prefixed byte strings and sequences.
//! Varints are intentionally not used — the 1994 systems the paper describes
//! sent fixed-width fields, and fixed widths make size accounting auditable.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Error returned when a decode runs off the end of the buffer or reads an
/// implausible length prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the field was complete.
    Truncated {
        /// How many bytes the decoder needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A length prefix exceeded the bytes remaining in the buffer.
    BadLength {
        /// The claimed length.
        claimed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// An enumeration discriminant had no defined meaning.
    BadTag {
        /// The unknown discriminant value.
        tag: u32,
        /// The type being decoded, for diagnostics.
        what: &'static str,
    },
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Truncated { needed, remaining } => {
                write!(f, "truncated field: needed {needed} bytes, {remaining} remain")
            }
            Self::BadLength { claimed, remaining } => {
                write!(f, "bad length prefix: claimed {claimed}, {remaining} remain")
            }
            Self::BadTag { tag, what } => write!(f, "unknown tag {tag} for {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encoder wrapping a growable byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Appends a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Appends a `u32` length prefix followed by the raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Appends raw bytes with no length prefix (for fixed-size payloads).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Appends a `u32` element count followed by each element via `f`.
    pub fn put_seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.put_u32(items.len() as u32);
        for item in items {
            f(self, item);
        }
    }

    /// Number of bytes encoded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes encoding, returning the immutable byte string.
    #[must_use]
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Finishes encoding, returning an owned `Vec<u8>`.
    ///
    /// This reuses the encoder's buffer allocation; it does not copy.
    #[must_use]
    pub fn finish_vec(self) -> Vec<u8> {
        self.buf.into()
    }

    /// Finishes encoding, returning the still-mutable buffer.
    ///
    /// Used by senders that encode a payload with headroom for a framing
    /// header, fill the header in place, and then freeze the whole buffer
    /// once — so the wire copy and any retransmission queue share one
    /// allocation.
    #[must_use]
    pub fn finish_mut(self) -> BytesMut {
        self.buf
    }
}

/// Decoder over a borrowed byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::Truncated {
                needed: n,
                remaining: self.buf.remaining(),
            })
        } else {
            Ok(())
        }
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a `u16` (little-endian).
    pub fn get_u16(&mut self) -> Result<u16, DecodeError> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    /// Reads a `u32` (little-endian).
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a `u64` (little-endian).
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.get_u32()? as usize;
        if self.buf.remaining() < len {
            return Err(DecodeError::BadLength {
                claimed: len,
                remaining: self.buf.remaining(),
            });
        }
        let mut out = vec![0u8; len];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }

    /// Reads `n` raw bytes (no length prefix).
    pub fn get_raw(&mut self, n: usize) -> Result<Vec<u8>, DecodeError> {
        self.need(n)?;
        let mut out = vec![0u8; n];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }

    /// Reads a `u32`-count-prefixed sequence, decoding each element via `f`.
    pub fn get_seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, DecodeError>,
    ) -> Result<Vec<T>, DecodeError> {
        let n = self.get_u32()? as usize;
        // Each element is at least one byte; reject absurd counts early.
        if n > self.buf.remaining() {
            return Err(DecodeError::BadLength {
                claimed: n,
                remaining: self.buf.remaining(),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Returns an error unless the whole buffer was consumed.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.buf.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::BadLength {
                claimed: 0,
                remaining: self.buf.remaining(),
            })
        }
    }
}

/// A type with a canonical wire encoding.
pub trait Wire: Sized {
    /// Appends this value's encoding to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Decodes a value from `dec`.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Convenience: encodes into a fresh byte vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish_vec()
    }

    /// Convenience: decodes from a full buffer, requiring full consumption.
    fn from_wire(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(buf);
        let v = Self::decode(&mut dec)?;
        dec.expect_end()?;
        Ok(v)
    }

    /// Size in bytes of this value's encoding.
    fn wire_size(&self) -> usize {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(0xAB);
        e.put_u16(0xCDEF);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(0x0123_4567_89AB_CDEF);
        e.put_f64(-1.25e10);
        let buf = e.finish_vec();
        assert_eq!(buf.len(), 1 + 2 + 4 + 8 + 8);

        let mut d = Decoder::new(&buf);
        assert_eq!(d.get_u8().unwrap(), 0xAB);
        assert_eq!(d.get_u16().unwrap(), 0xCDEF);
        assert_eq!(d.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(d.get_f64().unwrap(), -1.25e10);
        d.expect_end().unwrap();
    }

    #[test]
    fn bytes_roundtrip() {
        let mut e = Encoder::new();
        e.put_bytes(b"hello world");
        e.put_bytes(b"");
        let buf = e.finish_vec();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.get_bytes().unwrap(), b"hello world");
        assert_eq!(d.get_bytes().unwrap(), b"");
        d.expect_end().unwrap();
    }

    #[test]
    fn seq_roundtrip() {
        let items = vec![3u32, 1, 4, 1, 5, 9];
        let mut e = Encoder::new();
        e.put_seq(&items, |e, &v| e.put_u32(v));
        let buf = e.finish_vec();
        let mut d = Decoder::new(&buf);
        let back = d.get_seq(|d| d.get_u32()).unwrap();
        assert_eq!(back, items);
    }

    #[test]
    fn truncated_scalar_errors() {
        let buf = [0x01u8, 0x02];
        let mut d = Decoder::new(&buf);
        assert!(matches!(d.get_u32(), Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn bad_length_prefix_errors() {
        let mut e = Encoder::new();
        e.put_u32(1000); // claims 1000 bytes follow
        e.put_u8(1);
        let buf = e.finish_vec();
        let mut d = Decoder::new(&buf);
        assert!(matches!(d.get_bytes(), Err(DecodeError::BadLength { .. })));
    }

    #[test]
    fn bad_seq_count_errors() {
        let mut e = Encoder::new();
        e.put_u32(u32::MAX); // absurd element count
        let buf = e.finish_vec();
        let mut d = Decoder::new(&buf);
        assert!(matches!(
            d.get_seq(|d| d.get_u32()),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn expect_end_rejects_trailing_garbage() {
        let buf = [1u8, 2, 3];
        let mut d = Decoder::new(&buf);
        let _ = d.get_u8().unwrap();
        assert!(d.expect_end().is_err());
    }

    #[test]
    fn wire_trait_roundtrip() {
        #[derive(Debug, PartialEq)]
        struct Point {
            x: u32,
            y: u32,
        }
        impl Wire for Point {
            fn encode(&self, enc: &mut Encoder) {
                enc.put_u32(self.x);
                enc.put_u32(self.y);
            }
            fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                Ok(Self {
                    x: dec.get_u32()?,
                    y: dec.get_u32()?,
                })
            }
        }
        let p = Point { x: 7, y: 9 };
        assert_eq!(p.wire_size(), 8);
        let back = Point::from_wire(&p.to_wire()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn decode_error_display_is_informative() {
        let e = DecodeError::BadTag { tag: 9, what: "Annotation" };
        assert!(e.to_string().contains("Annotation"));
        let e = DecodeError::Truncated { needed: 4, remaining: 1 };
        assert!(e.to_string().contains('4'));
    }
}
