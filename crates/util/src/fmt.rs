//! Formatting helpers for the benchmark harnesses.
//!
//! The bench targets print tables shaped like the paper's Tables 1–3, so a
//! tiny fixed-width table writer keeps them readable without pulling in a
//! table crate.

/// Formats a microsecond count as seconds with one decimal, e.g. `31.8`.
#[must_use]
pub fn secs(us: u64) -> String {
    format!("{:.1}", us as f64 / 1e6)
}

/// Formats fractional seconds with one decimal, e.g. `31.8`.
#[must_use]
pub fn secs_f(s: f64) -> String {
    format!("{s:.1}")
}

/// Formats a ratio with two decimals, e.g. `2.69`.
#[must_use]
pub fn ratio(r: f64) -> String {
    format!("{r:.2}")
}

/// Formats a fraction as a whole-number percentage, e.g. `6%`.
#[must_use]
pub fn percent(f: f64) -> String {
    format!("{:.0}%", f * 100.0)
}

/// Formats a count with thousands separators, e.g. `10,403`.
#[must_use]
pub fn thousands(n: u64) -> String {
    let digits = n.to_string();
    // Build groups of three from the right.
    let bytes = digits.as_bytes();
    let mut parts: Vec<&[u8]> = Vec::new();
    let mut end = bytes.len();
    while end > 3 {
        parts.push(&bytes[end - 3..end]);
        end -= 3;
    }
    parts.push(&bytes[..end]);
    parts.reverse();
    let strs: Vec<&str> = parts
        .iter()
        .map(|p| core::str::from_utf8(p).expect("digits are ASCII"))
        .collect();
    strs.join(",")
}

/// A fixed-width text table, printed column-aligned.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with right-aligned cells.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |row: &[String], out: &mut String| {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_formats() {
        assert_eq!(secs(31_800_000), "31.8");
        assert_eq!(secs(0), "0.0");
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(2.694), "2.69");
    }

    #[test]
    fn percent_formats() {
        assert_eq!(percent(0.061), "6%");
        assert_eq!(percent(0.5), "50%");
    }

    #[test]
    fn thousands_formats() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1,000");
        assert_eq!(thousands(10403), "10,403");
        assert_eq!(thousands(1_234_567), "1,234,567");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["N", "Time (s)"]);
        t.row(&["2".into(), "52.3".into()]);
        t.row(&["10".into(), "5.1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Time (s)"));
        // Right-aligned numbers: "10" and " 2" occupy the same width.
        assert!(lines[2].starts_with(' '));
        assert!(lines[3].starts_with("10"));
    }
}
