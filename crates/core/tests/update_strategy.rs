//! Tests for the update/hybrid coherence strategy (§4.3): RELEASE messages
//! carry the diffs their write notices describe, so receivers' pages stay
//! valid and reads proceed without demand fetches.

use carlos_core::{Annotation, CoreConfig, Runtime};
use carlos_lrc::LrcConfig;
use carlos_sim::{Cluster, SimConfig};

const H_GO: u32 = 1;
const H_REPLY: u32 = 2;

fn mk_update(ctx: carlos_sim::NodeCtx, n: usize) -> Runtime {
    Runtime::new(
        ctx,
        LrcConfig::small_test(n),
        CoreConfig::fast_test().with_update_strategy(),
    )
}

#[test]
fn update_release_keeps_page_valid() {
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_update(ctx, 2);
        // Warm node 1's copy, then modify and release.
        let _ = rt.wait_accepted(H_REPLY);
        rt.write_u32(0, 777);
        rt.send(1, H_GO, vec![], Annotation::Release);
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = mk_update(ctx, 2);
        let _ = rt.read_u32(0); // Fault the page in (zero).
        rt.send(0, H_REPLY, vec![], Annotation::None);
        let _ = rt.wait_accepted(H_GO);
        let before = rt.ctx().counter("carlos.diff_requests");
        assert_eq!(rt.read_u32(0), 777, "update diff was not applied");
        let after = rt.ctx().counter("carlos.diff_requests");
        assert_eq!(
            before, after,
            "the read should not have needed a demand fetch"
        );
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    let r = c.run();
    assert!(
        r.counter_total("carlos.update_diffs_received") >= 1,
        "the release should have carried diffs"
    );
}

#[test]
fn update_strategy_matches_invalidate_results() {
    // The same lock-counter workload must produce identical results under
    // both strategies; only the traffic pattern differs.
    // A token circulates 0 → 1 → 2 → 0 …; each holder increments a shared
    // counter and passes the token with a RELEASE (a hand-rolled lock).
    let run = |update: bool| {
        const N: usize = 3;
        const ROUNDS: u32 = 10;
        let mut c = Cluster::new(SimConfig::fast_test(), N);
        for node in 0..N as u32 {
            c.spawn_node(node, move |ctx| {
                let core = if update {
                    CoreConfig::fast_test().with_update_strategy()
                } else {
                    CoreConfig::fast_test()
                };
                let mut rt = Runtime::new(ctx, LrcConfig::small_test(N), core);
                let next = (node + 1) % N as u32;
                for round in 0..ROUNDS {
                    if !(round == 0 && node == 0) {
                        let _ = rt.wait_accepted(H_GO);
                    }
                    let v = rt.read_u32(0);
                    rt.write_u32(0, v + 1);
                    if !(round == ROUNDS - 1 && next == 0) {
                        rt.send(next, H_GO, vec![], Annotation::Release);
                    }
                }
                if node == N as u32 - 1 {
                    // Last holder: verify and let everyone exit.
                    assert_eq!(rt.read_u32(0), ROUNDS * N as u32);
                    for peer in 0..N as u32 - 1 {
                        rt.send(peer, H_REPLY, vec![], Annotation::None);
                    }
                } else {
                    let _ = rt.wait_accepted(H_REPLY);
                }
                rt.shutdown();
            });
        }
        c.run()
    };
    let inv = run(false);
    let upd = run(true);
    // Update mode trades demand fetches for fatter releases.
    assert!(
        upd.counter_total("carlos.diff_requests") < inv.counter_total("carlos.diff_requests"),
        "update mode should need fewer demand diff fetches: {} vs {}",
        upd.counter_total("carlos.diff_requests"),
        inv.counter_total("carlos.diff_requests"),
    );
    assert!(
        upd.net.messages < inv.net.messages,
        "eager diffs should eliminate request/reply pairs: {} vs {} messages",
        upd.net.messages,
        inv.net.messages
    );
}

#[test]
fn update_strategy_partial_coverage_falls_back_to_fetch() {
    // Node 2 receives a release whose diffs it can use only partially (it
    // missed earlier intervals); it must still converge via demand fetches.
    let mut c = Cluster::new(SimConfig::fast_test(), 3);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_update(ctx, 3);
        rt.write_u32(0, 1);
        // First release only to node 1.
        rt.send(1, H_GO, vec![], Annotation::Release);
        let _ = rt.wait_accepted(H_REPLY);
        rt.write_u32(4, 2);
        // Second release to node 2: carries the second diff, and the first
        // interval's record too (node 2 lacks it) with its diff.
        rt.send(2, H_GO, vec![], Annotation::Release);
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = mk_update(ctx, 3);
        let _ = rt.wait_accepted(H_GO);
        assert_eq!(rt.read_u32(0), 1);
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    c.spawn_node(2, |ctx| {
        let mut rt = mk_update(ctx, 3);
        let _ = rt.wait_accepted(H_GO);
        assert_eq!(rt.read_u32(0), 1);
        assert_eq!(rt.read_u32(4), 2);
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    c.run();
}

#[test]
fn mixed_strategies_interoperate() {
    // One node running update mode, one running invalidate: the wire
    // format is shared, so they must interoperate (extra diffs are simply
    // never sent by the invalidate-mode node).
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_update(ctx, 2);
        rt.write_u32(0, 5);
        rt.send(1, H_GO, vec![], Annotation::Release);
        let m = rt.wait_accepted(H_GO);
        assert_eq!(m.src, 1);
        assert_eq!(rt.read_u32(4), 6);
        rt.send(1, H_REPLY, vec![], Annotation::None);
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = Runtime::new(ctx, LrcConfig::small_test(2), CoreConfig::fast_test());
        let _ = rt.wait_accepted(H_GO);
        assert_eq!(rt.read_u32(0), 5);
        rt.write_u32(4, 6);
        rt.send(0, H_GO, vec![], Annotation::Release);
        let _ = rt.wait_accepted(H_REPLY);
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    c.run();
}
