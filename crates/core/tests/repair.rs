//! The RELEASE gap-repair path: interval records arriving out of causal
//! order must be detected (required timestamp not covered), repaired via
//! SYS_IVAL_REQ from the sender, and applied in causal order before the
//! message is delivered to user level.

use carlos_core::{Annotation, CoreConfig, Runtime};
use carlos_lrc::LrcConfig;
use carlos_sim::{Cluster, SimConfig};

const H_GO: u32 = 1;
const H_DONE: u32 = 2;

fn mk_runtime(ctx: carlos_sim::NodeCtx, n: usize) -> Runtime {
    Runtime::new(ctx, LrcConfig::small_test(n), CoreConfig::fast_test())
}

/// Node 1's NT release to node 2 carries only node 1's own records, yet its
/// required timestamp names TWO intervals of node 0 that node 2 has never
/// seen. Node 2 must detect the gap, fetch both records from node 1, apply
/// them in index order, and only then deliver the message.
#[test]
fn nt_gap_with_multiple_missing_records_is_repaired() {
    let mut c = Cluster::new(SimConfig::fast_test(), 3);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        // Two separate intervals: write / release, write / release.
        rt.write_u32(0, 10);
        rt.send(1, H_GO, vec![], Annotation::Release);
        rt.write_u32(4, 11);
        rt.send(1, H_GO, vec![], Annotation::Release);
        let _ = rt.wait_accepted(H_DONE);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        let _ = rt.wait_accepted(H_GO);
        let _ = rt.wait_accepted(H_GO);
        assert_eq!(rt.vt().get(0), 2, "both releases accepted");
        rt.write_u32(64, 20);
        // Non-transitive: ships only node 1's records; node 0's two
        // intervals arrive at node 2 as a hole in the required timestamp.
        rt.send(2, H_GO, vec![], Annotation::ReleaseNt);
        let _ = rt.wait_accepted(H_DONE);
        rt.shutdown();
    });
    c.spawn_node(2, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        let _ = rt.wait_accepted(H_GO);
        // Acceptance implies the gap was repaired: the timestamp covers
        // node 0's intervals even though node 0 never messaged us.
        assert_eq!(rt.vt().get(0), 2, "repair must deliver node 0's records");
        assert_eq!(rt.vt().get(1), 1);
        assert_eq!(rt.read_u32(0), 10);
        assert_eq!(rt.read_u32(4), 11);
        assert_eq!(rt.read_u32(64), 20);
        rt.send(0, H_DONE, vec![], Annotation::None);
        rt.send(1, H_DONE, vec![], Annotation::None);
        rt.shutdown();
    });
    let r = c.run();
    assert!(
        r.node_counters[2].get("carlos.repair_requests") >= 1,
        "node 2 must have requested a repair"
    );
    assert!(
        r.node_counters[1].get("carlos.repair_served") >= 1,
        "node 1 must have served the repair"
    );
    assert_eq!(
        r.node_counters[0].get("carlos.repair_served"),
        0,
        "repair is served by the NT sender, not the records' creator"
    );
}

/// A chain of NT releases (0 -> 1 -> 2 -> 3 with a write at every hop):
/// each hop's acceptor is missing the upstream history and must repair
/// from its direct sender, re-establishing transitivity hop by hop.
#[test]
fn nt_chain_repairs_transitively_hop_by_hop() {
    const N: usize = 4;
    let mut c = Cluster::new(SimConfig::fast_test(), N);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, N);
        rt.write_u32(0, 100);
        rt.send(1, H_GO, vec![], Annotation::ReleaseNt);
        let _ = rt.wait_accepted(H_DONE);
        rt.shutdown();
    });
    for node in 1..N as u32 - 1 {
        c.spawn_node(node, move |ctx| {
            let mut rt = mk_runtime(ctx, N);
            let _ = rt.wait_accepted(H_GO);
            rt.write_u32(node as usize * 64, 100 + node);
            rt.send(node + 1, H_GO, vec![], Annotation::ReleaseNt);
            let _ = rt.wait_accepted(H_DONE);
            rt.shutdown();
        });
    }
    c.spawn_node(N as u32 - 1, move |ctx| {
        let mut rt = mk_runtime(ctx, N);
        let _ = rt.wait_accepted(H_GO);
        // The whole upstream chain must be visible.
        for peer in 0..N as u32 - 1 {
            assert_eq!(
                rt.read_u32(peer as usize * 64),
                100 + peer,
                "missing write from hop {peer}"
            );
        }
        for peer in 0..N as u32 - 1 {
            rt.send(peer, H_DONE, vec![], Annotation::None);
        }
        rt.shutdown();
    });
    let r = c.run();
    // Hop 0 -> 1 is complete by construction (node 0 has no foreign
    // history); hops into 2 and 3 both repair.
    assert_eq!(r.node_counters[1].get("carlos.repair_requests"), 0);
    assert!(r.node_counters[2].get("carlos.repair_requests") >= 1);
    assert!(r.node_counters[3].get("carlos.repair_requests") >= 1);
    assert!(r.node_counters[1].get("carlos.repair_served") >= 1);
    assert!(r.node_counters[2].get("carlos.repair_served") >= 1);
}

/// Records already covered are not re-requested: a second NT release from
/// the same sender repairs only the new hole, and an ordinary RELEASE
/// following the repaired NT needs no repair at all.
#[test]
fn repair_fetches_only_the_missing_suffix() {
    let mut c = Cluster::new(SimConfig::fast_test(), 3);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        rt.write_u32(0, 1);
        rt.send(1, H_GO, vec![], Annotation::Release);
        let _ = rt.wait_accepted(H_GO); // node 1 signals round 2
        rt.write_u32(4, 2);
        rt.send(1, H_GO, vec![], Annotation::Release);
        let _ = rt.wait_accepted(H_DONE);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        let _ = rt.wait_accepted(H_GO);
        rt.send(2, H_GO, vec![], Annotation::ReleaseNt); // gap: (0,1)
        rt.send(0, H_GO, vec![], Annotation::Request);
        let _ = rt.wait_accepted(H_GO);
        rt.send(2, H_GO, vec![], Annotation::ReleaseNt); // gap: only (0,2)
        let _ = rt.wait_accepted(H_DONE);
        rt.shutdown();
    });
    c.spawn_node(2, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        let _ = rt.wait_accepted(H_GO);
        let vt_after_first = rt.vt().get(0);
        assert_eq!(vt_after_first, 1, "first NT repaired (0,1)");
        let _ = rt.wait_accepted(H_GO);
        assert_eq!(rt.vt().get(0), 2, "second NT repaired only (0,2)");
        assert_eq!(rt.read_u32(0), 1);
        assert_eq!(rt.read_u32(4), 2);
        rt.send(0, H_DONE, vec![], Annotation::None);
        rt.send(1, H_DONE, vec![], Annotation::None);
        rt.shutdown();
    });
    let r = c.run();
    assert!(r.node_counters[2].get("carlos.repair_requests") >= 2);
    assert!(r.node_counters[1].get("carlos.repair_served") >= 2);
}
