//! Tests for §4.4 user-level multithreading: several threads share one
//! node's runtime, remote latencies are hidden by overlap, handlers keep
//! being served while threads block, and the scheduler upcall fires.

use std::sync::{
    atomic::{AtomicU32, Ordering},
    Arc,
};

use carlos_core::{Annotation, CoreConfig, Runtime, SharedRuntime, ThreadEvent};
use carlos_lrc::LrcConfig;
use carlos_sim::time::{ms, us};
use carlos_sim::{Cluster, SimConfig};

const H_DONE: u32 = 9;

/// Two threads on node 1 each fetch a different remote page and compute.
/// With the page fetches overlapped, the node finishes far sooner than the
/// serial sum of both threads' latencies.
#[test]
fn two_threads_hide_remote_latency() {
    let elapsed_for = |threads: usize| {
        let mut c = Cluster::new(SimConfig::osdi94(), 2);
        // Node 0 owns the pages and serves them.
        c.spawn_node(0, |ctx| {
            let mut rt = Runtime::new(ctx, LrcConfig::osdi94(2, 1 << 16), CoreConfig::osdi94());
            for page in 0..4usize {
                rt.write_u32(page * 8192, page as u32 + 1);
            }
            let mut done = 0;
            while done < 1 {
                let _ = rt.wait_accepted(H_DONE);
                done += 1;
            }
            rt.shutdown();
        });
        c.spawn_node(1, move |ctx| {
            let rt = Runtime::new(
                ctx.clone(),
                LrcConfig::osdi94(2, 1 << 16),
                CoreConfig::osdi94(),
            );
            let shared = Arc::new(SharedRuntime::new(rt));
            let done = Arc::new(AtomicU32::new(0));
            let work = move |w: carlos_core::Worker, page: usize| {
                // Fetch a remote page (a multi-millisecond round trip on
                // the 10 Mbit wire), then compute for 5 ms.
                let v = w.read_u32(page * 8192);
                assert_eq!(v, page as u32 + 1);
                w.compute(ms(5));
            };
            for t in 1..threads {
                let shared2 = Arc::clone(&shared);
                let done2 = Arc::clone(&done);
                ctx.spawn_thread(move |tctx| {
                    let w = shared2.worker(t as u32, tctx);
                    work(w, t);
                    done2.fetch_add(1, Ordering::SeqCst);
                });
            }
            let w = shared.worker(0, ctx.clone());
            work(w, 0);
            done.fetch_add(1, Ordering::SeqCst);
            // Wait for the helper threads, pumping the runtime so their
            // fetches are actually processed.
            let w0 = shared.worker(0, ctx.clone());
            while done.load(Ordering::SeqCst) < threads as u32 {
                w0.poll();
                let _ = ctx.wait_mailbox(Some(ctx.now() + us(200)));
            }
            w0.send(0, H_DONE, vec![], Annotation::None);
            shared.with(|rt| rt.shutdown());
        });
        c.run().elapsed
    };
    let serial = elapsed_for(1); // One thread, one page + 5 ms.
    let dual = elapsed_for(2); // Two threads, two pages + 2 × 5 ms.
    // Without overlap the two-thread run would cost ~2× the single-thread
    // one (two fetches + 10 ms of serialized compute). With latency hiding
    // the fetch of page 1 overlaps thread 0's compute.
    assert!(
        dual < serial * 2,
        "no latency hiding: single {serial} vs dual {dual}"
    );
}

/// While one thread is blocked on a remote fetch, the node still serves
/// incoming requests through the other thread's polling.
#[test]
fn blocked_thread_does_not_stall_service() {
    let mut c = Cluster::new(SimConfig::fast_test(), 3);
    // Node 0: owner; also the final rendezvous point.
    c.spawn_node(0, |ctx| {
        let mut rt = Runtime::new(ctx, LrcConfig::small_test(3), CoreConfig::fast_test());
        rt.write_u32(0, 11);
        rt.write_u32(64, 22); // A second page.
        let _ = rt.wait_accepted(H_DONE);
        let _ = rt.wait_accepted(H_DONE);
        rt.shutdown();
    });
    // Node 1: two threads; thread 1 blocks on a remote page while the main
    // thread keeps the runtime served.
    c.spawn_node(1, |ctx| {
        let rt = Runtime::new(ctx.clone(), LrcConfig::small_test(3), CoreConfig::fast_test());
        let shared = Arc::new(SharedRuntime::new(rt));
        let done = Arc::new(AtomicU32::new(0));
        let shared2 = Arc::clone(&shared);
        let done2 = Arc::clone(&done);
        ctx.spawn_thread(move |tctx| {
            let w = shared2.worker(1, tctx);
            assert_eq!(w.read_u32(0), 11);
            w.send(0, H_DONE, vec![], Annotation::None);
            done2.fetch_add(1, Ordering::SeqCst);
        });
        let w = shared.worker(0, ctx.clone());
        // The main thread writes its own page, which node 2 will read —
        // requiring node 1 to serve diffs while thread 1 is blocked.
        w.write_u32(128, 33);
        w.send(2, H_DONE, vec![], Annotation::Release);
        while done.load(Ordering::SeqCst) < 1 {
            w.poll();
            let _ = ctx.wait_mailbox(Some(ctx.now() + us(100)));
        }
        // Stay alive until node 2 confirms.
        let w0 = shared.worker(0, ctx.clone());
        let _ = w0.wait_accepted(H_DONE);
        shared.with(|rt| rt.shutdown());
    });
    // Node 2: reads node 1's write after the release.
    c.spawn_node(2, |ctx| {
        let mut rt = Runtime::new(ctx, LrcConfig::small_test(3), CoreConfig::fast_test());
        let _ = rt.wait_accepted(H_DONE);
        assert_eq!(rt.read_u32(128), 33);
        rt.send(1, H_DONE, vec![], Annotation::None);
        rt.send(0, H_DONE, vec![], Annotation::None);
        rt.shutdown();
    });
    c.run();
}

/// The §4.4 scheduler upcall fires on block/unblock transitions.
#[test]
fn scheduler_upcall_fires() {
    let blocks = Arc::new(AtomicU32::new(0));
    let unblocks = Arc::new(AtomicU32::new(0));
    let (b2, u2) = (Arc::clone(&blocks), Arc::clone(&unblocks));
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        let mut rt = Runtime::new(ctx, LrcConfig::small_test(2), CoreConfig::fast_test());
        rt.write_u32(0, 1);
        let _ = rt.wait_accepted(H_DONE);
        rt.shutdown();
    });
    c.spawn_node(1, move |ctx| {
        let rt = Runtime::new(ctx.clone(), LrcConfig::small_test(2), CoreConfig::fast_test());
        let shared = SharedRuntime::new(rt);
        shared.set_upcall(Box::new(move |ev| match ev {
            ThreadEvent::Blocked { .. } => {
                b2.fetch_add(1, Ordering::SeqCst);
            }
            ThreadEvent::Unblocked { .. } => {
                u2.fetch_add(1, Ordering::SeqCst);
            }
        }));
        let w = shared.worker(0, ctx);
        // The remote read must block at least once (page fetch round trip).
        assert_eq!(w.read_u32(0), 1);
        w.send(0, H_DONE, vec![], Annotation::None);
        shared.with(|rt| rt.shutdown());
    });
    c.run();
    assert!(blocks.load(Ordering::SeqCst) >= 1, "no Blocked upcall");
    assert_eq!(
        blocks.load(Ordering::SeqCst),
        unblocks.load(Ordering::SeqCst),
        "every block must unblock"
    );
}
