//! End-to-end tests of message-driven consistency semantics over the
//! simulated cluster: the paper's Figure 1 scenario, annotation behaviour,
//! forwarding, stored messages, and non-transitive releases.

use carlos_core::{Annotation, CoreConfig, Runtime};
use carlos_lrc::LrcConfig;
use carlos_sim::{time::ms, Cluster, SimConfig};

const H_GO: u32 = 1;
const H_REPLY: u32 = 2;
const H_FWD: u32 = 3;

fn mk_runtime(ctx: carlos_sim::NodeCtx, n: usize) -> Runtime {
    Runtime::new(ctx, LrcConfig::small_test(n), CoreConfig::fast_test())
}

#[test]
fn release_makes_write_visible() {
    // The core guarantee (§2): modifications visible at A before it sends a
    // synchronizing message are visible at B when B accepts it.
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        rt.write_u32(0, 1234);
        rt.send(1, H_GO, vec![], Annotation::Release);
        // Stay alive to serve the diff fetch.
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        let _ = rt.wait_accepted(H_GO);
        assert_eq!(rt.read_u32(0), 1234, "release did not propagate write");
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    c.run();
}

#[test]
fn none_message_does_not_synchronize() {
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        // Warm node 1's copy first so it holds a (zero) cached page.
        let _ = rt.wait_accepted(H_REPLY);
        rt.write_u32(0, 77);
        rt.send(1, H_GO, vec![], Annotation::None);
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        let v0 = rt.read_u32(0); // Faults the page in (value 0).
        assert_eq!(v0, 0);
        rt.send(0, H_REPLY, vec![], Annotation::None);
        let _ = rt.wait_accepted(H_GO);
        // NONE carries no consistency info: the cached zero stays visible.
        assert_eq!(rt.read_u32(0), 0, "NONE message must not invalidate");
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    c.run();
}

#[test]
fn request_reply_lock_pattern_is_asymmetric() {
    // Figure 1: P2 sends "get lock" (REQUEST) to P1; P1 answers "release
    // lock" (RELEASE). P2 must see P1's write; P1 must NOT have become
    // consistent with P2 (no unintended symmetry).
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        rt.write_u32(0, 42); // w(x) while "holding the lock".
        let m = rt.wait_accepted(H_GO); // "get lock" REQUEST arrives.
        assert_eq!(m.annotation, Annotation::Request);
        let vt_before = rt.vt().clone();
        rt.send(1, H_REPLY, vec![], Annotation::Release);
        // P1's knowledge OF P2 may have grown, but P1 applied nothing of
        // P2's: its own index for node 1 must still be zero.
        assert_eq!(rt.vt().get(1), vt_before.get(1));
        assert_eq!(rt.vt().get(1), 0, "unintended symmetry: P1 synced with P2");
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        // P2 dirties its own private page (so it HAS intervals P1 could
        // wrongly absorb), then asks for the lock.
        rt.write_u32(256, 7);
        rt.send(0, H_GO, vec![], Annotation::Request);
        let _ = rt.wait_accepted(H_REPLY); // "release lock" accepted.
        assert_eq!(rt.read_u32(0), 42, "r(x) must see P1's write");
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    c.run();
}

#[test]
fn request_piggyback_tailors_release_payload() {
    // After P2's REQUEST carries its timestamp, P1's RELEASE payload must
    // not resend records P2 already has.
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        rt.write_u32(0, 1);
        rt.send(1, H_GO, vec![], Annotation::Release); // P2 learns interval 1.
        let _ = rt.wait_accepted(H_GO); // P2's REQUEST (with its vt).
        rt.write_u32(8, 2);
        rt.send(1, H_REPLY, vec![], Annotation::Release);
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        let _ = rt.wait_accepted(H_GO);
        rt.send(0, H_GO, vec![], Annotation::Request);
        let _ = rt.wait_accepted(H_REPLY);
        assert_eq!(rt.read_u32(8), 2);
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    let r = c.run();
    // Knowledge tracking plus the piggyback keep payloads tailored; with
    // correct tailoring node 0 ships each interval record exactly once.
    assert_eq!(r.counter_total("carlos.repair_requests"), 0);
}

#[test]
fn forwarding_relays_consistency_to_final_recipient() {
    // Paper §2.2: a RELEASE relayed through an intermediary must make the
    // *final* recipient consistent with the origin, while the intermediary
    // (which only forwards) absorbs nothing.
    let mut c = Cluster::new(SimConfig::fast_test(), 3);
    // Node 0: origin. Writes, then RELEASEs to the manager (node 1).
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        rt.write_u32(0, 99);
        rt.send(1, H_FWD, vec![], Annotation::Release);
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    // Node 1: manager. Forwards without accepting.
    c.spawn_node(1, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        rt.register(
            H_FWD,
            Box::new(|env, msg| {
                env.forward(msg, 2);
            }),
        );
        let _ = rt.wait_accepted(H_REPLY);
        assert_eq!(rt.vt().get(0), 0, "forwarder must not absorb consistency");
        rt.shutdown();
    });
    // Node 2: final recipient.
    c.spawn_node(2, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        let m = rt.wait_accepted(H_FWD);
        assert_eq!(m.origin, 0, "origin must survive forwarding");
        assert_eq!(m.src, 1, "src must be the forwarder");
        assert_eq!(rt.read_u32(0), 99, "forwarded release lost information");
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.send(1, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    c.run();
}

#[test]
fn stored_messages_forward_later() {
    // The shared work queue pattern (§2.2): the manager stores "enqueued"
    // RELEASE messages and forwards them to dequeuers; it never accepts.
    let mut c = Cluster::new(SimConfig::fast_test(), 3);
    // Node 0: producer.
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        rt.write_u32(0, 555); // The "work item" payload in shared memory.
        rt.send(1, H_FWD, b"item".to_vec(), Annotation::Release);
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    // Node 1: queue manager. Stores, then forwards on dequeue request.
    c.spawn_node(1, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        let stored = std::sync::Arc::new(std::sync::Mutex::new(Vec::<u64>::new()));
        let s1 = std::sync::Arc::clone(&stored);
        rt.register(
            H_FWD,
            Box::new(move |env, msg| {
                let id = env.store(msg);
                s1.lock().unwrap().push(id);
            }),
        );
        let s2 = std::sync::Arc::clone(&stored);
        rt.register(
            H_GO,
            Box::new(move |env, msg| {
                let requester = msg.src;
                env.accept(msg); // The dequeue REQUEST itself.
                let id = s2.lock().unwrap().pop().expect("an item is queued");
                env.forward_stored(id, requester);
            }),
        );
        let _ = rt.wait_accepted(H_REPLY);
        assert_eq!(rt.vt().get(0), 0, "manager must stay unsynchronized");
        rt.shutdown();
    });
    // Node 2: consumer. Requests an item, becomes consistent with node 0.
    c.spawn_node(2, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        rt.ctx().sleep(ms(5)); // Let the producer enqueue first.
        rt.send(1, H_GO, vec![], Annotation::Request);
        let item = rt.wait_accepted(H_FWD);
        assert_eq!(item.body, b"item");
        assert_eq!(item.origin, 0);
        assert_eq!(rt.read_u32(0), 555, "consumer must see producer's write");
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.send(1, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    c.run();
}

#[test]
fn release_nt_gap_is_repaired() {
    // Node 0 releases to node 1; node 1 then sends a RELEASE_NT to node 2.
    // The NT payload omits node 0's records, so node 2 must detect the gap
    // (required timestamp not covered) and repair from node 1.
    let mut c = Cluster::new(SimConfig::fast_test(), 3);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        rt.write_u32(0, 10);
        rt.send(1, H_GO, vec![], Annotation::Release);
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        let _ = rt.wait_accepted(H_GO);
        rt.write_u32(64, 20); // Own modification, announced by the NT send.
        rt.send(2, H_GO, vec![], Annotation::ReleaseNt);
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    c.spawn_node(2, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        let _ = rt.wait_accepted(H_GO);
        // Acceptance only completes once the gap is repaired, so both
        // writes are visible now.
        assert_eq!(rt.read_u32(64), 20);
        assert_eq!(rt.read_u32(0), 10);
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.send(1, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    let r = c.run();
    assert!(
        r.counter_total("carlos.repair_requests") >= 1,
        "the NT gap should have forced a repair round"
    );
}

#[test]
fn release_nt_without_foreign_history_needs_no_repair() {
    // A barrier-style NT release whose sender has no foreign records is
    // complete by construction.
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        rt.write_u32(0, 5);
        rt.send(1, H_GO, vec![], Annotation::ReleaseNt);
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        let _ = rt.wait_accepted(H_GO);
        assert_eq!(rt.read_u32(0), 5);
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    let r = c.run();
    assert_eq!(r.counter_total("carlos.repair_requests"), 0);
}

#[test]
fn transitivity_of_release_chain() {
    // 0 -> 1 -> 2 by full RELEASEs: node 2 sees node 0's write without ever
    // talking to node 0 (the happened-before transitivity of §2).
    let mut c = Cluster::new(SimConfig::fast_test(), 3);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        rt.write_u32(0, 1111);
        rt.send(1, H_GO, vec![], Annotation::Release);
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        let _ = rt.wait_accepted(H_GO);
        rt.send(2, H_GO, vec![], Annotation::Release);
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    c.spawn_node(2, |ctx| {
        let mut rt = mk_runtime(ctx, 3);
        let _ = rt.wait_accepted(H_GO);
        assert_eq!(rt.read_u32(0), 1111, "transitivity broken");
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.send(1, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    let r = c.run();
    assert_eq!(r.counter_total("carlos.repair_requests"), 0);
}

#[test]
fn compute_is_interrupted_by_incoming_traffic() {
    // Node 0 computes for a long virtual stretch; node 1 faults on a page
    // node 0 must serve. With interrupt-style handling the fault is served
    // long before the computation finishes.
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        rt.write_u32(0, 7);
        rt.send(1, H_GO, vec![], Annotation::Release);
        rt.compute(ms(500)); // Long compute; must still serve diffs.
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        let _ = rt.wait_accepted(H_GO);
        let t0 = rt.ctx().now();
        assert_eq!(rt.read_u32(0), 7);
        let elapsed = rt.ctx().now() - t0;
        assert!(
            elapsed < ms(50),
            "fault service was starved by remote compute: {elapsed} ns"
        );
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    c.run();
}

#[test]
#[should_panic(expected = "without disposing")]
fn undisposed_message_is_a_bug() {
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        rt.send(1, H_GO, vec![], Annotation::None);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        rt.register(H_GO, Box::new(|_env, _msg| { /* forgets to dispose */ }));
        let _ = rt.wait_accepted(H_REPLY); // Never arrives; panics first.
    });
    c.run();
}

#[test]
fn annotation_counters_are_tracked() {
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        rt.write_u32(0, 1);
        rt.send(1, H_GO, vec![], Annotation::None);
        rt.send(1, H_GO, vec![], Annotation::Request);
        rt.send(1, H_GO, vec![], Annotation::Release);
        rt.send(1, H_GO, vec![], Annotation::ReleaseNt);
        let _ = rt.wait_accepted(H_REPLY);
        rt.shutdown();
    });
    c.spawn_node(1, |ctx| {
        let mut rt = mk_runtime(ctx, 2);
        for _ in 0..4 {
            let _ = rt.wait_accepted(H_GO);
        }
        rt.send(0, H_REPLY, vec![], Annotation::None);
        rt.shutdown();
    });
    let r = c.run();
    assert_eq!(r.node_counters[0].get("carlos.sent.none"), 1);
    assert_eq!(r.node_counters[0].get("carlos.sent.request"), 1);
    assert_eq!(r.node_counters[0].get("carlos.sent.release"), 1);
    assert_eq!(r.node_counters[0].get("carlos.sent.release_nt"), 1);
    assert_eq!(r.node_counters[1].get("carlos.accepted"), 4);
}
