//! Passive runtime observation hooks for external consistency checkers.
//!
//! A [`CoreProbe`] sees the runtime's release/acquire protocol events —
//! releases sent, releases accepted (complete or pending on repair), and
//! repair requests — without influencing them. Like the engine-level
//! [`carlos_lrc::EngineObserver`], probing is off by default and charges no
//! simulated time, so probed runs are bit-identical to unprobed ones.

use carlos_lrc::Vc;
use carlos_sim::NodeId;

/// Receiver of runtime protocol notifications.
///
/// All methods default to no-ops. Implementations run synchronously on the
/// observed node's proc thread; they may record state (and may panic or
/// abort to escalate a violation) but must not call back into the runtime.
pub trait CoreProbe: Send + Sync {
    /// `node` sent a RELEASE (or RELEASE_NT) to `dst` whose required
    /// timestamp is `required` (the sender's timestamp after closing the
    /// release interval).
    fn release_sent(&self, node: NodeId, dst: NodeId, required: &Vc) {
        let _ = (node, dst, required);
    }

    /// `node` ran the acquire side for a RELEASE originated by `origin`.
    /// `complete` is false when the carried records left a causal gap and
    /// the accept is parked pending repair.
    fn release_accepted(&self, node: NodeId, origin: NodeId, required: &Vc, complete: bool) {
        let _ = (node, origin, required, complete);
    }

    /// `node` asked `origin` for the interval records between its own
    /// timestamp `have` and the unmet `want` (the SYS_IVAL_REQ repair).
    fn repair_requested(&self, node: NodeId, origin: NodeId, have: &Vc, want: &Vc) {
        let _ = (node, origin, have, want);
    }
}
