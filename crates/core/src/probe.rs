//! Passive runtime observation hooks for external consistency checkers.
//!
//! A [`CoreProbe`] sees the runtime's release/acquire protocol events —
//! releases sent, releases accepted (complete or pending on repair), and
//! repair requests — without influencing them. Like the engine-level
//! [`carlos_lrc::EngineObserver`], probing is off by default and charges no
//! simulated time, so probed runs are bit-identical to unprobed ones.

use carlos_lrc::Vc;
use carlos_sim::{NodeId, Ns};

/// Message class for cost attribution, mirroring the paper's §5.4 microcost
/// accounting: the four user-message annotations plus internal
/// consistency-protocol traffic (diff/page/interval requests and replies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MsgClass {
    /// Annotation NONE — plain message, no consistency processing.
    None,
    /// Annotation REQUEST — carries the sender's timestamp.
    Request,
    /// Annotation RELEASE — carries timestamp, records, and diffs.
    Release,
    /// Annotation RELEASE_NT — non-transitive release.
    ReleaseNt,
    /// Internal SYS_* protocol traffic (diff/page/interval fetch).
    System,
}

impl MsgClass {
    /// All classes, in display order.
    pub const ALL: [MsgClass; 5] = [
        MsgClass::None,
        MsgClass::Request,
        MsgClass::Release,
        MsgClass::ReleaseNt,
        MsgClass::System,
    ];

    /// Display name matching the paper's annotation names.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MsgClass::None => "NONE",
            MsgClass::Request => "REQUEST",
            MsgClass::Release => "RELEASE",
            MsgClass::ReleaseNt => "RELEASE_NT",
            MsgClass::System => "SYSTEM",
        }
    }

    /// The class of a user message with annotation `a`.
    #[must_use]
    pub fn of(a: crate::Annotation) -> Self {
        match a {
            crate::Annotation::None => MsgClass::None,
            crate::Annotation::Request => MsgClass::Request,
            crate::Annotation::Release => MsgClass::Release,
            crate::Annotation::ReleaseNt => MsgClass::ReleaseNt,
        }
    }
}

/// The protocol phase a virtual-time charge belongs to (per-message-class
/// cost breakdown, §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CostPhase {
    /// Sender-side marshalling: timestamp, records, diff creation at send.
    Send,
    /// Receiver-side unmarshalling and timestamp bookkeeping.
    Recv,
    /// Acquire-side acceptance of a release (record application).
    Accept,
    /// Creating a diff to serve a fetch.
    DiffCreate,
    /// Applying a fetched or carried diff to a local page.
    DiffApply,
    /// Copying a whole page to serve (or install from) a page fetch.
    PageCopy,
    /// Applying write notices from fetched interval records.
    NoticeApply,
}

impl CostPhase {
    /// Display name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CostPhase::Send => "send",
            CostPhase::Recv => "recv",
            CostPhase::Accept => "accept",
            CostPhase::DiffCreate => "diff_create",
            CostPhase::DiffApply => "diff_apply",
            CostPhase::PageCopy => "page_copy",
            CostPhase::NoticeApply => "notice_apply",
        }
    }
}

/// What a demand fetch is asking the owner for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FetchKind {
    /// Diffs for a page this node holds an old copy of.
    Diffs,
    /// A full page copy (first access).
    Page,
}

/// Coherence-granule size class of a fetched unit, relative to the
/// cluster's base page size (variable-granularity coherence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GranuleClass {
    /// Sub-page granule (fine-grained shared data).
    Fine,
    /// Exactly the base page size (the legacy unit).
    Page,
    /// Super-page granule (bulk array regions).
    Bulk,
}

impl GranuleClass {
    /// All classes, in display order.
    pub const ALL: [GranuleClass; 3] = [GranuleClass::Fine, GranuleClass::Page, GranuleClass::Bulk];

    /// Classifies a granule of `granule_len` bytes against `page_size`.
    #[must_use]
    pub fn of(granule_len: usize, page_size: usize) -> Self {
        match granule_len.cmp(&page_size) {
            std::cmp::Ordering::Less => GranuleClass::Fine,
            std::cmp::Ordering::Equal => GranuleClass::Page,
            std::cmp::Ordering::Greater => GranuleClass::Bulk,
        }
    }

    /// Display name for reports and counters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GranuleClass::Fine => "fine",
            GranuleClass::Page => "page",
            GranuleClass::Bulk => "bulk",
        }
    }
}

/// Receiver of runtime protocol notifications.
///
/// All methods default to no-ops. Implementations run synchronously on the
/// observed node's proc thread; they may record state (and may panic or
/// abort to escalate a violation) but must not call back into the runtime.
pub trait CoreProbe: Send + Sync {
    /// `node` sent a RELEASE (or RELEASE_NT) to `dst` whose required
    /// timestamp is `required` (the sender's timestamp after closing the
    /// release interval).
    fn release_sent(&self, node: NodeId, dst: NodeId, required: &Vc) {
        let _ = (node, dst, required);
    }

    /// `node` ran the acquire side for a RELEASE originated by `origin`.
    /// `complete` is false when the carried records left a causal gap and
    /// the accept is parked pending repair.
    fn release_accepted(&self, node: NodeId, origin: NodeId, required: &Vc, complete: bool) {
        let _ = (node, origin, required, complete);
    }

    /// `node` asked `origin` for the interval records between its own
    /// timestamp `have` and the unmet `want` (the SYS_IVAL_REQ repair).
    fn repair_requested(&self, node: NodeId, origin: NodeId, have: &Vc, want: &Vc) {
        let _ = (node, origin, have, want);
    }

    /// `node` is handing a message of `class` for handler `handler` to its
    /// transport toward `dst`. Fires immediately before the transport-level
    /// send, so a trace layer can pair it with the next
    /// [`carlos_sim::TransportObserver::data_sent`] on the same (node, dst)
    /// pair.
    fn msg_sent(&self, node: NodeId, dst: NodeId, class: MsgClass, handler: u32, at: Ns) {
        let _ = (node, dst, class, handler, at);
    }

    /// `node` decoded an in-order message from `src` and is about to run
    /// its consistency processing and handler. Pairs with the preceding
    /// [`carlos_sim::TransportObserver::data_delivered`] on (node, src).
    fn msg_dispatched(
        &self,
        node: NodeId,
        src: NodeId,
        class: MsgClass,
        handler: u32,
        bytes: usize,
        at: Ns,
    ) {
        let _ = (node, src, class, handler, bytes, at);
    }

    /// `node` charged `ns` of virtual time to protocol work of `phase` on
    /// behalf of a message of `class`. The charge begins at `at`. Summing
    /// these per (class, phase) reproduces the paper's §5.4 microcost
    /// table.
    fn protocol_cost(&self, node: NodeId, class: MsgClass, phase: CostPhase, ns: Ns, at: Ns) {
        let _ = (node, class, phase, ns, at);
    }

    /// `node` issued a demand fetch for `page` to `server` (a page fault
    /// needing diffs or a full copy). Ends at the matching
    /// [`CoreProbe::fetch_finished`].
    fn fetch_started(&self, node: NodeId, server: NodeId, page: u32, kind: FetchKind, at: Ns) {
        let _ = (node, server, page, kind, at);
    }

    /// The reply for `node`'s outstanding fetch of `page` from `server`
    /// arrived and was applied.
    fn fetch_finished(&self, node: NodeId, server: NodeId, page: u32, at: Ns) {
        let _ = (node, server, page, at);
    }

    /// A fetch reply delivered `bytes` of payload (diff bytes or a full
    /// granule copy) for `page`, a granule of size class `class`. Fires
    /// once per fulfilled demand — including each sub-reply of a coalesced
    /// batch — so summing per class reproduces the per-granule-class
    /// traffic columns of the report tables.
    fn fetch_fulfilled(
        &self,
        node: NodeId,
        server: NodeId,
        page: u32,
        class: GranuleClass,
        bytes: usize,
        at: Ns,
    ) {
        let _ = (node, server, page, class, bytes, at);
    }

    /// `node` entered (`begin` true) or left (`begin` false) a blocking
    /// synchronization wait: `what` names the operation ("lock",
    /// "barrier", ...) and `id` the object. Emitted by the sync layer.
    fn sync_wait(&self, node: NodeId, what: &'static str, id: u32, begin: bool, at: Ns) {
        let _ = (node, what, id, begin, at);
    }
}
