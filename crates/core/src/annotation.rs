//! Memory-consistency annotations (§2.1 of the paper).

use carlos_util::codec::{DecodeError, Decoder, Encoder, Wire};

/// The annotation every user-level CarlOS message carries.
///
/// Annotations are a user-visible component of the message; any consistency
/// information CarlOS appends under them is invisible at user level (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Annotation {
    /// Non-synchronizing; does not interact with the consistency mechanisms
    /// in any way. Semantically equivalent to `Request` but cheaper: no
    /// vector timestamp is carried (§2.1, §5.4).
    None,
    /// Non-synchronizing; piggybacks the sender's vector timestamp so that
    /// a precisely tailored RELEASE can be sent in response. Intended for
    /// messages whose reply will be a RELEASE.
    Request,
    /// Synchronizing: sending is a release event and accepting is the
    /// matching acquire. Carries the required vector timestamp and the
    /// interval descriptions the sender believes the receiver lacks.
    Release,
    /// The non-transitive release: carries only consistency information
    /// about intervals created at the sending node (plus the correct
    /// required timestamp, so the receiver can detect a gap and repair it).
    /// Included in the model specifically for global barriers, where the
    /// union of every member's own contribution is globally consistent.
    ReleaseNt,
}

impl Annotation {
    /// True for the two release forms (the synchronizing annotations).
    #[must_use]
    pub fn is_release(self) -> bool {
        matches!(self, Annotation::Release | Annotation::ReleaseNt)
    }

    /// True when the message carries the sender's vector timestamp.
    #[must_use]
    pub fn carries_timestamp(self) -> bool {
        !matches!(self, Annotation::None)
    }

    /// Display name as the paper writes it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Annotation::None => "NONE",
            Annotation::Request => "REQUEST",
            Annotation::Release => "RELEASE",
            Annotation::ReleaseNt => "RELEASE_NT",
        }
    }
}

impl Wire for Annotation {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            Annotation::None => 0,
            Annotation::Request => 1,
            Annotation::Release => 2,
            Annotation::ReleaseNt => 3,
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(Annotation::None),
            1 => Ok(Annotation::Request),
            2 => Ok(Annotation::Release),
            3 => Ok(Annotation::ReleaseNt),
            tag => Err(DecodeError::BadTag {
                tag: u32::from(tag),
                what: "Annotation",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Annotation::Release.is_release());
        assert!(Annotation::ReleaseNt.is_release());
        assert!(!Annotation::None.is_release());
        assert!(!Annotation::Request.is_release());
        assert!(Annotation::Request.carries_timestamp());
        assert!(!Annotation::None.carries_timestamp());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Annotation::ReleaseNt.name(), "RELEASE_NT");
        assert_eq!(Annotation::None.name(), "NONE");
    }

    #[test]
    fn wire_roundtrip_all() {
        for a in [
            Annotation::None,
            Annotation::Request,
            Annotation::Release,
            Annotation::ReleaseNt,
        ] {
            assert_eq!(Annotation::from_wire(&a.to_wire()).unwrap(), a);
            assert_eq!(a.wire_size(), 1);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            Annotation::from_wire(&[9]),
            Err(DecodeError::BadTag { .. })
        ));
    }
}
