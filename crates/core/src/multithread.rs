//! User-level multithreading support (§4.4 of the paper).
//!
//! > "Multiprogramming is the classic technique for hiding the latencies
//! > of blocking operations, so CarlOS is designed to support multiple
//! > user threads per node. We take the position that each language
//! > implementor should be able to build a customized thread package, so
//! > we have designed support for building thread packages on top of
//! > CarlOS. We provide a hook to make an upcall to a user-level scheduler
//! > to prevent user code from blocking on remote coherent shared memory
//! > operations."
//!
//! [`SharedRuntime`] puts one node's [`Runtime`] behind a mutex and runs
//! each user thread on its own simulated proc of the same node (the
//! simulator serializes the node's CPU, so this models one processor with
//! several user threads). Blocking operations are restructured so the
//! runtime lock is **never held while parked**: a thread that cannot make
//! progress registers its intent, emits a `Blocked` upcall, sleeps on the
//! node mailbox, and retries — meanwhile other threads use the runtime,
//! and incoming requests keep being served. Remote-operation latency is
//! thereby hidden exactly as §4.4 intends.

use std::sync::{Arc, Mutex};

use carlos_sim::{time::Ns, NodeCtx};

use crate::{
    annotation::Annotation,
    message::AcceptedMsg,
    runtime::Runtime,
};

/// Events delivered to the user-level scheduler hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadEvent {
    /// The thread is about to block on a remote operation.
    Blocked {
        /// Thread identifier (assigned at spawn).
        thread: u32,
    },
    /// The thread's remote operation completed; it is runnable again.
    Unblocked {
        /// Thread identifier.
        thread: u32,
    },
}

/// The scheduler upcall: invoked on every block/unblock transition.
pub type UpcallFn = Box<dyn Fn(ThreadEvent) + Send + Sync>;

struct Shared {
    rt: Mutex<Runtime>,
    upcall: Mutex<Option<UpcallFn>>,
}

/// A node runtime shared by several user threads.
///
/// Create it from the node's [`Runtime`], then hand [`Worker`]s to threads
/// spawned with [`carlos_sim::NodeCtx::spawn_thread`]. The node's main
/// proc typically also participates through its own [`Worker`].
pub struct SharedRuntime {
    shared: Arc<Shared>,
}

impl SharedRuntime {
    /// Wraps `rt` for sharing.
    #[must_use]
    pub fn new(rt: Runtime) -> Self {
        Self {
            shared: Arc::new(Shared {
                rt: Mutex::new(rt),
                upcall: Mutex::new(None),
            }),
        }
    }

    /// Installs the scheduler upcall hook (§4.4).
    pub fn set_upcall(&self, f: UpcallFn) {
        *self.shared.upcall.lock().expect("upcall lock") = Some(f);
    }

    /// Creates the handle a user thread works through. `ctx` must belong
    /// to a proc of the same node (the main proc's context, or one from
    /// [`carlos_sim::NodeCtx::spawn_thread`]).
    #[must_use]
    pub fn worker(&self, thread: u32, ctx: NodeCtx) -> Worker {
        Worker {
            shared: Arc::clone(&self.shared),
            ctx,
            thread,
        }
    }

    /// Runs `f` with exclusive access to the underlying runtime.
    ///
    /// Use this only while no worker threads are active (setup, handler
    /// registration, shutdown): it blocks the OS thread on the mutex, and
    /// a simulated proc must never block in real time while another proc
    /// of the node is parked in virtual time holding the lock. Between
    /// those phases, go through a [`Worker`], whose lock acquisition
    /// yields virtual time instead of blocking.
    pub fn with<R>(&self, f: impl FnOnce(&mut Runtime) -> R) -> R {
        f(&mut self.shared.rt.lock().expect("runtime lock"))
    }
}

/// A user thread's handle onto the shared node runtime.
///
/// Every potentially blocking operation follows the same discipline:
/// attempt under the lock, and if the operation cannot complete, release
/// the lock, emit the `Blocked` upcall, sleep on the node mailbox, retry.
pub struct Worker {
    shared: Arc<Shared>,
    ctx: NodeCtx,
    thread: u32,
}

/// How long a parked worker sleeps before re-checking conditions that may
/// be satisfied by another thread's work rather than by a fresh datagram.
const RECHECK: Ns = carlos_sim::time::us(200);

impl Worker {
    /// This worker's thread id.
    #[must_use]
    pub fn thread(&self) -> u32 {
        self.thread
    }

    /// The simulator context of this worker's proc.
    #[must_use]
    pub fn ctx(&self) -> &NodeCtx {
        &self.ctx
    }

    fn upcall(&self, ev: ThreadEvent) {
        if let Some(f) = self.shared.upcall.lock().expect("upcall lock").as_ref() {
            f(ev);
        }
    }

    /// Runs `f` with the runtime locked and this worker's proc installed
    /// as the active context, so any parking inside the runtime parks the
    /// calling thread's proc (never a sibling's).
    ///
    /// The lock is acquired with try-lock plus *virtual* backoff: a worker
    /// that finds the runtime busy yields simulated time rather than
    /// blocking its OS thread. Blocking in real time would deadlock the
    /// simulator whenever the lock holder is parked in virtual time (the
    /// baton holder would wait on the mutex and never yield the baton).
    fn with_rt<R>(&self, f: impl FnOnce(&mut Runtime) -> R) -> R {
        loop {
            match self.shared.rt.try_lock() {
                Ok(mut rt) => {
                    rt.set_active_ctx(self.ctx.clone());
                    return f(&mut rt);
                }
                Err(std::sync::TryLockError::WouldBlock) => {
                    // Yield the baton; the holder's virtual work proceeds.
                    self.ctx.sleep(carlos_sim::time::us(20));
                }
                Err(std::sync::TryLockError::Poisoned(_)) => {
                    panic!("shared runtime poisoned by a sibling panic")
                }
            }
        }
    }

    /// Processes any deliverable messages through this worker's context.
    pub fn poll(&self) {
        self.with_rt(|rt| rt.poll());
    }

    /// Blocks this thread (only) until `step` returns `Some`: the shared
    /// runtime is polled under the lock each round, and the thread sleeps
    /// on the node mailbox between rounds.
    fn block_until<R>(&self, mut step: impl FnMut(&mut Runtime) -> Option<R>) -> R {
        // Fast path: no block, no upcalls.
        if let Some(r) = self.with_rt(&mut step) {
            return r;
        }
        self.upcall(ThreadEvent::Blocked {
            thread: self.thread,
        });
        loop {
            let deadline = self.ctx.now() + RECHECK;
            let _ = self.ctx.wait_mailbox(Some(deadline));
            let got = self.with_rt(&mut step);
            if let Some(r) = got {
                self.upcall(ThreadEvent::Unblocked {
                    thread: self.thread,
                });
                return r;
            }
        }
    }

    /// Charges computation to this thread; the node's single CPU serializes
    /// concurrent threads' charges.
    pub fn compute(&self, dt: Ns) {
        self.ctx.compute(dt);
    }

    /// Sends a user message through the shared runtime (asynchronous).
    pub fn send(&self, dst: u32, handler: u32, body: Vec<u8>, annotation: Annotation) {
        self.with_rt(|rt| rt.send(dst, handler, body, annotation));
    }

    /// Blocking read of coherent memory; only this thread blocks while the
    /// fetches are in flight.
    pub fn read_bytes(&self, addr: usize, buf: &mut [u8]) {
        self.block_until(|rt| rt.try_read_bytes(addr, buf).then_some(()));
    }

    /// Blocking write of coherent memory; only this thread blocks.
    pub fn write_bytes(&self, addr: usize, data: &[u8]) {
        self.block_until(|rt| rt.try_write_bytes(addr, data).then_some(()));
    }

    /// Reads a little-endian `u32` from coherent memory.
    #[must_use = "reading coherent memory has no side effects worth discarding"]
    pub fn read_u32(&self, addr: usize) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` to coherent memory.
    pub fn write_u32(&self, addr: usize, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Waits for an accepted message for `handler`; other threads keep
    /// running and the node keeps serving requests meanwhile.
    pub fn wait_accepted(&self, handler: u32) -> AcceptedMsg {
        self.block_until(|rt| rt.try_take_accepted(handler))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_event_equality() {
        assert_eq!(
            ThreadEvent::Blocked { thread: 1 },
            ThreadEvent::Blocked { thread: 1 }
        );
        assert_ne!(
            ThreadEvent::Blocked { thread: 1 },
            ThreadEvent::Unblocked { thread: 1 }
        );
    }
}
