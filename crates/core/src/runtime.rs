//! The per-node CarlOS runtime: annotated messaging over the LRC engine.
//!
//! One [`Runtime`] runs on each node's proc. It owns the reliable
//! transport, the LRC engine, the active-message handler table, the
//! per-peer knowledge used to tailor RELEASE payloads, and the system
//! protocol (diff/page fetches and inadequate-consistency repair).
//!
//! Low-level handlers registered with [`Runtime::register`] run at message
//! delivery, receive an [`Env`] (the capabilities a non-blocking handler
//! may use), and must dispose of the message: [`Env::accept`],
//! [`Env::forward`], or [`Env::store`]. Application code above the
//! handlers blocks with [`Runtime::wait_accepted`] and accesses coherent
//! memory through [`Runtime::read_bytes`] / [`Runtime::write_bytes`] and
//! the typed helpers.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use carlos_lrc::{Demand, IntervalRecord, LrcConfig, LrcEngine, Vc};
use carlos_sim::{
    time::Ns,
    transport::{AckMode, ArqTuning, Transport},
    Bucket, NodeCtx, NodeId,
};
use carlos_util::codec::{Decoder, Encoder, Wire};

use crate::{
    annotation::Annotation,
    config::CoreConfig,
    message::{AcceptedMsg, Consistency, Message},
    probe::{CoreProbe, CostPhase, FetchKind, GranuleClass, MsgClass},
};

/// First handler id reserved for the system protocol; user handlers must
/// stay below this value.
pub const SYS_HANDLER_BASE: u32 = 0xFFFF_FF00;

const SYS_DIFF_REQ: u32 = SYS_HANDLER_BASE;
const SYS_DIFF_REPLY: u32 = SYS_HANDLER_BASE + 1;
const SYS_PAGE_REQ: u32 = SYS_HANDLER_BASE + 2;
const SYS_PAGE_REPLY: u32 = SYS_HANDLER_BASE + 3;
const SYS_IVAL_REQ: u32 = SYS_HANDLER_BASE + 4;
const SYS_IVAL_REPLY: u32 = SYS_HANDLER_BASE + 5;
const SYS_BATCH_REQ: u32 = SYS_HANDLER_BASE + 6;
const SYS_BATCH_REPLY: u32 = SYS_HANDLER_BASE + 7;

/// A low-level active-message handler.
pub type HandlerFn = Box<dyn FnMut(&mut Env<'_>, Message) + Send>;

/// How many times a pending accept may re-request missing consistency
/// information before the runtime declares a protocol bug.
const MAX_REPAIR_ROUNDS: u32 = 64;

/// How many consecutive fetch-timeout rounds a demand fetch survives
/// before the runtime gives up even without a failure-detector verdict.
const MAX_FETCH_ROUNDS: u32 = 8;

struct PendingAccept {
    msg: Message,
    required: Vc,
    rounds: u32,
}

/// One demand inside a coalesced SYS_BATCH_REQ (kind 0 = diffs, 1 = page;
/// `after`/`through`/`force` are meaningful for diff entries only).
struct BatchEntry {
    kind: u8,
    page: u32,
    after: u32,
    through: u32,
    force: bool,
}

/// The server-side result of one demand fetch: either the diff chain or a
/// full granule copy (first touch, or the TreadMarks page-instead-of-diffs
/// substitution).
enum SubReply {
    Diffs {
        page: u32,
        records: Vec<carlos_lrc::DiffRecord>,
    },
    Page {
        page: u32,
        data: Vec<u8>,
        applied: Vc,
    },
}

impl SubReply {
    /// Appends this sub-reply to a SYS_BATCH_REPLY body.
    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            SubReply::Diffs { page, records } => {
                enc.put_u8(0);
                enc.put_u32(*page);
                enc.put_seq(records, |e, r| r.encode(e));
            }
            SubReply::Page {
                page,
                data,
                applied,
            } => {
                enc.put_u8(1);
                enc.put_u32(*page);
                enc.put_bytes(data);
                applied.encode(enc);
            }
        }
    }
}

/// Internal state reachable from handlers (everything except the handler
/// table itself, so dispatch can hold the table disjointly).
struct Core {
    ctx: NodeCtx,
    transport: Transport,
    engine: LrcEngine,
    cfg: CoreConfig,
    /// `known[q]`: this node's belief about node `q`'s vector timestamp,
    /// used to tailor RELEASE payloads ("a description of the sending
    /// node's knowledge of the state of shared memory", §2.1).
    known: Vec<Vc>,
    /// Messages accepted and awaiting user-level consumption.
    accepted: VecDeque<AcceptedMsg>,
    /// Messages stored for deferred disposition (§2.2).
    stored: BTreeMap<u64, Message>,
    next_store_id: u64,
    /// Accepts blocked on inadequate consistency information (§4.3).
    pending_accepts: Vec<PendingAccept>,
    /// Outstanding memory-system requests: (page, serving node).
    inflight: BTreeSet<(u32, NodeId)>,
    /// Diff records received for a page while other requests for the same
    /// page are still outstanding. Diffs from concurrent writers must be
    /// applied together in causal order, so application is deferred until
    /// the page's last outstanding reply arrives.
    pending_diffs: BTreeMap<u32, Vec<carlos_lrc::DiffRecord>>,
    /// `(page, node)` pairs whose page-instead-of-diffs substitution was
    /// rejected as stale; retries demand plain diffs to guarantee progress.
    force_diffs: BTreeSet<(u32, NodeId)>,
    /// Passive protocol-event probe (checker instrumentation); `None` by
    /// default, and never charged for.
    probe: Option<std::sync::Arc<dyn CoreProbe>>,
}

impl Core {
    fn node(&self) -> NodeId {
        self.ctx.node_id()
    }

    fn charge(&self, dt: Ns) {
        if dt > 0 {
            self.ctx.charge(Bucket::Carlos, dt);
        }
    }

    /// Reports a protocol-work charge to the probe before it lands, so the
    /// probe's `at` marks the start of the charged work. Free when no probe
    /// is installed or nothing is charged.
    fn probe_cost(&self, class: MsgClass, phase: CostPhase, ns: Ns) {
        if ns == 0 {
            return;
        }
        if let Some(p) = &self.probe {
            p.protocol_cost(self.node(), class, phase, ns, self.ctx.now());
        }
    }

    /// Encodes and transmits `msg` to `dst`, charging send-side costs.
    fn transmit(&mut self, dst: NodeId, msg: &Message) {
        let mut cost = self.cfg.effective_msg_send();
        if msg.annotation.carries_timestamp() {
            cost += self.cfg.vt_send;
        }
        if msg.annotation.is_release() {
            if let Consistency::Release { records, diffs, .. } = &msg.consistency {
                cost += self.cfg.release_send + self.cfg.per_record * records.len() as u64;
                // Update strategy: marshalling the attached diffs costs the
                // sender roughly what applying them costs the receiver.
                for d in diffs {
                    cost += self.cfg.diff_apply_cost(d.diff.modified_bytes());
                }
            }
        }
        let class = MsgClass::of(msg.annotation);
        self.probe_cost(class, CostPhase::Send, cost);
        self.charge(cost);
        self.ctx.count("carlos.sent", 1);
        match msg.annotation {
            Annotation::None => self.ctx.count("carlos.sent.none", 1),
            Annotation::Request => self.ctx.count("carlos.sent.request", 1),
            Annotation::Release => self.ctx.count("carlos.sent.release", 1),
            Annotation::ReleaseNt => self.ctx.count("carlos.sent.release_nt", 1),
        }
        if let Some(p) = &self.probe {
            p.msg_sent(self.node(), dst, class, msg.handler, self.ctx.now());
        }
        let pad = self.cfg.wire_header_pad;
        #[cfg(any(test, feature = "seeded-bugs"))]
        if self.cfg.seeded_bug == Some(crate::config::SeededBug::DropNoticeClock)
            && self.cfg.aggregate_notices
        {
            if let Some(mutated) = seeded_drop_notice_clock(msg) {
                self.ctx.count("carlos.seeded_bug_fired", 1);
                self.transport.send(dst, mutated.to_framed_with(pad, true));
                return;
            }
        }
        self.transport
            .send(dst, msg.to_framed_with(pad, self.cfg.aggregate_notices));
    }

    /// Builds a user message from this node with the given annotation,
    /// performing the release-side consistency work when required.
    fn build_message(
        &mut self,
        dst: NodeId,
        handler: u32,
        body: Vec<u8>,
        annotation: Annotation,
    ) -> Message {
        let node = self.node();
        let consistency = match annotation {
            Annotation::None => Consistency::None,
            Annotation::Request => Consistency::Request {
                vt: self.engine.vt().clone(),
            },
            Annotation::Release | Annotation::ReleaseNt => {
                // Sending a RELEASE is a release event: close the interval.
                self.engine.close_interval();
                let required = self.engine.vt().clone();
                if let Some(p) = &self.probe {
                    p.release_sent(node, dst, &required);
                }
                let have = &self.known[dst as usize];
                let records = if annotation == Annotation::Release {
                    self.engine.records_newer_than(have)
                } else {
                    self.engine.own_records_newer_than(have)
                };
                // Update knowledge: once accepted, dst covers what we sent.
                if annotation == Annotation::Release {
                    self.known[dst as usize].join(&required);
                } else {
                    let own = required.get(node);
                    if own > self.known[dst as usize].get(node) {
                        self.known[dst as usize].set(node, own);
                    }
                }
                // Update strategy: ship the diffs the notices describe, so
                // the receiver's pages can stay valid (§4.3). Only locally
                // stored diffs are attached; anything missing is fetched
                // lazily by the receiver exactly as under invalidation.
                //
                // Eager region hints get the same treatment per granule even
                // under the invalidate strategy: data the receiver is certain
                // to re-read travels with its write notices ("the actual data
                // transmission occurs eagerly and asynchronously when the
                // notification message is sent", §3), killing the fetch round
                // trip. Granules whose diffs the sender does not hold are
                // batch-fetched by the receiver right after the notices apply.
                let update_all = self.cfg.strategy == crate::config::Strategy::Update;
                let mut diffs = Vec::new();
                if update_all || self.engine.granules().has_eager() {
                    let mut seen = std::collections::BTreeSet::new();
                    for rec in &records {
                        for &p in &rec.pages {
                            if !update_all && !self.engine.granules().eager_granule(p) {
                                continue;
                            }
                            if let Some(d) = self.engine.stored_diff(rec.node, p, rec.index) {
                                if seen.insert((d.node, d.page, d.first, d.last)) {
                                    diffs.push(d.clone());
                                }
                            }
                        }
                    }
                }
                Consistency::Release {
                    required,
                    records,
                    diffs,
                }
            }
        };
        Message {
            src: node,
            origin: node,
            handler,
            annotation,
            body,
            consistency,
        }
    }

    /// Sends a system-protocol message (NONE annotation, reserved handler).
    fn send_sys(&mut self, dst: NodeId, handler: u32, body: Vec<u8>) {
        let node = self.node();
        let msg = Message {
            src: node,
            origin: node,
            handler,
            annotation: Annotation::None,
            body,
            consistency: Consistency::None,
        };
        self.ctx.count("carlos.sent.system", 1);
        if let Some(p) = &self.probe {
            p.msg_sent(node, dst, MsgClass::System, handler, self.ctx.now());
        }
        let pad = self.cfg.wire_header_pad;
        self.transport.send(dst, msg.to_framed(pad));
    }

    /// Performs the acquire side for an accepted message. Returns `true`
    /// when acceptance completed (the message may be queued to user level),
    /// `false` when it is pending on missing consistency information.
    ///
    /// Takes the message by `&mut` so carried diffs move into the per-page
    /// buffer instead of being cloned; records are applied by reference.
    fn do_accept(&mut self, msg: &mut Message) -> bool {
        let origin = msg.origin;
        let class = MsgClass::of(msg.annotation);
        match &mut msg.consistency {
            Consistency::None | Consistency::Request { .. } => true,
            Consistency::Release {
                required,
                records,
                diffs,
            } => {
                // Accepting a RELEASE is an acquire: close the current
                // interval, apply the carried write notices, check coverage.
                self.engine.close_interval();
                let notices: usize = records.iter().map(|r| r.pages.len()).sum();
                let cost = self.cfg.release_accept
                    + self.cfg.per_record * records.len() as u64
                    + self.cfg.per_notice * notices as u64;
                self.probe_cost(class, CostPhase::Accept, cost);
                self.charge(cost);
                self.ctx.count("carlos.notices_applied", notices as u64);
                self.engine.apply_records(records);
                // The gap check must precede any buffered-diff application:
                // a non-dominated required timestamp proves records are
                // missing, and diffs must not apply against a notice set
                // that is not transitively closed.
                let complete = self.engine.vt().dominates(required);
                if let Some(p) = &self.probe {
                    p.release_accepted(self.ctx.node_id(), origin, required, complete);
                }
                if !diffs.is_empty() {
                    // Update strategy: the carried diffs revalidate pages
                    // whose coverage they complete. They go through the
                    // same per-page buffer as fetched diffs so causal
                    // ordering holds across sources.
                    let mut apply_cost = 0;
                    let mut pages: std::collections::BTreeSet<u32> =
                        std::collections::BTreeSet::new();
                    for d in std::mem::take(diffs) {
                        apply_cost += self.cfg.diff_apply_cost(d.diff.modified_bytes());
                        pages.insert(d.page);
                        self.pending_diffs.entry(d.page).or_default().push(d);
                    }
                    self.probe_cost(class, CostPhase::DiffApply, apply_cost);
                    self.charge(apply_cost);
                    self.ctx.count("carlos.update_diffs_received", 1);
                    // Seeded bug EagerSkipRevalidate: apply the carried
                    // eager diffs even when the accept is incomplete — the
                    // release's required cut is not dominated, so write
                    // notices causally below these diffs may be missing,
                    // and applying now can revalidate a page with bytes a
                    // not-yet-seen record should have superseded. The slip
                    // fires only when the cut is short by exactly one
                    // interval (an off-by-one in the revalidation gate):
                    // a surgically flipped delivery produces precisely
                    // that state, while coarse random jitter usually tears
                    // the cut open much wider.
                    #[cfg(any(test, feature = "seeded-bugs"))]
                    let bug_eager = !complete
                        && self.cfg.seeded_bug
                            == Some(crate::config::SeededBug::EagerSkipRevalidate)
                        && {
                            let vt = self.engine.vt();
                            (0..vt.len() as u32)
                                .map(|n| u64::from(required.get(n).saturating_sub(vt.get(n))))
                                .sum::<u64>()
                                == 1
                        };
                    #[cfg(not(any(test, feature = "seeded-bugs")))]
                    let bug_eager = false;
                    if bug_eager {
                        self.ctx.count("carlos.seeded_bug_fired", 1);
                    }
                    if complete || bug_eager {
                        for p in pages {
                            self.maybe_apply_buffered(p);
                        }
                    }
                }
                if complete {
                    true
                } else {
                    // Inadequate consistency information (forwarded or
                    // non-transitive message): ask the original sender.
                    self.ctx.count("carlos.repair_requests", 1);
                    if let Some(p) = &self.probe {
                        p.repair_requested(self.ctx.node_id(), origin, self.engine.vt(), required);
                    }
                    let mut body = Encoder::new();
                    self.engine.vt().encode(&mut body);
                    required.encode(&mut body);
                    self.send_sys(origin, SYS_IVAL_REQ, body.finish_vec());
                    false
                }
            }
        }
    }

    /// Runs the acquire side for `msg`, then either queues it for user
    /// level or parks it as a pending accept awaiting repair.
    fn finish_or_pend(&mut self, mut msg: Message) {
        if self.do_accept(&mut msg) {
            self.complete_accept(msg);
        } else {
            let required = msg
                .consistency
                .required()
                .cloned()
                .expect("only releases can pend");
            self.pending_accepts.push(PendingAccept {
                msg,
                required,
                rounds: 0,
            });
        }
    }

    fn complete_accept(&mut self, msg: Message) {
        self.ctx.count("carlos.accepted", 1);
        self.accepted.push_back(AcceptedMsg {
            src: msg.src,
            origin: msg.origin,
            handler: msg.handler,
            annotation: msg.annotation,
            body: msg.body,
        });
    }

    /// Handles an incoming system message.
    fn handle_sys(&mut self, msg: Message) {
        if std::env::var("CARLOS_TRACE_DEMANDS").is_ok() {
            eprintln!(
                "CORE[{}] sys 0x{:x} from {} ({} bytes) t={}us",
                self.node(),
                msg.handler - SYS_HANDLER_BASE,
                msg.src,
                msg.body.len(),
                self.ctx.now() / 1000
            );
        }
        match msg.handler {
            SYS_DIFF_REQ => {
                let mut dec = Decoder::new(&msg.body);
                let page = dec.get_u32().expect("diff request page");
                let after = dec.get_u32().expect("diff request after");
                let through = dec.get_u32().expect("diff request through");
                let force_diffs = dec.get_u8().unwrap_or(0) != 0;
                match self.serve_diff_demand(page, after, through, force_diffs) {
                    SubReply::Page {
                        page,
                        data,
                        applied,
                    } => {
                        let mut body = Encoder::new();
                        body.put_u32(page);
                        body.put_bytes(&data);
                        applied.encode(&mut body);
                        self.send_sys(msg.src, SYS_PAGE_REPLY, body.finish_vec());
                    }
                    SubReply::Diffs { page, records } => {
                        let mut body = Encoder::new();
                        body.put_u32(page);
                        body.put_seq(&records, |e, r| r.encode(e));
                        self.send_sys(msg.src, SYS_DIFF_REPLY, body.finish_vec());
                    }
                }
            }
            SYS_DIFF_REPLY => {
                let mut dec = Decoder::new(&msg.body);
                let page = dec.get_u32().expect("diff reply page");
                let records = dec.get_seq(carlos_lrc::DiffRecord::decode).expect("diff records");
                self.accept_diff_reply(msg.src, page, records);
                self.maybe_apply_buffered(page);
            }
            SYS_PAGE_REQ => {
                let mut dec = Decoder::new(&msg.body);
                let page = dec.get_u32().expect("page request id");
                let SubReply::Page {
                    page,
                    data,
                    applied,
                } = self.serve_page_demand(page)
                else {
                    unreachable!("page demand serves a page")
                };
                let mut body = Encoder::new();
                body.put_u32(page);
                body.put_bytes(&data);
                applied.encode(&mut body);
                self.send_sys(msg.src, SYS_PAGE_REPLY, body.finish_vec());
            }
            SYS_PAGE_REPLY => {
                let mut dec = Decoder::new(&msg.body);
                let page = dec.get_u32().expect("page reply id");
                let data = dec.get_bytes().expect("page data");
                let applied = Vc::decode(&mut dec).expect("page applied vc");
                self.accept_page_reply(msg.src, page, data, applied);
                self.maybe_apply_buffered(page);
            }
            SYS_BATCH_REQ => {
                let mut dec = Decoder::new(&msg.body);
                let n = dec.get_u32().expect("batch request count");
                self.ctx.count("carlos.batch_requests_served", 1);
                // Seeded bug SkipBatchGranule: answer an oversized batch one
                // sub-reply short, modeling an off-by-one at a reply-buffer
                // capacity boundary — batches this large only form when a
                // release is held back long enough for many invalidations
                // to pile up, so the slip is schedule-dependent. The reply
                // is well-formed, so the requester accepts it — and then
                // waits forever for the granule that never comes.
                #[cfg(any(test, feature = "seeded-bugs"))]
                let n = if self.cfg.seeded_bug
                    == Some(crate::config::SeededBug::SkipBatchGranule)
                    && n >= 15
                {
                    self.ctx.count("carlos.seeded_bug_fired", 1);
                    n - 1
                } else {
                    n
                };
                let mut body = Encoder::new();
                body.put_u32(n);
                for _ in 0..n {
                    let kind = dec.get_u8().expect("batch entry kind");
                    let page = dec.get_u32().expect("batch entry page");
                    let after = dec.get_u32().expect("batch entry after");
                    let through = dec.get_u32().expect("batch entry through");
                    let force = dec.get_u8().expect("batch entry force") != 0;
                    let reply = match kind {
                        0 => self.serve_diff_demand(page, after, through, force),
                        1 => self.serve_page_demand(page),
                        other => panic!("unknown batch entry kind {other}"),
                    };
                    reply.encode_into(&mut body);
                }
                self.send_sys(msg.src, SYS_BATCH_REPLY, body.finish_vec());
            }
            SYS_BATCH_REPLY => {
                let mut dec = Decoder::new(&msg.body);
                let n = dec.get_u32().expect("batch reply count");
                let mut pages: BTreeSet<u32> = BTreeSet::new();
                for _ in 0..n {
                    let kind = dec.get_u8().expect("batch sub-reply kind");
                    let page = dec.get_u32().expect("batch sub-reply page");
                    pages.insert(page);
                    match kind {
                        0 => {
                            let records = dec
                                .get_seq(carlos_lrc::DiffRecord::decode)
                                .expect("batch diff records");
                            self.accept_diff_reply(msg.src, page, records);
                        }
                        1 => {
                            let data = dec.get_bytes().expect("batch page data");
                            let applied = Vc::decode(&mut dec).expect("batch page applied vc");
                            self.accept_page_reply(msg.src, page, data, applied);
                        }
                        other => panic!("unknown batch sub-reply kind {other}"),
                    }
                }
                // Buffered-diff application runs once per distinct page,
                // after every inflight key this reply settles is removed —
                // the same condition the singleton handlers reach, checked
                // once instead of per entry.
                for p in pages {
                    self.maybe_apply_buffered(p);
                }
            }
            SYS_IVAL_REQ => {
                let mut dec = Decoder::new(&msg.body);
                let have = Vc::decode(&mut dec).expect("ival request have");
                let want = Vc::decode(&mut dec).expect("ival request want");
                let records = self.engine.records_between(&have, &want);
                self.ctx.count("carlos.repair_served", 1);
                let mut body = Encoder::new();
                body.put_seq(&records, |e, r| r.encode(e));
                self.send_sys(msg.src, SYS_IVAL_REPLY, body.finish_vec());
            }
            SYS_IVAL_REPLY => {
                let mut dec = Decoder::new(&msg.body);
                let records = dec
                    .get_seq(IntervalRecord::decode)
                    .expect("ival reply records");
                let notices: usize = records.iter().map(|r| r.pages.len()).sum();
                let apply_cost = self.cfg.per_notice * notices as u64;
                self.probe_cost(MsgClass::System, CostPhase::NoticeApply, apply_cost);
                self.charge(apply_cost);
                self.engine.apply_records(&records);
                self.retry_pending_accepts();
            }
            other => panic!("unknown system handler id {other:#x}"),
        }
    }

    /// Serves one diff demand: creates the diff chain for `page` after
    /// interval `after` through `through`, charging per-granule diff
    /// creation costs, and applies the TreadMarks heuristic — when the
    /// chain outweighs the granule itself, ship the whole granule instead
    /// (unless the requester demanded plain diffs).
    fn serve_diff_demand(&mut self, page: u32, after: u32, through: u32, force_diffs: bool) -> SubReply {
        let before = self.engine.stats().diffs_created;
        let records = self.engine.serve_diffs(page, after, through);
        let created = self.engine.stats().diffs_created - before;
        let page_bytes = self.engine.granule_len(page);
        let create_cost = self.cfg.diff_create_cost(page_bytes) * created;
        self.probe_cost(MsgClass::System, CostPhase::DiffCreate, create_cost);
        self.charge(create_cost);
        self.ctx.count("carlos.diff_requests_served", 1);
        let total: usize = records.iter().map(|r| r.diff.modified_bytes()).sum();
        if total > page_bytes && !force_diffs {
            let (data, applied) = self.engine.serve_page(page);
            let copy_cost = self.cfg.page_copy_cost(data.len());
            self.probe_cost(MsgClass::System, CostPhase::PageCopy, copy_cost);
            self.charge(copy_cost);
            self.ctx.count("carlos.page_instead_of_diffs", 1);
            return SubReply::Page {
                page,
                data,
                applied,
            };
        }
        SubReply::Diffs { page, records }
    }

    /// Serves one whole-granule demand (first touch), charging copy costs.
    fn serve_page_demand(&mut self, page: u32) -> SubReply {
        let (data, applied) = self.engine.serve_page(page);
        let copy_cost = self.cfg.page_copy_cost(data.len());
        self.probe_cost(MsgClass::System, CostPhase::PageCopy, copy_cost);
        self.charge(copy_cost);
        self.ctx.count("carlos.page_requests_served", 1);
        SubReply::Page {
            page,
            data,
            applied,
        }
    }

    /// Receive side of one diff (sub-)reply: charges apply costs, buffers
    /// the records, and settles the inflight key. The caller runs
    /// [`Core::maybe_apply_buffered`] once all sibling sub-replies landed.
    fn accept_diff_reply(&mut self, src: NodeId, page: u32, records: Vec<carlos_lrc::DiffRecord>) {
        let mut cost = 0;
        let mut bytes = 0;
        for r in &records {
            bytes += r.diff.modified_bytes();
            cost += self.cfg.diff_apply_cost(r.diff.modified_bytes());
        }
        self.probe_cost(MsgClass::System, CostPhase::DiffApply, cost);
        self.charge(cost);
        self.pending_diffs.entry(page).or_default().extend(records);
        self.fetch_done(src, page, bytes);
    }

    /// Receive side of one whole-granule (sub-)reply: charges copy costs,
    /// installs the granule, and settles the inflight key.
    fn accept_page_reply(&mut self, src: NodeId, page: u32, data: Vec<u8>, applied: Vc) {
        let copy_cost = self.cfg.page_copy_cost(data.len());
        self.probe_cost(MsgClass::System, CostPhase::PageCopy, copy_cost);
        self.charge(copy_cost);
        let bytes = data.len();
        if !self.engine.install_page(page, data, applied) {
            // The substituted page was stale relative to our copy:
            // retries for this (page, server) must use plain diffs,
            // or the request/substitute cycle would never converge.
            self.force_diffs.insert((page, src));
            self.ctx.count("carlos.page_substitute_rejected", 1);
        }
        self.fetch_done(src, page, bytes);
    }

    /// Removes the `(page, src)` inflight key and reports fetch completion
    /// (with the granule's size class) to the probe.
    fn fetch_done(&mut self, src: NodeId, page: u32, bytes: usize) {
        if self.inflight.remove(&(page, src)) {
            if let Some(p) = &self.probe {
                p.fetch_finished(self.node(), src, page, self.ctx.now());
            }
        }
        if let Some(p) = &self.probe {
            let class = GranuleClass::of(
                self.engine.granule_len(page),
                self.engine.config().page_size,
            );
            p.fetch_fulfilled(self.node(), src, page, class, bytes, self.ctx.now());
        }
    }

    /// Applies the diffs buffered for `page` once (a) no request for the
    /// page is outstanding and (b) the buffered records together with the
    /// already-applied coverage account for every known write notice.
    /// Applying earlier would split causally ordered records across
    /// batches, which the per-batch sort cannot repair.
    fn maybe_apply_buffered(&mut self, page: u32) {
        if self.inflight.iter().any(|&(p, _)| p == page) {
            return;
        }
        // Seeded bug EagerSkipRevalidate: apply buffered eager diffs
        // without the revalidation gates below — neither the
        // transitively-closed-cut guard nor the coverage check runs, so a
        // page can revalidate with stale bytes.
        #[cfg(any(test, feature = "seeded-bugs"))]
        let bug_eager = self.cfg.seeded_bug == Some(crate::config::SeededBug::EagerSkipRevalidate);
        #[cfg(not(any(test, feature = "seeded-bugs")))]
        let bug_eager = false;
        // A pending accept means our write-notice knowledge is not a
        // transitively closed cut: the message's required timestamp proves
        // records exist that we have not seen, and some of them may carry
        // notices for this page that causally precede diffs already in the
        // buffer. Applying now could order a causally-later diff first and
        // let its bytes be overwritten when the missing records arrive, so
        // hold everything until the repair completes.
        if !self.pending_accepts.is_empty() && !bug_eager {
            return;
        }
        if self.engine.page_state(page) == carlos_lrc::PageState::Missing {
            // No base to apply onto: eager update diffs for a page this
            // node has never touched are useless here — a later first
            // touch fetches the whole page (and any newer diffs) anyway.
            if self.pending_diffs.remove(&page).is_some() {
                self.ctx.count("carlos.update_diffs_dropped", 1);
            }
            return;
        }
        let complete = match self.pending_diffs.get(&page) {
            None => return,
            Some(recs) => self.engine.covers_with_claims(page, recs),
        };
        if bug_eager && !complete {
            self.ctx.count("carlos.seeded_bug_fired", 1);
        }
        let complete = complete || bug_eager;
        if complete {
            if let Some(all) = self.pending_diffs.remove(&page) {
                self.engine.apply_diff_records(page, all);
            }
        }
        // Incomplete coverage: the fault-resolution loop re-issues the
        // missing requests (with the plain-diff flag where a page
        // substitution was rejected) and we apply when they arrive.
    }

    fn retry_pending_accepts(&mut self) {
        let mut still_pending = Vec::new();
        let pending = std::mem::take(&mut self.pending_accepts);
        let had_pending = !pending.is_empty();
        for mut p in pending {
            if self.engine.vt().dominates(&p.required) {
                let msg = p.msg;
                self.complete_accept(msg);
            } else {
                p.rounds += 1;
                if std::env::var("CARLOS_TRACE_DEMANDS").is_ok() {
                    eprintln!(
                        "CORE[{}] repair round {} handler={} required={:?} have={:?}",
                        self.node(),
                        p.rounds,
                        p.msg.handler,
                        p.required,
                        self.engine.vt()
                    );
                }
                assert!(
                    p.rounds < MAX_REPAIR_ROUNDS,
                    "consistency repair not converging (node {}, required {:?}, have {:?})",
                    self.node(),
                    p.required,
                    self.engine.vt()
                );
                if let Some(probe) = &self.probe {
                    probe.repair_requested(
                        self.ctx.node_id(),
                        p.msg.origin,
                        self.engine.vt(),
                        &p.required,
                    );
                }
                let mut body = Encoder::new();
                self.engine.vt().encode(&mut body);
                p.required.encode(&mut body);
                self.send_sys(p.msg.origin, SYS_IVAL_REQ, body.finish_vec());
                still_pending.push(p);
            }
        }
        self.pending_accepts.extend(still_pending);
        if had_pending && self.pending_accepts.is_empty() {
            // Knowledge is a closed cut again: buffered diffs may now form
            // complete, causally sortable batches.
            let pages: Vec<u32> = self.pending_diffs.keys().copied().collect();
            for p in pages {
                self.maybe_apply_buffered(p);
            }
        }
    }

    /// Receive-side preamble: charges costs and updates peer knowledge.
    fn note_incoming(&mut self, msg: &Message) {
        let mut cost = self.cfg.effective_msg_recv();
        if msg.annotation.carries_timestamp() {
            cost += self.cfg.vt_recv;
        }
        self.probe_cost(MsgClass::of(msg.annotation), CostPhase::Recv, cost);
        self.charge(cost);
        match &msg.consistency {
            Consistency::None => {}
            Consistency::Request { vt } => {
                // The piggybacked timestamp is an exact snapshot of the
                // *origin's* state (which matters after a forward), so it
                // overwrites our estimate rather than joining it. Estimates
                // can run high — a RELEASE we sent to a manager that only
                // stored it was never accepted — and an overestimate makes
                // later payloads incomplete. Transport delivery is FIFO per
                // pair, so snapshots arrive in nondecreasing order and
                // overwriting can only correct, never regress, while an
                // underestimate merely ships a few extra records.
                self.known[msg.origin as usize] = vt.clone();
            }
            Consistency::Release { required, .. } => {
                // The origin's timestamp was exactly `required` at send.
                self.known[msg.origin as usize] = required.clone();
            }
        }
    }
}

/// The capabilities available to a low-level active-message handler.
///
/// Handlers run as extensions of message delivery: they must not block and
/// must not touch coherent shared memory (§4.3). `Env` enforces this by
/// construction — it exposes no blocking or memory operations.
pub struct Env<'a> {
    core: &'a mut Core,
    disposed: bool,
}

impl Env<'_> {
    /// This node's id.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        self.core.node()
    }

    /// Number of nodes in the cluster.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.core.ctx.num_nodes()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Ns {
        self.core.ctx.now()
    }

    /// Accepts `msg`: performs the acquire actions its annotation requires
    /// and delivers it to user level (possibly later, if consistency
    /// information must first be repaired).
    pub fn accept(&mut self, msg: Message) {
        self.disposed = true;
        self.core.finish_or_pend(msg);
    }

    /// Consumes `msg` without delivering it to user level and without any
    /// memory-consistency action.
    ///
    /// This is the usual disposition for protocol-internal REQUEST/NONE
    /// messages whose content the handler has fully absorbed (e.g. a lock
    /// request that only updates the manager's queue). Discarding a RELEASE
    /// is permitted — its consistency information is simply dropped — but
    /// protocols should do so only when nothing depends on accepting it.
    pub fn discard(&mut self, msg: Message) {
        self.disposed = true;
        self.core.ctx.count("carlos.discarded", 1);
        drop(msg);
    }

    /// Forwards `msg` and its encapsulated consistency information to
    /// another node, without performing any memory-consistency action here.
    pub fn forward(&mut self, mut msg: Message, dst: NodeId) {
        self.disposed = true;
        self.core.ctx.count("carlos.forwarded", 1);
        msg.src = self.core.node(); // Origin and payload stay intact.
        self.core.transmit(dst, &msg);
    }

    /// Forwards `msg` like [`Env::forward`], but re-targets it at a
    /// different handler id on the destination (protocols often dispatch a
    /// relayed message to a distinct entry point — e.g. a lock request hits
    /// the manager under one id and the previous holder under another).
    pub fn forward_as(&mut self, mut msg: Message, dst: NodeId, handler: u32) {
        assert!(handler < SYS_HANDLER_BASE, "handler id in reserved range");
        self.disposed = true;
        self.core.ctx.count("carlos.forwarded", 1);
        msg.src = self.core.node();
        msg.handler = handler;
        self.core.transmit(dst, &msg);
    }

    /// Stores `msg` for deferred disposition; returns a token for
    /// [`Env::forward_stored`] / [`Env::accept_stored`].
    pub fn store(&mut self, msg: Message) -> u64 {
        self.disposed = true;
        let id = self.core.next_store_id;
        self.core.next_store_id += 1;
        self.core.ctx.count("carlos.stored", 1);
        self.core.stored.insert(id, msg);
        id
    }

    /// Forwards a previously stored message to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown (already disposed).
    pub fn forward_stored(&mut self, id: u64, dst: NodeId) {
        let mut msg = self
            .core
            .stored
            .remove(&id)
            .expect("forward_stored: unknown store token");
        self.core.ctx.count("carlos.forwarded", 1);
        msg.src = self.core.node();
        self.core.transmit(dst, &msg);
    }

    /// Forwards a stored message to `dst`, re-targeted at `handler`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or `handler` is in the reserved range.
    pub fn forward_stored_as(&mut self, id: u64, dst: NodeId, handler: u32) {
        assert!(handler < SYS_HANDLER_BASE, "handler id in reserved range");
        let mut msg = self
            .core
            .stored
            .remove(&id)
            .expect("forward_stored_as: unknown store token");
        self.core.ctx.count("carlos.forwarded", 1);
        msg.src = self.core.node();
        msg.handler = handler;
        self.core.transmit(dst, &msg);
    }

    /// Number of messages currently stored for deferred disposition.
    #[must_use]
    pub fn stored_count(&self) -> usize {
        self.core.stored.len()
    }

    /// Accepts a previously stored message.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown (already disposed).
    pub fn accept_stored(&mut self, id: u64) {
        let msg = self
            .core
            .stored
            .remove(&id)
            .expect("accept_stored: unknown store token");
        self.core.finish_or_pend(msg);
    }

    /// Sends a new user message (handlers may reply or notify third
    /// parties; this is ordinary, non-blocking sending).
    pub fn send(&mut self, dst: NodeId, handler: u32, body: Vec<u8>, annotation: Annotation) {
        assert!(handler < SYS_HANDLER_BASE, "handler id in reserved range");
        let msg = self.core.build_message(dst, handler, body, annotation);
        self.core.transmit(dst, &msg);
    }

    /// Adds to a node-level counter (diagnostics).
    pub fn count(&self, name: &'static str, v: u64) {
        self.core.ctx.count(name, v);
    }
}

/// The per-node CarlOS runtime.
pub struct Runtime {
    core: Core,
    handlers: HashMap<u32, HandlerFn>,
}

impl Runtime {
    /// Creates the runtime for the node behind `ctx`.
    #[must_use]
    pub fn new(ctx: NodeCtx, lrc_cfg: LrcConfig, cfg: CoreConfig) -> Self {
        Self::with_ack_mode(ctx, lrc_cfg, cfg, AckMode::Implicit)
    }

    /// Creates the runtime with an explicit transport acknowledgement mode.
    ///
    /// # Panics
    ///
    /// Panics if the LRC cluster size disagrees with the simulated one.
    #[must_use]
    pub fn with_ack_mode(
        ctx: NodeCtx,
        lrc_cfg: LrcConfig,
        cfg: CoreConfig,
        ack: AckMode,
    ) -> Self {
        assert_eq!(
            lrc_cfg.n_nodes,
            ctx.num_nodes(),
            "LRC config cluster size must match the simulated cluster"
        );
        let n = ctx.num_nodes();
        let node = ctx.node_id();
        let transport = Transport::new(ctx.clone(), ack);
        Self {
            core: Core {
                ctx,
                transport,
                engine: LrcEngine::new(node, lrc_cfg),
                cfg,
                known: (0..n).map(|_| Vc::new(n)).collect(),
                accepted: VecDeque::new(),
                stored: BTreeMap::new(),
                next_store_id: 1,
                pending_accepts: Vec::new(),
                inflight: BTreeSet::new(),
                pending_diffs: BTreeMap::new(),
                force_diffs: BTreeSet::new(),
                probe: None,
            },
            handlers: HashMap::new(),
        }
    }

    /// Installs a passive [`CoreProbe`] notified of release/acquire/repair
    /// protocol events. Probing never alters runtime behavior.
    pub fn set_probe(&mut self, probe: std::sync::Arc<dyn CoreProbe>) {
        self.core.probe = Some(probe);
    }

    /// Installs a passive [`carlos_lrc::EngineObserver`] on the underlying
    /// LRC engine (memory accesses, interval closes, record application).
    pub fn set_engine_observer(&mut self, obs: std::sync::Arc<dyn carlos_lrc::EngineObserver>) {
        self.core.engine.set_observer(obs);
    }

    /// Installs a passive [`carlos_sim::TransportObserver`] on the
    /// underlying transport endpoint (per-frame send/deliver/retransmit
    /// events, used by trace layers to build causal flows).
    pub fn set_transport_observer(&mut self, obs: std::sync::Arc<dyn carlos_sim::TransportObserver>) {
        self.core.transport.set_observer(obs);
    }

    /// The installed [`CoreProbe`], if any. Layers above the runtime (the
    /// sync library) clone this handle to report their own events — e.g.
    /// [`CoreProbe::sync_wait`] spans — through the same probe.
    #[must_use]
    pub fn probe(&self) -> Option<std::sync::Arc<dyn CoreProbe>> {
        self.core.probe.clone()
    }

    /// This node's id.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        self.core.node()
    }

    /// Number of nodes in the cluster.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.core.ctx.num_nodes()
    }

    /// The underlying simulator context.
    #[must_use]
    pub fn ctx(&self) -> &NodeCtx {
        &self.core.ctx
    }

    /// Installs `ctx` as the proc context all runtime operations park and
    /// charge through. Required when several user threads share a runtime
    /// (§4.4): each thread installs its own context before operating, so
    /// blocking parks the calling thread's proc.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` belongs to a different node.
    pub fn set_active_ctx(&mut self, ctx: NodeCtx) {
        assert_eq!(
            ctx.node_id(),
            self.core.ctx.node_id(),
            "runtime context must stay on its node"
        );
        self.core.transport.set_ctx(ctx.clone());
        self.core.ctx = ctx;
    }

    /// Current vector timestamp (diagnostics/tests).
    #[must_use]
    pub fn vt(&self) -> &Vc {
        self.core.engine.vt()
    }

    /// Immutable access to the LRC engine (diagnostics/tests).
    #[must_use]
    pub fn engine(&self) -> &LrcEngine {
        &self.core.engine
    }

    /// Registers the low-level handler for user messages with id `handler`.
    /// Unregistered ids get the default disposition: accept.
    ///
    /// # Panics
    ///
    /// Panics if `handler` is in the reserved system range.
    pub fn register(&mut self, handler: u32, f: HandlerFn) {
        assert!(handler < SYS_HANDLER_BASE, "handler id in reserved range");
        self.handlers.insert(handler, f);
    }

    /// Sends a user message with the given annotation. Asynchronous.
    ///
    /// # Panics
    ///
    /// Panics if `handler` is in the reserved system range.
    pub fn send(&mut self, dst: NodeId, handler: u32, body: Vec<u8>, annotation: Annotation) {
        assert!(handler < SYS_HANDLER_BASE, "handler id in reserved range");
        let msg = self.core.build_message(dst, handler, body, annotation);
        self.core.transmit(dst, &msg);
    }

    /// Processes every message currently deliverable, without blocking.
    pub fn poll(&mut self) {
        while let Some((src, bytes)) = self.core.transport.poll() {
            self.dispatch(src, &bytes);
        }
    }

    /// Blocks until at least one message has been processed (or `deadline`
    /// passes), then drains whatever else is deliverable.
    pub fn pump(&mut self, deadline: Option<Ns>) -> bool {
        match self.core.transport.wait(deadline) {
            Some((src, bytes)) => {
                self.dispatch(src, &bytes);
                self.poll();
                true
            }
            None => false,
        }
    }

    fn dispatch(&mut self, src: NodeId, bytes: &[u8]) {
        let msg = match Message::from_wire_bytes(src, bytes) {
            Ok(m) => m,
            Err(e) => {
                // The real system logs and drops malformed datagrams.
                self.core.ctx.count("carlos.malformed", 1);
                let _ = e;
                return;
            }
        };
        if let Some(p) = &self.core.probe {
            let class = if msg.handler >= SYS_HANDLER_BASE {
                MsgClass::System
            } else {
                MsgClass::of(msg.annotation)
            };
            p.msg_dispatched(
                self.core.node(),
                src,
                class,
                msg.handler,
                bytes.len(),
                self.core.ctx.now(),
            );
        }
        if msg.handler >= SYS_HANDLER_BASE {
            self.core.handle_sys(msg);
            self.eager_fetch_invalidated();
            return;
        }
        self.core.note_incoming(&msg);
        // Take the handler out so it can borrow the core via Env.
        if let Some(mut h) = self.handlers.remove(&msg.handler) {
            let handler_id = msg.handler;
            let mut env = Env {
                core: &mut self.core,
                disposed: false,
            };
            h(&mut env, msg);
            assert!(
                env.disposed,
                "handler {handler_id} returned without disposing of its message"
            );
            self.handlers.insert(handler_id, h);
        } else {
            // Default disposition: accept.
            let mut env = Env {
                core: &mut self.core,
                disposed: false,
            };
            env.accept(msg);
        }
        self.eager_fetch_invalidated();
    }

    /// Takes the first accepted message for `handler`, if one is queued.
    pub fn try_take_accepted(&mut self, handler: u32) -> Option<AcceptedMsg> {
        self.poll();
        let pos = self.core.accepted.iter().position(|m| m.handler == handler)?;
        self.core.accepted.remove(pos)
    }

    /// Blocks until a message for `handler` has been accepted, processing
    /// all other traffic (including serving remote requests) meanwhile.
    pub fn wait_accepted(&mut self, handler: u32) -> AcceptedMsg {
        if std::env::var("CARLOS_TRACE_DEMANDS").is_ok() {
            eprintln!(
                "CORE[{}] wait_accepted({handler}) t={}us",
                self.node_id(),
                self.core.ctx.now() / 1000
            );
        }
        loop {
            if let Some(m) = self.try_take_accepted(handler) {
                return m;
            }
            self.pump(None);
        }
    }

    /// Like [`Runtime::wait_accepted`] for any of several handler ids.
    pub fn wait_accepted_any(&mut self, handlers: &[u32]) -> AcceptedMsg {
        loop {
            self.poll();
            if let Some(pos) = self
                .core
                .accepted
                .iter()
                .position(|m| handlers.contains(&m.handler))
            {
                return self.core.accepted.remove(pos).expect("position valid");
            }
            self.pump(None);
        }
    }

    /// Like [`Runtime::wait_accepted`], but gives up when the absolute
    /// virtual-time `deadline` passes, returning `None`. Traffic for other
    /// handlers is still serviced while waiting.
    pub fn wait_accepted_until(&mut self, handler: u32, deadline: Ns) -> Option<AcceptedMsg> {
        self.wait_accepted_any_until(&[handler], deadline)
    }

    /// Like [`Runtime::wait_accepted_any`] with an absolute deadline.
    pub fn wait_accepted_any_until(
        &mut self,
        handlers: &[u32],
        deadline: Ns,
    ) -> Option<AcceptedMsg> {
        loop {
            self.poll();
            if let Some(pos) = self
                .core
                .accepted
                .iter()
                .position(|m| handlers.contains(&m.handler))
            {
                return self.core.accepted.remove(pos);
            }
            if self.core.ctx.now() >= deadline {
                return None;
            }
            self.pump(Some(deadline));
        }
    }

    /// Whether the transport's failure detector currently considers `peer`
    /// dead (see [`carlos_sim::transport::Transport::peer_down`]). Always
    /// `false` in Implicit ack mode.
    #[must_use]
    pub fn peer_down(&self, peer: NodeId) -> bool {
        self.core.transport.peer_down(peer)
    }

    /// Sends a liveness probe to `peer` (no-op in Implicit ack mode, for
    /// self, or while a probe is already outstanding). An unanswered probe
    /// flags the peer down after [`ArqTuning::probe_rtos`] RTOs.
    pub fn probe_peer(&mut self, peer: NodeId) {
        self.core.transport.probe(peer);
    }

    /// Replaces the transport's retransmission/failure-detection tuning.
    pub fn set_arq_tuning(&mut self, tuning: ArqTuning) {
        self.core.transport.set_tuning(tuning);
    }

    /// Sleeps for `dt` of virtual time while continuing to service
    /// incoming messages (handlers run as interrupt extensions in CarlOS,
    /// so a sleeping application still serves lock forwards, diff
    /// requests, and the like).
    pub fn sleep(&mut self, dt: Ns) {
        let deadline = self.core.ctx.now() + dt;
        loop {
            let now = self.core.ctx.now();
            if now >= deadline {
                return;
            }
            if !self.pump(Some(deadline)) {
                return; // Timed out: deadline reached.
            }
        }
    }

    /// Charges `dt` of application computation, processing incoming
    /// messages promptly (interrupt-style) while computing.
    pub fn compute(&mut self, dt: Ns) {
        let mut remaining = dt;
        loop {
            match self.core.ctx.compute_interruptible(Bucket::User, remaining) {
                None => return,
                Some(rem) => {
                    self.poll();
                    remaining = rem;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Coherent shared memory access.
    // ------------------------------------------------------------------

    /// Reads `buf.len()` bytes of coherent memory at `addr`, transparently
    /// performing any faults (diff/page fetches) required.
    pub fn read_bytes(&mut self, addr: usize, buf: &mut [u8]) {
        loop {
            match self.core.engine.read(addr, buf) {
                Ok(()) => return,
                Err(demands) => self.resolve_demands(demands),
            }
        }
    }

    /// Writes `data` to coherent memory at `addr`, transparently performing
    /// any faults required (including twin creation).
    pub fn write_bytes(&mut self, addr: usize, data: &[u8]) {
        loop {
            match self.core.engine.write(addr, data) {
                Ok(()) => return,
                Err(demands) => self.resolve_demands(demands),
            }
        }
    }

    /// Reads a little-endian `u32` from coherent memory.
    #[must_use = "reading coherent memory has no side effects worth discarding"]
    pub fn read_u32(&mut self, addr: usize) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` to coherent memory.
    pub fn write_u32(&mut self, addr: usize, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u64` from coherent memory.
    #[must_use = "reading coherent memory has no side effects worth discarding"]
    pub fn read_u64(&mut self, addr: usize) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` to coherent memory.
    pub fn write_u64(&mut self, addr: usize, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads an `f64` from coherent memory.
    #[must_use = "reading coherent memory has no side effects worth discarding"]
    pub fn read_f64(&mut self, addr: usize) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` to coherent memory.
    pub fn write_f64(&mut self, addr: usize, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Fires non-blocking fetches for eager-region granules the message just
    /// dispatched invalidated (via its carried or repaired write notices).
    /// One RELEASE's interval closure typically invalidates many granules at
    /// once, so with fetch coalescing the whole set leaves as one batched
    /// request per serving node; replies apply through the ordinary
    /// buffered-diff machinery while the application keeps running, and a
    /// later access fault on a still-inflight granule simply waits on the
    /// request already in the air. No-op without eager region hints.
    fn eager_fetch_invalidated(&mut self) {
        let pages = self.core.engine.take_eager_invalid();
        if pages.is_empty() {
            return;
        }
        let mut demands = Vec::new();
        for p in pages {
            demands.extend(self.core.engine.fault_demands(p));
        }
        if !demands.is_empty() {
            self.core.ctx.count("carlos.eager_fetches", demands.len() as u64);
            let _ = self.issue_demands(demands);
        }
    }

    /// Sends the protocol requests for `demands` (deduplicated against
    /// requests already in flight) and returns the `(page, server)` keys
    /// whose replies the caller may wait on.
    fn issue_demands(&mut self, demands: Vec<Demand>) -> Vec<(u32, NodeId)> {
        if std::env::var("CARLOS_TRACE_DEMANDS").is_ok() {
            eprintln!(
                "CORE[{}] resolve {:?} t={}ms",
                self.core.ctx.node_id(),
                demands,
                self.core.ctx.now() / 1_000_000
            );
        }
        let coalesce = self.core.cfg.coalesce_fetches;
        // With coalescing, demands not yet in flight are grouped by serving
        // node and same-destination groups of two or more share one batched
        // round trip; singletons keep the legacy wire exchange. Without it,
        // every request goes out inline, in demand order, exactly as the
        // historical protocol did (pinned by the golden fingerprints).
        let mut fresh: BTreeMap<NodeId, Vec<BatchEntry>> = BTreeMap::new();
        let mut waiting: Vec<(u32, NodeId)> = Vec::new();
        for d in demands {
            match d {
                Demand::Diffs {
                    to,
                    page,
                    after,
                    through,
                } => {
                    waiting.push((page, to));
                    if self.core.inflight.insert((page, to)) {
                        self.core.ctx.count("carlos.diff_requests", 1);
                        if let Some(p) = &self.core.probe {
                            p.fetch_started(
                                self.core.node(),
                                to,
                                page,
                                FetchKind::Diffs,
                                self.core.ctx.now(),
                            );
                        }
                        let force = self.core.force_diffs.contains(&(page, to));
                        if coalesce {
                            fresh.entry(to).or_default().push(BatchEntry {
                                kind: 0,
                                page,
                                after,
                                through,
                                force,
                            });
                        } else {
                            self.send_diff_req(to, page, after, through, force);
                        }
                    }
                }
                Demand::Page { to, page } => {
                    waiting.push((page, to));
                    if self.core.inflight.insert((page, to)) {
                        self.core.ctx.count("carlos.page_requests", 1);
                        if let Some(p) = &self.core.probe {
                            p.fetch_started(
                                self.core.node(),
                                to,
                                page,
                                FetchKind::Page,
                                self.core.ctx.now(),
                            );
                        }
                        if coalesce {
                            fresh.entry(to).or_default().push(BatchEntry {
                                kind: 1,
                                page,
                                after: 0,
                                through: 0,
                                force: false,
                            });
                        } else {
                            let mut body = Encoder::new();
                            body.put_u32(page);
                            self.core.send_sys(to, SYS_PAGE_REQ, body.finish_vec());
                        }
                    }
                }
            }
        }
        for (to, entries) in fresh {
            if entries.len() == 1 {
                let e = &entries[0];
                if e.kind == 0 {
                    self.send_diff_req(to, e.page, e.after, e.through, e.force);
                } else {
                    let mut body = Encoder::new();
                    body.put_u32(e.page);
                    self.core.send_sys(to, SYS_PAGE_REQ, body.finish_vec());
                }
                continue;
            }
            self.core.ctx.count("carlos.batch_requests", 1);
            self.core
                .ctx
                .count("carlos.batched_fetches", entries.len() as u64);
            let mut body = Encoder::new();
            body.put_u32(entries.len() as u32);
            for e in &entries {
                body.put_u8(e.kind);
                body.put_u32(e.page);
                body.put_u32(e.after);
                body.put_u32(e.through);
                body.put_u8(u8::from(e.force));
            }
            self.core.send_sys(to, SYS_BATCH_REQ, body.finish_vec());
        }
        waiting
    }

    /// Sends one legacy (singleton) diff request.
    fn send_diff_req(&mut self, to: NodeId, page: u32, after: u32, through: u32, force: bool) {
        let mut body = Encoder::new();
        body.put_u32(page);
        body.put_u32(after);
        body.put_u32(through);
        body.put_u8(u8::from(force));
        self.core.send_sys(to, SYS_DIFF_REQ, body.finish_vec());
    }

    fn resolve_demands(&mut self, demands: Vec<Demand>) {
        let waiting = self.issue_demands(demands);
        let Some(timeout) = self.core.cfg.fetch_timeout else {
            // Historical wait-forever path: no timer events, so fault-free
            // runs are event-for-event identical with and without this code.
            while waiting.iter().any(|k| self.core.inflight.contains(k)) {
                self.pump(None);
            }
            return;
        };
        let mut rounds: u32 = 0;
        while waiting.iter().any(|k| self.core.inflight.contains(k)) {
            let deadline = self.core.ctx.now() + timeout;
            let mut progressed = false;
            while self.core.ctx.now() < deadline {
                if self.pump(Some(deadline)) {
                    progressed = true;
                    break;
                }
            }
            if progressed {
                continue;
            }
            rounds += 1;
            self.core.ctx.count("carlos.fetch_timeouts", 1);
            for &(page, server) in waiting.iter().filter(|k| self.core.inflight.contains(k)) {
                if self.core.transport.peer_down(server) || rounds > MAX_FETCH_ROUNDS {
                    carlos_sim::abort(
                        self.core.ctx.node_id(),
                        format!(
                            "page {page} fetch from node {server} abandoned after \
                             {rounds} timeout rounds (peer {})",
                            if self.core.transport.peer_down(server) {
                                "is down"
                            } else {
                                "unresponsive"
                            }
                        ),
                    );
                }
                self.core.transport.probe(server);
            }
        }
    }

    /// Non-blocking read: returns `true` and fills `buf` when every page is
    /// accessible, or issues the outstanding fetches and returns `false`.
    /// Used by user threads that must not block the shared runtime while a
    /// fault is in flight (§4.4 latency hiding).
    pub fn try_read_bytes(&mut self, addr: usize, buf: &mut [u8]) -> bool {
        self.poll();
        match self.core.engine.read(addr, buf) {
            Ok(()) => true,
            Err(demands) => {
                let _ = self.issue_demands(demands);
                false
            }
        }
    }

    /// Non-blocking write: the mirror of [`Runtime::try_read_bytes`].
    pub fn try_write_bytes(&mut self, addr: usize, data: &[u8]) -> bool {
        self.poll();
        match self.core.engine.write(addr, data) {
            Ok(()) => true,
            Err(demands) => {
                let _ = self.issue_demands(demands);
                false
            }
        }
    }

    // ------------------------------------------------------------------
    // Garbage collection support (orchestrated by carlos-sync).
    // ------------------------------------------------------------------

    /// True when this node's consistency-record storage exceeds the GC
    /// threshold.
    #[must_use]
    pub fn gc_needed(&self) -> bool {
        self.core.engine.gc_needed()
    }

    /// Phase 2 of a global GC: validate every invalid page by fetching the
    /// outstanding diffs. Phase 1 (equalizing timestamps) is a plain
    /// RELEASE exchange run by the coordinator.
    pub fn gc_validate_all(&mut self) {
        loop {
            let demands = self.core.engine.gc_validate_demands();
            if demands.is_empty() {
                return;
            }
            self.resolve_demands(demands);
        }
    }

    /// Phase 3 of a global GC: discard interval and diff records. All nodes
    /// must have equal timestamps and fully valid pages.
    pub fn gc_discard(&mut self) {
        self.core.engine.gc_discard();
        // Everyone is mutually consistent now; knowledge reflects that.
        let vt = self.core.engine.vt().clone();
        for k in &mut self.core.known {
            k.join(&vt);
        }
        self.core.ctx.count("carlos.gcs", 1);
    }

    /// Flushes transport state and publishes engine statistics as node
    /// counters; call once at the end of a node's main.
    pub fn shutdown(&mut self) {
        self.core.transport.flush();
        let s = self.core.engine.stats();
        let c = &self.core.ctx;
        c.count("lrc.intervals_created", s.intervals_created);
        c.count("lrc.diffs_created", s.diffs_created);
        c.count("lrc.diffs_applied", s.diffs_applied);
        c.count("lrc.notices_applied", s.notices_applied);
        c.count("lrc.write_faults", s.write_faults);
        c.count("lrc.remote_faults", s.remote_faults);
        c.count("lrc.pages_installed", s.pages_installed);
        c.count("lrc.records_resident", self.core.engine.record_count() as u64);
    }
}

/// Seeded bug `DropNoticeClock`: produce a copy of a RELEASE message with
/// one changed non-creator vector-clock component of a delta-coded record
/// reverted to its group predecessor's value — byte-identical to the
/// aggregated encoder silently dropping that delta on the wire. Returns
/// `None` when the message has no delta-coded record with such a
/// component (the encoding would carry every record in full, so there is
/// nothing to drop).
#[cfg(any(test, feature = "seeded-bugs"))]
fn seeded_drop_notice_clock(msg: &Message) -> Option<Message> {
    fn sat16(v: u32) -> u16 {
        u16::try_from(v).unwrap_or(u16::MAX)
    }
    let Consistency::Release { records, .. } = &msg.consistency else {
        return None;
    };
    for i in 1..records.len() {
        let (prev, rec) = (&records[i - 1], &records[i]);
        if prev.node != rec.node {
            continue;
        }
        let target = rec
            .vc
            .iter()
            .find(|&(n, v)| n != rec.node && sat16(v) != sat16(prev.vc.get(n)));
        if let Some((n, _)) = target {
            let mut mutated = msg.clone();
            if let Consistency::Release { records, .. } = &mut mutated.consistency {
                let reverted = records[i - 1].vc.get(n);
                records[i].vc.set(n, reverted);
            }
            return Some(mutated);
        }
    }
    None
}
