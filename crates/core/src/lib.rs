//! Message-driven relaxed consistency — the CarlOS model (OSDI '94).
//!
//! This crate implements the paper's contribution: a DSM in which *every*
//! memory-consistency action is driven by user-level messages carrying
//! explicit causality annotations. There is no built-in synchronization;
//! locks, barriers, and work queues (crate `carlos-sync`) are ordinary
//! message protocols over this interface.
//!
//! The model, from §2:
//!
//! > If processor A sends a synchronizing message m to processor B, any
//! > modifications to shared memory visible on A before m was sent become
//! > visible to B when B receives m.
//!
//! Each user message carries one [`Annotation`]:
//!
//! - [`Annotation::Release`] — synchronizing: sending is a release event,
//!   accepting a matching acquire.
//! - [`Annotation::Request`] — non-synchronizing, but piggybacks the
//!   sender's vector timestamp so a precisely tailored RELEASE can answer.
//! - [`Annotation::None`] — non-synchronizing, no consistency interaction.
//! - [`Annotation::ReleaseNt`] — the non-transitive release: carries only
//!   intervals created at the sender, with the correct required timestamp
//!   so the receiver can detect and repair an inconsistent view.
//!
//! Messages are active messages (§4.3): a handler registered per message
//! type is invoked at delivery, may inspect the body, and must dispose of
//! the message by **accepting** it (performing the acquire), **forwarding**
//! it to another node with its encapsulated consistency information, or
//! **storing** it for deferred disposition (§2.2). A message counts as
//! delivered to user level only when accepted.
//!
//! [`Runtime`] ties the pieces together on each node: the LRC engine from
//! `carlos-lrc`, the reliable transport from `carlos-sim`, handler
//! dispatch, per-peer knowledge tracking for tailored RELEASE payloads,
//! and the system protocol (diff/page fetches, inadequate-consistency
//! repair, garbage-collection support).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotation;
pub mod config;
pub mod heap;
pub mod message;
pub mod multithread;
pub mod probe;
pub mod runtime;

pub use annotation::Annotation;
pub use config::{CoreConfig, Strategy};
#[cfg(any(test, feature = "seeded-bugs"))]
pub use config::SeededBug;
pub use heap::CoherentHeap;
pub use message::{AcceptedMsg, Consistency, Message};
pub use multithread::{SharedRuntime, ThreadEvent, Worker};
pub use probe::{CoreProbe, CostPhase, FetchKind, GranuleClass, MsgClass};
pub use runtime::{Env, Runtime};
