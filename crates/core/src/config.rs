//! Cost model and configuration for the CarlOS runtime.

use carlos_sim::time::{us, Ns};

/// Which coherence strategy RELEASE messages drive (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Write notices invalidate pages; modifications are fetched lazily on
    /// the next access fault (what the paper's experiments used).
    Invalidate,
    /// Write notices travel together with the diffs they describe; pages
    /// receiving a complete set of diffs remain valid ("the actual data
    /// transmission occurs eagerly and asynchronously when the
    /// notification message is sent", §3).
    Update,
}

/// Seeded protocol mutations for explorer-recall regression tests.
///
/// Each variant injects one realistic wire-protocol bug into the runtime.
/// The hooks are compiled only under `cfg(any(test, feature =
/// "seeded-bugs"))` and fire only when a [`CoreConfig::seeded_bug`] is
/// installed, so production builds and default configs are byte-identical
/// to a runtime without them. `tests/seeded_bugs.rs` asserts the guided
/// schedule explorer finds and shrinks every one of these while the random
/// jitter sweep may miss them.
#[cfg(any(test, feature = "seeded-bugs"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeededBug {
    /// In the aggregated RELEASE encoding path, silently revert one
    /// changed non-creator vector-clock component of a delta-coded record
    /// back to its predecessor's value — the wire carries a write notice
    /// with an understated timestamp. Requires
    /// [`CoreConfig::aggregate_notices`].
    DropNoticeClock,
    /// Serve one granule short in a batched fetch reply: a batch request
    /// for two or more granules gets a well-formed reply carrying all but
    /// the last sub-reply. Requires [`CoreConfig::coalesce_fetches`].
    SkipBatchGranule,
    /// Apply buffered eager diffs without the completeness revalidation:
    /// a page whose carried-diff set does not cover all known writes is
    /// revalidated anyway, exposing stale bytes to the next read.
    EagerSkipRevalidate,
}

/// Per-operation CPU costs charged to the `CarlOS` bucket, plus runtime
/// options.
///
/// The defaults are calibrated from §5.4 of the paper (150 MHz Alpha):
///
/// - handling a piggybacked vector timestamp costs 750–2350 cycles
///   (5–15 µs) split across sender and receiver;
/// - a RELEASE message adds ~30 µs over a NONE message, plus the time to
///   process the write notices it carries;
/// - per-write-notice processing lands in the 42–141 µs range *including*
///   the diff traffic it triggers, so the bare notice application charge
///   here is much smaller and the rest emerges from the diff costs.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Generic CarlOS message handling at the sender (header construction,
    /// handler dispatch bookkeeping). The §5 "generality of CarlOS message
    /// handling" penalty versus TreadMarks lives here.
    pub msg_send: Ns,
    /// Generic CarlOS message handling at the receiver.
    pub msg_recv: Ns,
    /// Extra sender cost when a vector timestamp is included (REQUEST and
    /// both RELEASE forms).
    pub vt_send: Ns,
    /// Extra receiver cost for processing a piggybacked vector timestamp.
    pub vt_recv: Ns,
    /// Extra fixed cost of sending a RELEASE (interval creation, payload
    /// tailoring), beyond `msg_send` + `vt_send`.
    pub release_send: Ns,
    /// Extra fixed cost of accepting a RELEASE (acquire bookkeeping).
    pub release_accept: Ns,
    /// Cost of applying one write notice (page invalidation check).
    pub per_notice: Ns,
    /// Cost of encoding/decoding one interval record in a release payload.
    pub per_record: Ns,
    /// Cost of creating a diff, per page byte compared (twin comparison).
    pub diff_create_per_byte_x1000: u64,
    /// Fixed cost of creating one diff.
    pub diff_create_fixed: Ns,
    /// Fixed cost of applying one diff record.
    pub diff_apply_fixed: Ns,
    /// Cost of applying one modified byte of a diff (×1000 per byte).
    pub diff_apply_per_byte_x1000: u64,
    /// Cost per byte of serving/installing a full page copy (×1000).
    pub page_copy_per_byte_x1000: u64,
    /// When set, the generic handling costs (`msg_send`/`msg_recv`) are
    /// waived, modeling TreadMarks' specialized built-in message paths;
    /// used by the §5 TreadMarks-versus-CarlOS comparison.
    pub treadmarks_dispatch: bool,
    /// Zero bytes appended to every user message as a modeled protocol
    /// header (the real system's request/bookkeeping structures), so
    /// reported message sizes are comparable with the paper's tables.
    pub wire_header_pad: usize,
    /// Coherence strategy driven by RELEASE messages.
    pub strategy: Strategy,
    /// When set, a page/diff fetch that makes no progress for this long
    /// probes the serving node and — if the transport's failure detector
    /// flags it down, or after 8 fruitless rounds — aborts the run with an
    /// attributed [`carlos_sim::SimError::Aborted`] instead of pumping
    /// forever. `None` (the default) keeps the historical wait-forever
    /// behavior and adds no timer events to the run.
    pub fetch_timeout: Option<Ns>,
    /// When set, demand fetches raised by one fault that target the same
    /// serving node travel as a single batched request/reply round trip
    /// instead of one message pair per granule. Off by default: the
    /// singleton wire exchanges stay byte-identical with the historical
    /// protocol.
    pub coalesce_fetches: bool,
    /// When set, RELEASE/RELEASE_NT payloads use the aggregated
    /// write-notice encoding (wire tags 4/5): interval records are grouped
    /// by creator and all vector-clock components implied by the creator's
    /// previous record in the same frame are elided. Lossless — the
    /// receiver reconstructs the exact record set — and off by default so
    /// legacy frames stay byte-identical.
    pub aggregate_notices: bool,
    /// Seeded protocol mutation for explorer-recall tests (never set in
    /// production configs; see [`SeededBug`]).
    #[cfg(any(test, feature = "seeded-bugs"))]
    pub seeded_bug: Option<SeededBug>,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::osdi94()
    }
}

impl CoreConfig {
    /// The calibration used by the benchmark harnesses (see `DESIGN.md`).
    #[must_use]
    pub fn osdi94() -> Self {
        Self {
            msg_send: us(25),
            msg_recv: us(25),
            vt_send: us(5),
            vt_recv: us(5),
            release_send: us(15),
            release_accept: us(15),
            per_notice: us(12),
            per_record: us(4),
            diff_create_per_byte_x1000: 14, // ~115 µs to scan an 8 KiB page
            diff_create_fixed: us(25),
            diff_apply_fixed: us(15),
            diff_apply_per_byte_x1000: 20,
            page_copy_per_byte_x1000: 12,
            treadmarks_dispatch: false,
            wire_header_pad: 90,
            strategy: Strategy::Invalidate,
            fetch_timeout: None,
            coalesce_fetches: false,
            aggregate_notices: false,
            #[cfg(any(test, feature = "seeded-bugs"))]
            seeded_bug: None,
        }
    }

    /// Near-zero costs for tests that assert protocol behaviour, not time.
    #[must_use]
    pub fn fast_test() -> Self {
        Self {
            msg_send: 0,
            msg_recv: 0,
            vt_send: 0,
            vt_recv: 0,
            release_send: 0,
            release_accept: 0,
            per_notice: 0,
            per_record: 0,
            diff_create_per_byte_x1000: 0,
            diff_create_fixed: 0,
            diff_apply_fixed: 0,
            diff_apply_per_byte_x1000: 0,
            page_copy_per_byte_x1000: 0,
            treadmarks_dispatch: false,
            wire_header_pad: 0,
            strategy: Strategy::Invalidate,
            fetch_timeout: None,
            coalesce_fetches: false,
            aggregate_notices: false,
            #[cfg(any(test, feature = "seeded-bugs"))]
            seeded_bug: None,
        }
    }

    /// Returns `self` with the given seeded protocol mutation installed
    /// (explorer-recall tests only).
    #[cfg(any(test, feature = "seeded-bugs"))]
    #[must_use]
    pub fn with_seeded_bug(mut self, bug: SeededBug) -> Self {
        self.seeded_bug = Some(bug);
        self
    }

    /// Returns `self` with TreadMarks-style specialized dispatch enabled.
    #[must_use]
    pub fn with_treadmarks_dispatch(mut self) -> Self {
        self.treadmarks_dispatch = true;
        self
    }

    /// Returns `self` with the update coherence strategy enabled.
    #[must_use]
    pub fn with_update_strategy(mut self) -> Self {
        self.strategy = Strategy::Update;
        self
    }

    /// Returns `self` with the given fetch timeout (builder style).
    #[must_use]
    pub fn with_fetch_timeout(mut self, timeout: Ns) -> Self {
        self.fetch_timeout = Some(timeout);
        self
    }

    /// Returns `self` with same-destination demand fetches coalesced into
    /// batched request/reply round trips.
    #[must_use]
    pub fn with_coalesced_fetches(mut self) -> Self {
        self.coalesce_fetches = true;
        self
    }

    /// Returns `self` with the aggregated write-notice release encoding
    /// enabled (wire tags 4/5).
    #[must_use]
    pub fn with_aggregated_notices(mut self) -> Self {
        self.aggregate_notices = true;
        self
    }

    /// Effective generic send-side handling cost.
    #[must_use]
    pub fn effective_msg_send(&self) -> Ns {
        if self.treadmarks_dispatch {
            0
        } else {
            self.msg_send
        }
    }

    /// Effective generic receive-side handling cost.
    #[must_use]
    pub fn effective_msg_recv(&self) -> Ns {
        if self.treadmarks_dispatch {
            0
        } else {
            self.msg_recv
        }
    }

    /// Cost of scanning `bytes` during diff creation.
    #[must_use]
    pub fn diff_create_cost(&self, page_bytes: usize) -> Ns {
        self.diff_create_fixed + (page_bytes as u64 * self.diff_create_per_byte_x1000) / 1000
    }

    /// Cost of applying a diff that modifies `bytes` bytes.
    #[must_use]
    pub fn diff_apply_cost(&self, bytes: usize) -> Ns {
        self.diff_apply_fixed + (bytes as u64 * self.diff_apply_per_byte_x1000) / 1000
    }

    /// Cost of copying a `bytes`-byte page (serve or install side).
    #[must_use]
    pub fn page_copy_cost(&self, bytes: usize) -> Ns {
        (bytes as u64 * self.page_copy_per_byte_x1000) / 1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn osdi94_matches_paper_ranges() {
        let c = CoreConfig::osdi94();
        // REQUEST-over-NONE: 5-15 µs total (§5.4).
        let vt_total = c.vt_send + c.vt_recv;
        assert!((us(5)..=us(15)).contains(&vt_total));
        // RELEASE-over-NONE fixed: about 30 µs (§5.4).
        let rel_total = c.release_send + c.release_accept;
        assert!((us(25)..=us(35)).contains(&rel_total));
    }

    #[test]
    fn treadmarks_dispatch_waives_generic_costs() {
        let c = CoreConfig::osdi94().with_treadmarks_dispatch();
        assert_eq!(c.effective_msg_send(), 0);
        assert_eq!(c.effective_msg_recv(), 0);
        let c2 = CoreConfig::osdi94();
        assert!(c2.effective_msg_send() > 0);
    }

    #[test]
    fn scaled_costs() {
        let c = CoreConfig::osdi94();
        assert_eq!(
            c.diff_create_cost(8192),
            c.diff_create_fixed + 8192 * c.diff_create_per_byte_x1000 / 1000
        );
        assert_eq!(c.page_copy_cost(0), 0);
        let zero = CoreConfig::fast_test();
        assert_eq!(zero.diff_create_cost(8192), 0);
    }
}
