//! User-level message representation and wire format.

use carlos_lrc::{DiffRecord, IntervalRecord, Vc};
use carlos_sim::transport::FrameBuf;
use carlos_util::codec::{DecodeError, Decoder, Encoder, Wire};

use crate::annotation::Annotation;

/// The consistency information appended to a message under its annotation.
///
/// This is the part of the message that is "invisible at the user level"
/// (§4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Consistency {
    /// NONE messages carry nothing.
    None,
    /// REQUEST messages piggyback the sender's vector timestamp.
    Request {
        /// The sender's vector timestamp at send time.
        vt: Vc,
    },
    /// RELEASE / RELEASE_NT messages.
    Release {
        /// The minimum vector timestamp a recipient must reach to become
        /// consistent on the basis of this message; necessary to handle
        /// forwarding correctly (§4.3).
        required: Vc,
        /// Interval descriptions (write notices).
        records: Vec<IntervalRecord>,
        /// Diffs for the noticed pages — empty under the invalidate
        /// strategy; populated under the update/hybrid strategy, where
        /// "pages to which a 'complete' set of diffs can be applied remain
        /// valid" (§4.3).
        diffs: Vec<DiffRecord>,
    },
}

impl Consistency {
    /// The minimum timestamp a recipient must reach before acting on the
    /// message, if it carries one (releases only).
    #[must_use]
    pub fn required(&self) -> Option<&Vc> {
        match self {
            Self::Release { required, .. } => Some(required),
            Self::None | Self::Request { .. } => None,
        }
    }
}

/// A user-level CarlOS message as seen by a low-level handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Immediate sender (the forwarder, for forwarded messages).
    pub src: u32,
    /// Original sender — the node whose consistency information the message
    /// encapsulates, and the node to ask when that information is
    /// inadequate after a forward.
    pub origin: u32,
    /// Handler identifier the message is dispatched to.
    pub handler: u32,
    /// The user-visible consistency annotation.
    pub annotation: Annotation,
    /// Application payload.
    pub body: Vec<u8>,
    /// System-appended consistency information.
    pub consistency: Consistency,
}

impl Message {
    /// Encodes everything except `src` (which the transport supplies).
    ///
    /// `pad` appends that many zero bytes as a modeled header: the real
    /// system's messages carried request ids, types, and bookkeeping
    /// structures considerably fatter than this crate's minimal encoding,
    /// and the paper's tables report message sizes including them.
    #[must_use]
    pub fn to_wire_bytes(&self, pad: usize) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode_into(&mut enc, pad);
        enc.finish_vec()
    }

    /// Encodes like [`Message::to_wire_bytes`], but with transport-header
    /// headroom reserved in front so the transport frames the message in
    /// place — the encoder's buffer becomes the wire datagram (and, under
    /// ARQ, the retransmission-queue entry) without further copying.
    #[must_use]
    pub fn to_framed(&self, pad: usize) -> FrameBuf {
        let mut enc = Encoder::new();
        enc.put_raw(&[0u8; FrameBuf::HEADROOM]);
        self.encode_into(&mut enc, pad);
        FrameBuf::from_reserved(enc.finish_mut())
    }

    fn encode_into(&self, enc: &mut Encoder, pad: usize) {
        self.annotation.encode(enc);
        enc.put_u32(self.handler);
        enc.put_u32(self.origin);
        enc.put_bytes(&vec![0u8; pad]);
        enc.put_bytes(&self.body);
        match &self.consistency {
            Consistency::None => {}
            Consistency::Request { vt } => vt.encode(enc),
            Consistency::Release {
                required,
                records,
                diffs,
            } => {
                required.encode(enc);
                enc.put_seq(records, |enc, r| r.encode(enc));
                enc.put_seq(diffs, |enc, d| d.encode(enc));
            }
        }
    }

    /// Decodes a message received from `src`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn from_wire_bytes(src: u32, buf: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(buf);
        let annotation = Annotation::decode(&mut dec)?;
        let handler = dec.get_u32()?;
        let origin = dec.get_u32()?;
        let _pad = dec.get_bytes()?;
        let body = dec.get_bytes()?;
        let consistency = match annotation {
            Annotation::None => Consistency::None,
            Annotation::Request => Consistency::Request {
                vt: Vc::decode(&mut dec)?,
            },
            Annotation::Release | Annotation::ReleaseNt => Consistency::Release {
                required: Vc::decode(&mut dec)?,
                records: dec.get_seq(IntervalRecord::decode)?,
                diffs: dec.get_seq(DiffRecord::decode)?,
            },
        };
        dec.expect_end()?;
        Ok(Self {
            src,
            origin,
            handler,
            annotation,
            body,
            consistency,
        })
    }

    /// Number of write notices carried (0 for non-release messages).
    #[must_use]
    pub fn notice_count(&self) -> usize {
        match &self.consistency {
            Consistency::Release { records, .. } => records.iter().map(|r| r.pages.len()).sum(),
            _ => 0,
        }
    }
}

/// A message after acceptance, handed to user-level code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceptedMsg {
    /// Immediate sender.
    pub src: u32,
    /// Original sender.
    pub origin: u32,
    /// Handler id it arrived under.
    pub handler: u32,
    /// The annotation it carried.
    pub annotation: Annotation,
    /// Application payload.
    pub body: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u32, index: u32, n: usize) -> IntervalRecord {
        let mut vc = Vc::new(n);
        vc.set(node, index);
        IntervalRecord {
            node,
            index,
            vc,
            pages: vec![3, 4],
        }
    }

    #[test]
    fn none_roundtrip() {
        let m = Message {
            src: 1,
            origin: 1,
            handler: 7,
            annotation: Annotation::None,
            body: b"payload".to_vec(),
            consistency: Consistency::None,
        };
        let back = Message::from_wire_bytes(1, &m.to_wire_bytes(0)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn request_roundtrip_carries_vt() {
        let mut vt = Vc::new(3);
        vt.set(2, 9);
        let m = Message {
            src: 0,
            origin: 0,
            handler: 1,
            annotation: Annotation::Request,
            body: vec![],
            consistency: Consistency::Request { vt: vt.clone() },
        };
        let back = Message::from_wire_bytes(0, &m.to_wire_bytes(0)).unwrap();
        assert_eq!(back.consistency, Consistency::Request { vt });
    }

    #[test]
    fn release_roundtrip_with_records() {
        let mut required = Vc::new(2);
        required.set(0, 2);
        let m = Message {
            src: 0,
            origin: 0,
            handler: 2,
            annotation: Annotation::Release,
            body: vec![1, 2, 3],
            consistency: Consistency::Release {
                required,
                records: vec![rec(0, 1, 2), rec(0, 2, 2)],
                diffs: vec![],
            },
        };
        let back = Message::from_wire_bytes(0, &m.to_wire_bytes(0)).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.notice_count(), 4);
    }

    #[test]
    fn request_is_larger_than_none() {
        // The §5.4 distinction: REQUEST costs a timestamp on the wire.
        let none = Message {
            src: 0,
            origin: 0,
            handler: 1,
            annotation: Annotation::None,
            body: vec![0; 8],
            consistency: Consistency::None,
        };
        let req = Message {
            annotation: Annotation::Request,
            consistency: Consistency::Request { vt: Vc::new(4) },
            ..none.clone()
        };
        let extra = req.to_wire_bytes(0).len() - none.to_wire_bytes(0).len();
        // Two bytes per node plus the length prefix.
        assert_eq!(extra, 2 + 4 * 2);
    }

    #[test]
    fn truncated_message_rejected() {
        let m = Message {
            src: 0,
            origin: 0,
            handler: 1,
            annotation: Annotation::Release,
            body: vec![9; 4],
            consistency: Consistency::Release {
                required: Vc::new(2),
                records: vec![rec(1, 1, 2)],
                diffs: vec![],
            },
        };
        let bytes = m.to_wire_bytes(0);
        for cut in [1, 5, bytes.len() - 1] {
            assert!(Message::from_wire_bytes(0, &bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let m = Message {
            src: 0,
            origin: 0,
            handler: 1,
            annotation: Annotation::None,
            body: vec![],
            consistency: Consistency::None,
        };
        let mut bytes = m.to_wire_bytes(0);
        bytes.push(0xFF);
        assert!(Message::from_wire_bytes(0, &bytes).is_err());
    }
}
