//! User-level message representation and wire format.

use carlos_lrc::{DiffRecord, IntervalRecord, Vc};
use carlos_sim::transport::FrameBuf;
use carlos_util::codec::{DecodeError, Decoder, Encoder, Wire};

use crate::annotation::Annotation;

/// The consistency information appended to a message under its annotation.
///
/// This is the part of the message that is "invisible at the user level"
/// (§4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Consistency {
    /// NONE messages carry nothing.
    None,
    /// REQUEST messages piggyback the sender's vector timestamp.
    Request {
        /// The sender's vector timestamp at send time.
        vt: Vc,
    },
    /// RELEASE / RELEASE_NT messages.
    Release {
        /// The minimum vector timestamp a recipient must reach to become
        /// consistent on the basis of this message; necessary to handle
        /// forwarding correctly (§4.3).
        required: Vc,
        /// Interval descriptions (write notices).
        records: Vec<IntervalRecord>,
        /// Diffs for the noticed pages — empty under the invalidate
        /// strategy; populated under the update/hybrid strategy, where
        /// "pages to which a 'complete' set of diffs can be applied remain
        /// valid" (§4.3).
        diffs: Vec<DiffRecord>,
    },
}

impl Consistency {
    /// The minimum timestamp a recipient must reach before acting on the
    /// message, if it carries one (releases only).
    #[must_use]
    pub fn required(&self) -> Option<&Vc> {
        match self {
            Self::Release { required, .. } => Some(required),
            Self::None | Self::Request { .. } => None,
        }
    }
}

/// A user-level CarlOS message as seen by a low-level handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Immediate sender (the forwarder, for forwarded messages).
    pub src: u32,
    /// Original sender — the node whose consistency information the message
    /// encapsulates, and the node to ask when that information is
    /// inadequate after a forward.
    pub origin: u32,
    /// Handler identifier the message is dispatched to.
    pub handler: u32,
    /// The user-visible consistency annotation.
    pub annotation: Annotation,
    /// Application payload.
    pub body: Vec<u8>,
    /// System-appended consistency information.
    pub consistency: Consistency,
}

impl Message {
    /// Encodes everything except `src` (which the transport supplies).
    ///
    /// `pad` appends that many zero bytes as a modeled header: the real
    /// system's messages carried request ids, types, and bookkeeping
    /// structures considerably fatter than this crate's minimal encoding,
    /// and the paper's tables report message sizes including them.
    #[must_use]
    pub fn to_wire_bytes(&self, pad: usize) -> Vec<u8> {
        self.to_wire_bytes_with(pad, false)
    }

    /// Like [`Message::to_wire_bytes`] with an explicit choice of the
    /// aggregated write-notice encoding for release payloads.
    #[must_use]
    pub fn to_wire_bytes_with(&self, pad: usize, aggregate: bool) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode_into(&mut enc, pad, aggregate);
        enc.finish_vec()
    }

    /// Encodes like [`Message::to_wire_bytes`], but with transport-header
    /// headroom reserved in front so the transport frames the message in
    /// place — the encoder's buffer becomes the wire datagram (and, under
    /// ARQ, the retransmission-queue entry) without further copying.
    #[must_use]
    pub fn to_framed(&self, pad: usize) -> FrameBuf {
        self.to_framed_with(pad, false)
    }

    /// Like [`Message::to_framed`], optionally using the aggregated
    /// write-notice encoding (wire tags 4/5) for release payloads. With
    /// `aggregate` false the frame is byte-identical to the legacy one.
    #[must_use]
    pub fn to_framed_with(&self, pad: usize, aggregate: bool) -> FrameBuf {
        let mut enc = Encoder::new();
        enc.put_raw(&[0u8; FrameBuf::HEADROOM]);
        self.encode_into(&mut enc, pad, aggregate);
        FrameBuf::from_reserved(enc.finish_mut())
    }

    fn encode_into(&self, enc: &mut Encoder, pad: usize, aggregate: bool) {
        let aggregated = aggregate && self.annotation.is_release();
        if aggregated {
            // Tags 4/5 mark the aggregated release encodings; the legacy
            // tags 0–3 and their payload bytes are untouched.
            enc.put_u8(match self.annotation {
                Annotation::Release => 4,
                Annotation::ReleaseNt => 5,
                _ => unreachable!("aggregated implies release"),
            });
        } else {
            self.annotation.encode(enc);
        }
        enc.put_u32(self.handler);
        enc.put_u32(self.origin);
        enc.put_bytes(&vec![0u8; pad]);
        enc.put_bytes(&self.body);
        match &self.consistency {
            Consistency::None => {}
            Consistency::Request { vt } => vt.encode(enc),
            Consistency::Release {
                required,
                records,
                diffs,
            } => {
                required.encode(enc);
                if aggregated {
                    encode_aggregated_records(enc, records);
                } else {
                    enc.put_seq(records, |enc, r| r.encode(enc));
                }
                enc.put_seq(diffs, |enc, d| d.encode(enc));
            }
        }
    }

    /// Decodes a message received from `src`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn from_wire_bytes(src: u32, buf: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(buf);
        // Tags 0–3 are the annotation's own encoding; 4/5 are the
        // aggregated forms of Release/ReleaseNt (write notices grouped by
        // creator with delta-coded vector clocks).
        let (annotation, aggregated) = match dec.get_u8()? {
            0 => (Annotation::None, false),
            1 => (Annotation::Request, false),
            2 => (Annotation::Release, false),
            3 => (Annotation::ReleaseNt, false),
            4 => (Annotation::Release, true),
            5 => (Annotation::ReleaseNt, true),
            tag => {
                return Err(DecodeError::BadTag {
                    tag: u32::from(tag),
                    what: "Annotation",
                })
            }
        };
        let handler = dec.get_u32()?;
        let origin = dec.get_u32()?;
        let _pad = dec.get_bytes()?;
        let body = dec.get_bytes()?;
        let consistency = match annotation {
            Annotation::None => Consistency::None,
            Annotation::Request => Consistency::Request {
                vt: Vc::decode(&mut dec)?,
            },
            Annotation::Release | Annotation::ReleaseNt => Consistency::Release {
                required: Vc::decode(&mut dec)?,
                records: if aggregated {
                    decode_aggregated_records(&mut dec)?
                } else {
                    dec.get_seq(IntervalRecord::decode)?
                },
                diffs: dec.get_seq(DiffRecord::decode)?,
            },
        };
        dec.expect_end()?;
        Ok(Self {
            src,
            origin,
            handler,
            annotation,
            body,
            consistency,
        })
    }

    /// Number of write notices carried (0 for non-release messages).
    #[must_use]
    pub fn notice_count(&self) -> usize {
        match &self.consistency {
            Consistency::Release { records, .. } => records.iter().map(|r| r.pages.len()).sum(),
            _ => 0,
        }
    }
}

/// Saturating 16-bit view of a vector-clock component — exactly what the
/// legacy `Vc` encoding puts on the wire, so the aggregated form is a
/// lossless re-encode of the same information.
fn vc_sat16(v: u32) -> u16 {
    u16::try_from(v).unwrap_or(u16::MAX)
}

/// Encodes `records` in the aggregated write-notice form: consecutive
/// records from the same creator form a group; the group's first record
/// carries its full vector clock, and every later record carries only the
/// components that differ from the creator's previous record in the group
/// (the rest are causally implied and elided). Record order is preserved
/// exactly, so decoding reproduces the legacy record sequence.
fn encode_aggregated_records(enc: &mut Encoder, records: &[IntervalRecord]) {
    // Group consecutive same-creator records.
    let mut groups: Vec<&[IntervalRecord]> = Vec::new();
    let mut rest = records;
    while let Some(first) = rest.first() {
        let len = rest.iter().take_while(|r| r.node == first.node).count();
        groups.push(&rest[..len]);
        rest = &rest[len..];
    }
    enc.put_u32(groups.len() as u32);
    for group in groups {
        enc.put_u32(group[0].node);
        enc.put_u32(group.len() as u32);
        let mut prev: Option<&Vc> = None;
        for rec in group {
            enc.put_u32(rec.index);
            match prev {
                None => rec.vc.encode(enc),
                Some(p) => {
                    let changed: Vec<(u32, u32)> = rec
                        .vc
                        .iter()
                        .filter(|&(n, v)| vc_sat16(v) != vc_sat16(p.get(n)))
                        .collect();
                    enc.put_u16(changed.len() as u16);
                    for (n, v) in changed {
                        enc.put_u16(n as u16);
                        enc.put_u16(vc_sat16(v));
                    }
                }
            }
            enc.put_seq(&rec.pages, |enc, &p| enc.put_u32(p));
            prev = Some(&rec.vc);
        }
    }
}

/// Decodes the aggregated write-notice form back into the exact record
/// sequence [`encode_aggregated_records`] was given (modulo the u16
/// saturation the legacy encoding also applies).
fn decode_aggregated_records(dec: &mut Decoder<'_>) -> Result<Vec<IntervalRecord>, DecodeError> {
    let n_groups = dec.get_u32()? as usize;
    if n_groups > dec.remaining() {
        return Err(DecodeError::BadLength {
            claimed: n_groups,
            remaining: dec.remaining(),
        });
    }
    let mut out = Vec::new();
    for _ in 0..n_groups {
        let node = dec.get_u32()?;
        let count = dec.get_u32()? as usize;
        if count > dec.remaining() {
            return Err(DecodeError::BadLength {
                claimed: count,
                remaining: dec.remaining(),
            });
        }
        let mut prev: Option<Vc> = None;
        for _ in 0..count {
            let index = dec.get_u32()?;
            let vc = match &prev {
                None => Vc::decode(dec)?,
                Some(p) => {
                    let mut vc = p.clone();
                    let n_changed = dec.get_u16()? as usize;
                    for _ in 0..n_changed {
                        let comp = u32::from(dec.get_u16()?);
                        let val = u32::from(dec.get_u16()?);
                        if comp as usize >= vc.len() {
                            return Err(DecodeError::BadTag {
                                tag: comp,
                                what: "aggregated vc component",
                            });
                        }
                        vc.set(comp, val);
                    }
                    vc
                }
            };
            let pages = dec.get_seq(|d| d.get_u32())?;
            prev = Some(vc.clone());
            out.push(IntervalRecord {
                node,
                index,
                vc,
                pages,
            });
        }
    }
    Ok(out)
}

/// A message after acceptance, handed to user-level code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceptedMsg {
    /// Immediate sender.
    pub src: u32,
    /// Original sender.
    pub origin: u32,
    /// Handler id it arrived under.
    pub handler: u32,
    /// The annotation it carried.
    pub annotation: Annotation,
    /// Application payload.
    pub body: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u32, index: u32, n: usize) -> IntervalRecord {
        let mut vc = Vc::new(n);
        vc.set(node, index);
        IntervalRecord {
            node,
            index,
            vc,
            pages: vec![3, 4],
        }
    }

    #[test]
    fn none_roundtrip() {
        let m = Message {
            src: 1,
            origin: 1,
            handler: 7,
            annotation: Annotation::None,
            body: b"payload".to_vec(),
            consistency: Consistency::None,
        };
        let back = Message::from_wire_bytes(1, &m.to_wire_bytes(0)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn request_roundtrip_carries_vt() {
        let mut vt = Vc::new(3);
        vt.set(2, 9);
        let m = Message {
            src: 0,
            origin: 0,
            handler: 1,
            annotation: Annotation::Request,
            body: vec![],
            consistency: Consistency::Request { vt: vt.clone() },
        };
        let back = Message::from_wire_bytes(0, &m.to_wire_bytes(0)).unwrap();
        assert_eq!(back.consistency, Consistency::Request { vt });
    }

    #[test]
    fn release_roundtrip_with_records() {
        let mut required = Vc::new(2);
        required.set(0, 2);
        let m = Message {
            src: 0,
            origin: 0,
            handler: 2,
            annotation: Annotation::Release,
            body: vec![1, 2, 3],
            consistency: Consistency::Release {
                required,
                records: vec![rec(0, 1, 2), rec(0, 2, 2)],
                diffs: vec![],
            },
        };
        let back = Message::from_wire_bytes(0, &m.to_wire_bytes(0)).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.notice_count(), 4);
    }

    #[test]
    fn request_is_larger_than_none() {
        // The §5.4 distinction: REQUEST costs a timestamp on the wire.
        let none = Message {
            src: 0,
            origin: 0,
            handler: 1,
            annotation: Annotation::None,
            body: vec![0; 8],
            consistency: Consistency::None,
        };
        let req = Message {
            annotation: Annotation::Request,
            consistency: Consistency::Request { vt: Vc::new(4) },
            ..none.clone()
        };
        let extra = req.to_wire_bytes(0).len() - none.to_wire_bytes(0).len();
        // Two bytes per node plus the length prefix.
        assert_eq!(extra, 2 + 4 * 2);
    }

    #[test]
    fn truncated_message_rejected() {
        let m = Message {
            src: 0,
            origin: 0,
            handler: 1,
            annotation: Annotation::Release,
            body: vec![9; 4],
            consistency: Consistency::Release {
                required: Vc::new(2),
                records: vec![rec(1, 1, 2)],
                diffs: vec![],
            },
        };
        let bytes = m.to_wire_bytes(0);
        for cut in [1, 5, bytes.len() - 1] {
            assert!(Message::from_wire_bytes(0, &bytes[..cut]).is_err());
        }
    }

    #[test]
    fn aggregated_release_roundtrips_losslessly() {
        // Three records from node 0 (a chain whose vc grows stepwise) and
        // one from node 2 — the aggregated form must reproduce them all,
        // in order, bit for bit.
        let n = 4;
        let mk = |node: u32, index: u32, other: (u32, u32), pages: Vec<u32>| {
            let mut vc = Vc::new(n);
            vc.set(node, index);
            vc.set(other.0, other.1);
            IntervalRecord {
                node,
                index,
                vc,
                pages,
            }
        };
        let records = vec![
            mk(0, 1, (1, 0), vec![3]),
            mk(0, 2, (1, 5), vec![3, 9]),
            mk(0, 3, (1, 5), vec![]),
            mk(2, 7, (3, 1), vec![11]),
        ];
        let mut required = Vc::new(n);
        required.set(0, 3);
        required.set(2, 7);
        let m = Message {
            src: 0,
            origin: 0,
            handler: 2,
            annotation: Annotation::Release,
            body: vec![5, 6],
            consistency: Consistency::Release {
                required,
                records,
                diffs: vec![],
            },
        };
        let agg = m.to_wire_bytes_with(0, true);
        let legacy = m.to_wire_bytes(0);
        assert_eq!(Message::from_wire_bytes(0, &agg).unwrap(), m);
        // Elided vc components make the aggregated frame strictly smaller
        // once a creator contributes more than one record.
        assert!(agg.len() < legacy.len(), "{} !< {}", agg.len(), legacy.len());
        // Tag byte distinguishes the encodings.
        assert_eq!(agg[0], 4);
        assert_eq!(legacy[0], 2);
    }

    #[test]
    fn aggregated_release_nt_uses_tag_5() {
        let m = Message {
            src: 1,
            origin: 1,
            handler: 2,
            annotation: Annotation::ReleaseNt,
            body: vec![],
            consistency: Consistency::Release {
                required: Vc::new(2),
                records: vec![rec(1, 1, 2)],
                diffs: vec![],
            },
        };
        let agg = m.to_wire_bytes_with(0, true);
        assert_eq!(agg[0], 5);
        assert_eq!(Message::from_wire_bytes(1, &agg).unwrap(), m);
    }

    #[test]
    fn aggregation_flag_leaves_non_releases_untouched() {
        let m = Message {
            src: 0,
            origin: 0,
            handler: 1,
            annotation: Annotation::Request,
            body: vec![1],
            consistency: Consistency::Request { vt: Vc::new(3) },
        };
        assert_eq!(m.to_wire_bytes_with(7, true), m.to_wire_bytes(7));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let m = Message {
            src: 0,
            origin: 0,
            handler: 1,
            annotation: Annotation::None,
            body: vec![],
            consistency: Consistency::None,
        };
        let mut bytes = m.to_wire_bytes(0);
        bytes.push(0xFF);
        assert!(Message::from_wire_bytes(0, &bytes).is_err());
    }
}
