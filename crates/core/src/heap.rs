//! Address-space layout helpers for the three CarlOS regions (§4.1).
//!
//! Applications see three disjoint regions:
//!
//! 1. a **private** region — ordinary Rust data on each node;
//! 2. a **non-coherent shared** region — identical address mappings on all
//!    nodes, but contents kept consistent only by explicit application
//!    messages ([`NonCoherentRegion`]);
//! 3. the **coherent shared** region — kept consistent by the
//!    message-driven mechanism (accessed through `Runtime`).
//!
//! [`CoherentHeap`] is a deterministic bump allocator: SPMD programs run the
//! same allocation sequence on every node, so all nodes compute identical
//! addresses with no communication.

/// Deterministic bump allocator over a coherent (or non-coherent) region.
///
/// # Examples
///
/// ```
/// let mut heap = carlos_core::CoherentHeap::new(1 << 16);
/// let a = heap.alloc(100, 8);
/// let b = heap.alloc(4, 4);
/// assert!(b >= a + 100);
/// assert_eq!(a % 8, 0);
/// ```
#[derive(Debug, Clone)]
pub struct CoherentHeap {
    next: usize,
    limit: usize,
    regions: Vec<carlos_lrc::RegionSpec>,
}

impl CoherentHeap {
    /// A heap over `limit` bytes starting at address 0.
    #[must_use]
    pub fn new(limit: usize) -> Self {
        Self {
            next: 0,
            limit,
            regions: Vec::new(),
        }
    }

    /// Allocates `size` bytes aligned to `align`; returns the address.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or the region is exhausted.
    pub fn alloc(&mut self, size: usize, align: usize) -> usize {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.next + align - 1) & !(align - 1);
        let end = addr
            .checked_add(size)
            .expect("allocation size overflow");
        assert!(
            end <= self.limit,
            "coherent region exhausted: want {size} at {addr}, limit {}",
            self.limit
        );
        self.next = end;
        addr
    }

    /// Allocates `size` bytes whose coherence unit is `granule` bytes
    /// instead of the engine's default page size — the variable-granularity
    /// hint API. The address is `granule`-aligned and the allocation is
    /// padded to a whole number of granules, so no later allocation can
    /// land inside the hinted range and silently inherit its granule.
    ///
    /// The recorded [`carlos_lrc::RegionSpec`]s ([`CoherentHeap::regions`])
    /// go into `LrcConfig::regions`; SPMD programs run the same allocation
    /// sequence everywhere, so all nodes build identical region tables.
    ///
    /// # Panics
    ///
    /// Panics if `granule` is not a power of two of at least 8 bytes, or if
    /// the region is exhausted.
    pub fn alloc_with_granule(&mut self, size: usize, granule: usize) -> usize {
        self.alloc_granule_hinted(size, granule, false)
    }

    /// Like [`CoherentHeap::alloc_with_granule`], but additionally marks the
    /// region *eager*: granules invalidated by incoming write notices are
    /// re-fetched right after the notices apply (batched per serving node
    /// when fetch coalescing is on) instead of one at a time on later access
    /// faults. Use for data the node is certain to re-read after every
    /// synchronization — hot scalars, task slots, boundary rows — and not
    /// for large arrays mostly owned by other nodes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`CoherentHeap::alloc_with_granule`].
    pub fn alloc_with_granule_eager(&mut self, size: usize, granule: usize) -> usize {
        self.alloc_granule_hinted(size, granule, true)
    }

    fn alloc_granule_hinted(&mut self, size: usize, granule: usize, eager: bool) -> usize {
        assert!(
            granule.is_power_of_two() && granule >= 8,
            "granule must be a power of two of at least 8 bytes"
        );
        let addr = self.alloc(size, granule);
        let len = size.div_ceil(granule) * granule;
        let end = addr.checked_add(len).expect("allocation size overflow");
        assert!(
            end <= self.limit,
            "coherent region exhausted: granule padding for {size} at {addr} passes limit {}",
            self.limit
        );
        self.next = end;
        let spec = carlos_lrc::RegionSpec::new(addr, len, granule);
        self.regions.push(if eager { spec.eager() } else { spec });
        addr
    }

    /// The granularity hints recorded by [`CoherentHeap::alloc_with_granule`],
    /// in allocation (= address) order.
    #[must_use]
    pub fn regions(&self) -> Vec<carlos_lrc::RegionSpec> {
        self.regions.clone()
    }

    /// Allocates a `count`-element array of `elem_size`-byte elements,
    /// page-aligning nothing special — alignment is `elem_size` rounded to
    /// the next power of two (capped at 16).
    pub fn alloc_array(&mut self, count: usize, elem_size: usize) -> usize {
        let align = elem_size.next_power_of_two().clamp(1, 16);
        self.alloc(count * elem_size, align)
    }

    /// Bytes allocated so far.
    #[must_use]
    pub fn used(&self) -> usize {
        self.next
    }

    /// Total capacity.
    #[must_use]
    pub fn limit(&self) -> usize {
        self.limit
    }
}

/// The non-coherent shared region: a per-node byte array with an identical
/// layout on every node. The single address map gives pointers a consistent
/// interpretation; consistency of the *contents* is the application's (or a
/// runtime library's) responsibility, by messaging.
#[derive(Debug, Clone)]
pub struct NonCoherentRegion {
    data: Vec<u8>,
}

impl NonCoherentRegion {
    /// A zero-filled region of `size` bytes.
    #[must_use]
    pub fn new(size: usize) -> Self {
        Self {
            data: vec![0; size],
        }
    }

    /// Reads `buf.len()` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range access.
    pub fn read(&self, addr: usize, buf: &mut [u8]) {
        buf.copy_from_slice(&self.data[addr..addr + buf.len()]);
    }

    /// Writes `data` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range access.
    pub fn write(&mut self, addr: usize, data: &[u8]) {
        self.data[addr..addr + data.len()].copy_from_slice(data);
    }

    /// Region size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-sized region.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_monotone_and_aligned() {
        let mut h = CoherentHeap::new(1024);
        let a = h.alloc(10, 4);
        let b = h.alloc(1, 1);
        let c = h.alloc(8, 8);
        assert_eq!(a % 4, 0);
        assert!(b >= a + 10);
        assert_eq!(c % 8, 0);
        assert!(h.used() >= 19);
    }

    #[test]
    fn identical_sequences_give_identical_addresses() {
        let mut h1 = CoherentHeap::new(4096);
        let mut h2 = CoherentHeap::new(4096);
        let seq = [(100, 8), (3, 1), (64, 16), (1, 1)];
        for (s, a) in seq {
            assert_eq!(h1.alloc(s, a), h2.alloc(s, a));
        }
    }

    #[test]
    fn alloc_array_sizes() {
        let mut h = CoherentHeap::new(1 << 20);
        let a = h.alloc_array(100, 8);
        assert_eq!(a % 8, 0);
        let b = h.alloc_array(10, 3); // 3 rounds to 4-byte alignment.
        assert_eq!(b % 4, 0);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut h = CoherentHeap::new(16);
        let _ = h.alloc(17, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        let mut h = CoherentHeap::new(64);
        let _ = h.alloc(1, 3);
    }

    #[test]
    fn granule_hints_record_padded_regions() {
        let mut h = CoherentHeap::new(1 << 16);
        let a = h.alloc(4, 4); // Unhinted prefix.
        let b = h.alloc_with_granule(100, 64);
        let c = h.alloc(4, 4);
        assert_eq!(a, 0);
        assert_eq!(b % 64, 0);
        assert!(c >= b + 128, "next alloc must clear the granule padding");
        let regions = h.regions();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].start, b);
        assert_eq!(regions[0].len, 128); // 100 rounded to two 64 B granules.
        assert_eq!(regions[0].granule, 64);
    }

    #[test]
    #[should_panic(expected = "power of two of at least 8")]
    fn bad_granule_panics() {
        let mut h = CoherentHeap::new(1 << 16);
        let _ = h.alloc_with_granule(16, 48);
    }

    #[test]
    fn noncoherent_region_roundtrip() {
        let mut r = NonCoherentRegion::new(64);
        assert_eq!(r.len(), 64);
        r.write(10, &[1, 2, 3]);
        let mut buf = [0u8; 3];
        r.read(10, &mut buf);
        assert_eq!(buf, [1, 2, 3]);
    }
}
