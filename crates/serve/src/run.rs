//! End-to-end serving runs: cluster roles, configuration scales, the
//! server and client node programs, and the merged serving result.
//!
//! The first `n/2` nodes are **servers** (each owns its hash shards and is
//! the sole writer of their memory); the rest are **clients** replaying
//! their deterministic open-loop schedules through the async request API.
//! A run is bracketed by barriers: epoch 100 starts traffic, epoch 101
//! closes it (and ends the timed window via `app.done_ns`), then node 0
//! reads the shared counters straight from the DSM — legal after the
//! barrier — and epoch 102 lets every node retire.

use std::collections::BTreeMap;

use carlos_apps::{AppReport, Collector};
use carlos_core::{Annotation, CoherentHeap, CoreConfig, Runtime};
use carlos_lrc::{LrcConfig, PageOwnership, RegionSpec};
use carlos_sim::{
    time::{ms, us, Ns},
    AckMode, Cluster, FaultPlan, GeParams, NodeCtx, SimConfig, SimReport,
};
use carlos_sync::BarrierSpec;

use crate::client::{ClientStats, KvClient, H_KV_REQ, H_SERVE_DONE};
use crate::store::{
    execute, meta_of, read_key, OpKind, Request, Status, StoreLayout, META_BYTES,
};
use crate::workload::{counter_bytes, counter_value, value_bytes, OpMix, Workload};

/// Handler id re-export for the server reply path.
use crate::client::H_KV_REP;

/// A scheduled harvest probe: at virtual time `at`, every client issues
/// `samples` gets spread evenly over the keyspace with a short deadline.
/// The answered fraction is the run's **harvest** — how much of the data
/// was reachable while faults were active (probes are scheduled inside the
/// fault window in the chaos configurations).
#[derive(Debug, Clone, Copy)]
pub struct HarvestProbe {
    /// Virtual time the probe fires.
    pub at: Ns,
    /// Per-probe answer deadline.
    pub timeout: Ns,
    /// Keys sampled per client.
    pub samples: usize,
}

/// Configuration for one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Cluster size; the first `n_nodes / 2` nodes are servers.
    pub n_nodes: usize,
    /// Run seed (workload schedules derive per-client streams from it).
    pub seed: u64,
    /// Distinct keys in the Zipfian keyspace (counter keys live above it).
    pub keyspace: u64,
    /// Zipf skew parameter (0.99 is the YCSB-style default).
    pub theta: f64,
    /// Stored value length in bytes.
    pub val_len: usize,
    /// Relative get/put/delete weights.
    pub mix: OpMix,
    /// Operations each client issues.
    pub ops_per_client: u64,
    /// CAS increment intents per client, interleaved evenly.
    pub cas_per_client: u64,
    /// Shared counters the CAS intents target round-robin.
    pub counter_keys: u64,
    /// Mean exponential inter-arrival gap per client.
    pub mean_interarrival: Ns,
    /// Per-operation completion deadline.
    pub op_timeout: Ns,
    /// Extra virtual time after the last arrival before a client gives up
    /// on stragglers (everything still pending is attributed timed-out).
    pub drain: Ns,
    /// Hash shards per server node.
    pub shards_per_server: usize,
    /// Slots per shard (power of two; sized ≥ 2× expected keys/shard).
    pub slots_per_shard: usize,
    /// Variable-granularity layout hints (eager fine granules for slot
    /// headers, demand cell granules for values).
    pub granularity_hints: bool,
    /// Server-side compute charged per request executed.
    pub ns_per_op: Ns,
    /// DSM page size.
    pub page_size: usize,
    /// LRC record-count GC threshold (sized high so no GC runs mid-serve).
    pub gc_threshold_records: usize,
    /// Optional harvest probe.
    pub probe: Option<HarvestProbe>,
    /// Network/cost model.
    pub sim: SimConfig,
    /// CarlOS cost model.
    pub core: CoreConfig,
    /// Transport acknowledgement mode.
    pub ack: AckMode,
    /// Optional consistency oracle (observer-only).
    pub check: Option<carlos_check::Checker>,
    /// Optional causal tracer (observer-only).
    pub trace: Option<carlos_trace::Tracer>,
}

/// Slot count giving a ≤ 50% load factor for `keyspace` keys over
/// `n_shards` shards.
fn slots_for(keyspace: u64, n_shards: usize) -> usize {
    let keyspace = usize::try_from(keyspace).expect("keyspace fits usize");
    ((keyspace * 2) / n_shards).next_power_of_two().max(64)
}

impl ServeConfig {
    /// The paper-scale serving row: 64 Ki keys, 128 B values, a cluster
    /// offered load of ~1000 ops/s split evenly over the clients (total
    /// 256 Ki operations regardless of cluster size, so rows at different
    /// `n` serve the same traffic).
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes < 2` (one server and one client are required).
    #[must_use]
    pub fn paper(n_nodes: usize) -> Self {
        assert!(n_nodes >= 2, "serving needs a server and a client");
        let n_servers = n_nodes / 2;
        let clients = (n_nodes - n_servers) as u64;
        let shards_per_server = 4;
        let keyspace: u64 = 65_536;
        let ops_per_client = 262_144 / clients;
        let mean_interarrival = us(1_000) * clients;
        Self {
            n_nodes,
            seed: 0x5E7E_1994,
            keyspace,
            theta: 0.99,
            val_len: 128,
            mix: OpMix::read_heavy(),
            ops_per_client,
            cas_per_client: ops_per_client / 64,
            counter_keys: 8,
            mean_interarrival,
            // Generous: fault-free serving must never time out, even in
            // the extreme tail (queueing bursts on the hot shards).
            op_timeout: mean_interarrival * 1_000,
            drain: mean_interarrival * 2_000,
            shards_per_server,
            slots_per_shard: slots_for(keyspace, n_servers * shards_per_server),
            granularity_hints: true,
            ns_per_op: us(20),
            page_size: 8192,
            gc_threshold_records: 1 << 26,
            probe: None,
            sim: SimConfig::osdi94(),
            core: CoreConfig::osdi94(),
            ack: AckMode::Implicit,
            check: None,
            trace: None,
        }
    }

    /// A small, fast workload for tests.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes < 2`.
    #[must_use]
    pub fn test(n_nodes: usize) -> Self {
        assert!(n_nodes >= 2, "serving needs a server and a client");
        let n_servers = n_nodes / 2;
        let shards_per_server = 2;
        let keyspace: u64 = 4_096;
        Self {
            n_nodes,
            seed: 0x0CA5_E5E7,
            keyspace,
            theta: 0.99,
            val_len: 64,
            mix: OpMix::read_heavy(),
            ops_per_client: 384,
            cas_per_client: 24,
            counter_keys: 2,
            mean_interarrival: us(250),
            op_timeout: ms(25),
            drain: ms(50),
            shards_per_server,
            slots_per_shard: slots_for(keyspace, n_servers * shards_per_server),
            granularity_hints: true,
            ns_per_op: us(2),
            page_size: 512,
            gc_threshold_records: 1_000_000,
            probe: None,
            sim: SimConfig::fast_test(),
            core: CoreConfig::fast_test(),
            ack: AckMode::Implicit,
            check: None,
            trace: None,
        }
    }

    /// The chaos configuration: the test workload under an ARQ transport,
    /// a burst-loss window, and a partition cutting the last server off
    /// from every client, with a harvest probe scheduled inside the
    /// partition and an op timeout short enough that partitioned traffic
    /// visibly times out (yield < 1).
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes < 2`.
    #[must_use]
    pub fn chaos(n_nodes: usize) -> Self {
        let mut cfg = Self::test(n_nodes);
        // Traffic horizon: the span of one client's arrival schedule.
        let horizon = cfg.ops_per_client * cfg.mean_interarrival;
        let n_servers = cfg.n_servers();
        let last_server = (n_servers - 1) as u32;
        let clients: Vec<u32> = (n_servers as u32..cfg.n_nodes as u32).collect();
        cfg.ack = AckMode::Arq {
            window: 16,
            rto: ms(5),
        };
        cfg.op_timeout = cfg.mean_interarrival * 16;
        cfg.drain = cfg.op_timeout * 5;
        cfg.probe = Some(HarvestProbe {
            at: horizon * 2 / 5,
            timeout: cfg.op_timeout,
            samples: 64,
        });
        cfg.sim.fault_plan = FaultPlan::new(0x0DD5_EED5)
            .burst_loss(horizon / 10, horizon / 5, GeParams::bursty(0.3))
            .partition(&[last_server], &clients, horizon / 4, horizon * 55 / 100);
        cfg
    }

    /// Server node count (the first `n_servers` node ids).
    #[must_use]
    pub fn n_servers(&self) -> usize {
        (self.n_nodes / 2).max(1)
    }

    /// Client node count.
    #[must_use]
    pub fn n_clients(&self) -> usize {
        self.n_nodes - self.n_servers()
    }
}

/// Per-server accounting.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Requests executed.
    pub ops_served: u64,
    /// Executed requests per status: Ok / NotFound / CasFail / Overflow.
    pub status_counts: [u64; 4],
    /// Keys this server mutated (size of its private version mirror).
    pub mirror_keys: u64,
    /// Mirror entries whose version disagrees with the DSM slot header
    /// after serving ends (an integrity failure; always 0).
    pub mirror_mismatches: u64,
}

/// Per-client accounting: the request-API stats plus the CAS-chain
/// intent ledger.
#[derive(Debug, Clone, Default)]
pub struct ClientNodeStats {
    /// Submit/poll accounting (includes CAS wire retries).
    pub stats: ClientStats,
    /// CAS increment intents scheduled.
    pub cas_intents: u64,
    /// Intents that landed an `Ok`.
    pub cas_done: u64,
    /// Intents abandoned on timeout or at the drain deadline.
    pub cas_abandoned: u64,
}

/// One node's contribution to the merged totals.
#[derive(Debug, Clone)]
enum NodeStats {
    Server(ServerStats),
    Client(Box<ClientNodeStats>),
}

/// Cluster-wide serving totals, merged in node-id order.
#[derive(Debug, Clone, Default)]
pub struct ServeTotals {
    /// Merged client-side accounting.
    pub client: ClientStats,
    /// CAS intents scheduled across all clients.
    pub cas_intents: u64,
    /// CAS intents completed.
    pub cas_done: u64,
    /// CAS intents abandoned.
    pub cas_abandoned: u64,
    /// Requests executed across all servers.
    pub ops_served: u64,
    /// Server-side status counts.
    pub server_status: [u64; 4],
    /// Mutated keys across all server mirrors.
    pub mirror_keys: u64,
    /// Mirror/DSM version disagreements (always 0).
    pub mirror_mismatches: u64,
}

impl ServeTotals {
    /// **Yield**: completed / attempted operations (1.0 when idle).
    #[must_use]
    pub fn yield_fraction(&self) -> f64 {
        if self.client.attempted == 0 {
            1.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.client.completed as f64 / self.client.attempted as f64
            }
        }
    }

    /// **Harvest**: the fraction of probe gets answered in time (1.0 when
    /// no probe was scheduled).
    #[must_use]
    pub fn harvest(&self) -> f64 {
        if self.client.probes_attempted == 0 {
            1.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.client.probes_answered as f64 / self.client.probes_attempted as f64
            }
        }
    }
}

/// Result of a serving run.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// Simulation report and derived table columns.
    pub app: AppReport,
    /// Merged serving totals.
    pub totals: ServeTotals,
    /// Final shared-counter values, read from the DSM by node 0 after the
    /// closing barrier (index = counter key).
    pub counters: Vec<u64>,
}

impl ServeResult {
    /// Completed operations per virtual second.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        if self.app.secs == 0.0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.totals.client.completed as f64 / self.app.secs
            }
        }
    }

    /// Total wire payload bytes per completed operation (includes DSM
    /// consistency traffic — the real cost of an op on this system).
    #[must_use]
    pub fn bytes_per_op(&self) -> u64 {
        self.app.report.net.payload_bytes / self.totals.client.completed.max(1)
    }
}

/// SPMD store layout: identical on every node, no communication.
fn layout(cfg: &ServeConfig) -> (StoreLayout, usize, Vec<RegionSpec>) {
    let n_shards = cfg.n_servers() * cfg.shards_per_server;
    let need = n_shards * cfg.slots_per_shard * (META_BYTES + cfg.val_len);
    let mut heap = CoherentHeap::new((need * 2).next_power_of_two().max(1 << 22));
    let lay = StoreLayout::build(
        &mut heap,
        cfg.n_servers(),
        cfg.shards_per_server,
        cfg.slots_per_shard,
        cfg.val_len,
        cfg.granularity_hints,
    );
    let region = heap.used().next_multiple_of(cfg.page_size);
    (lay, region, heap.regions())
}

/// The server program: execute requests until every client said DONE,
/// then audit the DSM against the private version mirror.
fn server_node(cfg: &ServeConfig, rt: &mut Runtime, lay: &StoreLayout) -> ServerStats {
    let n_clients = cfg.n_clients();
    let mut stats = ServerStats::default();
    // Private mirror of every version this server committed. Validated
    // against the DSM after serving: a strong integrity check that costs
    // no cross-node traffic.
    let mut mirror: BTreeMap<u64, u32> = BTreeMap::new();
    let mut dones = 0usize;
    while dones < n_clients {
        let m = rt.wait_accepted_any(&[H_KV_REQ, H_SERVE_DONE]);
        if m.handler == H_SERVE_DONE {
            dones += 1;
            continue;
        }
        let req = Request::from_bytes(&m.body).expect("well-formed request");
        rt.compute(cfg.ns_per_op);
        let rep = execute(rt, lay, &req);
        if rep.status == Status::Ok && req.op != OpKind::Get {
            mirror.insert(req.key, rep.version);
        }
        stats.ops_served += 1;
        stats.status_counts[rep.status as usize] += 1;
        rt.send(m.origin, H_KV_REP, rep.to_bytes(), Annotation::Release);
    }
    stats.mirror_keys = mirror.len() as u64;
    for (&key, &ver) in &mirror {
        if meta_of(rt, lay, key).map(|m| m.version) != Some(ver) {
            stats.mirror_mismatches += 1;
        }
    }
    stats
}

/// One shared counter's increment chain: at most one CAS in flight per
/// counter per client; later intents queue behind it.
#[derive(Debug, Clone, Copy, Default)]
struct Chain {
    queued: u64,
    in_flight: Option<u32>,
    version: u32,
    count: u64,
    pending_count: u64,
}

fn submit_incr(
    rt: &mut Runtime,
    kv: &mut KvClient,
    cfg: &ServeConfig,
    idx: usize,
    ch: &mut Chain,
    cas_req: &mut BTreeMap<u32, usize>,
) {
    let key = cfg.keyspace + idx as u64;
    ch.pending_count = ch.count + 1;
    let value = counter_bytes(key, ch.pending_count, cfg.val_len.min(64));
    let deadline = rt.ctx().now() + cfg.op_timeout;
    let id = kv.submit(rt, OpKind::Cas, key, ch.version, value, deadline, false);
    cas_req.insert(id, idx);
    ch.in_flight = Some(id);
}

/// The client program: replay the open-loop schedule, multiplexing every
/// in-flight op through the submit/poll API; fire the harvest probe; keep
/// CAS chains moving; attribute every scheduled op as completed or
/// timed out by the drain deadline.
#[allow(clippy::too_many_lines)]
fn client_node(cfg: &ServeConfig, rt: &mut Runtime, lay: &StoreLayout) -> ClientNodeStats {
    let node = rt.node_id();
    let mut wl = Workload::new(
        cfg.seed,
        node,
        cfg.keyspace,
        cfg.theta,
        cfg.mean_interarrival,
        cfg.mix,
        cfg.ops_per_client,
        cfg.cas_per_client,
        cfg.counter_keys,
    );
    let mut kv = KvClient::new(lay.clone());
    let mut chains: Vec<Chain> =
        vec![Chain::default(); usize::try_from(cfg.counter_keys).expect("counter keys fit")];
    let mut cas_req: BTreeMap<u32, usize> = BTreeMap::new();
    let mut out = ClientNodeStats::default();
    let mut next = wl.next_arrival();
    let mut end_deadline = Ns::MAX;
    let mut probe_fired = cfg.probe.is_none();

    loop {
        for c in kv.poll(rt) {
            if c.probe || c.op != OpKind::Cas {
                continue;
            }
            let Some(idx) = cas_req.remove(&c.req_id) else {
                continue;
            };
            let ch = &mut chains[idx];
            ch.in_flight = None;
            match c.status {
                Status::Ok => {
                    ch.version = c.version;
                    ch.count = ch.pending_count;
                    out.cas_done += 1;
                    if ch.queued > 0 {
                        ch.queued -= 1;
                        submit_incr(rt, &mut kv, cfg, idx, ch, &mut cas_req);
                    }
                }
                Status::CasFail => {
                    // Another client won; the reply carries the current
                    // version and cell, so retry without a separate get.
                    ch.version = c.version;
                    ch.count = if c.value.is_empty() {
                        0
                    } else {
                        counter_value(&c.value)
                    };
                    submit_incr(rt, &mut kv, cfg, idx, ch, &mut cas_req);
                }
                Status::NotFound | Status::Overflow => {
                    out.cas_abandoned += 1;
                }
            }
        }
        // CAS requests the API expired: the intent is abandoned (retrying
        // risks double-increment if the original was applied late), but
        // the chain moves on to its next queued intent.
        for (idx, ch) in chains.iter_mut().enumerate() {
            if let Some(id) = ch.in_flight {
                if !kv.is_pending(id) {
                    cas_req.remove(&id);
                    ch.in_flight = None;
                    out.cas_abandoned += 1;
                    if ch.queued > 0 {
                        ch.queued -= 1;
                        submit_incr(rt, &mut kv, cfg, idx, ch, &mut cas_req);
                    }
                }
            }
        }

        let now = rt.ctx().now();
        if let Some(p) = &cfg.probe {
            if !probe_fired && now >= p.at {
                probe_fired = true;
                for i in 0..p.samples {
                    let key = (i as u64) * cfg.keyspace / (p.samples as u64);
                    kv.submit(rt, OpKind::Get, key, 0, Vec::new(), now + p.timeout, true);
                }
                continue;
            }
        }
        if let Some(a) = next {
            if now >= a.at {
                match a.op {
                    OpKind::Cas => {
                        out.cas_intents += 1;
                        let idx = usize::try_from(a.key).expect("counter index fits");
                        let ch = &mut chains[idx];
                        if ch.in_flight.is_some() {
                            ch.queued += 1;
                        } else {
                            submit_incr(rt, &mut kv, cfg, idx, ch, &mut cas_req);
                        }
                    }
                    op => {
                        let value = if op == OpKind::Put {
                            value_bytes(a.key, node, cfg.val_len)
                        } else {
                            Vec::new()
                        };
                        kv.submit(rt, op, a.key, 0, value, now + cfg.op_timeout, false);
                    }
                }
                next = wl.next_arrival();
                if next.is_none() {
                    end_deadline = a.at + cfg.drain;
                }
                continue;
            }
        }

        let chains_idle = chains.iter().all(|c| c.in_flight.is_none() && c.queued == 0);
        if next.is_none() && probe_fired && chains_idle && kv.in_flight() == 0 {
            break;
        }
        if now >= end_deadline {
            break;
        }
        let mut dl = end_deadline;
        if let Some(a) = next {
            dl = dl.min(a.at);
        }
        if let Some(p) = &cfg.probe {
            if !probe_fired {
                dl = dl.min(p.at);
            }
        }
        dl = dl.min(kv.next_expiry());
        rt.pump(Some(dl));
    }

    // Drain deadline: everything still in flight is attributed timed-out,
    // queued intents are abandoned — nothing disappears silently.
    kv.expire_all();
    for ch in &mut chains {
        out.cas_abandoned += ch.queued;
        ch.queued = 0;
        if ch.in_flight.take().is_some() {
            out.cas_abandoned += 1;
        }
    }
    // Tell every server this client is finished: per-pair FIFO guarantees
    // all of its requests arrive first.
    for s in 0..cfg.n_servers() as u32 {
        rt.send(s, H_SERVE_DONE, Vec::new(), Annotation::None);
    }
    out.stats = std::mem::take(&mut kv.stats);
    out
}

/// One node of the serving cluster (role decided by node id).
fn serve_node(cfg: &ServeConfig, ctx: NodeCtx) -> (NodeStats, Option<Vec<u64>>) {
    let (lay, region, regions) = layout(cfg);
    let lrc = LrcConfig {
        n_nodes: cfg.n_nodes,
        page_size: cfg.page_size,
        region_bytes: region,
        gc_threshold_records: cfg.gc_threshold_records,
        ownership: PageOwnership::Banded,
        regions,
    };
    let mut rt = Runtime::with_ack_mode(ctx, lrc, cfg.core.clone(), cfg.ack);
    if let Some(check) = &cfg.check {
        check.install(&mut rt);
    }
    if let Some(trace) = &cfg.trace {
        trace.install(&mut rt);
    }
    let sys = carlos_sync::install(&mut rt);
    let barrier = BarrierSpec::global(900, 0);
    sys.barrier(&mut rt, barrier, 100);
    let node = rt.node_id();
    let out = if (node as usize) < cfg.n_servers() {
        let s = server_node(cfg, &mut rt, &lay);
        rt.ctx().count("serve.served", s.ops_served);
        NodeStats::Server(s)
    } else {
        let c = client_node(cfg, &mut rt, &lay);
        rt.ctx().count("serve.attempted", c.stats.attempted);
        rt.ctx().count("serve.completed", c.stats.completed);
        rt.ctx().count("serve.timed_out", c.stats.timed_out);
        NodeStats::Client(Box::new(c))
    };
    sys.barrier(&mut rt, barrier, 101);
    rt.ctx().count("app.done_ns", rt.ctx().now());
    let counters = (node == 0).then(|| {
        (0..cfg.counter_keys)
            .map(|c| {
                read_key(&mut rt, &lay, cfg.keyspace + c).map_or(0, |(_, v)| counter_value(&v))
            })
            .collect()
    });
    sys.barrier(&mut rt, barrier, 102);
    rt.shutdown();
    (out, counters)
}

fn build_serve(cfg: &ServeConfig) -> (Cluster, Collector<NodeStats>, Collector<Vec<u64>>) {
    let stats_c: Collector<NodeStats> = Collector::new();
    let counters_c: Collector<Vec<u64>> = Collector::new();
    let mut cluster = Cluster::new(cfg.sim.clone(), cfg.n_nodes);
    if let Some(check) = &cfg.check {
        check.attach(&mut cluster);
    }
    if let Some(trace) = &cfg.trace {
        trace.attach(&mut cluster);
    }
    for node in 0..cfg.n_nodes as u32 {
        let cfg = cfg.clone();
        let stats_c = stats_c.clone();
        let counters_c = counters_c.clone();
        cluster.spawn_node(node, move |ctx| {
            let (stats, counters) = serve_node(&cfg, ctx);
            stats_c.put(node, stats);
            if let Some(c) = counters {
                counters_c.put(node, c);
            }
        });
    }
    (cluster, stats_c, counters_c)
}

fn finish_serve(
    report: SimReport,
    stats_c: &Collector<NodeStats>,
    counters_c: &Collector<Vec<u64>>,
) -> ServeResult {
    let mut totals = ServeTotals::default();
    for (_, s) in stats_c.take() {
        match s {
            NodeStats::Server(sv) => {
                totals.ops_served += sv.ops_served;
                for (a, b) in totals.server_status.iter_mut().zip(sv.status_counts) {
                    *a += b;
                }
                totals.mirror_keys += sv.mirror_keys;
                totals.mirror_mismatches += sv.mirror_mismatches;
            }
            NodeStats::Client(cl) => {
                totals.client.merge(&cl.stats);
                totals.cas_intents += cl.cas_intents;
                totals.cas_done += cl.cas_done;
                totals.cas_abandoned += cl.cas_abandoned;
            }
        }
    }
    let counters = counters_c
        .take()
        .into_iter()
        .next()
        .map(|(_, c)| c)
        .unwrap_or_default();
    ServeResult {
        app: AppReport::new(report),
        totals,
        counters,
    }
}

/// Runs a serving workload on a simulated cluster.
///
/// # Panics
///
/// Panics on configuration errors or internal protocol violations.
#[must_use]
pub fn run_serve(cfg: &ServeConfig) -> ServeResult {
    let (cluster, stats_c, counters_c) = build_serve(cfg);
    let report = cluster.run();
    finish_serve(report, &stats_c, &counters_c)
}

/// Runs a serving workload, returning simulation failures (deadlock, node
/// panic, safety-valve trip) as a [`carlos_sim::SimError`] value instead
/// of panicking.
///
/// # Errors
///
/// Returns the [`carlos_sim::SimError`] describing how the run failed.
pub fn try_run_serve(cfg: &ServeConfig) -> Result<ServeResult, carlos_sim::SimError> {
    let (cluster, stats_c, counters_c) = build_serve(cfg);
    let report = cluster.try_run()?;
    Ok(finish_serve(report, &stats_c, &counters_c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    fn fingerprint(r: &ServeResult) -> String {
        let mut s = String::new();
        let t = &r.totals;
        let _ = writeln!(
            s,
            "elapsed={} events={} messages={} payload={}",
            r.app.report.elapsed,
            r.app.report.events_processed,
            r.app.report.net.messages,
            r.app.report.net.payload_bytes,
        );
        let _ = writeln!(
            s,
            "attempted={} completed={} timed_out={} late={} status={:?} badvals={}",
            t.client.attempted,
            t.client.completed,
            t.client.timed_out,
            t.client.late_replies,
            t.client.status_counts,
            t.client.value_check_failures,
        );
        let _ = writeln!(
            s,
            "cas intents={} done={} abandoned={} served={} mirror={}/{}",
            t.cas_intents,
            t.cas_done,
            t.cas_abandoned,
            t.ops_served,
            t.mirror_mismatches,
            t.mirror_keys,
        );
        let _ = writeln!(
            s,
            "hist n={} sum={} p50={} p99={} p999={} probes={}/{}",
            t.client.hist.count(),
            t.client.hist.sum(),
            t.client.hist.quantile(0.50),
            t.client.hist.quantile(0.99),
            t.client.hist.quantile(0.999),
            t.client.probes_answered,
            t.client.probes_attempted,
        );
        let _ = writeln!(s, "counters={:?}", r.counters);
        s
    }

    #[test]
    fn fault_free_serve_is_exact() {
        let cfg = ServeConfig::test(4);
        let r = run_serve(&cfg);
        let t = &r.totals;
        let clients = cfg.n_clients() as u64;
        // Every scheduled op resolves: no timeouts, no late replies, no
        // corrupt values, perfect yield.
        assert_eq!(t.client.timed_out, 0);
        assert_eq!(t.client.late_replies, 0);
        assert_eq!(t.client.value_check_failures, 0);
        assert_eq!(t.client.completed, t.client.attempted);
        assert!((t.yield_fraction() - 1.0).abs() < f64::EPSILON);
        // Server-side integrity: the mirrors agree with the DSM.
        assert_eq!(t.mirror_mismatches, 0);
        assert!(t.mirror_keys > 0);
        assert_eq!(t.ops_served, t.client.attempted);
        // CAS exactness: every intent lands, and the shared counters sum
        // to exactly the cluster-wide intent count.
        assert_eq!(t.cas_intents, clients * cfg.cas_per_client);
        assert_eq!(t.cas_done, t.cas_intents);
        assert_eq!(t.cas_abandoned, 0);
        let per_counter = clients * cfg.cas_per_client / cfg.counter_keys;
        assert_eq!(r.counters, vec![per_counter; cfg.counter_keys as usize]);
        // Latency accounting covers exactly the completed ops.
        assert_eq!(t.client.hist.count(), t.client.completed);
        assert!(r.ops_per_sec() > 0.0);
        assert!(r.bytes_per_op() > 0);
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let a = run_serve(&ServeConfig::test(4));
        let b = run_serve(&ServeConfig::test(4));
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn parallel_matches_serial() {
        let serial = run_serve(&ServeConfig::test(4));
        let mut cfg = ServeConfig::test(4);
        cfg.sim = cfg.sim.parallel(true);
        let par = run_serve(&cfg);
        assert_eq!(fingerprint(&serial), fingerprint(&par));
    }

    #[test]
    fn plain_pages_also_serve() {
        let mut cfg = ServeConfig::test(4);
        cfg.granularity_hints = false;
        let r = run_serve(&cfg);
        assert_eq!(r.totals.client.completed, r.totals.client.attempted);
        assert_eq!(r.totals.mirror_mismatches, 0);
    }
}
