//! The sharded key-value store: shared-memory layout, wire encoding of
//! operations, and server-side execution against the DSM.
//!
//! Keys are hashed to **shards**; each shard is owned by exactly one
//! server node, which is the only writer of the shard's memory. A shard
//! is a linear-probed hash table split into two coherent regions:
//!
//! - a **metadata table** — 16 B per slot (key, version, value length).
//!   Hot and tiny, so with granularity hints it is carved into eager
//!   64 B fine granules: a RELEASE reply pushes the updated slot header
//!   to the requesting client instead of inviting a page-sized demand
//!   fetch later;
//! - a **value table** — one fixed-capacity cell per slot, allocated as
//!   demand granules of one cell each: peers that never read a value
//!   never pay for it.
//!
//! Because the owning server serializes all mutations of its shards,
//! there are no write-write races anywhere in the store; consistency
//! information flows to clients exclusively on the RELEASE-annotated
//! replies (the paper's message-driven model applied to serving).

use carlos_core::{CoherentHeap, Runtime};

/// Bytes per slot header: key (8) + version (4) + value length (4).
pub const META_BYTES: usize = 16;

/// `vlen` sentinel marking a tombstoned (deleted) entry.
pub const TOMBSTONE: u32 = u32::MAX;

/// Stored values must hold the 8-byte key self-tag plus an 8-byte
/// counter cell.
pub const MIN_VAL_LEN: usize = 16;

/// SplitMix64: the store's deterministic key-placement hash.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Addresses of the store's shard tables, computed identically on every
/// node from the configuration (SPMD layout, no communication).
#[derive(Debug, Clone)]
pub struct StoreLayout {
    /// Total shard count (`n_servers * shards_per_server`).
    pub n_shards: usize,
    /// Server nodes (shard `s` is owned by node `s % n_servers`).
    pub n_servers: usize,
    /// Slots per shard (power of two).
    pub slots_per_shard: usize,
    /// Fixed value-cell capacity in bytes.
    pub val_cap: usize,
    meta_base: Vec<usize>,
    val_base: Vec<usize>,
}

impl StoreLayout {
    /// Carves the shard tables out of `heap`. With `hints`, slot headers
    /// become eager 64 B fine granules and value cells demand granules of
    /// one cell; without, both tables use plain page-granularity
    /// allocations.
    #[must_use]
    pub fn build(
        heap: &mut CoherentHeap,
        n_servers: usize,
        shards_per_server: usize,
        slots_per_shard: usize,
        val_cap: usize,
        hints: bool,
    ) -> Self {
        assert!(slots_per_shard.is_power_of_two(), "slot count must be a power of two");
        assert!(val_cap >= MIN_VAL_LEN, "value capacity below minimum");
        let n_shards = n_servers * shards_per_server;
        let val_granule = val_cap.next_power_of_two().max(64);
        let mut meta_base = Vec::with_capacity(n_shards);
        let mut val_base = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            if hints {
                meta_base.push(heap.alloc_with_granule_eager(slots_per_shard * META_BYTES, 64));
                val_base.push(heap.alloc_with_granule(slots_per_shard * val_cap, val_granule));
            } else {
                meta_base.push(heap.alloc(slots_per_shard * META_BYTES, META_BYTES));
                val_base.push(heap.alloc(slots_per_shard * val_cap, 8));
            }
        }
        Self {
            n_shards,
            n_servers,
            slots_per_shard,
            val_cap,
            meta_base,
            val_base,
        }
    }

    /// The shard a key hashes to.
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        (mix64(key) % self.n_shards as u64) as usize
    }

    /// The server node owning `shard`.
    #[must_use]
    pub fn server_of(&self, shard: usize) -> u32 {
        (shard % self.n_servers) as u32
    }

    /// The slot linear probing starts from for `key` within its shard.
    #[must_use]
    pub fn home_slot(&self, key: u64) -> usize {
        (mix64(key.rotate_left(32) ^ 0xC0DE) % self.slots_per_shard as u64) as usize
    }

    /// Address of the slot header.
    #[must_use]
    pub fn meta_addr(&self, shard: usize, slot: usize) -> usize {
        self.meta_base[shard] + slot * META_BYTES
    }

    /// Address of the slot's value cell.
    #[must_use]
    pub fn val_addr(&self, shard: usize, slot: usize) -> usize {
        self.val_base[shard] + slot * self.val_cap
    }
}

/// One decoded slot header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotMeta {
    /// Key stored in the slot (meaningful when `version > 0`).
    pub key: u64,
    /// Mutation count; `0` means the slot has never been written.
    pub version: u32,
    /// Stored value length, or [`TOMBSTONE`].
    pub vlen: u32,
}

impl SlotMeta {
    /// True when the slot holds a live (non-deleted) entry.
    #[must_use]
    pub fn live(&self) -> bool {
        self.version > 0 && self.vlen != TOMBSTONE
    }

    fn read(rt: &mut Runtime, addr: usize) -> Self {
        let mut b = [0u8; META_BYTES];
        rt.read_bytes(addr, &mut b);
        Self {
            key: u64::from_le_bytes(b[0..8].try_into().expect("meta key")),
            version: u32::from_le_bytes(b[8..12].try_into().expect("meta version")),
            vlen: u32::from_le_bytes(b[12..16].try_into().expect("meta vlen")),
        }
    }

    fn write(&self, rt: &mut Runtime, addr: usize) {
        let mut b = [0u8; META_BYTES];
        b[0..8].copy_from_slice(&self.key.to_le_bytes());
        b[8..12].copy_from_slice(&self.version.to_le_bytes());
        b[12..16].copy_from_slice(&self.vlen.to_le_bytes());
        rt.write_bytes(addr, &b);
    }
}

/// Operation kinds carried in request messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Read a key.
    Get,
    /// Unconditional versioned write.
    Put,
    /// Tombstone a key.
    Delete,
    /// Compare-and-swap: write only if the stored version equals
    /// `expected` (`expected == 0` inserts into an empty or tombstoned
    /// slot).
    Cas,
}

impl OpKind {
    fn to_u8(self) -> u8 {
        match self {
            OpKind::Get => 0,
            OpKind::Put => 1,
            OpKind::Delete => 2,
            OpKind::Cas => 3,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => OpKind::Get,
            1 => OpKind::Put,
            2 => OpKind::Delete,
            3 => OpKind::Cas,
            _ => return None,
        })
    }
}

/// Reply status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The operation applied (or the get found a live entry).
    Ok,
    /// No live entry for the key.
    NotFound,
    /// CAS version mismatch; the reply carries the current version and
    /// value so the client can retry without a separate get.
    CasFail,
    /// The shard's slot table is full (sizing bug; counted, never silent).
    Overflow,
}

impl Status {
    fn to_u8(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::NotFound => 1,
            Status::CasFail => 2,
            Status::Overflow => 3,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => Status::Ok,
            1 => Status::NotFound,
            2 => Status::CasFail,
            3 => Status::Overflow,
            _ => return None,
        })
    }
}

/// A decoded request message (client → shard owner, REQUEST-annotated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-local completion tag.
    pub req_id: u32,
    /// Operation.
    pub op: OpKind,
    /// Key operated on.
    pub key: u64,
    /// Expected version (CAS only; ignored otherwise).
    pub expected: u32,
    /// Value payload (put/CAS).
    pub value: Vec<u8>,
}

impl Request {
    /// Wire encoding.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(19 + self.value.len());
        b.extend_from_slice(&self.req_id.to_le_bytes());
        b.push(self.op.to_u8());
        b.extend_from_slice(&self.key.to_le_bytes());
        b.extend_from_slice(&self.expected.to_le_bytes());
        b.extend_from_slice(
            &u16::try_from(self.value.len()).expect("value fits u16").to_le_bytes(),
        );
        b.extend_from_slice(&self.value);
        b
    }

    /// Wire decoding; `None` on malformed input.
    #[must_use]
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() < 19 {
            return None;
        }
        let vlen = u16::from_le_bytes(b[17..19].try_into().ok()?) as usize;
        if b.len() != 19 + vlen {
            return None;
        }
        Some(Self {
            req_id: u32::from_le_bytes(b[0..4].try_into().ok()?),
            op: OpKind::from_u8(b[4])?,
            key: u64::from_le_bytes(b[5..13].try_into().ok()?),
            expected: u32::from_le_bytes(b[13..17].try_into().ok()?),
            value: b[19..].to_vec(),
        })
    }
}

/// A decoded reply message (shard owner → client, RELEASE-annotated: the
/// reply carries the server's consistency information, so the client's
/// DSM view includes the write it just observed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Echoed completion tag.
    pub req_id: u32,
    /// Outcome.
    pub status: Status,
    /// Entry version after the operation (current version on `CasFail`).
    pub version: u32,
    /// Value payload (get hits and CAS failures).
    pub value: Vec<u8>,
}

impl Reply {
    /// Wire encoding.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(11 + self.value.len());
        b.extend_from_slice(&self.req_id.to_le_bytes());
        b.push(self.status.to_u8());
        b.extend_from_slice(&self.version.to_le_bytes());
        b.extend_from_slice(
            &u16::try_from(self.value.len()).expect("value fits u16").to_le_bytes(),
        );
        b.extend_from_slice(&self.value);
        b
    }

    /// Wire decoding; `None` on malformed input.
    #[must_use]
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() < 11 {
            return None;
        }
        let vlen = u16::from_le_bytes(b[9..11].try_into().ok()?) as usize;
        if b.len() != 11 + vlen {
            return None;
        }
        Some(Self {
            req_id: u32::from_le_bytes(b[0..4].try_into().ok()?),
            status: Status::from_u8(b[4])?,
            version: u32::from_le_bytes(b[5..9].try_into().ok()?),
            value: b[11..].to_vec(),
        })
    }
}

/// Outcome of probing a shard for a key.
enum Probe {
    /// Slot holding the key.
    Found(usize, SlotMeta),
    /// First never-written slot on the probe path (insert target).
    Free(usize),
    /// Probed every slot without finding the key or a free slot.
    Full,
}

/// Linear probe for `key` starting at its home slot.
fn probe(rt: &mut Runtime, lay: &StoreLayout, shard: usize, key: u64) -> Probe {
    let start = lay.home_slot(key);
    for i in 0..lay.slots_per_shard {
        let slot = (start + i) & (lay.slots_per_shard - 1);
        let meta = SlotMeta::read(rt, lay.meta_addr(shard, slot));
        if meta.version == 0 {
            return Probe::Free(slot);
        }
        if meta.key == key {
            return Probe::Found(slot, meta);
        }
    }
    Probe::Full
}

/// Executes one request against the DSM. Only the shard's owning server
/// calls this, so execution is single-writer by construction; the write
/// becomes visible to the client through the RELEASE-annotated reply.
///
/// # Panics
///
/// Panics if a put/CAS value exceeds the layout's value capacity.
#[must_use]
pub fn execute(rt: &mut Runtime, lay: &StoreLayout, req: &Request) -> Reply {
    let shard = lay.shard_of(req.key);
    debug_assert_eq!(lay.server_of(shard), rt.node_id(), "op routed to wrong server");
    let reply = |status, version, value| Reply {
        req_id: req.req_id,
        status,
        version,
        value,
    };
    match req.op {
        OpKind::Get => match probe(rt, lay, shard, req.key) {
            Probe::Found(slot, meta) if meta.live() => {
                let mut v = vec![0u8; meta.vlen as usize];
                rt.read_bytes(lay.val_addr(shard, slot), &mut v);
                reply(Status::Ok, meta.version, v)
            }
            Probe::Found(_, meta) => reply(Status::NotFound, meta.version, Vec::new()),
            _ => reply(Status::NotFound, 0, Vec::new()),
        },
        OpKind::Put => {
            assert!(req.value.len() <= lay.val_cap, "value exceeds cell capacity");
            let (slot, old) = match probe(rt, lay, shard, req.key) {
                Probe::Found(slot, meta) => (slot, meta.version),
                Probe::Free(slot) => (slot, 0),
                Probe::Full => return reply(Status::Overflow, 0, Vec::new()),
            };
            let version = old + 1;
            rt.write_bytes(lay.val_addr(shard, slot), &req.value);
            SlotMeta {
                key: req.key,
                version,
                vlen: u32::try_from(req.value.len()).expect("vlen fits u32"),
            }
            .write(rt, lay.meta_addr(shard, slot));
            reply(Status::Ok, version, Vec::new())
        }
        OpKind::Delete => match probe(rt, lay, shard, req.key) {
            Probe::Found(slot, meta) if meta.live() => {
                let version = meta.version + 1;
                SlotMeta {
                    key: req.key,
                    version,
                    vlen: TOMBSTONE,
                }
                .write(rt, lay.meta_addr(shard, slot));
                reply(Status::Ok, version, Vec::new())
            }
            Probe::Found(_, meta) => reply(Status::NotFound, meta.version, Vec::new()),
            _ => reply(Status::NotFound, 0, Vec::new()),
        },
        OpKind::Cas => {
            assert!(req.value.len() <= lay.val_cap, "value exceeds cell capacity");
            let (slot, cur) = match probe(rt, lay, shard, req.key) {
                Probe::Found(slot, meta) => (slot, meta),
                Probe::Free(slot) => (
                    slot,
                    SlotMeta {
                        key: req.key,
                        version: 0,
                        vlen: TOMBSTONE,
                    },
                ),
                Probe::Full => return reply(Status::Overflow, 0, Vec::new()),
            };
            // `expected == 0` matches empty and tombstoned slots (atomic
            // insert); otherwise the live version must match exactly.
            let matches = if cur.live() {
                req.expected == cur.version
            } else {
                req.expected == 0
            };
            if matches {
                let version = cur.version + 1;
                rt.write_bytes(lay.val_addr(shard, slot), &req.value);
                SlotMeta {
                    key: req.key,
                    version,
                    vlen: u32::try_from(req.value.len()).expect("vlen fits u32"),
                }
                .write(rt, lay.meta_addr(shard, slot));
                reply(Status::Ok, version, Vec::new())
            } else if cur.live() {
                let mut v = vec![0u8; cur.vlen as usize];
                rt.read_bytes(lay.val_addr(shard, slot), &mut v);
                reply(Status::CasFail, cur.version, v)
            } else {
                reply(Status::CasFail, 0, Vec::new())
            }
        }
    }
}

/// Reads a key's slot header straight from the DSM (live or tombstoned;
/// `None` if the key was never written). Same legality conditions as
/// [`read_key`]; the serving harness uses it to audit the store against
/// each server's private version mirror.
#[must_use]
pub fn meta_of(rt: &mut Runtime, lay: &StoreLayout, key: u64) -> Option<SlotMeta> {
    let shard = lay.shard_of(key);
    match probe(rt, lay, shard, key) {
        Probe::Found(_, meta) => Some(meta),
        _ => None,
    }
}

/// Reads a key directly from the DSM (no messages): probes the shard's
/// tables with coherent reads. Valid wherever LRC legality holds — e.g.
/// after a closing barrier, or on the owning server itself. Returns the
/// live entry's `(version, value)`.
#[must_use]
pub fn read_key(rt: &mut Runtime, lay: &StoreLayout, key: u64) -> Option<(u32, Vec<u8>)> {
    let shard = lay.shard_of(key);
    match probe(rt, lay, shard, key) {
        Probe::Found(slot, meta) if meta.live() => {
            let mut v = vec![0u8; meta.vlen as usize];
            rt.read_bytes(lay.val_addr(shard, slot), &mut v);
            Some((meta.version, v))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let req = Request {
            req_id: 7,
            op: OpKind::Cas,
            key: 0xDEAD_BEEF,
            expected: 3,
            value: vec![1, 2, 3],
        };
        assert_eq!(Request::from_bytes(&req.to_bytes()), Some(req.clone()));
        let rep = Reply {
            req_id: 7,
            status: Status::CasFail,
            version: 9,
            value: vec![4, 5],
        };
        assert_eq!(Reply::from_bytes(&rep.to_bytes()), Some(rep));
        assert_eq!(Request::from_bytes(&[0; 5]), None);
        assert_eq!(Reply::from_bytes(&[0; 3]), None);
    }

    #[test]
    fn layout_is_deterministic_and_disjoint() {
        let build = || {
            let mut heap = CoherentHeap::new(1 << 22);
            StoreLayout::build(&mut heap, 2, 2, 64, 64, true)
        };
        let a = build();
        let b = build();
        for s in 0..a.n_shards {
            assert_eq!(a.meta_addr(s, 0), b.meta_addr(s, 0));
            assert_eq!(a.val_addr(s, 0), b.val_addr(s, 0));
        }
        // Meta and value tables never overlap.
        let mut spans: Vec<(usize, usize)> = (0..a.n_shards)
            .flat_map(|s| {
                [
                    (a.meta_addr(s, 0), 64 * META_BYTES),
                    (a.val_addr(s, 0), 64 * a.val_cap),
                ]
            })
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlapping tables");
        }
    }

    #[test]
    fn keys_spread_over_shards() {
        let mut heap = CoherentHeap::new(1 << 22);
        let lay = StoreLayout::build(&mut heap, 4, 4, 256, 64, false);
        let mut counts = vec![0u32; lay.n_shards];
        for k in 0..4096u64 {
            counts[lay.shard_of(k)] += 1;
        }
        for (s, c) in counts.iter().enumerate() {
            assert!(*c > 128, "shard {s} nearly empty: {c}");
        }
    }
}
