//! The app-facing asynchronous request API: a submit/poll completion
//! model layered on [`Runtime`], so one proc multiplexes many in-flight
//! operations (the §4.4 latency-hiding idea applied to serving).
//!
//! [`KvClient::submit`] sends a REQUEST-annotated operation to the shard's
//! owning server and returns immediately with a request id.
//! [`KvClient::poll`] drains RELEASE-annotated replies into
//! [`Completion`]s — stamping each with its virtual-time latency — and
//! expires requests whose deadline passed (expired requests are counted,
//! never silently dropped; a reply that arrives after expiry is counted
//! as a late reply and discarded). The client owns all the yield
//! accounting: `attempted == completed + timed out + still pending`
//! holds at every instant.

use std::collections::BTreeMap;

use carlos_core::{Annotation, Runtime};
use carlos_sim::time::Ns;
use carlos_trace::VtHistogram;

use crate::store::{OpKind, Reply, Request, Status, StoreLayout};

/// Handler id for KV requests (client → shard owner).
pub const H_KV_REQ: u32 = 0x0400;
/// Handler id for KV replies (shard owner → client).
pub const H_KV_REP: u32 = 0x0401;
/// Handler id for the client-finished notice (client → every server).
pub const H_SERVE_DONE: u32 = 0x0402;

/// A completed operation, as surfaced by [`KvClient::poll`].
#[derive(Debug, Clone)]
pub struct Completion {
    /// The id `submit` returned.
    pub req_id: u32,
    /// Key the request targeted.
    pub key: u64,
    /// Operation kind.
    pub op: OpKind,
    /// Whether this was a harvest probe (kept out of yield accounting).
    pub probe: bool,
    /// Server-reported outcome.
    pub status: Status,
    /// Entry version (current version on [`Status::CasFail`]).
    pub version: u32,
    /// Value payload (get hits, CAS failures).
    pub value: Vec<u8>,
    /// Virtual submit-to-completion latency.
    pub latency: Ns,
}

#[derive(Debug, Clone)]
struct Pending {
    key: u64,
    op: OpKind,
    probe: bool,
    submitted: Ns,
    deadline: Ns,
}

/// Per-client operation accounting (merged cluster-wide into the serving
/// report).
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    /// Operations submitted (excluding probes).
    pub attempted: u64,
    /// Operations that completed before their deadline.
    pub completed: u64,
    /// Operations expired at their deadline.
    pub timed_out: u64,
    /// Replies that arrived after their request expired.
    pub late_replies: u64,
    /// Completions per status: Ok / NotFound / CasFail / Overflow.
    pub status_counts: [u64; 4],
    /// Get completions whose value failed the key self-tag check.
    pub value_check_failures: u64,
    /// Harvest probes submitted.
    pub probes_attempted: u64,
    /// Harvest probes answered before the probe deadline.
    pub probes_answered: u64,
    /// Virtual-time latency of completed (non-probe) operations.
    pub hist: VtHistogram,
}

impl ClientStats {
    /// Folds another client's accounting into this one (merge order is
    /// node-id order in the harness, so totals are deterministic).
    pub fn merge(&mut self, other: &ClientStats) {
        self.attempted += other.attempted;
        self.completed += other.completed;
        self.timed_out += other.timed_out;
        self.late_replies += other.late_replies;
        for (a, b) in self.status_counts.iter_mut().zip(other.status_counts) {
            *a += b;
        }
        self.value_check_failures += other.value_check_failures;
        self.probes_attempted += other.probes_attempted;
        self.probes_answered += other.probes_answered;
        self.hist.merge(&other.hist);
    }
}

/// The asynchronous KV client: an in-flight table keyed by request id,
/// plus the accounting above.
#[derive(Debug)]
pub struct KvClient {
    lay: StoreLayout,
    next_id: u32,
    pending: BTreeMap<u32, Pending>,
    /// Earliest pending deadline (lazily recomputed after expiry sweeps).
    next_expiry: Ns,
    /// Accumulated accounting.
    pub stats: ClientStats,
}

impl KvClient {
    /// A client over the given store layout.
    #[must_use]
    pub fn new(lay: StoreLayout) -> Self {
        Self {
            lay,
            next_id: 1,
            pending: BTreeMap::new(),
            next_expiry: Ns::MAX,
            stats: ClientStats::default(),
        }
    }

    /// Operations currently in flight (including probes).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Whether `req_id` is still in flight (not completed, not expired).
    #[must_use]
    pub fn is_pending(&self, req_id: u32) -> bool {
        self.pending.contains_key(&req_id)
    }

    /// The earliest instant at which a pending operation can expire
    /// (`Ns::MAX` when nothing is pending) — pump no later than this.
    #[must_use]
    pub fn next_expiry(&self) -> Ns {
        self.next_expiry
    }

    /// Submits one operation to its shard's owning server and returns the
    /// request id. Non-blocking: the REQUEST message is handed to the
    /// transport and the operation joins the in-flight table until
    /// [`KvClient::poll`] completes or expires it at `deadline`.
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &mut self,
        rt: &mut Runtime,
        op: OpKind,
        key: u64,
        expected: u32,
        value: Vec<u8>,
        deadline: Ns,
        probe: bool,
    ) -> u32 {
        let req_id = self.next_id;
        self.next_id += 1;
        let server = self.lay.server_of(self.lay.shard_of(key));
        let req = Request {
            req_id,
            op,
            key,
            expected,
            value,
        };
        rt.send(server, H_KV_REQ, req.to_bytes(), Annotation::Request);
        self.pending.insert(
            req_id,
            Pending {
                key,
                op,
                probe,
                submitted: rt.ctx().now(),
                deadline,
            },
        );
        self.next_expiry = self.next_expiry.min(deadline);
        if probe {
            self.stats.probes_attempted += 1;
        } else {
            self.stats.attempted += 1;
        }
        req_id
    }

    /// Drains every queued reply and expires overdue requests, returning
    /// the fresh completions. Never blocks; interleave with
    /// `rt.pump(Some(deadline))` to wait for more traffic.
    pub fn poll(&mut self, rt: &mut Runtime) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(m) = rt.try_take_accepted(H_KV_REP) {
            let now = rt.ctx().now();
            let Some(rep) = Reply::from_bytes(&m.body) else {
                // Malformed replies cannot happen on a healthy wire; count
                // them like late replies rather than corrupting accounting.
                self.stats.late_replies += 1;
                continue;
            };
            let Some(p) = self.pending.remove(&rep.req_id) else {
                self.stats.late_replies += 1;
                continue;
            };
            if p.probe {
                if now <= p.deadline {
                    self.stats.probes_answered += 1;
                }
            } else {
                self.stats.completed += 1;
                self.stats.status_counts[rep.status as usize] += 1;
                self.stats.hist.observe(now - p.submitted);
                if p.op == OpKind::Get
                    && rep.status == Status::Ok
                    && rep.value.get(0..8) != Some(p.key.to_le_bytes().as_slice())
                {
                    self.stats.value_check_failures += 1;
                }
            }
            out.push(Completion {
                req_id: rep.req_id,
                key: p.key,
                op: p.op,
                probe: p.probe,
                status: rep.status,
                version: rep.version,
                value: rep.value,
                latency: now - p.submitted,
            });
        }
        let now = rt.ctx().now();
        if now >= self.next_expiry {
            self.expire(now);
        }
        out
    }

    /// Expires every pending operation unconditionally (end-of-run drain:
    /// whatever is still in flight is attributed as timed out).
    pub fn expire_all(&mut self) {
        self.expire(Ns::MAX);
    }

    fn expire(&mut self, now: Ns) {
        let overdue: Vec<u32> = self
            .pending
            .iter()
            .filter(|(_, p)| now >= p.deadline)
            .map(|(id, _)| *id)
            .collect();
        for id in overdue {
            let p = self.pending.remove(&id).expect("collected above");
            if p.probe {
                // An unanswered probe simply never increments
                // `probes_answered`; nothing else to record.
            } else {
                self.stats.timed_out += 1;
            }
        }
        self.next_expiry = self.pending.values().map(|p| p.deadline).min().unwrap_or(Ns::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_adds_everything() {
        let mut a = ClientStats {
            attempted: 3,
            completed: 2,
            timed_out: 1,
            ..ClientStats::default()
        };
        a.hist.observe(100);
        let mut b = ClientStats::default();
        b.status_counts[0] = 5;
        b.hist.observe(300);
        b.merge(&a);
        assert_eq!(b.attempted, 3);
        assert_eq!(b.completed, 2);
        assert_eq!(b.timed_out, 1);
        assert_eq!(b.status_counts[0], 5);
        assert_eq!(b.hist.count(), 2);
    }
}
