//! A DSM-backed key-value / session-cache service and its measurement
//! harness — the ROADMAP's "serving heavy traffic" scenario built on the
//! CarlOS stack.
//!
//! Four pieces (see DESIGN.md §14):
//!
//! - [`store`] — a sharded, versioned hash store laid out in coherent
//!   shared memory with variable-granularity hints: eager fine granules
//!   for hot slot headers, demand cell granules for values. Each shard
//!   has exactly one writer (its owning server), so the store is
//!   race-free by construction and consistency flows to clients purely
//!   on RELEASE-annotated replies — the paper's message-driven model
//!   applied to serving.
//! - [`client`] — an asynchronous submit/poll request API over
//!   [`carlos_core::Runtime`], so one proc multiplexes many in-flight
//!   operations and owns the yield accounting (every submitted op ends
//!   as completed or timed-out; late replies are counted, never
//!   double-counted).
//! - [`workload`] — a deterministic open-loop traffic generator:
//!   Zipfian key popularity and exponential virtual-time arrivals, fixed
//!   per (seed, client), with CAS increments against shared counters
//!   interleaved at Bresenham-even spacing.
//! - [`run`] — cluster orchestration (servers = first half of the nodes,
//!   clients = second half), harvest probes under fault plans, and the
//!   merged [`run::ServeResult`]: tail latency via `VtHistogram`,
//!   ops/s, bytes/op, harvest and yield.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod run;
pub mod store;
pub mod workload;

pub use client::{ClientStats, Completion, KvClient, H_KV_REP, H_KV_REQ, H_SERVE_DONE};
pub use run::{
    run_serve, try_run_serve, ClientNodeStats, HarvestProbe, ServeConfig, ServeResult,
    ServeTotals, ServerStats,
};
pub use store::{OpKind, Reply, Request, Status, StoreLayout};
pub use workload::{OpMix, Workload};
