//! The open-loop traffic generator: deterministic Zipfian key popularity
//! and a deterministic virtual-time arrival process.
//!
//! Every client node derives its own RNG stream from the run seed and its
//! node id, so a fixed configuration yields one fixed schedule of
//! `(arrival time, operation, key)` triples — the simulator then replays
//! it bit-identically, serial or parallel. **Open loop** means arrivals
//! are drawn from the schedule regardless of how many operations are
//! still in flight: a slow server grows the client's pending window (and
//! its tail latency) instead of silently throttling offered load, which
//! is what makes the p999 and harvest/yield numbers honest.

use carlos_sim::time::Ns;
use carlos_util::rng::Xoshiro256;

use crate::store::{mix64, OpKind};

/// Relative op-kind weights for the Zipfian traffic (CAS arrivals are
/// scheduled separately, against the shared counter keys).
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Weight of gets.
    pub get: u32,
    /// Weight of puts.
    pub put: u32,
    /// Weight of deletes.
    pub delete: u32,
}

impl OpMix {
    /// The classic read-heavy cache mix: 90% get / 9% put / 1% delete.
    #[must_use]
    pub fn read_heavy() -> Self {
        Self {
            get: 90,
            put: 9,
            delete: 1,
        }
    }
}

/// One scheduled client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual time the operation enters the system.
    pub at: Ns,
    /// Operation kind ([`OpKind::Cas`] targets a counter key).
    pub op: OpKind,
    /// Key index (counter index for CAS arrivals).
    pub key: u64,
}

/// Per-client deterministic workload stream.
#[derive(Debug, Clone)]
pub struct Workload {
    rng: Xoshiro256,
    /// Normalized Zipf CDF over key ranks (rank 0 is the hottest key).
    cdf: Vec<f64>,
    mix_total: u64,
    mix: OpMix,
    mean_gap: f64,
    /// Arrivals issued so far.
    issued: u64,
    /// Total arrivals this client will issue.
    total: u64,
    /// CAS arrivals interleaved among the total (Bresenham spacing).
    cas_total: u64,
    cas_issued: u64,
    counter_keys: u64,
    next_at: Ns,
}

impl Workload {
    /// Builds the stream for one client. `cas_total` arrivals out of
    /// `total` are CAS increments spread evenly over the schedule,
    /// round-robin across `counter_keys` shared counters.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        seed: u64,
        client_node: u32,
        keyspace: u64,
        theta: f64,
        mean_interarrival: Ns,
        mix: OpMix,
        total: u64,
        cas_total: u64,
        counter_keys: u64,
    ) -> Self {
        assert!(keyspace > 0, "empty keyspace");
        assert!(cas_total <= total, "more CAS arrivals than arrivals");
        assert!(cas_total == 0 || counter_keys > 0, "CAS arrivals need counter keys");
        let mut cdf = Vec::with_capacity(usize::try_from(keyspace).expect("keyspace fits usize"));
        let mut acc = 0.0f64;
        for rank in 0..keyspace {
            #[allow(clippy::cast_precision_loss)]
            let w = 1.0 / ((rank + 1) as f64).powf(theta);
            acc += w;
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        let mut rng = Xoshiro256::new(seed ^ mix64(u64::from(client_node) + 1));
        // First arrival: one gap into the run, so node start-up (barrier,
        // page warm-up) stays out of the measured latency window.
        #[allow(clippy::cast_precision_loss)]
        let mean_gap = mean_interarrival as f64;
        let first = exp_gap(&mut rng, mean_gap);
        Self {
            rng,
            cdf,
            mix_total: u64::from(mix.get) + u64::from(mix.put) + u64::from(mix.delete),
            mix,
            mean_gap,
            issued: 0,
            total,
            cas_total,
            cas_issued: 0,
            counter_keys,
            next_at: first,
        }
    }

    /// Remaining arrivals in the stream.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.total - self.issued
    }

    /// Draws the next arrival, or `None` when the stream is exhausted.
    pub fn next_arrival(&mut self) -> Option<Arrival> {
        if self.issued == self.total {
            return None;
        }
        let at = self.next_at;
        self.next_at += exp_gap(&mut self.rng, self.mean_gap);
        // Bresenham interleaving: CAS arrival `c` fires at overall arrival
        // floor(c * total / cas_total) — evenly spaced, deterministic.
        let is_cas = self.cas_total > 0
            && self.cas_issued < self.cas_total
            && self.issued == self.cas_issued * self.total / self.cas_total;
        let arrival = if is_cas {
            let counter = self.cas_issued % self.counter_keys;
            self.cas_issued += 1;
            Arrival {
                at,
                op: OpKind::Cas,
                key: counter,
            }
        } else {
            let key = self.zipf_key();
            let draw = self.rng.next_below(self.mix_total);
            let op = if draw < u64::from(self.mix.get) {
                OpKind::Get
            } else if draw < u64::from(self.mix.get) + u64::from(self.mix.put) {
                OpKind::Put
            } else {
                OpKind::Delete
            };
            Arrival { at, op, key }
        };
        self.issued += 1;
        Some(arrival)
    }

    /// Samples a key rank from the Zipf CDF (rank 0 hottest) and maps it
    /// to a key id. Ranks map to keys through a fixed hash so hot keys
    /// scatter over shards instead of clustering in shard 0.
    fn zipf_key(&mut self) -> u64 {
        let u = self.rng.next_f64();
        let rank = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        // Permute rank -> key id within the keyspace (collision-free would
        // need a full permutation; a fixed mix keeps determinism and
        // spreads hot ranks, and collisions merely merge two ranks).
        mix64(rank as u64) % self.cdf.len() as u64
    }
}

/// Exponential inter-arrival gap (Poisson arrivals), at least 1 ns so
/// virtual time always advances between arrivals.
#[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
fn exp_gap(rng: &mut Xoshiro256, mean: f64) -> Ns {
    let u = rng.next_f64().max(f64::MIN_POSITIVE);
    ((-u.ln() * mean).round() as u64).max(1)
}

/// Fill pattern for stored values: the 8-byte key self-tag, then bytes
/// derived from the key and writer — every get reply can be structurally
/// validated against the key it was issued for.
#[must_use]
pub fn value_bytes(key: u64, writer: u32, val_len: usize) -> Vec<u8> {
    assert!(val_len >= crate::store::MIN_VAL_LEN, "value below minimum length");
    let mut v = vec![0u8; val_len];
    v[0..8].copy_from_slice(&key.to_le_bytes());
    let fill = mix64(key ^ u64::from(writer)).to_le_bytes();
    for (i, b) in v[8..].iter_mut().enumerate() {
        *b = fill[i % 8];
    }
    v
}

/// Counter-cell encoding: key self-tag then the 8-byte count.
#[must_use]
pub fn counter_bytes(key: u64, count: u64, val_len: usize) -> Vec<u8> {
    let mut v = vec![0u8; val_len.max(crate::store::MIN_VAL_LEN)];
    v[0..8].copy_from_slice(&key.to_le_bytes());
    v[8..16].copy_from_slice(&count.to_le_bytes());
    v
}

/// Reads the count back out of a counter cell.
#[must_use]
pub fn counter_value(cell: &[u8]) -> u64 {
    cell.get(8..16)
        .and_then(|b| b.try_into().ok())
        .map_or(0, u64::from_le_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64, node: u32) -> Vec<Arrival> {
        let mut w = Workload::new(seed, node, 1024, 0.99, 1000, OpMix::read_heavy(), 200, 20, 2);
        std::iter::from_fn(|| w.next_arrival()).collect()
    }

    #[test]
    fn schedule_is_deterministic_per_seed_and_client() {
        assert_eq!(stream(1, 4), stream(1, 4));
        assert_ne!(stream(1, 4), stream(2, 4));
        assert_ne!(stream(1, 4), stream(1, 5));
    }

    #[test]
    fn arrivals_are_monotone_and_complete() {
        let s = stream(7, 9);
        assert_eq!(s.len(), 200);
        for w in s.windows(2) {
            assert!(w[0].at < w[1].at, "arrival times must strictly increase");
        }
        let cas = s.iter().filter(|a| a.op == OpKind::Cas).count();
        assert_eq!(cas, 20, "exactly the scheduled CAS arrivals");
        assert!(s.iter().filter(|a| a.op == OpKind::Cas).all(|a| a.key < 2));
    }

    #[test]
    fn zipf_is_skewed() {
        let mut w = Workload::new(3, 1, 4096, 0.99, 100, OpMix::read_heavy(), 20_000, 0, 0);
        let mut counts = std::collections::HashMap::new();
        while let Some(a) = w.next_arrival() {
            *counts.entry(a.key).or_insert(0u64) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        let distinct = counts.len() as u64;
        // The hottest key dominates and far fewer than 4096 keys appear.
        assert!(max > 1_000, "hottest key only {max} hits");
        assert!(distinct < 4_000, "no skew: {distinct} distinct keys");
    }

    #[test]
    fn value_cells_self_tag() {
        let v = value_bytes(0xABCD, 3, 32);
        assert_eq!(&v[0..8], &0xABCDu64.to_le_bytes());
        let c = counter_bytes(9, 41, 16);
        assert_eq!(counter_value(&c), 41);
    }
}
