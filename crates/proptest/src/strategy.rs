//! Strategies: deterministic random generators for test inputs.

use crate::test_runner::TestRng;

/// A generator of test inputs. Unlike real proptest there is no value
/// tree / shrinking; `generate` produces one value per call.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (for heterogeneous unions).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy mapping combinator (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `arms`; each generation picks one arm uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy object.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T` (uniform over the representation for integers).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Collection-size specifications accepted by [`vec`]: an exact length, a
/// half-open range, or an inclusive range.
pub trait SizeRange {
    /// Picks a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty vec size range");
        self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

/// Strategy for `Vec`s of values from `element`, with length from `size`.
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec`: vectors of `element` with length in `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}
