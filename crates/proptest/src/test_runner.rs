//! The deterministic PRNG behind the proptest shim.

/// SplitMix64-based test RNG: tiny, fast, and statistically adequate for
/// input generation. Seeded from the test name so each property gets an
/// independent deterministic stream; `PROPTEST_SEED` overrides the base
/// seed for reproduction or re-randomization.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded for the named test (plus optional `PROPTEST_SEED`).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let mut h = base;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// RNG with an explicit seed (used to replay one failing case).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift rejection-free mapping; bias is negligible for
        // test-input bounds (all well below 2^32 in practice).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_seed(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn different_tests_get_different_streams() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
