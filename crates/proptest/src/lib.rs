//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! member implements the subset of the `proptest` API that CarlOS-rs's
//! property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, integer-range and tuple strategies, [`any`], [`Just`],
//! [`prop_oneof!`], `collection::vec`, and [`ProptestConfig`].
//!
//! Inputs are generated from a deterministic per-test PRNG (seeded from
//! the test name, overridable with `PROPTEST_SEED`), so failures are
//! reproducible. Shrinking is not implemented: a failing case panics with
//! the generating seed and case index instead.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec`).
    pub use crate::strategy::vec;
}

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! `prop::collection` alias used by some call sites.
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property (panics on failure, which fails
/// the whole test — this shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        $crate::strategy::Union::new(vec![
            $(std::boxed::Box::new($s) as std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    }};
}

/// Declares property tests. Each `name(arg in strategy, ...)` function is
/// expanded into a `#[test]` that runs the body over `config.cases`
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let case_seed = rng.next_u64();
                    let mut case_rng = $crate::test_runner::TestRng::from_seed(case_seed);
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut case_rng);)+
                    let run = || -> () { $body };
                    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest shim: property `{}` failed at case {} (seed {:#x})",
                            stringify!($name), case, case_seed
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in 5u32..6) {
            prop_assert!(x < 10);
            prop_assert_eq!(y, 5);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn mapped_tuples(p in (0usize..4, any::<u8>()).prop_map(|(a, b)| (a * 2, b)) ) {
            prop_assert!(p.0 % 2 == 0 && p.0 < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]
        #[test]
        fn config_cases_accepted(b in any::<bool>()) {
            let _ = b;
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        use crate::strategy::Strategy;
        let s = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = crate::test_runner::TestRng::from_seed(7);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{any, Strategy};
        let s = crate::collection::vec(any::<u8>(), 16);
        let mut r1 = crate::test_runner::TestRng::from_seed(99);
        let mut r2 = crate::test_runner::TestRng::from_seed(99);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
