//! Correctness tests for the SOR application: the parallel DSM result must
//! be bitwise identical to the sequential reference (red-black updates
//! read only values frozen by the previous half-sweep).

use carlos_apps::sor::{run_sor, sequential_reference, SorConfig};

#[test]
fn single_node_matches_reference_bitwise() {
    let cfg = SorConfig::test(1);
    let reference = sequential_reference(&cfg);
    let r = run_sor(&cfg);
    assert_eq!(r.grid, reference, "single-node run must be exact");
}

#[test]
fn parallel_matches_reference_bitwise() {
    let reference = sequential_reference(&SorConfig::test(1));
    for n in [2, 3, 4] {
        let r = run_sor(&SorConfig::test(n));
        assert_eq!(
            r.grid, reference,
            "parallel SOR on {n} nodes must be bitwise exact"
        );
    }
}

#[test]
fn update_strategy_matches_reference_bitwise() {
    let reference = sequential_reference(&SorConfig::test(1));
    for n in [2, 4] {
        let mut cfg = SorConfig::test(n);
        cfg.core = cfg.core.with_update_strategy();
        let r = run_sor(&cfg);
        assert_eq!(r.grid, reference, "update-mode SOR diverged on {n} nodes");
    }
}

#[test]
fn variable_granularity_matches_reference_bitwise() {
    let reference = sequential_reference(&SorConfig::test(1));
    for n in [2, 4] {
        let mut cfg = SorConfig::test(n);
        cfg.granularity_hints = true;
        cfg.core = cfg.core.with_coalesced_fetches().with_aggregated_notices();
        let r = run_sor(&cfg);
        assert_eq!(
            r.grid, reference,
            "row-granule SOR on {n} nodes must stay bitwise exact"
        );
    }
}

#[test]
fn heat_diffuses_downward() {
    let cfg = SorConfig::test(2);
    let r = run_sor(&cfg);
    let cols = cfg.cols;
    // After some iterations, the row below the hot edge is warmer than the
    // row above the cold edge.
    let warm: f64 = (1..cols - 1).map(|c| r.grid[cols + c]).sum();
    let cool: f64 = (1..cols - 1).map(|c| r.grid[(cfg.rows - 2) * cols + c]).sum();
    assert!(warm > cool, "diffusion direction wrong: {warm} vs {cool}");
    assert!(r.checksum > 0.0);
}

#[test]
fn runs_are_deterministic() {
    let a = run_sor(&SorConfig::test(3));
    let b = run_sor(&SorConfig::test(3));
    assert_eq!(a.app.report.elapsed, b.app.report.elapsed);
    assert_eq!(a.grid, b.grid);
}
