//! Correctness tests for the Water application.

use carlos_apps::water::{run_water, WaterConfig, WaterVariant};

fn close(a: &[[f64; 3]], b: &[[f64; 3]], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (0..3).all(|d| (x[d] - y[d]).abs() < tol))
}

#[test]
fn lock_variant_runs_single_node() {
    let r = run_water(&WaterConfig::test(1, WaterVariant::Lock));
    assert_eq!(r.positions.len(), 27);
    assert!(r.kinetic.is_finite());
    assert!(r.kinetic > 0.0, "molecules should be moving");
}

#[test]
fn lock_and_hybrid_agree_single_node() {
    let lock = run_water(&WaterConfig::test(1, WaterVariant::Lock));
    let hybrid = run_water(&WaterConfig::test(1, WaterVariant::Hybrid));
    assert!(
        close(&lock.positions, &hybrid.positions, 1e-9),
        "single-node variants must agree almost exactly"
    );
}

#[test]
fn parallel_matches_sequential_lock() {
    let seq = run_water(&WaterConfig::test(1, WaterVariant::Lock));
    let par = run_water(&WaterConfig::test(4, WaterVariant::Lock));
    // Force contributions sum in different orders: tolerate FP noise only.
    assert!(
        close(&seq.positions, &par.positions, 1e-6),
        "parallel lock run diverged from sequential"
    );
}

#[test]
fn parallel_hybrid_matches_sequential() {
    let seq = run_water(&WaterConfig::test(1, WaterVariant::Lock));
    for n in [2, 3, 4] {
        let par = run_water(&WaterConfig::test(n, WaterVariant::Hybrid));
        assert!(
            close(&seq.positions, &par.positions, 1e-6),
            "hybrid on {n} nodes diverged"
        );
    }
}

#[test]
fn hybrid_uses_fewer_messages_than_lock() {
    let lock = run_water(&WaterConfig::test(4, WaterVariant::Lock));
    let hybrid = run_water(&WaterConfig::test(4, WaterVariant::Hybrid));
    assert!(
        hybrid.app.messages < lock.app.messages,
        "hybrid sent {} vs lock {}",
        hybrid.app.messages,
        lock.app.messages
    );
}

#[test]
fn all_release_hybrid_still_correct() {
    let mut cfg = WaterConfig::test(3, WaterVariant::Hybrid);
    cfg.all_release = true;
    let seq = run_water(&WaterConfig::test(1, WaterVariant::Lock));
    let r = run_water(&cfg);
    assert!(close(&seq.positions, &r.positions, 1e-6));
}

#[test]
fn runs_are_deterministic() {
    let a = run_water(&WaterConfig::test(3, WaterVariant::Hybrid));
    let b = run_water(&WaterConfig::test(3, WaterVariant::Hybrid));
    assert_eq!(a.app.report.elapsed, b.app.report.elapsed);
    assert_eq!(a.positions, b.positions, "bitwise determinism expected");
}

#[test]
fn variable_granularity_matches_sequential() {
    let seq = run_water(&WaterConfig::test(1, WaterVariant::Lock));
    for variant in [WaterVariant::Lock, WaterVariant::Hybrid] {
        let mut cfg = WaterConfig::test(4, variant);
        cfg.granularity_hints = true;
        cfg.core = cfg.core.with_coalesced_fetches().with_aggregated_notices();
        let r = run_water(&cfg);
        assert!(
            close(&seq.positions, &r.positions, 1e-6),
            "per-molecule granules diverged for {variant:?}"
        );
    }
}

#[test]
fn update_strategy_matches_invalidate() {
    let seq = run_water(&WaterConfig::test(1, WaterVariant::Lock));
    for variant in [WaterVariant::Lock, WaterVariant::Hybrid] {
        let mut cfg = WaterConfig::test(4, variant);
        cfg.core = cfg.core.with_update_strategy();
        let r = run_water(&cfg);
        assert!(
            close(&seq.positions, &r.positions, 1e-6),
            "update strategy diverged for {variant:?}"
        );
    }
}
