//! Correctness tests for the Quicksort application.

use carlos_apps::qsort::{run_qsort, QsortConfig, QsortVariant};

#[test]
fn lock_variant_sorts_single_node() {
    let r = run_qsort(&QsortConfig::test(1, QsortVariant::Lock));
    assert!(r.sorted);
    assert!(r.permutation_ok);
}

#[test]
fn lock_variant_sorts_four_nodes() {
    let r = run_qsort(&QsortConfig::test(4, QsortVariant::Lock));
    assert!(r.sorted, "parallel lock sort produced unsorted output");
    assert!(r.permutation_ok, "elements lost or duplicated");
}

#[test]
fn hybrid1_sorts_four_nodes() {
    let r = run_qsort(&QsortConfig::test(4, QsortVariant::Hybrid1));
    assert!(r.sorted);
    assert!(r.permutation_ok);
}

#[test]
fn hybrid2_sorts_four_nodes() {
    let r = run_qsort(&QsortConfig::test(4, QsortVariant::Hybrid2));
    assert!(r.sorted);
    assert!(r.permutation_ok);
}

#[test]
fn no_forward_variant_sorts_four_nodes() {
    let r = run_qsort(&QsortConfig::test(4, QsortVariant::HybridNoForward));
    assert!(r.sorted);
    assert!(r.permutation_ok);
}

#[test]
fn hybrid_sorts_two_and_three_nodes() {
    for n in [2, 3] {
        let r = run_qsort(&QsortConfig::test(n, QsortVariant::Hybrid1));
        assert!(r.sorted, "hybrid on {n} nodes failed");
        assert!(r.permutation_ok);
    }
}

#[test]
fn hybrid_uses_fewer_messages_than_lock() {
    let lock = run_qsort(&QsortConfig::test(3, QsortVariant::Lock));
    let hybrid = run_qsort(&QsortConfig::test(3, QsortVariant::Hybrid1));
    assert!(
        hybrid.app.messages < lock.app.messages,
        "hybrid sent {} vs lock {}",
        hybrid.app.messages,
        lock.app.messages
    );
}

#[test]
fn hybrid2_moves_more_consistency_data_than_hybrid1() {
    // With every queue message marked RELEASE, strictly more synchronizing
    // messages flow and more consistency data rides the wire (§5.2).
    let h1 = run_qsort(&QsortConfig::test(3, QsortVariant::Hybrid1));
    let h2 = run_qsort(&QsortConfig::test(3, QsortVariant::Hybrid2));
    let r1 = h1.app.report.counter_total("carlos.sent.release");
    let r2 = h2.app.report.counter_total("carlos.sent.release");
    assert!(
        r2 > r1,
        "all-RELEASE should send more synchronizing messages: {r2} vs {r1}"
    );
    // (At paper scale the extra releases also move measurably more data —
    // the Table 2 Hybrid-2 row; at this test scale byte totals are noisy,
    // so only the message-class shift is asserted here.)
}

#[test]
fn variable_granularity_sorts_correctly() {
    for variant in [QsortVariant::Lock, QsortVariant::Hybrid1] {
        for n in [2, 4] {
            let mut cfg = QsortConfig::test(n, variant);
            cfg.granularity_hints = true;
            cfg.core = cfg.core.with_coalesced_fetches().with_aggregated_notices();
            let r = run_qsort(&cfg);
            assert!(r.sorted, "{variant:?} with hints on {n} nodes unsorted");
            assert!(r.permutation_ok);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let a = run_qsort(&QsortConfig::test(3, QsortVariant::Hybrid1));
    let b = run_qsort(&QsortConfig::test(3, QsortVariant::Hybrid1));
    assert_eq!(a.app.report.elapsed, b.app.report.elapsed);
    assert_eq!(a.app.messages, b.app.messages);
}

#[test]
fn update_strategy_sorts_correctly() {
    // Regression: the update coherence strategy once corrupted migratory
    // workloads (per-interval coverage was checked with a per-node max,
    // letting a later interval's eager diff mask an earlier one).
    for n in [3, 4] {
        let mut cfg = QsortConfig::test(n, QsortVariant::Lock);
        cfg.core = cfg.core.with_update_strategy();
        let r = run_qsort(&cfg);
        assert!(r.sorted, "update strategy corrupted the sort on {n} nodes");
        assert!(r.permutation_ok);
    }
}
