//! Correctness tests for the TSP application: both variants must find the
//! exact optimum (verified against a Held–Karp oracle) on every cluster
//! size, and the hybrid must use substantially fewer messages.

use carlos_apps::tsp::{run_tsp, Cities, TspConfig, TspVariant};

#[test]
fn oracle_agrees_with_greedy_bound_ordering() {
    let c = Cities::generate(10, 42);
    let opt = c.held_karp();
    let greedy = c.greedy_bound();
    assert!(opt <= greedy, "optimum cannot exceed the greedy tour");
    assert!(opt > 0);
}

#[test]
fn lock_variant_finds_optimum_single_node() {
    let cfg = TspConfig::test(1, TspVariant::Lock);
    let opt = Cities::generate(cfg.n_cities, cfg.seed).held_karp();
    let r = run_tsp(&cfg);
    assert_eq!(r.best_len, opt);
    assert!(r.expansions > 0);
}

#[test]
fn lock_variant_finds_optimum_four_nodes() {
    let cfg = TspConfig::test(4, TspVariant::Lock);
    let opt = Cities::generate(cfg.n_cities, cfg.seed).held_karp();
    let r = run_tsp(&cfg);
    assert_eq!(r.best_len, opt, "parallel lock version missed the optimum");
}

#[test]
fn hybrid_variant_finds_optimum_four_nodes() {
    let cfg = TspConfig::test(4, TspVariant::Hybrid);
    let opt = Cities::generate(cfg.n_cities, cfg.seed).held_karp();
    let r = run_tsp(&cfg);
    assert_eq!(r.best_len, opt, "hybrid version missed the optimum");
}

#[test]
fn hybrid_variant_finds_optimum_two_and_three_nodes() {
    for n in [2, 3] {
        let cfg = TspConfig::test(n, TspVariant::Hybrid);
        let opt = Cities::generate(cfg.n_cities, cfg.seed).held_karp();
        let r = run_tsp(&cfg);
        assert_eq!(r.best_len, opt, "hybrid on {n} nodes missed the optimum");
    }
}

#[test]
fn hybrid_uses_fewer_messages_than_lock() {
    let lock = run_tsp(&TspConfig::test(3, TspVariant::Lock));
    let hybrid = run_tsp(&TspConfig::test(3, TspVariant::Hybrid));
    assert!(
        hybrid.app.messages < lock.app.messages,
        "hybrid sent {} messages, lock {}",
        hybrid.app.messages,
        lock.app.messages
    );
    // And average message size grows, as in Table 1.
    assert!(hybrid.app.avg_msg_bytes > lock.app.avg_msg_bytes);
}

#[test]
fn all_release_variant_still_correct() {
    let mut cfg = TspConfig::test(3, TspVariant::Hybrid);
    cfg.all_release = true;
    let opt = Cities::generate(cfg.n_cities, cfg.seed).held_karp();
    let r = run_tsp(&cfg);
    assert_eq!(r.best_len, opt);
}

#[test]
fn variable_granularity_finds_optimum() {
    // Granularity hints plus the coalesced/aggregated wire modes must not
    // change the computed result, only the traffic.
    for variant in [TspVariant::Lock, TspVariant::Hybrid] {
        let mut cfg = TspConfig::test(4, variant);
        cfg.granularity_hints = true;
        cfg.core = cfg.core.with_coalesced_fetches().with_aggregated_notices();
        let opt = Cities::generate(cfg.n_cities, cfg.seed).held_karp();
        let r = run_tsp(&cfg);
        assert_eq!(r.best_len, opt, "{variant:?} with hints missed the optimum");
    }
}

#[test]
fn variable_granularity_is_deterministic() {
    let mut cfg = TspConfig::test(3, TspVariant::Lock);
    cfg.granularity_hints = true;
    cfg.core = cfg.core.with_coalesced_fetches().with_aggregated_notices();
    let a = run_tsp(&cfg);
    let b = run_tsp(&cfg);
    assert_eq!(a.best_len, b.best_len);
    assert_eq!(a.app.report.elapsed, b.app.report.elapsed);
    assert_eq!(a.app.messages, b.app.messages);
}

#[test]
fn runs_are_deterministic() {
    let cfg = TspConfig::test(3, TspVariant::Hybrid);
    let a = run_tsp(&cfg);
    let b = run_tsp(&cfg);
    assert_eq!(a.best_len, b.best_len);
    assert_eq!(a.app.report.elapsed, b.app.report.elapsed);
    assert_eq!(a.app.messages, b.app.messages);
    assert_eq!(a.expansions, b.expansions);
}
