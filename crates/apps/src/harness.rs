//! Shared plumbing for running the applications on a simulated cluster.

use std::{
    collections::BTreeMap,
    sync::{Arc, Mutex},
};

use carlos_sim::{Bucket, SimReport};

/// Collects one value per node out of the node closures.
///
/// Node closures run on separate OS threads inside the simulator; this is
/// the channel through which verification data (best tour, sorted flags,
/// final positions) reaches the test or bench after `Cluster::run`.
#[derive(Debug)]
pub struct Collector<T> {
    inner: Arc<Mutex<BTreeMap<u32, T>>>,
}

impl<T> Clone for Collector<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for Collector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Collector<T> {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Records `value` for `node`.
    pub fn put(&self, node: u32, value: T) {
        self.inner
            .lock()
            .expect("collector poisoned")
            .insert(node, value);
    }

    /// Takes all collected values, ordered by node id.
    pub fn take(&self) -> Vec<(u32, T)> {
        std::mem::take(&mut *self.inner.lock().expect("collector poisoned"))
            .into_iter()
            .collect()
    }
}

/// A simulation report with the derived columns the paper's tables print.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// The raw simulator report.
    pub report: SimReport,
    /// Elapsed virtual time in seconds.
    pub secs: f64,
    /// Total datagrams on the wire.
    pub messages: u64,
    /// Average datagram payload size in bytes.
    pub avg_msg_bytes: u64,
    /// Network utilization, computed the paper's way.
    pub net_util: f64,
}

impl AppReport {
    /// Derives the table columns from a raw report.
    ///
    /// When nodes recorded an `app.done_ns` counter (the virtual time at
    /// which the timed portion of the application ended, before any
    /// result-collection reads), the slowest node's value is used as the
    /// elapsed time — mirroring the paper, whose measurements end at the
    /// final barrier.
    #[must_use]
    pub fn new(report: SimReport) -> Self {
        let done = report
            .node_counters
            .iter()
            .map(|c| c.get("app.done_ns"))
            .max()
            .unwrap_or(0);
        let elapsed = if done > 0 { done } else { report.elapsed };
        let secs = carlos_sim::time::to_secs(elapsed);
        let messages = report.net.messages;
        let avg_msg_bytes = report.net.avg_size();
        let net_util = report.net.utilization(elapsed, report.bandwidth_bps);
        Self {
            report,
            secs,
            messages,
            avg_msg_bytes,
            net_util,
        }
    }

    /// Average per-node seconds in a bucket (Figure 2's bars).
    #[must_use]
    pub fn bucket_secs(&self, bucket: Bucket) -> f64 {
        self.report.bucket_avg_secs(bucket)
    }

    /// Speedup of this run relative to `single_node_secs`.
    #[must_use]
    pub fn speedup_vs(&self, single_node_secs: f64) -> f64 {
        if self.secs == 0.0 {
            0.0
        } else {
            single_node_secs / self.secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_roundtrip() {
        let c: Collector<u32> = Collector::new();
        let c2 = c.clone();
        c2.put(1, 10);
        c.put(0, 5);
        assert_eq!(c.take(), vec![(0, 5), (1, 10)]);
        assert!(c.take().is_empty());
    }
}
