//! Red-black successive over-relaxation (SOR) — a classic software-DSM
//! workload (beyond the paper's three applications; the archetype of the
//! "numerical applications [whose] communication patterns are amenable to
//! message-passing" that §3 discusses).
//!
//! A grid is partitioned into row bands, one per node. Each iteration has
//! a red half-sweep and a black half-sweep separated by barriers: every
//! cell is replaced by the average of its four neighbours, red cells
//! reading only black ones and vice versa. The only *data* communication
//! is the band-boundary rows, which neighbours read anew each half-sweep —
//! but every band page is rewritten every sweep, which makes SOR the
//! stress test for consistency-record overheads: eager per-interval
//! diffing (this crate's soundness choice, `DESIGN.md` §3.1) pays a diff
//! per band page per sweep where TreadMarks' lazy diffing paid nothing
//! for pages nobody fetched. The bench quantifies exactly that cost.
//!
//! Because each cell update reads only values frozen by the previous
//! half-sweep, the parallel result is **bitwise identical** to the
//! sequential one — which the tests exploit.

use carlos_core::{CoherentHeap, CoreConfig, Runtime};
use carlos_lrc::{LrcConfig, PageOwnership};
use carlos_sim::{time::us, AckMode, Cluster, SimConfig};
use carlos_sync::BarrierSpec;

use crate::harness::{AppReport, Collector};

/// Configuration for one SOR run.
#[derive(Debug, Clone)]
pub struct SorConfig {
    /// Cluster size.
    pub n_nodes: usize,
    /// Grid rows (including the fixed boundary rows).
    pub rows: usize,
    /// Grid columns (including the fixed boundary columns).
    pub cols: usize,
    /// Red-black iterations (each is two half-sweeps with barriers).
    pub iters: usize,
    /// Virtual nanoseconds charged per cell update.
    pub ns_per_cell: u64,
    /// Network/cost model.
    pub sim: SimConfig,
    /// CarlOS cost model (switch `strategy` for the ablation).
    pub core: CoreConfig,
    /// DSM page size.
    pub page_size: usize,
    /// Variable-granularity layout hint: make the coherence unit exactly
    /// one grid row (`cols * 8` bytes, when that is a power of two), so a
    /// halo-row fetch moves one row instead of a page spanning two. Off by
    /// default — legacy behavior is pinned by golden fingerprints.
    pub granularity_hints: bool,
    /// Transport acknowledgement mode (switch to [`AckMode::Arq`] to run
    /// under injected loss, e.g. in chaos tests).
    pub ack: AckMode,
    /// Optional consistency oracle, installed on every node and attached
    /// to the cluster wire (observer-only: virtual time is unaffected).
    pub check: Option<carlos_check::Checker>,
    /// Optional causal tracer, installed on every node and attached to the
    /// cluster wire (observer-only: virtual time is unaffected).
    pub trace: Option<carlos_trace::Tracer>,
}

impl SorConfig {
    /// A mid-1990s-scale workload: a tall 2048×512 grid, 10 iterations
    /// (row bands give each node plenty of compute per boundary byte; on a
    /// 10 Mbit/s Ethernet small grids are hopelessly communication-bound,
    /// as the TreadMarks papers also found).
    #[must_use]
    pub fn paper_scale(n_nodes: usize) -> Self {
        Self {
            n_nodes,
            rows: 2048,
            cols: 512,
            iters: 10,
            ns_per_cell: 320,
            sim: SimConfig::osdi94(),
            core: CoreConfig::osdi94(),
            page_size: 8192,
            granularity_hints: false,
            ack: AckMode::Implicit,
            check: None,
            trace: None,
        }
    }

    /// A small, fast workload for tests.
    #[must_use]
    pub fn test(n_nodes: usize) -> Self {
        Self {
            n_nodes,
            rows: 24,
            cols: 16,
            iters: 4,
            ns_per_cell: 50,
            sim: SimConfig::fast_test(),
            core: CoreConfig::fast_test(),
            page_size: 256,
            granularity_hints: false,
            ack: AckMode::Implicit,
            check: None,
            trace: None,
        }
    }
}

/// Result of a SOR run.
#[derive(Debug, Clone)]
pub struct SorResult {
    /// Simulation report and derived columns.
    pub app: AppReport,
    /// Final interior-cell sum (node 0's view; a compact fingerprint).
    pub checksum: f64,
    /// Final grid contents (node 0's view).
    pub grid: Vec<f64>,
}

/// The rows assigned to `node` (interior rows only; row 0 and the last row
/// are fixed boundary).
fn band(node: usize, rows: usize, n_nodes: usize) -> std::ops::Range<usize> {
    let interior = rows - 2;
    let per = interior.div_ceil(n_nodes);
    let lo = 1 + (node * per).min(interior);
    let hi = 1 + ((node + 1) * per).min(interior);
    lo..hi
}

/// A pure sequential reference implementation (same arithmetic, no DSM).
#[must_use]
pub fn sequential_reference(cfg: &SorConfig) -> Vec<f64> {
    let (rows, cols) = (cfg.rows, cfg.cols);
    let mut g = initial_grid(rows, cols);
    for _ in 0..cfg.iters {
        for color in 0..2usize {
            for r in 1..rows - 1 {
                for c in 1..cols - 1 {
                    if (r + c) % 2 == color {
                        g[r * cols + c] = 0.25
                            * (g[(r - 1) * cols + c]
                                + g[(r + 1) * cols + c]
                                + g[r * cols + c - 1]
                                + g[r * cols + c + 1]);
                    }
                }
            }
        }
    }
    g
}

fn initial_grid(rows: usize, cols: usize) -> Vec<f64> {
    let mut g = vec![0.0f64; rows * cols];
    // Hot top edge, cold bottom edge, zero interior: heat diffuses down.
    for cell in &mut g[..cols] {
        *cell = 100.0;
    }
    g
}

fn build_sor(cfg: &SorConfig) -> (Cluster, Collector<Vec<f64>>) {
    let out: Collector<Vec<f64>> = Collector::new();
    let mut cluster = Cluster::new(cfg.sim.clone(), cfg.n_nodes);
    if let Some(check) = &cfg.check {
        check.attach(&mut cluster);
    }
    if let Some(trace) = &cfg.trace {
        trace.attach(&mut cluster);
    }
    for node in 0..cfg.n_nodes as u32 {
        let cfg = cfg.clone();
        let out = out.clone();
        cluster.spawn_node(node, move |ctx| {
            let g = sor_node(&cfg, ctx);
            out.put(node, g);
        });
    }
    (cluster, out)
}

fn finish_sor(cfg: &SorConfig, report: carlos_sim::SimReport, out: &Collector<Vec<f64>>) -> SorResult {
    let grid = out
        .take()
        .into_iter()
        .next()
        .map(|(_, g)| g)
        .expect("node 0 ran");
    let cols = cfg.cols;
    let checksum = (1..cfg.rows - 1)
        .flat_map(|r| (1..cols - 1).map(move |c| (r, c)))
        .map(|(r, c)| grid[r * cols + c])
        .sum();
    SorResult {
        app: AppReport::new(report),
        checksum,
        grid,
    }
}

/// Runs red-black SOR on a simulated cluster.
///
/// # Panics
///
/// Panics on configuration errors or internal protocol violations.
#[must_use]
pub fn run_sor(cfg: &SorConfig) -> SorResult {
    let (cluster, out) = build_sor(cfg);
    let report = cluster.run();
    finish_sor(cfg, report, &out)
}

/// Runs red-black SOR, returning simulation failures as a
/// [`carlos_sim::SimError`] value instead of panicking.
///
/// # Errors
///
/// Returns the [`carlos_sim::SimError`] describing how the run failed.
pub fn try_run_sor(cfg: &SorConfig) -> Result<SorResult, carlos_sim::SimError> {
    let (cluster, out) = build_sor(cfg);
    let report = cluster.try_run()?;
    Ok(finish_sor(cfg, report, &out))
}

fn sor_node(cfg: &SorConfig, ctx: carlos_sim::NodeCtx) -> Vec<f64> {
    let (rows, cols) = (cfg.rows, cfg.cols);
    let mut heap = CoherentHeap::new(rows * cols * 8 + cfg.page_size);
    let row_bytes = cols * 8;
    let grid_addr = if cfg.granularity_hints && row_bytes.is_power_of_two() {
        heap.alloc_with_granule(rows * row_bytes, row_bytes)
    } else {
        heap.alloc(rows * cols * 8, 8)
    };
    let region = heap.used().next_multiple_of(cfg.page_size);
    let lrc = LrcConfig {
        n_nodes: cfg.n_nodes,
        page_size: cfg.page_size,
        region_bytes: region,
        // Whole-band rewrites create an interval record and a diff per
        // band page per half-sweep; the default arena would trigger a
        // global GC (validate-everything: the whole grid over the wire)
        // mid-run. Size the arena for the run instead, as TreadMarks
        // configurations did for SOR-class workloads.
        gc_threshold_records: 400_000,
        ownership: PageOwnership::Banded,
        regions: heap.regions(),
    };
    let mut rt = Runtime::with_ack_mode(ctx, lrc, cfg.core.clone(), cfg.ack);
    if let Some(check) = &cfg.check {
        check.install(&mut rt);
    }
    if let Some(trace) = &cfg.trace {
        trace.install(&mut rt);
    }
    let sys = carlos_sync::install(&mut rt);
    let barrier = BarrierSpec::global(900, 0);
    let node = rt.node_id() as usize;
    let my = band(node, rows, cfg.n_nodes);

    let cell = |r: usize, c: usize| grid_addr + (r * cols + c) * 8;

    if node == 0 {
        // Pages default to zero everywhere; only the hot top edge needs
        // explicit initialization (and it lives in node 0's own band).
        let hot: Vec<u8> = (0..cols).flat_map(|_| 100.0f64.to_le_bytes()).collect();
        rt.write_bytes(grid_addr, &hot);
        rt.compute(us(5_000));
    }
    sys.barrier(&mut rt, barrier, 0);

    let mut epoch = 1;
    for _ in 0..cfg.iters {
        for color in 0..2usize {
            // Read the band plus its halo rows, compute locally, write the
            // band's updated cells of this colour back. The band rows are
            // ours alone, so one block read suffices; the two halo rows
            // belong to neighbours that are concurrently updating their
            // cells of this colour, so only the frozen opposite-colour
            // cells the stencil actually reads may be touched.
            let lo = my.start - 1;
            let hi = my.end + 1;
            let mut halo = vec![0u8; (hi - lo) * cols * 8];
            if my.start < my.end {
                let own = (my.start - lo) * cols * 8..(my.end - lo) * cols * 8;
                rt.read_bytes(cell(my.start, 0), &mut halo[own]);
            }
            for r in [lo, my.end] {
                let row = (r - lo) * cols * 8;
                for c in 0..cols {
                    if (r + c) % 2 != color {
                        let mut v = [0u8; 8];
                        rt.read_bytes(cell(r, c), &mut v);
                        halo[row + c * 8..row + c * 8 + 8].copy_from_slice(&v);
                    }
                }
            }
            let f = |r: usize, c: usize| -> f64 {
                let off = ((r - lo) * cols + c) * 8;
                f64::from_le_bytes(halo[off..off + 8].try_into().expect("cell"))
            };
            let mut cells = 0u64;
            let mut updates: Vec<(usize, usize, f64)> = Vec::new();
            for r in my.clone() {
                for c in 1..cols - 1 {
                    if (r + c) % 2 == color {
                        let v = 0.25 * (f(r - 1, c) + f(r + 1, c) + f(r, c - 1) + f(r, c + 1));
                        updates.push((r, c, v));
                        cells += 1;
                    }
                }
            }
            rt.compute(cfg.ns_per_cell * cells);
            for (r, c, v) in updates {
                rt.write_bytes(cell(r, c), &v.to_le_bytes());
            }
            sys.barrier(&mut rt, barrier, epoch);
            epoch += 1;
        }
    }
    rt.ctx().count("app.done_ns", rt.ctx().now());
    // Node 0 collects the final grid.
    let grid = if node == 0 {
        let mut bytes = vec![0u8; rows * cols * 8];
        rt.read_bytes(grid_addr, &mut bytes);
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect()
    } else {
        Vec::new()
    };
    sys.barrier(&mut rt, barrier, epoch);
    rt.shutdown();
    grid
}
