//! The paper's applications (§5): TSP, Quicksort, and Water, each in a
//! "strictly shared memory" lock version and one or more hybrid versions
//! that keep data in coherent shared memory but coordinate with annotated
//! messages.
//!
//! Every application really computes its result on the DSM — the tests
//! verify tours, sort order, and simulation agreement — while virtual-time
//! charges calibrate single-node run times to the paper's testbed so the
//! benchmark harnesses can reproduce Tables 1–3 and Figure 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod qsort;
pub mod sor;
pub mod tsp;
pub mod water;

pub use harness::{AppReport, Collector};
pub use qsort::{run_qsort, try_run_qsort, QsortConfig, QsortVariant};
pub use sor::{run_sor, try_run_sor, SorConfig};
pub use tsp::{run_tsp, try_run_tsp, TspConfig, TspVariant};
pub use water::{run_water, try_run_water, WaterConfig, WaterVariant};
