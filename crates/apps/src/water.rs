//! The Water application (§5.3) — molecular dynamics from the SPLASH suite.
//!
//! Each iteration has phases separated by barriers. In the dominant phase
//! the processors compute intermolecular forces for all pairs (nonzero
//! only within a cutoff); each processor is responsible for the pairs
//! between its block of molecules and half of the remaining ones, and
//! accumulates its contributions locally, performing a *single* update per
//! molecule at the end of the phase (the SPLASH-recommended reduction).
//!
//! - **Lock** — each molecule is protected by a lock; the per-molecule
//!   update is a lock–update–unlock sequence on the molecule's force
//!   vector in coherent shared memory.
//! - **Hybrid** — "the node that generates the update information sends a
//!   NONE message to the node that owns the molecule to invoke the update
//!   function. The sequential delivery property of CarlOS messages
//!   guarantees that the updates are applied atomically, thus eliminating
//!   the need to use locks on individual molecules." Function shipping
//!   replaces both data migration and explicit synchronization.

use std::collections::BTreeSet;

use carlos_core::{Annotation, CoherentHeap, CoreConfig, Runtime};
use carlos_lrc::{LrcConfig, PageOwnership};
use carlos_sim::{time::us, AckMode, Cluster, SimConfig};
use carlos_sync::{BarrierSpec, LockSpec};
use carlos_util::rng::Xoshiro256;

use crate::harness::{AppReport, Collector};

const H_UPDATE: u32 = 0x0220;

/// Which Water program to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaterVariant {
    /// Per-molecule locks protect force updates.
    Lock,
    /// Per-molecule update functions shipped in NONE messages.
    Hybrid,
}

/// Configuration for one Water run.
#[derive(Debug, Clone)]
pub struct WaterConfig {
    /// Cluster size.
    pub n_nodes: usize,
    /// Number of molecules (343 in the paper; must be odd so the
    /// half-window pair assignment covers each pair exactly once).
    pub n_molecules: usize,
    /// Simulation steps (5 in the paper).
    pub steps: usize,
    /// Workload seed (initial velocities).
    pub seed: u64,
    /// Program variant.
    pub variant: WaterVariant,
    /// Mark the hybrid's update messages RELEASE instead of NONE (the
    /// §5.4 annotation experiment).
    pub all_release: bool,
    /// Virtual nanoseconds charged per examined molecule pair.
    pub ns_per_pair: u64,
    /// Virtual nanoseconds charged per molecule integration.
    pub ns_per_integrate: u64,
    /// Network/cost model.
    pub sim: SimConfig,
    /// CarlOS cost model.
    pub core: CoreConfig,
    /// DSM page size.
    pub page_size: usize,
    /// Variable-granularity layout hint: carve the molecule table into
    /// 128 B coherence granules so a per-molecule lock–update–unlock moves
    /// that molecule's live fields, not an 8 KiB page shared by a dozen
    /// molecules. Off by default — legacy behavior is pinned by golden
    /// fingerprints.
    pub granularity_hints: bool,
    /// Collect final state on every node (tests) or only node 0 (paper).
    pub collect_all_nodes: bool,
    /// Transport acknowledgement mode (switch to [`AckMode::Arq`] to run
    /// under injected loss, e.g. in chaos tests).
    pub ack: AckMode,
    /// Optional consistency oracle, installed on every node and attached
    /// to the cluster wire (observer-only: virtual time is unaffected).
    pub check: Option<carlos_check::Checker>,
    /// Optional causal tracer, installed on every node and attached to the
    /// cluster wire (observer-only: virtual time is unaffected).
    pub trace: Option<carlos_trace::Tracer>,
}

impl WaterConfig {
    /// The paper-scale workload: 343 molecules, 5 steps.
    #[must_use]
    pub fn paper(n_nodes: usize, variant: WaterVariant) -> Self {
        Self {
            n_nodes,
            n_molecules: 343,
            steps: 5,
            seed: 0xAA71_1994,
            variant,
            all_release: false,
            ns_per_pair: 104_000,
            ns_per_integrate: 60_000,
            sim: SimConfig::osdi94(),
            core: CoreConfig::osdi94(),
            page_size: 8192,
            granularity_hints: false,
            collect_all_nodes: false,
            ack: AckMode::Implicit,
            check: None,
            trace: None,
        }
    }

    /// A small, fast workload for tests.
    #[must_use]
    pub fn test(n_nodes: usize, variant: WaterVariant) -> Self {
        Self {
            n_nodes,
            n_molecules: 27,
            steps: 2,
            seed: 99,
            variant,
            all_release: false,
            ns_per_pair: 200,
            ns_per_integrate: 100,
            sim: SimConfig::fast_test(),
            core: CoreConfig::fast_test(),
            page_size: 512,
            granularity_hints: false,
            collect_all_nodes: true,
            ack: AckMode::Implicit,
            check: None,
            trace: None,
        }
    }
}

/// Result of a Water run.
#[derive(Debug, Clone)]
pub struct WaterResult {
    /// Simulation report and derived columns.
    pub app: AppReport,
    /// Final molecule positions (x, y, z) as read by node 0.
    pub positions: Vec<[f64; 3]>,
    /// Sum of squared velocities at the end (kinetic-energy proxy).
    pub kinetic: f64,
}

/// Bytes per molecule record. The SPLASH molecule record (three atoms with
/// predictor-corrector state) is several hundred bytes; we lay out the
/// fields we integrate plus realistic padding so page-sharing behaviour
/// matches the paper's.
const MOL_BYTES: usize = 672;
const OFF_POS: usize = 0; // 3 × f64
const OFF_VEL: usize = 24; // 3 × f64
const OFF_FORCE: usize = 48; // 3 × f64 (net force on the molecule)

struct Layout {
    mols: usize,
}

fn layout(cfg: &WaterConfig) -> (Layout, usize, Vec<carlos_lrc::RegionSpec>) {
    let ps = cfg.page_size;
    let mut heap = CoherentHeap::new(1 << 26);
    let mols = if cfg.granularity_hints {
        // Eager 4 KiB granules over the molecule table (about six 672-byte
        // molecule records each). Every node sweeps the whole table every
        // force phase, so updates piggyback on the phase's releases (eager)
        // rather than being re-fetched; half-page granules still halve the
        // false sharing and diff scan of the 8 KiB default. Finer granules
        // cut SYSTEM bytes further but cost more messages than they save:
        // the sweep re-reads everything, so per-molecule invalidation just
        // fragments the same data into more frames.
        heap.alloc_with_granule_eager(cfg.n_molecules * MOL_BYTES, 4096)
    } else {
        let mols = heap.alloc(ps, ps);
        let _ = heap.alloc(cfg.n_molecules * MOL_BYTES, 1);
        mols
    };
    let region = heap.used().next_multiple_of(ps);
    (Layout { mols }, region, heap.regions())
}

/// Block partition: the owner of molecule `m`.
fn owner(m: usize, n_mols: usize, n_nodes: usize) -> u32 {
    let per = n_mols.div_ceil(n_nodes);
    (m / per) as u32
}

/// Molecules owned by `node`.
fn owned_range(node: u32, n_mols: usize, n_nodes: usize) -> std::ops::Range<usize> {
    let per = n_mols.div_ceil(n_nodes);
    let lo = (node as usize * per).min(n_mols);
    let hi = ((node as usize + 1) * per).min(n_mols);
    lo..hi
}

/// What each node hands back: final positions and its kinetic-energy sum.
type WaterOut = (Vec<[f64; 3]>, f64);

fn build_water(cfg: &WaterConfig) -> (Cluster, Collector<WaterOut>) {
    assert!(
        cfg.n_molecules % 2 == 1,
        "n_molecules must be odd for the half-window pair assignment"
    );
    let out: Collector<WaterOut> = Collector::new();
    let mut cluster = Cluster::new(cfg.sim.clone(), cfg.n_nodes);
    if let Some(check) = &cfg.check {
        check.attach(&mut cluster);
    }
    if let Some(trace) = &cfg.trace {
        trace.attach(&mut cluster);
    }
    for node in 0..cfg.n_nodes as u32 {
        let cfg = cfg.clone();
        let out = out.clone();
        cluster.spawn_node(node, move |ctx| {
            let r = water_node(&cfg, ctx);
            out.put(node, r);
        });
    }
    (cluster, out)
}

fn finish_water(report: carlos_sim::SimReport, out: &Collector<WaterOut>) -> WaterResult {
    let collected = out.take();
    let (positions, kinetic) = collected
        .into_iter()
        .next()
        .map(|(_, v)| v)
        .expect("node 0 ran");
    WaterResult {
        app: AppReport::new(report),
        positions,
        kinetic,
    }
}

/// Runs the Water application on a simulated cluster.
///
/// # Panics
///
/// Panics if `n_molecules` is even, or on internal protocol violations.
#[must_use]
pub fn run_water(cfg: &WaterConfig) -> WaterResult {
    let (cluster, out) = build_water(cfg);
    let report = cluster.run();
    finish_water(report, &out)
}

/// Runs the Water application, returning simulation failures as a
/// [`carlos_sim::SimError`] value instead of panicking.
///
/// # Panics
///
/// Panics if `n_molecules` is even (a configuration error, not a
/// simulation failure).
///
/// # Errors
///
/// Returns the [`carlos_sim::SimError`] describing how the run failed.
pub fn try_run_water(cfg: &WaterConfig) -> Result<WaterResult, carlos_sim::SimError> {
    let (cluster, out) = build_water(cfg);
    let report = cluster.try_run()?;
    Ok(finish_water(report, &out))
}

fn mol_addr(lay: &Layout, m: usize) -> usize {
    lay.mols + m * MOL_BYTES
}

fn read_vec3(rt: &mut Runtime, addr: usize) -> [f64; 3] {
    [
        rt.read_f64(addr),
        rt.read_f64(addr + 8),
        rt.read_f64(addr + 16),
    ]
}

fn write_vec3(rt: &mut Runtime, addr: usize, v: [f64; 3]) {
    rt.write_f64(addr, v[0]);
    rt.write_f64(addr + 8, v[1]);
    rt.write_f64(addr + 16, v[2]);
}

/// Softened pairwise force on `a` due to `b` (zero outside the cutoff).
fn pair_force(pa: [f64; 3], pb: [f64; 3], cutoff2: f64) -> [f64; 3] {
    let dx = pa[0] - pb[0];
    let dy = pa[1] - pb[1];
    let dz = pa[2] - pb[2];
    let r2 = dx * dx + dy * dy + dz * dz;
    if r2 > cutoff2 || r2 == 0.0 {
        return [0.0; 3];
    }
    // Softened Lennard-Jones-like interaction: repulsive near, mildly
    // attractive far, bounded everywhere (numerical stability over 5 steps
    // matters more than chemistry here).
    let soft = r2 + 0.25;
    let inv = 1.0 / soft;
    let inv3 = inv * inv * inv;
    let mag = 24.0 * (2.0 * inv3 * inv3 - inv3) * inv;
    let mag = mag.clamp(-50.0, 50.0);
    [dx * mag, dy * mag, dz * mag]
}

#[allow(clippy::too_many_lines)]
fn water_node(cfg: &WaterConfig, ctx: carlos_sim::NodeCtx) -> (Vec<[f64; 3]>, f64) {
    let (lay, region, regions) = layout(cfg);
    let lrc = LrcConfig {
        n_nodes: cfg.n_nodes,
        page_size: cfg.page_size,
        region_bytes: region,
        gc_threshold_records: 12_000,
        ownership: PageOwnership::SingleOwner(0),
        regions,
    };
    let mut rt = Runtime::with_ack_mode(ctx, lrc, cfg.core.clone(), cfg.ack);
    if let Some(check) = &cfg.check {
        check.install(&mut rt);
    }
    if let Some(trace) = &cfg.trace {
        trace.install(&mut rt);
    }
    let sys = carlos_sync::install(&mut rt);
    let barrier = BarrierSpec::global(900, 0);
    let node = rt.node_id();
    let n = cfg.n_molecules;
    let n_nodes = cfg.n_nodes;
    let half = (n - 1) / 2;
    let cutoff2 = 6.25; // Cutoff radius 2.5 in lattice units.
    let dt = 2.0e-3;
    let own = owned_range(node, n, n_nodes);

    // Initialization (node 0): a cubic lattice with small seeded velocities.
    if node == 0 {
        let side = (n as f64).cbrt().ceil() as usize;
        let mut rng = Xoshiro256::new(cfg.seed);
        for m in 0..n {
            let x = (m % side) as f64 * 1.3;
            let y = ((m / side) % side) as f64 * 1.3;
            let z = (m / (side * side)) as f64 * 1.3;
            write_vec3(&mut rt, mol_addr(&lay, m) + OFF_POS, [x, y, z]);
            let vel = [
                rng.next_range_f64(-0.05, 0.05),
                rng.next_range_f64(-0.05, 0.05),
                rng.next_range_f64(-0.05, 0.05),
            ];
            write_vec3(&mut rt, mol_addr(&lay, m) + OFF_VEL, vel);
            write_vec3(&mut rt, mol_addr(&lay, m) + OFF_FORCE, [0.0; 3]);
        }
        rt.compute(us(50_000));
    }

    // Statically computable update-message counts: how many distinct
    // foreign molecules each node touches, per owner.
    let mut touches: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n_nodes];
    for i in own.clone() {
        for k in 1..=half {
            let j = (i + k) % n;
            let q = owner(j, n, n_nodes);
            if q != node {
                touches[q as usize].insert(j);
            }
        }
    }
    // Updates this node will receive = sum over peers p of the number of
    // our molecules p touches.
    let mut expected_updates = 0usize;
    for p in 0..n_nodes as u32 {
        if p == node {
            continue;
        }
        let prange = owned_range(p, n, n_nodes);
        let mut mine: BTreeSet<usize> = BTreeSet::new();
        for i in prange {
            for k in 1..=half {
                let j = (i + k) % n;
                if owner(j, n, n_nodes) == node {
                    mine.insert(j);
                }
            }
        }
        expected_updates += mine.len();
    }

    let update_annotation = if cfg.all_release {
        Annotation::Release
    } else {
        Annotation::None
    };

    sys.barrier(&mut rt, barrier, 0);

    for step in 0..cfg.steps as u32 {
        let ep = 10 + step * 10;
        // Phase 1: owners zero their molecules' force accumulators.
        for m in own.clone() {
            write_vec3(&mut rt, mol_addr(&lay, m) + OFF_FORCE, [0.0; 3]);
        }
        sys.barrier(&mut rt, barrier, ep + 1);

        // Phase 2: pairwise forces. Read all positions once (the DSM pulls
        // whatever pages changed), then accumulate locally.
        let mut pos = vec![[0.0f64; 3]; n];
        for (m, slot) in pos.iter_mut().enumerate() {
            *slot = read_vec3(&mut rt, mol_addr(&lay, m) + OFF_POS);
        }
        let mut acc = vec![[0.0f64; 3]; n];
        let mut pairs = 0u64;
        for i in own.clone() {
            for k in 1..=half {
                let j = (i + k) % n;
                let f = pair_force(pos[i], pos[j], cutoff2);
                for d in 0..3 {
                    acc[i][d] += f[d];
                    acc[j][d] -= f[d];
                }
                pairs += 1;
            }
        }
        rt.compute(cfg.ns_per_pair * pairs);

        match cfg.variant {
            WaterVariant::Lock => {
                // Every force-vector update — own molecules included — is a
                // lock–update–unlock sequence: remote contributors update
                // concurrently, so the owner must take the lock too.
                let mut targets: Vec<usize> = own.clone().collect();
                for peer_touches in touches.iter().take(n_nodes) {
                    targets.extend(peer_touches.iter().copied());
                }
                for m in targets {
                    let lock = LockSpec::new(1000 + m as u32, owner(m, n, n_nodes));
                    sys.acquire(&mut rt, lock);
                    let addr = mol_addr(&lay, m) + OFF_FORCE;
                    let cur = read_vec3(&mut rt, addr);
                    write_vec3(
                        &mut rt,
                        addr,
                        [
                            cur[0] + acc[m][0],
                            cur[1] + acc[m][1],
                            cur[2] + acc[m][2],
                        ],
                    );
                    sys.release(&mut rt, lock);
                }
                sys.barrier(&mut rt, barrier, ep + 2);
            }
            WaterVariant::Hybrid => {
                // Own contributions apply directly: the owner is the only
                // writer of its molecules in the hybrid, which is exactly
                // what function shipping buys.
                for m in own.clone() {
                    let addr = mol_addr(&lay, m) + OFF_FORCE;
                    let cur = read_vec3(&mut rt, addr);
                    write_vec3(
                        &mut rt,
                        addr,
                        [cur[0] + acc[m][0], cur[1] + acc[m][1], cur[2] + acc[m][2]],
                    );
                }
                // Ship the update function: molecule id + force delta (the
                // body is padded to atom-level size, as the real record's
                // update carries three atoms' worth of vectors).
                for (q, peer_touches) in touches.iter().enumerate().take(n_nodes) {
                    for &m in peer_touches {
                        // Molecule id + per-atom force vectors (three
                        // atoms, three dimensions, double precision) plus
                        // the higher-order correction terms the real
                        // update function carries.
                        let mut body = Vec::with_capacity(4 + 216);
                        body.extend_from_slice(&(m as u32).to_le_bytes());
                        for delta in &acc[m] {
                            body.extend_from_slice(&delta.to_le_bytes());
                        }
                        body.resize(4 + 216, 0);
                        rt.send(q as u32, H_UPDATE, body, update_annotation);
                    }
                }
                // Apply the updates shipped to us; sequential delivery makes
                // each application atomic without molecule locks.
                let mut got = 0usize;
                while got < expected_updates {
                    let m = rt.wait_accepted(H_UPDATE);
                    let id = u32::from_le_bytes(m.body[..4].try_into().expect("mol id")) as usize;
                    assert_eq!(owner(id, n, n_nodes), node, "update shipped to wrong owner");
                    let mut delta = [0.0f64; 3];
                    for (d, slot) in delta.iter_mut().enumerate() {
                        *slot = f64::from_le_bytes(
                            m.body[4 + d * 8..12 + d * 8].try_into().expect("delta"),
                        );
                    }
                    let addr = mol_addr(&lay, id) + OFF_FORCE;
                    let cur = read_vec3(&mut rt, addr);
                    write_vec3(
                        &mut rt,
                        addr,
                        [cur[0] + delta[0], cur[1] + delta[1], cur[2] + delta[2]],
                    );
                    got += 1;
                }
                sys.barrier(&mut rt, barrier, ep + 2);
            }
        }

        // Phase 3: integrate owned molecules.
        for m in own.clone() {
            let f = read_vec3(&mut rt, mol_addr(&lay, m) + OFF_FORCE);
            let mut v = read_vec3(&mut rt, mol_addr(&lay, m) + OFF_VEL);
            let mut x = read_vec3(&mut rt, mol_addr(&lay, m) + OFF_POS);
            for d in 0..3 {
                v[d] += f[d] * dt;
                x[d] += v[d] * dt;
            }
            write_vec3(&mut rt, mol_addr(&lay, m) + OFF_VEL, v);
            write_vec3(&mut rt, mol_addr(&lay, m) + OFF_POS, x);
        }
        rt.compute(cfg.ns_per_integrate * own.len() as u64);
        sys.barrier(&mut rt, barrier, ep + 3);
    }

    // The timed run ends at the last step's barrier.
    rt.ctx().count("app.done_ns", rt.ctx().now());
    // Collect results (node 0, or everyone when configured for tests).
    let mut positions = Vec::new();
    let mut kinetic = 0.0f64;
    if cfg.collect_all_nodes || node == 0 {
        positions.reserve(n);
        for m in 0..n {
            positions.push(read_vec3(&mut rt, mol_addr(&lay, m) + OFF_POS));
            let v = read_vec3(&mut rt, mol_addr(&lay, m) + OFF_VEL);
            kinetic += v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
        }
    }
    sys.barrier(&mut rt, barrier, 9000);
    rt.shutdown();
    (positions, kinetic)
}
