//! The Traveling Salesman Problem application (§5.1).
//!
//! Branch-and-bound search for the shortest tour. Two versions, as in the
//! paper:
//!
//! - **Lock** — a "strictly shared memory" program: a work queue of partial
//!   tours lives in coherent shared memory, protected by a lock, so its
//!   representation migrates among all nodes that touch it. Workers pop a
//!   partial tour; short tours are expanded and the children pushed back
//!   (all under the queue lock); full-depth prefixes are solved
//!   exhaustively. A second lock protects updates of the current bound
//!   ("best tour"); reads of the bound are unsynchronized, as the paper
//!   notes is safe for a single-word value.
//! - **Hybrid** — the work queue becomes a centralized message-based queue
//!   whose manager *generates* the queued tours itself and participates in
//!   the search. Clients request a tour index with a REQUEST message and
//!   receive the descriptor in a RELEASE reply; tour descriptors stay in
//!   coherent shared memory; improved bounds are posted to the master in a
//!   REQUEST, which writes the value to shared memory and answers with a
//!   RELEASE. "Message-passing is used only to implement the shared work
//!   queue." (§5.1)

use carlos_core::{Annotation, CoherentHeap, CoreConfig, Runtime};
use carlos_lrc::{LrcConfig, PageOwnership};
use carlos_sim::{time::us, AckMode, Cluster, SimConfig};
use carlos_sync::{BarrierSpec, LockSpec, QueueSpec};
use carlos_util::rng::Xoshiro256;

use crate::harness::{AppReport, Collector};

/// User handler ids (outside the `carlos-sync` reserved range).
const H_BOUND_POST: u32 = 0x0200;
const H_BOUND_ACK: u32 = 0x0201;
const H_WORKER_DONE: u32 = 0x0202;

/// Which program variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TspVariant {
    /// Shared-memory work queue and bound, synchronized with locks.
    Lock,
    /// Message-based work queue and bound posting.
    Hybrid,
}

/// Configuration for one TSP run.
#[derive(Debug, Clone)]
pub struct TspConfig {
    /// Cluster size.
    pub n_nodes: usize,
    /// Number of cities (19 in the paper).
    pub n_cities: usize,
    /// Partial tours are expanded until this many cities are fixed; then a
    /// prefix is solved exhaustively by one worker.
    pub leaf_depth: usize,
    /// Workload seed (city coordinates).
    pub seed: u64,
    /// Program variant.
    pub variant: TspVariant,
    /// Mark every message RELEASE (the §5.4 annotation experiment).
    pub all_release: bool,
    /// Virtual nanoseconds charged per branch-and-bound tree expansion
    /// (calibrates single-node time to the paper's testbed).
    pub ns_per_expansion: u64,
    /// Expansions between local-bound refreshes / compute charges.
    pub refresh_every: u32,
    /// Network/cost model.
    pub sim: SimConfig,
    /// CarlOS cost model.
    pub core: CoreConfig,
    /// DSM page size.
    pub page_size: usize,
    /// Variable-granularity layout hints: give the queue control words and
    /// each handful of task descriptors their own fine coherence granule
    /// (via `CoherentHeap::alloc_with_granule`) instead of sharing whole
    /// pages. Off by default — the legacy layout and wire behavior are
    /// pinned by golden fingerprints.
    pub granularity_hints: bool,
    /// Transport acknowledgement mode (switch to [`AckMode::Arq`] to run
    /// under injected loss, e.g. in chaos tests).
    pub ack: AckMode,
    /// Optional consistency oracle, installed on every node and attached
    /// to the cluster wire (observer-only: virtual time is unaffected).
    pub check: Option<carlos_check::Checker>,
    /// Optional causal tracer, installed on every node and attached to the
    /// cluster wire (observer-only: virtual time is unaffected).
    pub trace: Option<carlos_trace::Tracer>,
}

impl TspConfig {
    /// The paper-scale workload: 19 cities.
    #[must_use]
    pub fn paper(n_nodes: usize, variant: TspVariant) -> Self {
        Self {
            n_nodes,
            n_cities: 19,
            leaf_depth: 4,
            seed: 0x7597_1994,
            variant,
            all_release: false,
            ns_per_expansion: 2_550,
            refresh_every: 4_096,
            sim: SimConfig::osdi94(),
            core: CoreConfig::osdi94(),
            page_size: 8192,
            granularity_hints: false,
            ack: AckMode::Implicit,
            check: None,
            trace: None,
        }
    }

    /// A small, fast workload for tests.
    #[must_use]
    pub fn test(n_nodes: usize, variant: TspVariant) -> Self {
        Self {
            n_nodes,
            n_cities: 10,
            leaf_depth: 3,
            seed: 42,
            variant,
            all_release: false,
            ns_per_expansion: 500,
            refresh_every: 256,
            sim: SimConfig::fast_test(),
            core: CoreConfig::fast_test(),
            page_size: 512,
            granularity_hints: false,
            ack: AckMode::Implicit,
            check: None,
            trace: None,
        }
    }
}

/// Result of a TSP run.
#[derive(Debug, Clone)]
pub struct TspResult {
    /// Simulation report and derived table columns.
    pub app: AppReport,
    /// Length of the best tour found (scaled integer distance).
    pub best_len: u32,
    /// Total branch-and-bound expansions across the cluster.
    pub expansions: u64,
}

/// Deterministic city instance: coordinates and the distance matrix.
#[derive(Debug, Clone)]
pub struct Cities {
    n: usize,
    dist: Vec<u32>,
    /// Cheapest outgoing edge per city (pruning lower bound).
    min_out: Vec<u32>,
}

impl Cities {
    /// Generates `n` cities on a 10 000 × 10 000 grid from `seed`.
    #[must_use]
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.next_range_f64(0.0, 10_000.0), rng.next_range_f64(0.0, 10_000.0)))
            .collect();
        let mut dist = vec![0u32; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = pts[i].0 - pts[j].0;
                let dy = pts[i].1 - pts[j].1;
                dist[i * n + j] = (dx * dx + dy * dy).sqrt().round() as u32;
            }
        }
        let min_out = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i)
                    .map(|j| dist[i * n + j])
                    .min()
                    .unwrap_or(0)
            })
            .collect();
        Self { n, dist, min_out }
    }

    /// Distance between cities `i` and `j`.
    #[must_use]
    pub fn d(&self, i: usize, j: usize) -> u32 {
        self.dist[i * self.n + j]
    }

    /// A nearest-neighbour tour length from city 0 — the initial bound.
    #[must_use]
    pub fn greedy_bound(&self) -> u32 {
        let mut visited = vec![false; self.n];
        visited[0] = true;
        let mut cur = 0usize;
        let mut len = 0u32;
        for _ in 1..self.n {
            let next = (0..self.n)
                .filter(|&j| !visited[j])
                .min_by_key(|&j| self.d(cur, j))
                .expect("unvisited city exists");
            len += self.d(cur, next);
            visited[next] = true;
            cur = next;
        }
        len + self.d(cur, 0)
    }

    /// A nearest-neighbour tour improved by 2-opt passes — the initial
    /// bound used by the search (a tight bound keeps the branch-and-bound
    /// tree tractable, as any serious TSP code of the era did).
    #[must_use]
    pub fn improved_bound(&self) -> u32 {
        // Rebuild the NN tour explicitly.
        let n = self.n;
        let mut tour = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        tour.push(0usize);
        visited[0] = true;
        for _ in 1..n {
            let cur = *tour.last().expect("tour non-empty");
            let next = (0..n)
                .filter(|&j| !visited[j])
                .min_by_key(|&j| self.d(cur, j))
                .expect("unvisited city exists");
            tour.push(next);
            visited[next] = true;
        }
        // 2-opt until no improving exchange remains.
        let mut improved = true;
        while improved {
            improved = false;
            for i in 0..n - 1 {
                for k in i + 2..n {
                    let a = tour[i];
                    let b = tour[i + 1];
                    let c = tour[k];
                    let dnext = tour[(k + 1) % n];
                    let before = self.d(a, b) + self.d(c, dnext);
                    let after = self.d(a, c) + self.d(b, dnext);
                    if after < before {
                        tour[i + 1..=k].reverse();
                        improved = true;
                    }
                }
            }
        }
        (0..n).map(|i| self.d(tour[i], tour[(i + 1) % n])).sum()
    }

    /// Exact optimum by Held–Karp dynamic programming (test oracle; only
    /// feasible for small `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n > 20` (the table would not fit in memory).
    #[must_use]
    pub fn held_karp(&self) -> u32 {
        let n = self.n;
        assert!(n <= 20, "Held-Karp oracle limited to small instances");
        let full = 1usize << (n - 1); // Sets over cities 1..n.
        let mut dp = vec![u32::MAX; full * (n - 1)];
        for j in 1..n {
            dp[(1 << (j - 1)) * (n - 1) + (j - 1)] = self.d(0, j);
        }
        for mask in 1..full {
            for j in 1..n {
                if mask & (1 << (j - 1)) == 0 {
                    continue;
                }
                let cur = dp[mask * (n - 1) + (j - 1)];
                if cur == u32::MAX {
                    continue;
                }
                for k in 1..n {
                    if mask & (1 << (k - 1)) != 0 {
                        continue;
                    }
                    let nm = mask | (1 << (k - 1));
                    let cand = cur + self.d(j, k);
                    let slot = &mut dp[nm * (n - 1) + (k - 1)];
                    if cand < *slot {
                        *slot = cand;
                    }
                }
            }
        }
        (1..n)
            .map(|j| dp[(full - 1) * (n - 1) + (j - 1)].saturating_add(self.d(j, 0)))
            .min()
            .expect("at least one tour")
    }
}

/// A partial tour descriptor: up to 8 fixed cities, city 0 first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Task {
    cities: [u8; 8],
    len: u8,
}

const TASK_BYTES: usize = 9;

impl Task {
    fn root() -> Self {
        let mut cities = [0u8; 8];
        cities[0] = 0;
        Self { cities, len: 1 }
    }

    fn to_bytes(self) -> [u8; TASK_BYTES] {
        let mut b = [0u8; TASK_BYTES];
        b[..8].copy_from_slice(&self.cities);
        b[8] = self.len;
        b
    }

    fn from_bytes(b: &[u8]) -> Self {
        let mut cities = [0u8; 8];
        cities.copy_from_slice(&b[..8]);
        Self { cities, len: b[8] }
    }

    fn visited_mask(&self) -> u32 {
        self.cities[..self.len as usize]
            .iter()
            .fold(0u32, |m, &c| m | (1 << c))
    }

    fn path_len(&self, cities: &Cities) -> u32 {
        self.cities[..self.len as usize]
            .windows(2)
            .map(|w| cities.d(w[0] as usize, w[1] as usize))
            .sum()
    }

    fn child(&self, next: u8) -> Self {
        let mut c = *self;
        c.cities[c.len as usize] = next;
        c.len += 1;
        c
    }
}

/// Shared-memory layout, computed identically on every node.
struct Layout {
    best: usize,
    q_top: usize,
    q_outstanding: usize,
    slots: usize,
    slot_cap: usize,
}

fn layout(cfg: &TspConfig) -> (Layout, usize, Vec<carlos_lrc::RegionSpec>) {
    let mut heap = CoherentHeap::new(1 << 22);
    let slot_cap = 16_384;
    let (best, q_top, slots);
    if cfg.granularity_hints {
        // Fine granules: the bound and the queue control words each get a
        // 64 B coherence unit, and the task table is carved into 64 B
        // granules (~7 descriptors each). A pop then fetches one task's
        // granule from its one or two recent writers instead of a whole
        // 8 KiB page's diffs from every node that pushed anywhere on it.
        best = heap.alloc_with_granule_eager(4, 64);
        q_top = heap.alloc_with_granule_eager(8, 64);
        slots = heap.alloc_with_granule_eager(slot_cap * TASK_BYTES, 64);
    } else {
        best = heap.alloc(4, 4);
        // Queue control words share one page (they are read and written
        // together under the queue lock); slots and the bound live on
        // separate pages, like the paper's separate locks for queue and
        // bound.
        q_top = heap.alloc(cfg.page_size.max(8), cfg.page_size.max(8));
        slots = heap.alloc(cfg.page_size.max(8), cfg.page_size.max(8));
        let _ = heap.alloc(slot_cap * TASK_BYTES, 1);
    }
    let q_outstanding = q_top + 4;
    let region = heap.used().next_multiple_of(cfg.page_size);
    (
        Layout {
            best,
            q_top,
            q_outstanding,
            slots,
            slot_cap,
        },
        region,
        heap.regions(),
    )
}

/// Admissible lower bound on completing a partial tour: the cheapest
/// outgoing edge of the current city plus those of all unvisited cities.
fn lower_bound_rest(cities: &Cities, visited: u32, cur: usize) -> u32 {
    let mut lb = cities.min_out[cur];
    for c in 0..cities.n {
        if visited & (1 << c) == 0 {
            lb += cities.min_out[c];
        }
    }
    lb
}

/// Sequential exhaustive solver for a full-depth prefix. Returns the best
/// complete tour found (if better than `bound`) and the expansion count.
struct Solver<'a> {
    cities: &'a Cities,
    bound: u32,
    expansions: u64,
    improved: bool,
}

impl<'a> Solver<'a> {
    fn new(cities: &'a Cities, bound: u32) -> Self {
        Self {
            cities,
            bound,
            expansions: 0,
            improved: false,
        }
    }

    fn lower_bound_rest(&self, visited: u32) -> u32 {
        let mut lb = 0u32;
        for c in 0..self.cities.n {
            if visited & (1 << c) == 0 {
                lb += self.cities.min_out[c];
            }
        }
        lb
    }

    fn dfs(&mut self, cur: usize, visited: u32, len: u32) {
        self.expansions += 1;
        let n = self.cities.n;
        if visited.count_ones() as usize == n {
            let total = len + self.cities.d(cur, 0);
            if total < self.bound {
                self.bound = total;
                self.improved = true;
            }
            return;
        }
        // Prune: current length + cheapest continuation must beat bound.
        if len + self.cities.min_out[cur] + self.lower_bound_rest(visited) >= self.bound {
            return;
        }
        // Order children by distance for better pruning.
        let mut next: Vec<usize> = (0..n).filter(|&j| visited & (1 << j) == 0).collect();
        next.sort_by_key(|&j| self.cities.d(cur, j));
        for j in next {
            let nl = len + self.cities.d(cur, j);
            if nl < self.bound {
                self.dfs(j, visited | (1 << j), nl);
            }
        }
    }
}

/// Generates the full leaf-task list by expanding the root to `leaf_depth`,
/// pruning with `bound` (used by the hybrid manager, which "is responsible
/// for generating the queued tours").
fn generate_leaves(cities: &Cities, leaf_depth: usize, bound: u32) -> (Vec<Task>, u64) {
    let mut out = Vec::new();
    let mut stack = vec![Task::root()];
    let mut expansions = 0u64;
    while let Some(t) = stack.pop() {
        expansions += 1;
        if t.len as usize == leaf_depth {
            out.push(t);
            continue;
        }
        let visited = t.visited_mask();
        let plen = t.path_len(cities);
        let cur = t.cities[t.len as usize - 1] as usize;
        let mut next: Vec<usize> = (0..cities.n)
            .filter(|&j| visited & (1 << j) == 0)
            .filter(|&j| {
                let nl = plen + cities.d(cur, j);
                nl + lower_bound_rest(cities, visited | (1 << j), j) < bound
            })
            .collect();
        // Push farther cities first: nearest-first processing order.
        next.sort_by_key(|&j| std::cmp::Reverse(cities.d(cur, j)));
        for j in next {
            stack.push(t.child(j as u8));
        }
    }
    (out, expansions)
}

fn build_tsp(cfg: &TspConfig) -> (Cluster, Collector<u32>, Collector<u64>) {
    let best_c: Collector<u32> = Collector::new();
    let exp_c: Collector<u64> = Collector::new();
    let mut cluster = Cluster::new(cfg.sim.clone(), cfg.n_nodes);
    if let Some(check) = &cfg.check {
        check.attach(&mut cluster);
    }
    if let Some(trace) = &cfg.trace {
        trace.attach(&mut cluster);
    }
    for node in 0..cfg.n_nodes as u32 {
        let cfg = cfg.clone();
        let best_c = best_c.clone();
        let exp_c = exp_c.clone();
        cluster.spawn_node(node, move |ctx| {
            let (res_best, res_exp) = tsp_node(&cfg, ctx);
            best_c.put(node, res_best);
            exp_c.put(node, res_exp);
        });
    }
    (cluster, best_c, exp_c)
}

fn finish_tsp(report: carlos_sim::SimReport, best_c: &Collector<u32>, exp_c: &Collector<u64>) -> TspResult {
    let best = best_c
        .take()
        .into_iter()
        .map(|(_, b)| b)
        .min()
        .expect("at least one node ran");
    let expansions: u64 = exp_c.take().into_iter().map(|(_, e)| e).sum();
    TspResult {
        app: AppReport::new(report),
        best_len: best,
        expansions,
    }
}

/// Runs the TSP application on a simulated cluster.
///
/// # Panics
///
/// Panics on configuration errors or internal protocol violations.
#[must_use]
pub fn run_tsp(cfg: &TspConfig) -> TspResult {
    let (cluster, best_c, exp_c) = build_tsp(cfg);
    let report = cluster.run();
    finish_tsp(report, &best_c, &exp_c)
}

/// Runs the TSP application, returning simulation failures (deadlock,
/// node panic, safety-valve trip) as a [`carlos_sim::SimError`] value
/// instead of panicking.
///
/// # Errors
///
/// Returns the [`carlos_sim::SimError`] describing how the run failed.
pub fn try_run_tsp(cfg: &TspConfig) -> Result<TspResult, carlos_sim::SimError> {
    let (cluster, best_c, exp_c) = build_tsp(cfg);
    let report = cluster.try_run()?;
    Ok(finish_tsp(report, &best_c, &exp_c))
}

fn ann(cfg: &TspConfig, normal: Annotation) -> Annotation {
    if cfg.all_release {
        Annotation::Release
    } else {
        normal
    }
}

fn tsp_node(cfg: &TspConfig, ctx: carlos_sim::NodeCtx) -> (u32, u64) {
    let n_nodes = cfg.n_nodes;
    let (lay, region, regions) = layout(cfg);
    let lrc = LrcConfig {
        n_nodes,
        page_size: cfg.page_size,
        region_bytes: region,
        gc_threshold_records: 12_000,
        ownership: PageOwnership::SingleOwner(0),
        regions,
    };
    let mut rt = Runtime::with_ack_mode(ctx, lrc, cfg.core.clone(), cfg.ack);
    if let Some(check) = &cfg.check {
        check.install(&mut rt);
        // Reads of the bound are deliberately unsynchronized — a benign
        // single-word race the paper calls safe (§5.1). Tell the oracle.
        check.allow_racy(lay.best, 4);
    }
    if let Some(trace) = &cfg.trace {
        trace.install(&mut rt);
    }
    let sys = carlos_sync::install(&mut rt);
    let barrier = BarrierSpec::global(900, 0);
    // Every node computes the instance locally (private data).
    let cities = Cities::generate(cfg.n_cities, cfg.seed);
    let init_bound = cities.improved_bound();
    rt.compute(us(2_000)); // Instance setup cost.

    let mut expansions = 0u64;
    match cfg.variant {
        TspVariant::Lock => {
            lock_variant(cfg, &mut rt, &sys, &lay, &cities, init_bound, &mut expansions);
        }
        TspVariant::Hybrid => {
            hybrid_variant(cfg, &mut rt, &sys, &lay, &cities, init_bound, &mut expansions);
        }
    }
    // Final barrier, then read the result; a closing barrier keeps every
    // node alive to serve its peers' final faults.
    sys.barrier(&mut rt, barrier, 101);
    rt.ctx().count("app.done_ns", rt.ctx().now());
    let best = rt.read_u32(lay.best);
    sys.barrier(&mut rt, barrier, 102);
    rt.ctx().count("tsp.expansions", expansions);
    rt.shutdown();
    (best, expansions)
}

/// The strictly-shared-memory version: queue and bound under locks.
fn lock_variant(
    cfg: &TspConfig,
    rt: &mut Runtime,
    sys: &carlos_sync::SyncSystem,
    lay: &Layout,
    cities: &Cities,
    init_bound: u32,
    expansions: &mut u64,
) {
    let qlock = LockSpec::new(1, 0);
    let block = LockSpec::new(2, 0);
    let barrier = BarrierSpec::global(900, 0);
    let node = rt.node_id();

    if node == 0 {
        rt.write_u32(lay.best, init_bound);
        // Seed the stack with the root task.
        rt.write_bytes(lay.slots, &Task::root().to_bytes());
        rt.write_u32(lay.q_top, 1);
        rt.write_u32(lay.q_outstanding, 0);
    }
    sys.barrier(rt, barrier, 100);

    let mut cached_bound = init_bound;
    // Leaf completions are folded into the next pop's critical section.
    let mut finished_one = false;
    loop {
        // Pop one task (or detect completion) under the queue lock.
        sys.acquire(rt, qlock);
        if finished_one {
            let o = rt.read_u32(lay.q_outstanding);
            rt.write_u32(lay.q_outstanding, o - 1);
            finished_one = false;
        }
        let top = rt.read_u32(lay.q_top);
        let task = if top > 0 {
            let addr = lay.slots + (top as usize - 1) * TASK_BYTES;
            let mut b = [0u8; TASK_BYTES];
            rt.read_bytes(addr, &mut b);
            rt.write_u32(lay.q_top, top - 1);
            let o = rt.read_u32(lay.q_outstanding);
            rt.write_u32(lay.q_outstanding, o + 1);
            Some(Task::from_bytes(&b))
        } else {
            None
        };
        let outstanding = rt.read_u32(lay.q_outstanding);
        sys.release(rt, qlock);

        let Some(task) = task else {
            if outstanding == 0 {
                break; // Stack empty and nothing in flight: done.
            }
            // Someone may still push; idle briefly and retry.
            rt.sleep(us(500));
            continue;
        };

        // Unsynchronized bound read (single word; §5.1).
        cached_bound = cached_bound.min(rt.read_u32(lay.best));

        if (task.len as usize) < cfg.leaf_depth {
            // Expand one level; push children under the lock.
            *expansions += 1;
            rt.compute(cfg.ns_per_expansion);
            let visited = task.visited_mask();
            let plen = task.path_len(cities);
            let cur = task.cities[task.len as usize - 1] as usize;
            // Prune children with the admissible remaining-cities lower
            // bound, and push farther cities first so the LIFO stack pops
            // nearest-first (better bounds earlier).
            let mut next: Vec<usize> = (0..cities.n)
                .filter(|&j| visited & (1 << j) == 0)
                .filter(|&j| {
                    let nl = plen + cities.d(cur, j);
                    nl + lower_bound_rest(cities, visited | (1 << j), j) < cached_bound
                })
                .collect();
            next.sort_by_key(|&j| std::cmp::Reverse(cities.d(cur, j)));
            let children: Vec<Task> = next.into_iter().map(|j| task.child(j as u8)).collect();
            sys.acquire(rt, qlock);
            let mut top = rt.read_u32(lay.q_top);
            for ch in &children {
                assert!((top as usize) < lay.slot_cap, "task stack overflow");
                let addr = lay.slots + top as usize * TASK_BYTES;
                rt.write_bytes(addr, &ch.to_bytes());
                top += 1;
            }
            rt.write_u32(lay.q_top, top);
            let o = rt.read_u32(lay.q_outstanding);
            rt.write_u32(lay.q_outstanding, o - 1);
            sys.release(rt, qlock);
            continue;
        }

        // Leaf: exhaustive search with periodic bound refresh.
        let found = solve_leaf(cfg, rt, lay, cities, task, &mut cached_bound, expansions);
        if let Some(better) = found {
            // Update the global bound under its lock (test first: cheap).
            if better < rt.read_u32(lay.best) {
                sys.acquire(rt, block);
                let b = rt.read_u32(lay.best);
                if better < b {
                    rt.write_u32(lay.best, better);
                }
                sys.release(rt, block);
            }
            cached_bound = cached_bound.min(better);
        }
        finished_one = true;
    }
}

/// The hybrid version: the manager generates tours and serves them through
/// the message queue; bounds are posted with REQUEST/RELEASE pairs.
fn hybrid_variant(
    cfg: &TspConfig,
    rt: &mut Runtime,
    sys: &carlos_sync::SyncSystem,
    lay: &Layout,
    cities: &Cities,
    init_bound: u32,
    expansions: &mut u64,
) {
    let barrier = BarrierSpec::global(900, 0);
    let node = rt.node_id();
    // Items originate at the manager itself, so the accepting queue mode
    // reproduces the paper's behaviour: each dequeue reply is a *fresh*
    // RELEASE from the manager carrying its latest state (including bound
    // updates written to shared memory).
    let mut q = QueueSpec::fifo(1, 0).accepting();
    q.enq_annotation = ann(cfg, Annotation::Release);
    q.deq_annotation = ann(cfg, Annotation::Request);

    if node == 0 {
        rt.write_u32(lay.best, init_bound);
        // Generate all leaf tasks locally and write their descriptors into
        // coherent shared memory; the queue carries only indices.
        let (leaves, gen_exp) = generate_leaves(cities, cfg.leaf_depth, init_bound);
        *expansions += gen_exp;
        rt.compute(cfg.ns_per_expansion * gen_exp);
        assert!(leaves.len() <= lay.slot_cap, "task table overflow");
        for (i, t) in leaves.iter().enumerate() {
            rt.write_bytes(lay.slots + i * TASK_BYTES, &t.to_bytes());
        }
        rt.write_u32(lay.q_top, leaves.len() as u32);
        sys.barrier(rt, barrier, 100);
        for i in 0..leaves.len() as u32 {
            sys.enqueue(rt, q, &i.to_le_bytes());
        }
        sys.close_queue(rt, q);
    } else {
        sys.barrier(rt, barrier, 100);
    }

    let mut cached_bound = init_bound;
    let mut posts_sent = 0u64;
    loop {
        // The manager drains posted bounds between tasks, writing them to
        // shared memory and answering with RELEASE messages (§5.1).
        if node == 0 {
            drain_bound_posts(cfg, rt, lay, &mut cached_bound);
        }
        let Some(item) = sys.dequeue(rt, q) else {
            break;
        };
        let idx = u32::from_le_bytes(item.try_into().expect("task index")) as usize;
        let mut b = [0u8; TASK_BYTES];
        rt.read_bytes(lay.slots + idx * TASK_BYTES, &mut b);
        let task = Task::from_bytes(&b);
        cached_bound = cached_bound.min(rt.read_u32(lay.best));
        let found = solve_leaf(cfg, rt, lay, cities, task, &mut cached_bound, expansions);
        if let Some(better) = found {
            cached_bound = cached_bound.min(better);
            if node == 0 {
                // The master writes its own improvements directly.
                if better < rt.read_u32(lay.best) {
                    rt.write_u32(lay.best, better);
                }
            } else {
                // Post the improvement to the master.
                rt.send(
                    0,
                    H_BOUND_POST,
                    better.to_le_bytes().to_vec(),
                    ann(cfg, Annotation::Request),
                );
                posts_sent += 1;
            }
        }
    }
    if node == 0 {
        // Keep serving bound posts until every worker has confirmed it is
        // finished (its posts all acknowledged).
        let mut done = 0usize;
        while done < cfg.n_nodes - 1 {
            let m = rt.wait_accepted_any(&[H_BOUND_POST, H_WORKER_DONE]);
            if m.handler == H_WORKER_DONE {
                done += 1;
                continue;
            }
            let v = u32::from_le_bytes(m.body.as_slice().try_into().expect("bound value"));
            if v < rt.read_u32(lay.best) {
                rt.write_u32(lay.best, v);
                cached_bound = cached_bound.min(v);
            }
            let body = rt_best_bytes(rt, lay);
            rt.send(m.origin, H_BOUND_ACK, body, ann(cfg, Annotation::Release));
        }
    } else {
        // Wait for every post to be acknowledged, then report done.
        for _ in 0..posts_sent {
            let _ = rt.wait_accepted(H_BOUND_ACK);
        }
        rt.send(0, H_WORKER_DONE, Vec::new(), Annotation::None);
    }
}

fn drain_bound_posts(cfg: &TspConfig, rt: &mut Runtime, lay: &Layout, cached: &mut u32) {
    while let Some(m) = rt.try_take_accepted(H_BOUND_POST) {
        let v = u32::from_le_bytes(m.body.as_slice().try_into().expect("bound value"));
        if v < rt.read_u32(lay.best) {
            rt.write_u32(lay.best, v);
            *cached = (*cached).min(v);
        }
        let body = rt_best_bytes(rt, lay);
        rt.send(m.origin, H_BOUND_ACK, body, ann(cfg, Annotation::Release));
    }
}

fn rt_best_bytes(rt: &mut Runtime, lay: &Layout) -> Vec<u8> {
    rt.read_u32(lay.best).to_le_bytes().to_vec()
}

/// Exhaustively solves a leaf prefix, charging virtual compute in chunks
/// and refreshing the cached bound periodically. Returns an improvement.
fn solve_leaf(
    cfg: &TspConfig,
    rt: &mut Runtime,
    lay: &Layout,
    cities: &Cities,
    task: Task,
    cached_bound: &mut u32,
    expansions: &mut u64,
) -> Option<u32> {
    let mut solver = Solver::new(cities, *cached_bound);
    let cur = task.cities[task.len as usize - 1] as usize;
    // The exhaustive search runs in pruned segments so the node can charge
    // compute (and service messages) at `refresh_every` granularity; the
    // segmenting is over first-level children of the prefix.
    let visited = task.visited_mask();
    let plen = task.path_len(cities);
    let mut next: Vec<usize> = (0..cities.n)
        .filter(|&j| visited & (1 << j) == 0)
        .collect();
    next.sort_by_key(|&j| cities.d(cur, j));
    for j in next {
        let nl = plen + cities.d(cur, j);
        if nl < solver.bound {
            solver.dfs(j, visited | (1 << j), nl);
        }
        if solver.expansions >= u64::from(cfg.refresh_every) {
            rt.compute(cfg.ns_per_expansion * solver.expansions);
            *expansions += solver.expansions;
            solver.expansions = 0;
            // Refresh from shared memory (unsynchronized single-word read).
            let shared = rt.read_u32(lay.best);
            if shared < solver.bound {
                solver.bound = shared;
            }
        }
    }
    rt.compute(cfg.ns_per_expansion * solver.expansions);
    *expansions += solver.expansions;
    let improved = solver.improved;
    *cached_bound = (*cached_bound).min(solver.bound);
    improved.then_some(solver.bound)
}
