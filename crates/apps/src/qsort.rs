//! The Quicksort application (§5.2).
//!
//! Sorts an array of integers in coherent shared memory. A shared work
//! stack holds subarray descriptors; when a popped subarray is below the
//! threshold the node sorts it with a local Bubblesort, otherwise it
//! partitions, pushes a descriptor for the smaller half, and recursively
//! quicksorts the larger half. A final barrier collects the sorted
//! subarrays, making all nodes consistent.
//!
//! Variants, as in the paper:
//!
//! - **Lock** — the stack lives in shared memory under a lock, so its
//!   representation migrates among the nodes and every node that touches
//!   it becomes consistent with all previous manipulators.
//! - **Hybrid-1** — a non-migrating message-based work queue: "the manager
//!   node represents the queue as a list of pointers to 'enqueued'
//!   messages that have been stored. When a remote node issues a dequeue
//!   request, the stored message at the head of the queue is forwarded."
//!   Enqueues are completely asynchronous; dequeues are REQUEST/forwarded-
//!   RELEASE pairs.
//! - **Hybrid-2** — Hybrid-1 with *every* queue message marked RELEASE
//!   (the §5.2 annotation-cost contrast).
//! - **HybridNoForward** — Hybrid-1 without the forwarding mechanism (the
//!   manager accepts and re-releases); the paper found its performance
//!   nearly identical to Hybrid-2's.

use std::sync::{
    atomic::{AtomicU32, Ordering},
    Arc,
};

use carlos_core::{Annotation, CoherentHeap, CoreConfig, Runtime};
use carlos_lrc::{LrcConfig, PageOwnership};
use carlos_sim::{time::us, AckMode, Cluster, SimConfig};
use carlos_sync::{
    ids::H_Q_CLOSE, BarrierSpec, LockSpec, QueueSpec,
};
use carlos_util::rng::Xoshiro256;

use crate::harness::{AppReport, Collector};

const H_LEAF_DONE: u32 = 0x0210;
const QUEUE_ID: u32 = 1;

/// Which Quicksort program to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QsortVariant {
    /// Shared-memory work stack under a lock.
    Lock,
    /// Message-based queue with store-and-forward and correct annotations.
    Hybrid1,
    /// Hybrid-1 with all queue messages marked RELEASE.
    Hybrid2,
    /// Hybrid-1 with the manager accepting instead of forwarding.
    HybridNoForward,
}

/// Configuration for one Quicksort run.
#[derive(Debug, Clone)]
pub struct QsortConfig {
    /// Cluster size.
    pub n_nodes: usize,
    /// Elements to sort (256 K in the paper).
    pub n_elements: usize,
    /// Subarrays at or below this size are Bubblesorted locally (1 K).
    pub threshold: usize,
    /// Workload seed (initial shuffle).
    pub seed: u64,
    /// Program variant.
    pub variant: QsortVariant,
    /// Virtual nanoseconds per Bubblesort inner step (charged as k²/2).
    pub ns_per_bubble_step: u64,
    /// Virtual nanoseconds per partition element.
    pub ns_per_partition_elem: u64,
    /// Network/cost model.
    pub sim: SimConfig,
    /// CarlOS cost model.
    pub core: CoreConfig,
    /// DSM page size.
    pub page_size: usize,
    /// Variable-granularity layout hints: control words and descriptor
    /// slots get fine coherence granules and the array gets 1 KiB granules
    /// (one Bubblesort leaf spans a few granules instead of sharing 8 KiB
    /// pages with other sorters' halves). Off by default — the legacy
    /// layout and wire behavior are pinned by golden fingerprints.
    pub granularity_hints: bool,
    /// Verify the result on every node (tests) or only on node 0 (paper
    /// runs: the master collects the sorted array once).
    pub verify_all_nodes: bool,
    /// Transport acknowledgement mode (switch to [`AckMode::Arq`] to run
    /// under injected loss, e.g. in chaos tests).
    pub ack: AckMode,
    /// Optional consistency oracle, installed on every node and attached
    /// to the cluster wire (observer-only: virtual time is unaffected).
    pub check: Option<carlos_check::Checker>,
    /// Optional causal tracer, installed on every node and attached to the
    /// cluster wire (observer-only: virtual time is unaffected).
    pub trace: Option<carlos_trace::Tracer>,
}

impl QsortConfig {
    /// The paper-scale workload: 256 K integers, 1 K threshold.
    #[must_use]
    pub fn paper(n_nodes: usize, variant: QsortVariant) -> Self {
        Self {
            n_nodes,
            n_elements: 256 * 1024,
            threshold: 1024,
            seed: 0x5150_1994,
            variant,
            ns_per_bubble_step: 285,
            ns_per_partition_elem: 45,
            sim: SimConfig::osdi94(),
            core: CoreConfig::osdi94(),
            page_size: 8192,
            granularity_hints: false,
            verify_all_nodes: false,
            ack: AckMode::Implicit,
            check: None,
            trace: None,
        }
    }

    /// A small, fast workload for tests.
    #[must_use]
    pub fn test(n_nodes: usize, variant: QsortVariant) -> Self {
        Self {
            n_nodes,
            n_elements: 4096,
            threshold: 128,
            seed: 7,
            variant,
            ns_per_bubble_step: 20,
            ns_per_partition_elem: 10,
            sim: SimConfig::fast_test(),
            core: CoreConfig::fast_test(),
            page_size: 512,
            granularity_hints: false,
            verify_all_nodes: true,
            ack: AckMode::Implicit,
            check: None,
            trace: None,
        }
    }
}

/// Result of a Quicksort run.
#[derive(Debug, Clone)]
pub struct QsortResult {
    /// Simulation report and derived columns.
    pub app: AppReport,
    /// Every node verified the final array is sorted.
    pub sorted: bool,
    /// Every node verified the final array is the expected permutation.
    pub permutation_ok: bool,
}

struct Layout {
    array: usize,
    stack_top: usize,
    done: usize,
    slots: usize,
    slot_cap: usize,
}

fn layout(cfg: &QsortConfig) -> (Layout, usize, Vec<carlos_lrc::RegionSpec>) {
    let ps = cfg.page_size;
    let mut heap = CoherentHeap::new(1 << 28);
    let slot_cap = 8192;
    let (stack_top, done, slots, array);
    if cfg.granularity_hints {
        // Fine granules for the hot small data: the stack control words
        // share one 64 B unit, and each 64 B slot granule holds eight
        // 8-byte descriptors. The array gets 1 KiB granules, so a sorter
        // fetches only the granules of its own subarray instead of whole
        // 8 KiB pages half-filled with other sorters' leaves.
        stack_top = heap.alloc_with_granule_eager(8, 64);
        done = stack_top + 4;
        slots = heap.alloc_with_granule_eager(slot_cap * 8, 64);
        array = heap.alloc_with_granule(cfg.n_elements * 4, 1024);
    } else {
        // Control variables on their own page; slots on the next; the
        // array page-aligned after that (separate sharing units).
        stack_top = heap.alloc(4, 4);
        done = heap.alloc(4, 4);
        slots = heap.alloc(ps, ps);
        let _ = heap.alloc(slot_cap * 8, 1);
        array = heap.alloc(ps, ps);
        let _ = heap.alloc(cfg.n_elements * 4, 1);
    }
    let region = heap.used().next_multiple_of(ps);
    (
        Layout {
            array,
            stack_top,
            done,
            slots,
            slot_cap,
        },
        region,
        heap.regions(),
    )
}

fn build_qsort(cfg: &QsortConfig) -> (Cluster, Collector<(bool, bool)>) {
    let checks: Collector<(bool, bool)> = Collector::new();
    let mut cluster = Cluster::new(cfg.sim.clone(), cfg.n_nodes);
    if let Some(check) = &cfg.check {
        check.attach(&mut cluster);
    }
    if let Some(trace) = &cfg.trace {
        trace.attach(&mut cluster);
    }
    for node in 0..cfg.n_nodes as u32 {
        let cfg = cfg.clone();
        let checks = checks.clone();
        cluster.spawn_node(node, move |ctx| {
            let r = qsort_node(&cfg, ctx);
            checks.put(node, r);
        });
    }
    (cluster, checks)
}

fn finish_qsort(report: carlos_sim::SimReport, checks: &Collector<(bool, bool)>) -> QsortResult {
    let collected = checks.take();
    QsortResult {
        app: AppReport::new(report),
        sorted: collected.iter().all(|(_, (s, _))| *s),
        permutation_ok: collected.iter().all(|(_, (_, p))| *p),
    }
}

/// Runs the Quicksort application on a simulated cluster.
///
/// # Panics
///
/// Panics on configuration errors or internal protocol violations.
#[must_use]
pub fn run_qsort(cfg: &QsortConfig) -> QsortResult {
    let (cluster, checks) = build_qsort(cfg);
    let report = cluster.run();
    finish_qsort(report, &checks)
}

/// Runs the Quicksort application, returning simulation failures as a
/// [`carlos_sim::SimError`] value instead of panicking.
///
/// # Errors
///
/// Returns the [`carlos_sim::SimError`] describing how the run failed.
pub fn try_run_qsort(cfg: &QsortConfig) -> Result<QsortResult, carlos_sim::SimError> {
    let (cluster, checks) = build_qsort(cfg);
    let report = cluster.try_run()?;
    Ok(finish_qsort(report, &checks))
}

fn qsort_node(cfg: &QsortConfig, ctx: carlos_sim::NodeCtx) -> (bool, bool) {
    let (lay, region, regions) = layout(cfg);
    let lrc = LrcConfig {
        n_nodes: cfg.n_nodes,
        page_size: cfg.page_size,
        region_bytes: region,
        gc_threshold_records: 12_000,
        ownership: PageOwnership::SingleOwner(0),
        regions,
    };
    let mut rt = Runtime::with_ack_mode(ctx, lrc, cfg.core.clone(), cfg.ack);
    if let Some(check) = &cfg.check {
        check.install(&mut rt);
    }
    if let Some(trace) = &cfg.trace {
        trace.install(&mut rt);
    }
    let sys = carlos_sync::install(&mut rt);
    let barrier = BarrierSpec::global(900, 0);
    let node = rt.node_id();
    let n = cfg.n_elements;

    if node == 0 {
        // Initialize: a shuffled permutation of 0..n.
        let mut vals: Vec<u32> = (0..n as u32).collect();
        Xoshiro256::new(cfg.seed).shuffle(&mut vals);
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        rt.write_bytes(lay.array, &bytes);
        rt.compute(us(200_000)); // Initialization pass over the array.
    }

    match cfg.variant {
        QsortVariant::Lock => lock_variant(cfg, &mut rt, &sys, &lay),
        _ => hybrid_variant(cfg, &mut rt, &sys, &lay),
    }

    // "When the whole array has been sorted, a barrier is used to collect
    // all of the sorted subarrays, thereby making all nodes consistent."
    sys.barrier(&mut rt, barrier, 500);
    // The timed portion of the run ends here, as in the paper.
    rt.ctx().count("app.done_ns", rt.ctx().now());
    let (sorted, permutation) = if cfg.verify_all_nodes || node == 0 {
        let mut bytes = vec![0u8; n * 4];
        rt.read_bytes(lay.array, &mut bytes);
        let vals: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        let sorted = vals.windows(2).all(|w| w[0] <= w[1]);
        // The input was a permutation of 0..n, so sorted output is 0..n.
        let permutation = vals.iter().enumerate().all(|(i, &v)| v == i as u32);
        if std::env::var("QS_DEBUG").is_ok() {
            let bad: Vec<(usize, u32)> = vals
                .iter()
                .enumerate()
                .filter(|(i, &v)| v != *i as u32)
                .map(|(i, &v)| (i, v))
                .take(8)
                .collect();
            eprintln!(
                "[{}] final total_bad={} first_bad={:?}",
                rt.node_id(),
                vals.iter().enumerate().filter(|(i, &v)| v != *i as u32).count(),
                bad
            );
        }
        (sorted, permutation)
    } else {
        (true, true)
    };
    sys.barrier(&mut rt, barrier, 501);
    rt.shutdown();
    (sorted, permutation)
}

fn read_range(rt: &mut Runtime, lay: &Layout, lo: usize, hi: usize) -> Vec<u32> {
    let mut bytes = vec![0u8; (hi - lo) * 4];
    rt.read_bytes(lay.array + lo * 4, &mut bytes);
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

fn write_range(rt: &mut Runtime, lay: &Layout, lo: usize, vals: &[u32]) {
    let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    rt.write_bytes(lay.array + lo * 4, &bytes);
}

/// Sorts `[lo, hi)` locally with Bubblesort, charging the quadratic cost.
fn bubble_leaf(cfg: &QsortConfig, rt: &mut Runtime, lay: &Layout, lo: usize, hi: usize) {
    let mut vals = read_range(rt, lay, lo, hi);
    let k = vals.len() as u64;
    let mut swapped = true;
    let mut end = vals.len();
    while swapped && end > 1 {
        swapped = false;
        for i in 1..end {
            if vals[i - 1] > vals[i] {
                vals.swap(i - 1, i);
                swapped = true;
            }
        }
        end -= 1;
    }
    rt.compute(cfg.ns_per_bubble_step * k * k / 2);
    write_range(rt, lay, lo, &vals);
}

/// Partitions `[lo, hi)` around its last element; returns the pivot's
/// final index. Operates through the DSM (read, partition, write back).
fn partition(cfg: &QsortConfig, rt: &mut Runtime, lay: &Layout, lo: usize, hi: usize) -> usize {
    let mut vals = read_range(rt, lay, lo, hi);
    let pivot = vals[vals.len() - 1];
    let mut store = 0usize;
    for i in 0..vals.len() - 1 {
        if vals[i] <= pivot {
            vals.swap(i, store);
            store += 1;
        }
    }
    let last = vals.len() - 1;
    vals.swap(store, last);
    rt.compute(cfg.ns_per_partition_elem * (hi - lo) as u64);
    write_range(rt, lay, lo, &vals);
    lo + store
}

/// Processes one descriptor: quicksort with push-smaller / recurse-larger.
/// Returns the number of elements this call placed in final position;
/// `push` receives each smaller-half descriptor.
fn sort_descriptor(
    cfg: &QsortConfig,
    rt: &mut Runtime,
    lay: &Layout,
    mut lo: usize,
    mut hi: usize,
    mut push: impl FnMut(&mut Runtime, usize, usize),
) -> u32 {
    let mut sorted_here = 0u32;
    loop {
        if hi - lo <= cfg.threshold {
            bubble_leaf(cfg, rt, lay, lo, hi);
            sorted_here += (hi - lo) as u32;
            return sorted_here;
        }
        let mid = partition(cfg, rt, lay, lo, hi);
        let (small, large) = if mid - lo < hi - (mid + 1) {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        sorted_here += 1; // The pivot is finally placed.
        if small.1 > small.0 {
            push(rt, small.0, small.1);
        }
        if large.1 <= large.0 {
            return sorted_here;
        }
        lo = large.0;
        hi = large.1;
    }
}

/// The strictly-shared-memory version: stack and done-counter under a lock.
fn lock_variant(cfg: &QsortConfig, rt: &mut Runtime, sys: &carlos_sync::SyncSystem, lay: &Layout) {
    let slock = LockSpec::new(1, 0);
    let barrier = BarrierSpec::global(900, 0);
    let node = rt.node_id();
    let n = cfg.n_elements as u32;

    if node == 0 {
        rt.write_u32(lay.slots, 0);
        rt.write_u32(lay.slots + 4, n);
        rt.write_u32(lay.stack_top, 1);
        rt.write_u32(lay.done, 0);
    }
    sys.barrier(rt, barrier, 400);

    loop {
        sys.acquire(rt, slock);
        let top = rt.read_u32(lay.stack_top);
        let desc = if top > 0 {
            let addr = lay.slots + (top as usize - 1) * 8;
            let lo = rt.read_u32(addr);
            let hi = rt.read_u32(addr + 4);
            rt.write_u32(lay.stack_top, top - 1);
            Some((lo as usize, hi as usize))
        } else {
            None
        };
        let done = rt.read_u32(lay.done);
        sys.release(rt, slock);

        let Some((lo, hi)) = desc else {
            if done >= n {
                break;
            }
            if std::env::var("QS_DEBUG").is_ok() {
                eprintln!(
                    "[{}] idle: done={done}/{n} top=0 t={}ms",
                    rt.node_id(),
                    rt.ctx().now() / 1_000_000
                );
            }
            rt.sleep(us(300));
            continue;
        };

        if std::env::var("QS_DEBUG").is_ok() {
            eprintln!("[{}] desc ({lo},{hi}) t={}us", rt.node_id(), rt.ctx().now() / 1000);
        }
        let sorted_here = sort_descriptor(cfg, rt, lay, lo, hi, |rt, slo, shi| {
            sys.acquire(rt, slock);
            let top = rt.read_u32(lay.stack_top);
            assert!((top as usize) < lay.slot_cap, "work stack overflow");
            let addr = lay.slots + top as usize * 8;
            rt.write_u32(addr, slo as u32);
            rt.write_u32(addr + 4, shi as u32);
            rt.write_u32(lay.stack_top, top + 1);
            sys.release(rt, slock);
        });
        if sorted_here > 0 {
            sys.acquire(rt, slock);
            let d = rt.read_u32(lay.done);
            rt.write_u32(lay.done, d + sorted_here);
            sys.release(rt, slock);
        }
    }
}

/// The hybrid versions: a message-based, non-migrating work queue with a
/// message-based completion count.
fn hybrid_variant(cfg: &QsortConfig, rt: &mut Runtime, sys: &carlos_sync::SyncSystem, lay: &Layout) {
    let barrier = BarrierSpec::global(900, 0);
    let node = rt.node_id();
    let n = cfg.n_elements as u32;
    let mut q = QueueSpec::lifo(QUEUE_ID, 0);
    match cfg.variant {
        QsortVariant::Hybrid1 => {}
        QsortVariant::Hybrid2 => q = q.all_release(),
        QsortVariant::HybridNoForward => q = q.accepting(),
        QsortVariant::Lock => unreachable!("dispatched in qsort_node"),
    }

    // The manager tallies completions through NONE messages (pure process
    // coordination, no consistency interaction) and closes the queue when
    // the whole array is sorted. The handler touches only local state and
    // triggers the close with a loopback message.
    if node == 0 {
        let total = Arc::new(AtomicU32::new(0));
        rt.register(
            H_LEAF_DONE,
            Box::new(move |env, msg| {
                let k = u32::from_le_bytes(msg.body.as_slice().try_into().expect("leaf size"));
                env.discard(msg);
                let t = total.fetch_add(k, Ordering::SeqCst) + k;
                if t >= n {
                    // Everything is sorted: close the queue so parked and
                    // future dequeues return empty.
                    env.send(
                        env.node_id(),
                        H_Q_CLOSE,
                        close_body(QUEUE_ID),
                        Annotation::None,
                    );
                }
            }),
        );
    }
    sys.barrier(rt, barrier, 400);

    if node == 0 {
        sys.enqueue(rt, q, &desc_bytes(0, n));
    }

    while let Some(item) = sys.dequeue(rt, q) {
        let (lo, hi) = desc_parse(&item);
        let sorted_here = sort_descriptor(cfg, rt, lay, lo, hi, |rt, slo, shi| {
            // "Enqueue operations are completely asynchronous."
            sys.enqueue(rt, q, &desc_bytes(slo as u32, shi as u32));
        });
        if sorted_here > 0 {
            rt.send(
                0,
                H_LEAF_DONE,
                sorted_here.to_le_bytes().to_vec(),
                Annotation::None,
            );
        }
    }
}

fn close_body(qid: u32) -> Vec<u8> {
    qid.to_le_bytes().to_vec()
}

fn desc_bytes(lo: u32, hi: u32) -> [u8; 8] {
    let mut b = [0u8; 8];
    b[..4].copy_from_slice(&lo.to_le_bytes());
    b[4..].copy_from_slice(&hi.to_le_bytes());
    b
}

fn desc_parse(b: &[u8]) -> (usize, usize) {
    let lo = u32::from_le_bytes(b[..4].try_into().expect("descriptor lo"));
    let hi = u32::from_le_bytes(b[4..8].try_into().expect("descriptor hi"));
    (lo as usize, hi as usize)
}
