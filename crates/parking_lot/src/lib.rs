//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! member wraps `std::sync` primitives behind the `parking_lot` API shape
//! used by CarlOS-rs: `lock()` returns a guard directly (no poisoning —
//! a poisoned std lock is transparently recovered, matching `parking_lot`
//! semantics where panicking while holding a lock does not poison it),
//! and `Condvar::wait` takes `&mut MutexGuard`.

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily move the
/// std guard out while blocking; it is always `Some` outside that window.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII shared guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` wait API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and reacquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(3);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 6);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 4);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        t.join().unwrap();
        assert!(*g);
    }
}
