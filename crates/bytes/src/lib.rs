//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! member provides the subset of the `bytes` 1.x API that CarlOS-rs uses:
//! [`Bytes`] (a cheaply cloneable, sliceable, reference-counted immutable
//! byte buffer), [`BytesMut`] (a growable buffer that freezes into
//! [`Bytes`] without copying), and the [`Buf`] / [`BufMut`] cursor traits.
//!
//! Semantics match the real crate for the operations provided; anything
//! not used by this repository is intentionally absent.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable, shareable byte buffer.
///
/// Cloning and [`Bytes::slice`] are O(1): all handles share one allocation
/// behind an [`Arc`]. This is what makes the transport's store / forward /
/// retransmit paths zero-copy.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer holding a copy of `s` (allocates once).
    #[must_use]
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Self::from(s.to_vec())
    }

    /// A buffer over static data (allocates a holder, copies once here;
    /// the real crate is allocation-free — acceptable for a shim).
    #[must_use]
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }

    /// Number of bytes viewed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// An O(1) sub-view sharing this buffer's allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Copies the viewed bytes into a fresh `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            data: Arc::new(v),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_ref() == *other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

/// A growable byte buffer that freezes into [`Bytes`] without copying.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ensures room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Converts into an immutable [`Bytes`] handle. O(1): the backing
    /// allocation moves, it is not copied.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Copies the contents into a fresh `Vec` (the real crate's `to_vec`;
    /// prefer [`BytesMut::freeze`] or `Vec::from` to avoid the copy).
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        Self { buf }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte source (API subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor over a growable byte sink (API subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_is_zero_copy_view() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32_le(0xDEAD_BEEF);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 4);
        assert_eq!(&frozen[..], &0xDEAD_BEEFu32.to_le_bytes());
    }

    #[test]
    fn slice_shares_and_bounds_check() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let b = Bytes::from(vec![9u8; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(Arc::strong_count(&b.data), 2);
    }

    #[test]
    fn buf_cursor_over_slice() {
        let data = [1u8, 0, 0, 0, 0xFF];
        let mut cur: &[u8] = &data;
        assert_eq!(cur.get_u32_le(), 1);
        assert_eq!(cur.remaining(), 1);
        assert_eq!(cur.get_u8(), 0xFF);
        assert_eq!(cur.remaining(), 0);
    }
}
