//! Vector timestamps.
//!
//! "The memory-consistency state of each node is summarized by a vector
//! timestamp, each element of which is the index of the most recently seen
//! interval from the corresponding node" (§4.2).

use carlos_util::codec::{DecodeError, Decoder, Encoder, Wire};

/// A vector timestamp over a fixed-size cluster.
///
/// Element `i` is the index of the most recent interval of node `i` that
/// this timestamp covers. Interval indices start at 1; 0 means "none seen".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Vc(Vec<u32>);

impl Vc {
    /// The zero timestamp for an `n`-node cluster.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self(vec![0; n])
    }

    /// Number of nodes this timestamp covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the cluster size is zero (degenerate).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The component for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn get(&self, node: u32) -> u32 {
        self.0[node as usize]
    }

    /// Sets the component for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set(&mut self, node: u32, v: u32) {
        self.0[node as usize] = v;
    }

    /// Increments the component for `node` and returns the new value.
    pub fn bump(&mut self, node: u32) -> u32 {
        self.0[node as usize] += 1;
        self.0[node as usize]
    }

    /// True if `self` is pointwise `>= other` (i.e. `self` covers `other`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn dominates(&self, other: &Vc) -> bool {
        assert_eq!(self.len(), other.len(), "vector timestamp size mismatch");
        self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }

    /// True if `self` and `other` are ordered neither way (concurrent).
    #[must_use]
    pub fn concurrent(&self, other: &Vc) -> bool {
        !self.dominates(other) && !other.dominates(self)
    }

    /// Pointwise maximum: after this call `self` covers both inputs.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn join(&mut self, other: &Vc) {
        assert_eq!(self.len(), other.len(), "vector timestamp size mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Sum of all components. Sorting records by this value is a valid
    /// linear extension of the happened-before partial order, which is how
    /// diffs from multiple writers are ordered before application.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.iter().map(|&v| u64::from(v)).sum()
    }

    /// Iterates `(node, component)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.0.iter().enumerate().map(|(n, &v)| (n as u32, v))
    }
}

impl Wire for Vc {
    fn encode(&self, enc: &mut Encoder) {
        // The paper notes the timestamp costs "two bytes per node" on the
        // wire (§5.4); we use u16 components in the encoding to match, with
        // a saturation guard for pathological runs.
        enc.put_u16(self.0.len() as u16);
        for &v in &self.0 {
            enc.put_u16(u16::try_from(v).unwrap_or(u16::MAX));
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = dec.get_u16()? as usize;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(u32::from(dec.get_u16()?));
        }
        Ok(Self(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero() {
        let vc = Vc::new(3);
        assert_eq!(vc.len(), 3);
        assert_eq!(vc.get(0), 0);
        assert_eq!(vc.sum(), 0);
    }

    #[test]
    fn bump_and_get() {
        let mut vc = Vc::new(2);
        assert_eq!(vc.bump(1), 1);
        assert_eq!(vc.bump(1), 2);
        assert_eq!(vc.get(1), 2);
        assert_eq!(vc.get(0), 0);
    }

    #[test]
    fn dominates_is_pointwise() {
        let mut a = Vc::new(3);
        let mut b = Vc::new(3);
        assert!(a.dominates(&b) && b.dominates(&a));
        a.set(0, 2);
        assert!(a.dominates(&b) && !b.dominates(&a));
        b.set(1, 1);
        assert!(!a.dominates(&b) && !b.dominates(&a));
        assert!(a.concurrent(&b));
    }

    #[test]
    fn join_takes_pointwise_max() {
        let mut a = Vc::new(3);
        a.set(0, 5);
        a.set(2, 1);
        let mut b = Vc::new(3);
        b.set(0, 3);
        b.set(1, 7);
        a.join(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 7);
        assert_eq!(a.get(2), 1);
        assert!(a.dominates(&b));
    }

    #[test]
    fn sum_is_linear_extension_witness() {
        // If a < b pointwise (and somewhere strictly), sum(a) < sum(b).
        let mut a = Vc::new(2);
        a.set(0, 1);
        let mut b = a.clone();
        b.set(1, 3);
        assert!(b.dominates(&a) && !a.dominates(&b));
        assert!(a.sum() < b.sum());
    }

    #[test]
    fn wire_roundtrip() {
        let mut vc = Vc::new(4);
        vc.set(0, 1);
        vc.set(3, 65535);
        let back = Vc::from_wire(&vc.to_wire()).unwrap();
        assert_eq!(back, vc);
        // Two bytes per node plus the two-byte count, as §5.4 describes.
        assert_eq!(vc.wire_size(), 2 + 4 * 2);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn dominates_rejects_size_mismatch() {
        let _ = Vc::new(2).dominates(&Vc::new(3));
    }

    #[test]
    fn iter_yields_components() {
        let mut vc = Vc::new(2);
        vc.set(1, 9);
        let v: Vec<(u32, u32)> = vc.iter().collect();
        assert_eq!(v, vec![(0, 0), (1, 9)]);
    }
}

#[cfg(test)]
mod algebra_props {
    //! Property tests for the `Vc` lattice algebra. The checker's oracle
    //! leans on these laws (join as least upper bound, `dominates` as a
    //! partial order, `concurrent` as its symmetric complement), so they
    //! are pinned here rather than assumed.

    use super::*;
    use proptest::prelude::*;

    /// Small components over a small cluster keep the order relation dense
    /// enough that dominated, dominating, and concurrent pairs all appear.
    fn vc3() -> impl Strategy<Value = Vc> {
        proptest::collection::vec(0u32..5, 4).prop_map(Vc)
    }

    fn joined(a: &Vc, b: &Vc) -> Vc {
        let mut j = a.clone();
        j.join(b);
        j
    }

    proptest! {
        #[test]
        fn join_is_upper_bound_commutative_idempotent(a in vc3(), b in vc3()) {
            let ab = joined(&a, &b);
            prop_assert!(ab.dominates(&a), "join must dominate left input");
            prop_assert!(ab.dominates(&b), "join must dominate right input");
            prop_assert_eq!(&ab, &joined(&b, &a), "join must be commutative");
            prop_assert_eq!(&joined(&a, &a), &a, "join must be idempotent");
        }

        #[test]
        fn join_is_least_upper_bound(a in vc3(), b in vc3(), c in vc3()) {
            // Any common upper bound of a and b dominates their join.
            if c.dominates(&a) && c.dominates(&b) {
                prop_assert!(c.dominates(&joined(&a, &b)));
            }
        }

        #[test]
        fn dominates_is_a_partial_order(a in vc3(), b in vc3(), c in vc3()) {
            prop_assert!(a.dominates(&a), "reflexivity");
            if a.dominates(&b) && b.dominates(&a) {
                prop_assert_eq!(&a, &b, "antisymmetry");
            }
            if a.dominates(&b) && b.dominates(&c) {
                prop_assert!(a.dominates(&c), "transitivity");
            }
        }

        #[test]
        fn concurrent_is_symmetric_and_irreflexive(a in vc3(), b in vc3()) {
            prop_assert_eq!(a.concurrent(&b), b.concurrent(&a), "symmetry");
            prop_assert!(!a.concurrent(&a), "irreflexivity");
            // Concurrency is exactly the absence of order, either way.
            prop_assert_eq!(
                a.concurrent(&b),
                !a.dominates(&b) && !b.dominates(&a)
            );
        }
    }
}
