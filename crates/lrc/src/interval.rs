//! Intervals and write notices.
//!
//! "The execution history of each node is divided into an indexed sequence
//! of intervals whose endpoints occur at the acquire and release events
//! executed on that node. ... Each interval is summarized by a list of
//! write notices, one for each page that was modified in the interval"
//! (§4.2). In CarlOS the endpoints occur when RELEASE messages are sent
//! and accepted (§4.3).

use carlos_util::codec::{DecodeError, Decoder, Encoder, Wire};

use crate::vc::Vc;

/// A shippable description of one interval: who created it, its index in
/// the creator's sequence, the creator's vector timestamp at creation, and
/// the pages modified during it (its write notices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalRecord {
    /// Creating node.
    pub node: u32,
    /// 1-based index within the creator's interval sequence.
    pub index: u32,
    /// Creator's vector timestamp at interval creation (includes `index`
    /// at position `node`).
    pub vc: Vc,
    /// Pages modified during the interval — the write notices.
    pub pages: Vec<u32>,
}

impl Wire for IntervalRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.node);
        enc.put_u32(self.index);
        self.vc.encode(enc);
        enc.put_seq(&self.pages, |enc, &p| enc.put_u32(p));
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            node: dec.get_u32()?,
            index: dec.get_u32()?,
            vc: Vc::decode(dec)?,
            pages: dec.get_seq(|dec| dec.get_u32())?,
        })
    }
}

/// In-memory store of all interval records a node knows about (its own and
/// those learned through acquires), ordered by `(node, index)`.
#[derive(Debug, Default, Clone)]
pub struct IntervalStore {
    records: std::collections::BTreeMap<(u32, u32), IntervalRecord>,
}

impl IntervalStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a record (idempotent: re-inserting the same key is a no-op).
    pub fn insert(&mut self, rec: IntervalRecord) {
        self.records.entry((rec.node, rec.index)).or_insert(rec);
    }

    /// Looks up a record by creator and index.
    #[must_use]
    pub fn get(&self, node: u32, index: u32) -> Option<&IntervalRecord> {
        self.records.get(&(node, index))
    }

    /// Number of stored records (GC pressure metric).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records strictly newer than `have`, i.e. records whose index
    /// exceeds `have[creator]`. This is exactly the consistency information
    /// a RELEASE message must carry to a receiver whose state is `have`.
    ///
    /// Cost is O(output + nodes·log n), not O(all records ever seen): for
    /// each creator present in the store, only the `(creator, have+1)..`
    /// suffix is visited, exactly like [`IntervalStore::own_newer_than`].
    /// Output order (node-major, index-ascending) matches the historical
    /// full-scan implementation byte for byte.
    #[must_use]
    pub fn newer_than(&self, have: &Vc) -> Vec<IntervalRecord> {
        self.suffix_scan(have, None)
    }

    /// Like [`IntervalStore::newer_than`] but bounded above by `through`,
    /// used to serve "missing consistency information" requests.
    #[must_use]
    pub fn newer_than_bounded(&self, have: &Vc, through: &Vc) -> Vec<IntervalRecord> {
        self.suffix_scan(have, Some(through))
    }

    /// Shared per-node suffix walk: for every creator node present in the
    /// store, clone records with `have[node] < index` (and, when bounded,
    /// `index <= through[node]`). Creators are discovered from the key
    /// space itself, so the walk never depends on the vector-clock width.
    fn suffix_scan(&self, have: &Vc, through: Option<&Vc>) -> Vec<IntervalRecord> {
        let mut out = Vec::new();
        let mut from: Option<u32> = Some(0);
        while let Some(start_node) = from {
            // First record at or beyond `start_node` tells us the next
            // creator that actually has records.
            let Some((&(node, _), _)) = self.records.range((start_node, 0)..).next() else {
                break;
            };
            if let Some(lo) = have.get(node).checked_add(1) {
                let hi = through.map_or(u32::MAX, |t| t.get(node));
                if lo <= hi {
                    out.extend(
                        self.records
                            .range((node, lo)..=(node, hi))
                            .map(|(_, r)| r.clone()),
                    );
                }
            }
            from = node.checked_add(1);
        }
        out
    }

    /// Records created by `node` that are newer than `have[node]` — the
    /// non-transitive (RELEASE_NT) payload.
    #[must_use]
    pub fn own_newer_than(&self, node: u32, have: &Vc) -> Vec<IntervalRecord> {
        self.records
            .range((node, have.get(node) + 1)..=(node, u32::MAX))
            .map(|(_, r)| r.clone())
            .collect()
    }

    /// Discards everything (global garbage collection).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u32, index: u32, pages: Vec<u32>, n: usize) -> IntervalRecord {
        let mut vc = Vc::new(n);
        vc.set(node, index);
        IntervalRecord {
            node,
            index,
            vc,
            pages,
        }
    }

    #[test]
    fn wire_roundtrip() {
        let r = rec(2, 7, vec![1, 5, 9], 4);
        let back = IntervalRecord::from_wire(&r.to_wire()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn store_insert_and_get() {
        let mut s = IntervalStore::new();
        s.insert(rec(0, 1, vec![3], 2));
        s.insert(rec(1, 1, vec![4], 2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0, 1).unwrap().pages, vec![3]);
        assert!(s.get(0, 2).is_none());
    }

    #[test]
    fn insert_is_idempotent() {
        let mut s = IntervalStore::new();
        s.insert(rec(0, 1, vec![3], 2));
        s.insert(rec(0, 1, vec![99], 2)); // Ignored: first record wins.
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0, 1).unwrap().pages, vec![3]);
    }

    #[test]
    fn newer_than_filters_by_receiver_state() {
        let mut s = IntervalStore::new();
        s.insert(rec(0, 1, vec![], 2));
        s.insert(rec(0, 2, vec![], 2));
        s.insert(rec(1, 1, vec![], 2));
        let mut have = Vc::new(2);
        have.set(0, 1); // Receiver has node 0's interval 1 already.
        let newer = s.newer_than(&have);
        let keys: Vec<(u32, u32)> = newer.iter().map(|r| (r.node, r.index)).collect();
        assert_eq!(keys, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn newer_than_bounded_respects_upper_bound() {
        let mut s = IntervalStore::new();
        for i in 1..=5 {
            s.insert(rec(0, i, vec![], 1));
        }
        let have = Vc::new(1);
        let mut through = Vc::new(1);
        through.set(0, 3);
        let got = s.newer_than_bounded(&have, &through);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|r| r.index <= 3));
    }

    #[test]
    fn own_newer_than_excludes_other_nodes() {
        let mut s = IntervalStore::new();
        s.insert(rec(0, 1, vec![], 2));
        s.insert(rec(0, 2, vec![], 2));
        s.insert(rec(1, 5, vec![], 2));
        let have = Vc::new(2);
        let own = s.own_newer_than(0, &have);
        assert_eq!(own.len(), 2);
        assert!(own.iter().all(|r| r.node == 0));
    }

    #[test]
    fn clear_empties_store() {
        let mut s = IntervalStore::new();
        s.insert(rec(0, 1, vec![], 1));
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }
}
