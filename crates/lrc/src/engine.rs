//! The per-node lazy-release-consistency state machine.
//!
//! [`LrcEngine`] owns one node's view of the coherent shared region: page
//! table, twins, interval records, and diffs. It performs no I/O; instead,
//! operations that need remote data return [`Demand`]s, which the messaging
//! layer (`carlos-core`) converts into diff/page request messages and
//! satisfies by feeding the replies back in. This keeps the entire protocol
//! unit-testable by driving several engines by hand.
//!
//! Protocol summary (§4.2–§4.3 of the paper):
//!
//! - All clean shared pages are read-only. A write fault creates a *twin*
//!   and write-enables the page.
//! - A new interval is created when a RELEASE message is sent or accepted
//!   ([`LrcEngine::close_interval`]); it carries a write notice for every
//!   page dirtied since the previous interval.
//! - Accepting consistency information applies write notices by
//!   invalidating named pages ([`LrcEngine::apply_records`]); if the local
//!   page is dirty, its modifications are first captured in a diff.
//! - An access fault on an invalid page demands diffs from the writers
//!   whose notices are unapplied ([`LrcEngine::fault_demands`]); diffs are
//!   created lazily by the writers ([`LrcEngine::serve_diffs`]) and applied
//!   in causal order ([`LrcEngine::apply_diff_records`]). A node with no
//!   copy demands the whole page.

use std::collections::{BTreeMap, BTreeSet};

use crate::{
    config::LrcConfig,
    diff::{sort_causally, Diff, DiffRecord},
    interval::{IntervalRecord, IntervalStore},
    observer::{EngineObserver, ObserverSlot},
    page::{PageId, PageMeta, PageState},
    region::GranuleMap,
    vc::Vc,
};

/// A remote operation the engine needs before an access can proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Demand {
    /// Fetch diffs for `page` from node `to`, covering `to`'s intervals in
    /// `(after, through]`.
    Diffs {
        /// Node that created the needed modifications.
        to: u32,
        /// Page whose diffs are needed.
        page: PageId,
        /// Highest interval of `to` already applied locally.
        after: u32,
        /// Highest interval of `to` for which a write notice is known.
        through: u32,
    },
    /// Fetch a full copy of `page` from node `to` (no local copy exists).
    Page {
        /// Node to ask (the page's owner, which pins its copy).
        to: u32,
        /// Page to fetch.
        page: PageId,
    },
}

/// Counters the engine maintains (the paper reports several of these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Intervals created locally.
    pub intervals_created: u64,
    /// Diffs created locally (twin comparisons performed).
    pub diffs_created: u64,
    /// Diff records applied to local pages.
    pub diffs_applied: u64,
    /// Write notices applied (page invalidations considered).
    pub notices_applied: u64,
    /// Write faults (twin creations).
    pub write_faults: u64,
    /// Access faults that required remote data.
    pub remote_faults: u64,
    /// Full-page installs.
    pub pages_installed: u64,
    /// Global garbage collections participated in.
    pub gcs: u64,
}

/// One node's lazy-release-consistency engine.
#[derive(Debug, Clone)]
pub struct LrcEngine {
    node: u32,
    cfg: LrcConfig,
    /// `vt[self]` = number of locally closed intervals; `vt[q]` = highest
    /// interval of node `q` whose record has been applied here.
    vt: Vc,
    pages: Vec<PageMeta>,
    /// Pages currently write-enabled (twin present).
    dirty: BTreeSet<PageId>,
    intervals: IntervalStore,
    /// Diff records held locally, keyed by `(creator, page)`. Contains both
    /// self-created diffs (served to others) and fetched ones (kept, as in
    /// TreadMarks, until garbage collection).
    diffs: BTreeMap<(u32, PageId), Vec<DiffRecord>>,
    /// Address→granule resolution. With no configured regions this is one
    /// segment at `page_size` and granule ids equal legacy page ids.
    granules: GranuleMap,
    /// `log2(granule)` when the whole region uses one power-of-two granule
    /// (every standard config); enables the single-page access fast path.
    page_shift: Option<u32>,
    /// Reusable run-boundary buffer for [`Diff::create_with_scratch`].
    diff_scratch: Vec<(u32, u32)>,
    /// Passive checker hooks; empty (one-branch cost) unless installed.
    observer: ObserverSlot,
    /// Granules of eager regions invalidated by applied write notices since
    /// the last [`LrcEngine::take_eager_invalid`]; always empty without
    /// eager region hints.
    eager_invalid: Vec<PageId>,
    stats: EngineStats,
}

/// The pinning owner of granule `page` (out of `n_units`) under `cfg`'s
/// ownership policy. Granules are numbered in address order, so banding
/// over granule ids still bands the address space.
fn owner_for(cfg: &LrcConfig, n_units: usize, page: PageId) -> u32 {
    match cfg.ownership {
        crate::config::PageOwnership::SingleOwner(n) => n,
        crate::config::PageOwnership::Banded => {
            let n_units = n_units.max(1) as u64;
            let band = u64::from(page) * cfg.n_nodes as u64 / n_units;
            band.min(cfg.n_nodes as u64 - 1) as u32
        }
    }
}

/// Page id selected for diagnostic tracing via `LRC_TRACE_PAGE`, if any.
fn trace_page() -> Option<PageId> {
    static TRACE: std::sync::OnceLock<Option<PageId>> = std::sync::OnceLock::new();
    *TRACE.get_or_init(|| {
        std::env::var("LRC_TRACE_PAGE")
            .ok()
            .and_then(|v| v.parse().ok())
    })
}

/// Byte offset within the traced page to dump as a little-endian `u32`
/// after every mutation, via `LRC_TRACE_OFF`.
fn trace_off() -> usize {
    static TRACE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *TRACE.get_or_init(|| {
        std::env::var("LRC_TRACE_OFF")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    })
}

impl LrcEngine {
    /// Creates the engine for `node`. Pages start zero-filled and valid on
    /// their owner (node 0 by convention: applications initialize shared
    /// data there) and absent everywhere else.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the configured cluster size.
    #[must_use]
    pub fn new(node: u32, cfg: LrcConfig) -> Self {
        assert!((node as usize) < cfg.n_nodes, "node id out of range");
        let granules = GranuleMap::new(cfg.region_bytes, cfg.page_size, &cfg.regions);
        let n_units = granules.n_granules();
        let pages = (0..n_units)
            .map(|p| {
                if owner_for(&cfg, n_units, p as PageId) == node {
                    PageMeta::zeroed(cfg.n_nodes, granules.granule_len(p as PageId))
                } else {
                    PageMeta::missing(cfg.n_nodes)
                }
            })
            .collect();
        Self {
            node,
            vt: Vc::new(cfg.n_nodes),
            pages,
            dirty: BTreeSet::new(),
            intervals: IntervalStore::new(),
            diffs: BTreeMap::new(),
            page_shift: granules.uniform_shift(),
            granules,
            diff_scratch: Vec::new(),
            observer: ObserverSlot::default(),
            eager_invalid: Vec::new(),
            stats: EngineStats::default(),
            cfg,
        }
    }

    /// Installs a passive [`EngineObserver`] notified of memory accesses,
    /// interval closes, record application, and page installs. Observation
    /// never alters engine behavior.
    pub fn set_observer(&mut self, obs: std::sync::Arc<dyn EngineObserver>) {
        self.observer.set(obs);
    }

    /// The node that pins a copy of `page` and answers full-page requests.
    #[must_use]
    pub fn owner_of(&self, page: PageId) -> u32 {
        owner_for(&self.cfg, self.granules.n_granules(), page)
    }

    /// This engine's node id.
    #[must_use]
    pub fn node(&self) -> u32 {
        self.node
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &LrcConfig {
        &self.cfg
    }

    /// Current vector timestamp.
    #[must_use]
    pub fn vt(&self) -> &Vc {
        &self.vt
    }

    /// Engine statistics.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Read-only view of a page's state (diagnostics and tests).
    #[must_use]
    pub fn page_state(&self, page: PageId) -> PageState {
        self.pages[page as usize].state
    }

    /// Granule (coherence unit) containing byte address `addr`. With no
    /// granularity hints this is the legacy `addr / page_size`.
    #[must_use]
    pub fn page_of(&self, addr: usize) -> PageId {
        self.granules.granule_of(addr)
    }

    /// The address→granule map this engine was built with.
    #[must_use]
    pub fn granules(&self) -> &GranuleMap {
        &self.granules
    }

    /// Size in bytes of the coherence unit `page` — `page_size` unless a
    /// region hint gave this range a different granule.
    #[must_use]
    pub fn granule_len(&self, page: PageId) -> usize {
        self.granules.granule_len(page)
    }

    // ------------------------------------------------------------------
    // Memory access.
    // ------------------------------------------------------------------

    /// Reads `buf.len()` bytes starting at `addr` into `buf`.
    ///
    /// The common case — a non-empty access hitting one resident page — is
    /// a single state-table load plus one slice copy; everything else
    /// (faults, page straddles, odd page sizes) is outlined into the cold
    /// slow path.
    ///
    /// # Errors
    ///
    /// Returns the demands needed to make the first inaccessible page
    /// readable; the caller satisfies them and retries (the operation is
    /// idempotent).
    ///
    /// # Panics
    ///
    /// Panics if the range extends beyond the coherent region.
    pub fn read(&mut self, addr: usize, buf: &mut [u8]) -> Result<(), Vec<Demand>> {
        if let Some(shift) = self.page_shift {
            let end = addr + buf.len();
            let page = addr >> shift;
            if !buf.is_empty() && end <= self.cfg.region_bytes && (end - 1) >> shift == page {
                let meta = &self.pages[page];
                if matches!(meta.state, PageState::ReadOnly | PageState::ReadWrite) {
                    let off = addr & ((1usize << shift) - 1);
                    buf.copy_from_slice(&meta.data[off..off + buf.len()]);
                    self.observer.mem_read(self.node, addr, buf, &self.vt);
                    return Ok(());
                }
            }
        }
        self.read_slow(addr, buf)
    }

    #[cold]
    fn read_slow(&mut self, addr: usize, buf: &mut [u8]) -> Result<(), Vec<Demand>> {
        assert!(
            addr + buf.len() <= self.cfg.region_bytes,
            "read beyond coherent region: {addr}+{}",
            buf.len()
        );
        let mut done = 0;
        while done < buf.len() {
            let a = addr + done;
            let (page, off, glen) = self.granules.locate(a);
            if let Err(demands) = self.ensure_readable(page) {
                return Err(self.batched_demands(demands, a + (glen - off), addr + buf.len()));
            }
            let n = (glen - off).min(buf.len() - done);
            let data = &self.pages[page as usize].data;
            buf[done..done + n].copy_from_slice(&data[off..off + n]);
            done += n;
        }
        self.observer.mem_read(self.node, addr, buf, &self.vt);
        Ok(())
    }

    /// Extends a faulting access's demands with those of every other
    /// inaccessible granule in the rest of the range `[from, end)`, so one
    /// fetch round (and, with coalescing, often one message per serving
    /// node) covers the whole access instead of one round-trip per granule.
    ///
    /// Only active when granularity hints are configured: the legacy
    /// one-granule-per-fault behavior is part of the pinned golden
    /// fingerprints.
    fn batched_demands(&mut self, mut demands: Vec<Demand>, from: usize, end: usize) -> Vec<Demand> {
        if self.granules.hinted() {
            let mut a = from;
            while a < end {
                let (page, off, glen) = self.granules.locate(a);
                debug_assert_eq!(off, 0, "batch scan must start granule-aligned");
                demands.extend(self.fault_demands(page));
                a += glen - off;
            }
        }
        demands
    }

    /// Writes `data` starting at `addr`.
    ///
    /// The common case — a non-empty access hitting one already
    /// write-enabled page — is a single state-table load plus one slice
    /// copy. Write faults, page straddles, and diagnostic tracing live in
    /// the cold slow path. (A `ReadWrite` page always has its twin and its
    /// dirty-set entry from the faulting transition, so the fast path has
    /// no bookkeeping to do.)
    ///
    /// # Errors
    ///
    /// Returns the demands needed to make the first inaccessible page
    /// writable; the caller satisfies them and retries.
    ///
    /// # Panics
    ///
    /// Panics if the range extends beyond the coherent region.
    pub fn write(&mut self, addr: usize, data: &[u8]) -> Result<(), Vec<Demand>> {
        if let Some(shift) = self.page_shift {
            let end = addr + data.len();
            let page = addr >> shift;
            if !data.is_empty()
                && end <= self.cfg.region_bytes
                && (end - 1) >> shift == page
                && trace_page().is_none()
            {
                let meta = &mut self.pages[page];
                if meta.state == PageState::ReadWrite {
                    let off = addr & ((1usize << shift) - 1);
                    meta.data[off..off + data.len()].copy_from_slice(data);
                    self.observer.mem_write(self.node, addr, data, &self.vt);
                    return Ok(());
                }
            }
        }
        self.write_slow(addr, data)
    }

    #[cold]
    fn write_slow(&mut self, addr: usize, data: &[u8]) -> Result<(), Vec<Demand>> {
        if let Some(tp) = trace_page() {
            let lo = self.granules.granule_base(tp) + trace_off();
            if addr <= lo && addr + data.len() >= lo + 4 {
                let v = u32::from_le_bytes(data[lo - addr..lo - addr + 4].try_into().expect("len"));
                eprintln!(
                    "LRC[{}] write covering trace offset: val={v} state={:?}",
                    self.node, self.pages[tp as usize].state
                );
            }
        }
        assert!(
            addr + data.len() <= self.cfg.region_bytes,
            "write beyond coherent region: {addr}+{}",
            data.len()
        );
        let mut done = 0;
        while done < data.len() {
            let a = addr + done;
            let (page, off, glen) = self.granules.locate(a);
            if let Err(demands) = self.ensure_writable(page) {
                return Err(self.batched_demands(demands, a + (glen - off), addr + data.len()));
            }
            let n = (glen - off).min(data.len() - done);
            let dst = &mut self.pages[page as usize].data;
            dst[off..off + n].copy_from_slice(&data[done..done + n]);
            done += n;
        }
        self.observer.mem_write(self.node, addr, data, &self.vt);
        Ok(())
    }

    /// Makes `page` readable or reports what must be fetched first.
    ///
    /// # Errors
    ///
    /// Returns outstanding [`Demand`]s if remote data is required.
    pub fn ensure_readable(&mut self, page: PageId) -> Result<(), Vec<Demand>> {
        match self.pages[page as usize].state {
            PageState::ReadOnly | PageState::ReadWrite => Ok(()),
            PageState::Missing | PageState::Invalid => {
                let demands = self.fault_demands(page);
                if demands.is_empty() {
                    // Every known notice is covered after all; revalidate.
                    let meta = &mut self.pages[page as usize];
                    meta.state = if meta.twin.is_some() {
                        PageState::ReadWrite
                    } else {
                        PageState::ReadOnly
                    };
                    Ok(())
                } else {
                    self.stats.remote_faults += 1;
                    Err(demands)
                }
            }
        }
    }

    /// Makes `page` writable (creating a twin on the transition), or
    /// reports what must be fetched first.
    ///
    /// # Errors
    ///
    /// Returns outstanding [`Demand`]s if remote data is required.
    pub fn ensure_writable(&mut self, page: PageId) -> Result<(), Vec<Demand>> {
        self.ensure_readable(page)?;
        let meta = &mut self.pages[page as usize];
        if meta.state == PageState::ReadOnly {
            // Software write fault: make the twin, write-enable the page.
            meta.twin = Some(meta.data.clone());
            meta.state = PageState::ReadWrite;
            self.dirty.insert(page);
            self.stats.write_faults += 1;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Intervals and write notices.
    // ------------------------------------------------------------------

    /// Closes the current interval if any page was modified in it; called
    /// at every release and acquire endpoint.
    ///
    /// The closing interval receives a write notice for every page dirtied
    /// since the previous close. Pages stay write-enabled with their twins
    /// intact — diffing is lazy — so writes that land on a still-unprotected
    /// page after the close are folded, undetected, into the earlier
    /// interval's eventual diff, exactly as in TreadMarks (safe for
    /// data-race-free programs).
    pub fn close_interval(&mut self) -> Option<IntervalRecord> {
        if self.dirty.is_empty() {
            return None;
        }
        let idx = self.vt.bump(self.node);
        let pages: Vec<PageId> = std::mem::take(&mut self.dirty).into_iter().collect();
        for &p in &pages {
            let meta = &mut self.pages[p as usize];
            meta.max_notice.set(self.node, idx);
            // Our own data always reflects our own writes.
            meta.applied.set(self.node, idx);
        }
        let rec = IntervalRecord {
            node: self.node,
            index: idx,
            vc: self.vt.clone(),
            pages,
        };
        self.intervals.insert(rec.clone());
        self.stats.intervals_created += 1;
        // Eager per-interval diffing: capture each announced page's
        // modifications now, so every diff record covers exactly one
        // interval and carries that interval's timestamp. Records that
        // merge several intervals under one capture-time timestamp cannot
        // be ordered correctly against concurrent writers — a byte written
        // in an early interval would sort by the late timestamp and could
        // overwrite a causally-later write from another node.
        for &p in &rec.pages {
            self.capture_own_diff(p);
        }
        self.observer.interval_closed(self.node, &rec);
        Some(rec)
    }

    /// Interval records a receiver whose state is `have` still needs —
    /// the consistency payload of a RELEASE message.
    #[must_use]
    pub fn records_newer_than(&self, have: &Vc) -> Vec<IntervalRecord> {
        self.intervals.newer_than(have)
    }

    /// Own interval records newer than `have` — the RELEASE_NT payload.
    #[must_use]
    pub fn own_records_newer_than(&self, have: &Vc) -> Vec<IntervalRecord> {
        self.intervals.own_newer_than(self.node, have)
    }

    /// Records between `have` (exclusive) and `through` (inclusive), used
    /// to repair inadequate consistency information after a forwarded or
    /// non-transitive message.
    #[must_use]
    pub fn records_between(&self, have: &Vc, through: &Vc) -> Vec<IntervalRecord> {
        self.intervals.newer_than_bounded(have, through)
    }

    /// Applies a batch of interval records (the acquire side of a RELEASE).
    ///
    /// Records are applied per creator in index order; a record whose index
    /// is not the next expected one for its creator is skipped (the caller
    /// detects the remaining gap by comparing [`LrcEngine::vt`] with the
    /// message's required timestamp and requests the missing records).
    /// Returns the number of records applied.
    pub fn apply_records(&mut self, records: &[IntervalRecord]) -> usize {
        // Sort references, not records: the caller keeps its batch, and only
        // the records actually applied are cloned into the interval store —
        // own and already-seen intervals (the common case on re-sends) cost
        // nothing.
        let mut order: Vec<&IntervalRecord> = records.iter().collect();
        order.sort_by_key(|r| (r.node, r.index));
        let mut applied = 0;
        for rec in order {
            if rec.node == self.node || rec.index <= self.vt.get(rec.node) {
                continue; // Own or already-seen interval.
            }
            if rec.index != self.vt.get(rec.node) + 1 {
                continue; // Gap: cannot apply out of order.
            }
            self.apply_one(rec.clone());
            applied += 1;
        }
        applied
    }

    fn apply_one(&mut self, rec: IntervalRecord) {
        self.vt.set(rec.node, rec.index);
        for &p in &rec.pages {
            self.stats.notices_applied += 1;
            if rec.index <= self.pages[p as usize].applied.get(rec.node) {
                // Already covered (e.g. by a merged diff or page install).
                let meta = &mut self.pages[p as usize];
                let cur = meta.max_notice.get(rec.node);
                meta.max_notice.set(rec.node, cur.max(rec.index));
                continue;
            }
            if trace_page() == Some(p) {
                eprintln!(
                    "LRC[{}] notice page {p} from ({},{}) state={:?} applied={:?}",
                    self.node, rec.node, rec.index, self.pages[p as usize].state,
                    self.pages[p as usize].applied
                );
            }
            // A notice hitting a locally write-enabled page means concurrent
            // writers (data-race-free programs touch disjoint bytes). The
            // twin survives the invalidation: it holds only modifications of
            // the still-open local interval, which will be announced and
            // captured at the next close; fetched diffs are applied to both
            // the data and the twin, keeping the twin a faithful pre-local-
            // writes base.
            let meta = &mut self.pages[p as usize];
            let cur = meta.max_notice.get(rec.node);
            meta.max_notice.set(rec.node, cur.max(rec.index));
            match meta.state {
                PageState::Missing => {}
                _ => {
                    meta.state = PageState::Invalid;
                    if self.granules.eager_granule(p) {
                        self.eager_invalid.push(p);
                    }
                }
            }
        }
        self.observer.record_applied(self.node, &rec);
        self.intervals.insert(rec);
    }

    /// Drains the granules of *eager* regions that incoming write notices
    /// invalidated since the last call, sorted, deduplicated, and filtered
    /// to those still inaccessible (a diff merge between notice and drain
    /// can revalidate a granule). The runtime turns these into immediate,
    /// non-blocking fetches right after applying a RELEASE's records, so
    /// fetch coalescing can pack an interval closure's whole invalidation
    /// set into one batched request per serving node. Always empty without
    /// eager region hints — the demand-driven legacy path is untouched.
    pub fn take_eager_invalid(&mut self) -> Vec<PageId> {
        if self.eager_invalid.is_empty() {
            return Vec::new();
        }
        let mut pages = std::mem::take(&mut self.eager_invalid);
        pages.sort_unstable();
        pages.dedup();
        pages.retain(|&p| matches!(self.pages[p as usize].state, PageState::Invalid));
        pages
    }

    // ------------------------------------------------------------------
    // Diffs.
    // ------------------------------------------------------------------

    /// Captures this node's modifications to `page` for the just-closed
    /// interval into a stored diff record, drops the twin, and re-protects
    /// the page. Called from [`LrcEngine::close_interval`] for every page
    /// the closing interval announces, so each record covers exactly one
    /// interval and carries its timestamp (sound causal ordering).
    ///
    /// # Panics
    ///
    /// Panics if the page has no twin (an internal invariant).
    fn capture_own_diff(&mut self, page: PageId) {
        if trace_page() == Some(page) {
            let o = trace_off();
            let v = u32::from_le_bytes(
                self.pages[page as usize].data[o..o + 4]
                    .try_into()
                    .expect("trace offset"),
            );
            eprintln!(
                "LRC[{}] capture page {page} own_covered={} vt={:?} val@{o}={v}",
                self.node, self.pages[page as usize].own_covered, self.vt
            );
        }
        let idx = self.vt.get(self.node);
        let scratch = &mut self.diff_scratch;
        let meta = &mut self.pages[page as usize];
        let twin = meta.twin.take().expect("capture_own_diff without twin");
        let diff = Diff::create_with_scratch(&twin, &meta.data, scratch);
        meta.own_covered = idx;
        meta.state = if meta.up_to_date() {
            PageState::ReadOnly
        } else {
            PageState::Invalid
        };
        let rec = DiffRecord {
            node: self.node,
            page,
            first: idx,
            last: idx,
            vc: self.vt.clone(),
            diff,
        };
        self.diffs.entry((self.node, page)).or_default().push(rec);
        self.stats.diffs_created += 1;
    }

    /// True when every *individual* write notice known for `page` is either
    /// already applied or covered by one of the claimed (buffered, not yet
    /// applied) diff records.
    ///
    /// The check is exact, not a per-node maximum: diffs attached to
    /// releases under the update strategy arrive one interval at a time,
    /// so a buffer can hold a creator's interval 41 without its interval
    /// 40 — a max-based check would pass, the batch would apply, the
    /// scalar `applied` would jump past 40, and interval 40's diff would
    /// be duplicate-skipped forever. The interval store knows exactly
    /// which of the creator's intervals named this page, so each one is
    /// verified individually.
    ///
    /// The messaging layer uses this to hold buffered diffs until a
    /// complete, causally sortable batch is present — applying partial
    /// batches could order a causally later record before an earlier one
    /// arriving in a later round.
    #[must_use]
    pub fn covers_with_claims(&self, page: PageId, claims: &[DiffRecord]) -> bool {
        let meta = &self.pages[page as usize];
        for (q, have) in meta.applied.iter() {
            if q == self.node {
                continue;
            }
            let want = meta.max_notice.get(q);
            for i in have + 1..=want {
                let names_page = match self.intervals.get(q, i) {
                    Some(rec) => rec.pages.contains(&page),
                    // No record for a known notice index: only possible for
                    // coverage learned wholesale from a page install, whose
                    // applied/max_notice components move together — treat
                    // conservatively as incomplete.
                    None => return false,
                };
                if names_page
                    && !claims
                        .iter()
                        .any(|r| r.node == q && r.first <= i && i <= r.last)
                {
                    return false;
                }
            }
        }
        true
    }

    /// The demands needed to make a faulted page accessible.
    #[must_use]
    pub fn fault_demands(&self, page: PageId) -> Vec<Demand> {
        let meta = &self.pages[page as usize];
        match meta.state {
            PageState::Missing => vec![Demand::Page {
                to: self.owner_of(page),
                page,
            }],
            PageState::Invalid => {
                let mut demands = Vec::new();
                for (q, have) in meta.applied.iter() {
                    if q == self.node {
                        continue;
                    }
                    let want = meta.max_notice.get(q);
                    if want > have {
                        demands.push(Demand::Diffs {
                            to: q,
                            page,
                            after: have,
                            through: want,
                        });
                    }
                }
                demands
            }
            PageState::ReadOnly | PageState::ReadWrite => Vec::new(),
        }
    }

    /// Serves a diff request: returns this node's diff records for `page`
    /// covering its intervals in `(after, through]`. With eager per-
    /// interval capture, every announced interval's diff already exists.
    pub fn serve_diffs(&mut self, page: PageId, after: u32, through: u32) -> Vec<DiffRecord> {
        debug_assert!(
            self.pages[page as usize].own_covered >= through.min(self.vt.get(self.node)),
            "diff request beyond materialized coverage"
        );
        self.diffs
            .get(&(self.node, page))
            .map(|recs| {
                recs.iter()
                    .filter(|r| r.last > after && r.first <= through)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Applies fetched diff records to `page` in causal order.
    ///
    /// # Panics
    ///
    /// Panics if the page has no local copy, or if a record leaves a gap in
    /// its creator's interval coverage (a protocol violation upstream).
    pub fn apply_diff_records(&mut self, page: PageId, mut records: Vec<DiffRecord>) {
        assert!(
            self.pages[page as usize].state != PageState::Missing,
            "applying diffs to a missing page"
        );
        sort_causally(&mut records);
        for rec in records {
            assert_eq!(rec.page, page, "diff record for a different page");
            if trace_page() == Some(page) {
                eprintln!(
                    "LRC[{}] apply page {page} rec({}, {}..={}, vc={:?}, {} runs) have={}",
                    self.node,
                    rec.node,
                    rec.first,
                    rec.last,
                    rec.vc,
                    rec.diff.runs.len(),
                    self.pages[page as usize].applied.get(rec.node)
                );
            }
            let meta = &mut self.pages[page as usize];
            let have = meta.applied.get(rec.node);
            if rec.last <= have {
                continue; // Duplicate coverage.
            }
            // Per-interval records are sparse: a page has records only for
            // the creator's intervals that modified it, so `rec.first` may
            // jump past `have`. Completeness is guaranteed upstream: write
            // notices arrive gap-free per creator, fault demands span
            // `(applied, max_notice]`, and the serving node returns every
            // record in that range.
            rec.diff.apply(&mut meta.data);
            if trace_page() == Some(page) {
                let o = trace_off();
                let v = u32::from_le_bytes(meta.data[o..o + 4].try_into().expect("trace offset"));
                let touched = rec
                    .diff
                    .runs
                    .iter()
                    .any(|r| (r.offset as usize) <= o && r.offset as usize + r.data.len() > o);
                eprintln!(
                    "LRC[{}]   after rec({},{}..={}): val@{o}={v} touched={touched}",
                    self.node, rec.node, rec.first, rec.last
                );
            }
            // A surviving twin holds only the still-open local interval's
            // writes; fetched diffs are from concurrent writers (disjoint
            // bytes in a data-race-free program) or causal predecessors.
            // Applying them to the twin as well keeps the twin a faithful
            // "page without my open writes" base, so the next capture
            // contains only this node's own modifications.
            if let Some(twin) = &mut meta.twin {
                rec.diff.apply(twin);
            }
            meta.applied.set(rec.node, rec.last);
            let cur = meta.max_notice.get(rec.node);
            meta.max_notice.set(rec.node, cur.max(rec.last));
            self.stats.diffs_applied += 1;
            // Keep the fetched record (GC pressure, as in TreadMarks).
            self.diffs.entry((rec.node, page)).or_default().push(rec);
        }
        let meta = &mut self.pages[page as usize];
        if meta.state == PageState::Invalid && meta.up_to_date() {
            meta.state = if meta.twin.is_some() {
                PageState::ReadWrite
            } else {
                PageState::ReadOnly
            };
        }
    }

    /// Returns this node's stored diff record (if any) covering `index` of
    /// `node`'s intervals for `page` — used by the update strategy to ship
    /// diffs together with the write notices that describe them.
    #[must_use]
    pub fn stored_diff(&self, node: u32, page: PageId, index: u32) -> Option<&DiffRecord> {
        self.diffs
            .get(&(node, page))
            .and_then(|recs| recs.iter().find(|r| r.first <= index && index <= r.last))
    }

    /// Serves a full-page request: the current copy plus the applied vector
    /// describing exactly which modifications it reflects.
    ///
    /// With eager per-interval capture, a live twin holds only the
    /// still-open interval's local writes; the served data may include
    /// them (safe: they will be announced by the next close, and the
    /// receiver's applied vector does not claim them).
    ///
    /// # Panics
    ///
    /// Panics if this node has no copy (only owners are asked, and owners
    /// pin their copies).
    #[must_use]
    pub fn serve_page(&mut self, page: PageId) -> (Vec<u8>, Vc) {
        assert!(
            self.pages[page as usize].state != PageState::Missing,
            "page request hit a node without a copy"
        );
        let meta = &self.pages[page as usize];
        (meta.data.clone(), meta.applied.clone())
    }

    /// Installs a fetched page copy. The page becomes valid if the carried
    /// applied-vector covers every write notice known locally; otherwise it
    /// is invalid and diff demands follow.
    pub fn install_page(&mut self, page: PageId, data: Vec<u8>, applied: Vc) -> bool {
        if trace_page() == Some(page) {
            let o = trace_off();
            let v = u32::from_le_bytes(data[o..o + 4].try_into().expect("trace offset"));
            eprintln!(
                "LRC[{}] install page {page} applied={applied:?} val@{o}={v}",
                self.node
            );
        }
        assert_eq!(
            data.len(),
            self.granules.granule_len(page),
            "bad granule size in install"
        );
        let meta = &mut self.pages[page as usize];
        // Replacement must not roll the copy backwards: only accept data
        // covering at least what is already applied locally. (A copy may
        // replace an existing one — the TreadMarks heuristic ships a whole
        // page when the pending diff chain outgrows it.)
        if meta.state != PageState::Missing && !applied.dominates(&meta.applied) {
            // Stale copy (the server lagged); keep ours — the caller falls
            // back to plain diffs.
            return false;
        }
        // Local open-interval writes survive a replacement: the local diff
        // (twin versus data) is recomputed on top of the new base, sound
        // because concurrent writers touch disjoint bytes in a
        // data-race-free program.
        if let Some(twin) = meta.twin.take() {
            let own = Diff::create(&twin, &meta.data);
            meta.data = data.clone();
            own.apply(&mut meta.data);
            meta.twin = Some(data);
        } else {
            meta.data = data;
        }
        meta.applied.join(&applied);
        // The copy reflects at least those modifications; record them as
        // known notices so bookkeeping stays monotone.
        meta.max_notice.join(&applied);
        meta.state = if meta.up_to_date() {
            if meta.twin.is_some() {
                PageState::ReadWrite
            } else {
                PageState::ReadOnly
            }
        } else {
            PageState::Invalid
        };
        self.stats.pages_installed += 1;
        self.observer
            .page_installed(self.node, page, &self.pages[page as usize].applied);
        true
    }

    // ------------------------------------------------------------------
    // Garbage collection of consistency records.
    // ------------------------------------------------------------------

    /// Number of stored consistency records (intervals + diffs); the GC
    /// pressure metric.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.intervals.len() + self.diffs.values().map(Vec::len).sum::<usize>()
    }

    /// True when this node's stored records exceed the configured GC
    /// threshold and a global garbage collection should be initiated.
    #[must_use]
    pub fn gc_needed(&self) -> bool {
        self.record_count() > self.cfg.gc_threshold_records
    }

    /// Demands required to validate every invalid page — phase two of a
    /// global GC (after the cluster has equalized vector timestamps).
    #[must_use]
    pub fn gc_validate_demands(&self) -> Vec<Demand> {
        let mut out = Vec::new();
        for p in 0..self.pages.len() as PageId {
            if self.pages[p as usize].state == PageState::Invalid {
                out.extend(self.fault_demands(p));
            }
        }
        out
    }

    /// Discards all interval and diff records — the final phase of a global
    /// GC. Callers must have ensured (a) all nodes hold identical vector
    /// timestamps and (b) every non-missing page is valid.
    ///
    /// # Panics
    ///
    /// Panics if an invalid page remains (the caller skipped validation).
    pub fn gc_discard(&mut self) {
        for (p, meta) in self.pages.iter_mut().enumerate() {
            match meta.state {
                PageState::Invalid => {
                    panic!("gc_discard with invalid page {p}; validate first")
                }
                PageState::Missing => {
                    meta.applied = Vc::new(self.cfg.n_nodes);
                    meta.max_notice = Vc::new(self.cfg.n_nodes);
                    meta.own_covered = 0;
                }
                PageState::ReadOnly | PageState::ReadWrite => {
                    // Everything announced is covered everywhere; intervals
                    // without notices for this page vacuously count.
                    meta.applied = self.vt.clone();
                    meta.max_notice = self.vt.clone();
                    meta.own_covered = self.vt.get(self.node);
                }
            }
        }
        self.intervals.clear();
        self.diffs.clear();
        self.stats.gcs += 1;
    }
}
