//! Passive engine observation hooks for external consistency checkers.
//!
//! An [`EngineObserver`] is notified of the engine's externally meaningful
//! transitions — memory accesses, interval closes, record application, page
//! installs — without being able to influence them. Observation is off by
//! default ([`ObserverSlot`] holds nothing) and charges no simulated time,
//! so observed runs are bit-identical to unobserved ones. The `carlos-check`
//! crate builds its happens-before tracker and shadow-memory oracle on these
//! hooks.

use std::{fmt, sync::Arc};

use crate::{interval::IntervalRecord, page::PageId, vc::Vc};

/// Receiver of engine transition notifications.
///
/// All methods default to no-ops so implementations subscribe only to what
/// they need. Implementations are called synchronously from engine methods
/// on the owning node's proc thread; they may record state (and may panic
/// or abort to escalate a detected violation) but must not call back into
/// the engine.
pub trait EngineObserver: Send + Sync {
    /// A read of `data.len()` bytes at `addr` completed on `node`, returning
    /// the bytes in `data`, with the node's vector timestamp at `vt`.
    fn mem_read(&self, node: u32, addr: usize, data: &[u8], vt: &Vc) {
        let _ = (node, addr, data, vt);
    }

    /// A write of `data` at `addr` completed on `node`, whose vector
    /// timestamp is `vt` (the write belongs to the still-open interval
    /// `vt[node] + 1`).
    fn mem_write(&self, node: u32, addr: usize, data: &[u8], vt: &Vc) {
        let _ = (node, addr, data, vt);
    }

    /// `node` closed an interval, creating `rec` (a release or acquire
    /// endpoint with at least one dirty page).
    fn interval_closed(&self, node: u32, rec: &IntervalRecord) {
        let _ = (node, rec);
    }

    /// `node` applied the remote interval record `rec` (the acquire side),
    /// advancing its timestamp to cover it.
    fn record_applied(&self, node: u32, rec: &IntervalRecord) {
        let _ = (node, rec);
    }

    /// `node` installed a full copy of `page` whose contents reflect the
    /// modifications in `applied`.
    fn page_installed(&self, node: u32, page: PageId, applied: &Vc) {
        let _ = (node, page, applied);
    }
}

/// An optional, shareable observer slot embedded in the engine.
///
/// Empty by default; every notification forwards through a single `Option`
/// check, so the disabled path costs one branch.
#[derive(Clone, Default)]
pub struct ObserverSlot(Option<Arc<dyn EngineObserver>>);

impl ObserverSlot {
    /// Installs `obs`; subsequent engine transitions notify it.
    pub fn set(&mut self, obs: Arc<dyn EngineObserver>) {
        self.0 = Some(obs);
    }

    /// True when an observer is installed.
    #[must_use]
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// Forwards [`EngineObserver::mem_read`].
    #[inline]
    pub fn mem_read(&self, node: u32, addr: usize, data: &[u8], vt: &Vc) {
        if let Some(o) = &self.0 {
            o.mem_read(node, addr, data, vt);
        }
    }

    /// Forwards [`EngineObserver::mem_write`].
    #[inline]
    pub fn mem_write(&self, node: u32, addr: usize, data: &[u8], vt: &Vc) {
        if let Some(o) = &self.0 {
            o.mem_write(node, addr, data, vt);
        }
    }

    /// Forwards [`EngineObserver::interval_closed`].
    #[inline]
    pub fn interval_closed(&self, node: u32, rec: &IntervalRecord) {
        if let Some(o) = &self.0 {
            o.interval_closed(node, rec);
        }
    }

    /// Forwards [`EngineObserver::record_applied`].
    #[inline]
    pub fn record_applied(&self, node: u32, rec: &IntervalRecord) {
        if let Some(o) = &self.0 {
            o.record_applied(node, rec);
        }
    }

    /// Forwards [`EngineObserver::page_installed`].
    #[inline]
    pub fn page_installed(&self, node: u32, page: PageId, applied: &Vc) {
        if let Some(o) = &self.0 {
            o.page_installed(node, page, applied);
        }
    }
}

impl fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "ObserverSlot(installed)"
        } else {
            "ObserverSlot(none)"
        })
    }
}
