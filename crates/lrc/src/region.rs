//! Variable-granularity region table.
//!
//! The paper's coherence unit is the hardware page: 8 KiB on the Alpha
//! testbed, fixed for the whole shared region. That one size is wrong in
//! both directions at once — a 4-byte tour bound shares its page with a
//! task queue (false sharing: every bound improvement invalidates the
//! queue), while a grid row band pays one fetch round-trip per page even
//! though neighbours always want whole rows.
//!
//! The region table fixes the unit per *allocation* instead: the coherent
//! address space is partitioned into contiguous regions, each with its own
//! power-of-two granule size. Granules are the engine's "pages" — they get
//! their own [`crate::page::PageMeta`], twin, diffs, and write notices —
//! and are numbered densely in address order, so a granule id fits the
//! same `u32` slot the wire protocol always used for page ids.
//!
//! With no regions configured the table degenerates to a single segment
//! whose granule is the legacy `page_size`; granule ids then equal
//! `addr / page_size` and every byte the engine produces (wire messages,
//! costs, event order) is identical to the pre-region-table code. The
//! golden-fingerprint tests pin exactly this equivalence.

use crate::page::PageId;

/// One contiguous address range with its own coherence granule size,
/// normally produced by `CoherentHeap::alloc_with_granule` hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSpec {
    /// First byte of the region (must be `granule`-aligned).
    pub start: usize,
    /// Region length in bytes (rounded up to whole granules internally).
    pub len: usize,
    /// Coherence granule size in bytes (power of two, at least 8).
    pub granule: usize,
    /// Eager-fetch policy: when true, granules of this region invalidated
    /// by incoming write notices are re-fetched immediately after the
    /// notices apply (batched per serving node by fetch coalescing),
    /// instead of one at a time on later access faults. Right for data the
    /// node is certain to re-read after every synchronization (hot
    /// scalars, task slots, boundary rows); wrong for large arrays where
    /// another node may own most of the invalidated range.
    pub eager: bool,
}

impl RegionSpec {
    /// A demand-fetched (non-eager) region hint.
    #[must_use]
    pub fn new(start: usize, len: usize, granule: usize) -> Self {
        Self { start, len, granule, eager: false }
    }

    /// Marks the region for eager re-fetch on invalidation.
    #[must_use]
    pub fn eager(mut self) -> Self {
        self.eager = true;
        self
    }
}

/// A resolved, gap-free segment of the coherent region. Gaps between
/// configured [`RegionSpec`]s are covered by segments at the default
/// (legacy) page size.
#[derive(Debug, Clone, Copy)]
struct Seg {
    /// First byte covered.
    start: usize,
    /// One past the last byte covered.
    end: usize,
    /// Granule size within the segment.
    granule: usize,
    /// Dense id of the segment's first granule.
    first_id: u32,
    /// Eager-fetch policy inherited from the [`RegionSpec`] (gap-fill
    /// segments are never eager).
    eager: bool,
}

/// The resolved address→granule mapping for one engine: a sorted,
/// non-overlapping list of segments covering `[0, region_bytes)`.
#[derive(Debug, Clone)]
pub struct GranuleMap {
    segs: Vec<Seg>,
    n_granules: usize,
    region_bytes: usize,
    /// True when the map is anything other than the single legacy
    /// `page_size` segment — the cue for granule-aware fault batching.
    hinted: bool,
}

impl GranuleMap {
    /// Builds the map for a `region_bytes`-byte region with default
    /// granule `page_size` and the given hinted regions.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid spec: a granule that is
    /// not a power of two or smaller than 8 bytes, a start that is not
    /// granule-aligned, an empty or out-of-range region, or overlap
    /// between regions (specs need not be sorted; they are sorted here).
    pub fn try_new(
        region_bytes: usize,
        page_size: usize,
        regions: &[RegionSpec],
    ) -> Result<Self, String> {
        assert!(page_size > 0, "page size must be positive");
        let mut specs: Vec<RegionSpec> = regions.to_vec();
        specs.sort_by_key(|r| r.start);
        let mut segs: Vec<Seg> = Vec::new();
        let mut cursor = 0usize;
        let mut next_id = 0u32;
        let mut push = |segs: &mut Vec<Seg>, start: usize, end: usize, granule: usize, eager: bool| {
            let count = (end - start).div_ceil(granule);
            segs.push(Seg {
                start,
                end,
                granule,
                first_id: next_id,
                eager,
            });
            next_id = u32::try_from(next_id as usize + count).expect("granule id overflow");
        };
        for spec in &specs {
            if !spec.granule.is_power_of_two() || spec.granule < 8 {
                return Err(format!(
                    "granule {} must be a power of two of at least 8 bytes",
                    spec.granule
                ));
            }
            if spec.len == 0 {
                return Err(format!("region at {:#x} is empty", spec.start));
            }
            if spec.start % spec.granule != 0 {
                return Err(format!(
                    "region start {:#x} not aligned to granule {}",
                    spec.start, spec.granule
                ));
            }
            if spec.start < cursor {
                return Err(format!(
                    "region at {:#x} overlaps the previous region",
                    spec.start
                ));
            }
            let end = spec
                .start
                .checked_add(spec.len.div_ceil(spec.granule) * spec.granule)
                .ok_or_else(|| "region length overflow".to_string())?;
            if end > region_bytes {
                return Err(format!(
                    "region {:#x}..{:#x} exceeds the coherent region ({region_bytes} bytes)",
                    spec.start, end
                ));
            }
            if spec.start > cursor {
                push(&mut segs, cursor, spec.start, page_size, false);
            }
            push(&mut segs, spec.start, end, spec.granule, spec.eager);
            cursor = end;
        }
        if cursor < region_bytes {
            push(&mut segs, cursor, region_bytes, page_size, false);
        }
        if segs.is_empty() {
            // Zero-byte region: keep one degenerate segment so lookups on
            // the (never-valid) address 0 stay panics, not index errors.
            segs.push(Seg {
                start: 0,
                end: 0,
                granule: page_size,
                first_id: 0,
                eager: false,
            });
        }
        let hinted = !(segs.len() == 1 && segs[0].granule == page_size);
        Ok(Self {
            n_granules: next_id as usize,
            segs,
            region_bytes,
            hinted,
        })
    }

    /// Like [`GranuleMap::try_new`] but panicking on invalid specs.
    ///
    /// # Panics
    ///
    /// Panics with the validation error for invalid region specs.
    #[must_use]
    pub fn new(region_bytes: usize, page_size: usize, regions: &[RegionSpec]) -> Self {
        Self::try_new(region_bytes, page_size, regions)
            .unwrap_or_else(|e| panic!("invalid region table: {e}"))
    }

    /// Total number of granules (the engine's page-table size).
    #[must_use]
    pub fn n_granules(&self) -> usize {
        self.n_granules
    }

    /// True when the table differs from the single legacy-page-size
    /// segment — i.e. when at least one allocation hinted a granule.
    #[must_use]
    pub fn hinted(&self) -> bool {
        self.hinted
    }

    /// When the whole region is one power-of-two-granule segment, that
    /// granule's shift — the engine's single-lookup access fast path.
    #[must_use]
    pub fn uniform_shift(&self) -> Option<u32> {
        match &self.segs[..] {
            [only] if only.granule.is_power_of_two() => Some(only.granule.trailing_zeros()),
            _ => None,
        }
    }

    fn seg_for_addr(&self, addr: usize) -> &Seg {
        debug_assert!(addr < self.region_bytes.max(1), "address out of region");
        let i = self
            .segs
            .partition_point(|s| s.start <= addr)
            .saturating_sub(1);
        let seg = &self.segs[i];
        debug_assert!(seg.start <= addr && addr < seg.end.max(1), "segment lookup");
        seg
    }

    fn seg_for_granule(&self, g: PageId) -> &Seg {
        let i = self
            .segs
            .partition_point(|s| s.first_id <= g)
            .saturating_sub(1);
        &self.segs[i]
    }

    /// Granule containing byte address `addr`.
    #[must_use]
    pub fn granule_of(&self, addr: usize) -> PageId {
        let seg = self.seg_for_addr(addr);
        seg.first_id + ((addr - seg.start) / seg.granule) as PageId
    }

    /// Granule containing `addr`, the offset of `addr` within it, and the
    /// granule's size — everything a byte-range access loop needs.
    #[must_use]
    pub fn locate(&self, addr: usize) -> (PageId, usize, usize) {
        let seg = self.seg_for_addr(addr);
        let rel = addr - seg.start;
        (
            seg.first_id + (rel / seg.granule) as PageId,
            rel % seg.granule,
            seg.granule,
        )
    }

    /// Size in bytes of granule `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn granule_len(&self, g: PageId) -> usize {
        assert!((g as usize) < self.n_granules, "granule id out of range");
        self.seg_for_granule(g).granule
    }

    /// Whether granule `g` lies in an eager-fetch region.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn eager_granule(&self, g: PageId) -> bool {
        assert!((g as usize) < self.n_granules, "granule id out of range");
        self.seg_for_granule(g).eager
    }

    /// True when any segment carries the eager-fetch policy — the cheap
    /// gate for the runtime's eager paths (one bool, no per-granule work
    /// on unhinted configurations).
    #[must_use]
    pub fn has_eager(&self) -> bool {
        self.segs.iter().any(|s| s.eager)
    }

    /// First byte address of granule `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn granule_base(&self, g: PageId) -> usize {
        assert!((g as usize) < self.n_granules, "granule id out of range");
        let seg = self.seg_for_granule(g);
        seg.start + (g - seg.first_id) as usize * seg.granule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_regions_match_legacy_paging() {
        let m = GranuleMap::new(250, 100, &[]);
        assert_eq!(m.n_granules(), 3); // div_ceil, like LrcConfig::n_pages.
        assert!(!m.hinted());
        assert_eq!(m.granule_of(0), 0);
        assert_eq!(m.granule_of(249), 2);
        assert_eq!(m.locate(205), (2, 5, 100));
        assert_eq!(m.granule_len(2), 100);
        assert_eq!(m.granule_base(2), 200);
    }

    #[test]
    fn uniform_pow2_exposes_fast_path_shift() {
        assert_eq!(GranuleMap::new(1 << 20, 8192, &[]).uniform_shift(), Some(13));
        assert_eq!(GranuleMap::new(300, 100, &[]).uniform_shift(), None);
    }

    #[test]
    fn hinted_regions_get_dense_ids_with_gap_fill() {
        // [0,64) fine 64 B region, gap [64,16384) at page size, then a bulk
        // [16384, 49152) region of 16 KiB granules, tail gap to 65536.
        let m = GranuleMap::new(
            65536,
            8192,
            &[
                RegionSpec::new(0, 64, 64),
                RegionSpec::new(16384, 32768, 16384),
            ],
        );
        assert!(m.hinted());
        assert_eq!(m.uniform_shift(), None);
        // ids: 0 (fine), 1-2 (gap pages 64..16384), 3-4 (bulk), 5-6 (tail).
        assert_eq!(m.n_granules(), 7);
        assert_eq!(m.granule_of(0), 0);
        assert_eq!(m.granule_of(63), 0);
        assert_eq!(m.granule_of(64), 1);
        assert_eq!(m.granule_of(8255), 1);
        assert_eq!(m.granule_of(16383), 2);
        assert_eq!(m.granule_of(16384), 3);
        assert_eq!(m.granule_of(32768), 4);
        assert_eq!(m.granule_of(49152), 5);
        assert_eq!(m.granule_len(0), 64);
        assert_eq!(m.granule_len(1), 8192);
        assert_eq!(m.granule_len(4), 16384);
        assert_eq!(m.granule_base(4), 32768);
        assert_eq!(m.granule_base(5), 49152);
        assert_eq!(m.locate(32772), (4, 4, 16384));
    }

    #[test]
    fn single_full_cover_region_at_page_size_is_not_hinted() {
        let m = GranuleMap::new(
            1 << 15,
            8192,
            &[RegionSpec::new(0, 1 << 15, 8192)],
        );
        assert!(!m.hinted(), "legacy-default cover must behave as legacy");
        assert_eq!(m.uniform_shift(), Some(13));
        assert_eq!(m.n_granules(), 4);
    }

    #[test]
    fn non_pow2_granule_rejected() {
        for g in [0usize, 3, 12, 100, 8191] {
            let r = GranuleMap::try_new(1 << 15, 8192, &[RegionSpec::new(0, 64, g)]);
            assert!(r.is_err(), "granule {g} must be rejected");
        }
        // Power of two but below the 8-byte word floor.
        assert!(GranuleMap::try_new(1 << 15, 8192, &[RegionSpec::new(0, 8, 4)]).is_err());
    }

    #[test]
    fn misaligned_overlapping_and_oversized_regions_rejected() {
        let ps = 8192;
        assert!(GranuleMap::try_new(1 << 15, ps, &[RegionSpec::new(32, 64, 64)]).is_err());
        assert!(GranuleMap::try_new(
            1 << 15,
            ps,
            &[
                RegionSpec::new(0, 128, 64),
                RegionSpec::new(64, 64, 64),
            ]
        )
        .is_err());
        assert!(GranuleMap::try_new(128, ps, &[RegionSpec::new(0, 256, 64)]).is_err());
        assert!(GranuleMap::try_new(128, ps, &[RegionSpec::new(0, 0, 64)]).is_err());
    }

    #[test]
    fn spec_length_rounds_up_to_whole_granules() {
        let m = GranuleMap::new(1 << 15, 8192, &[RegionSpec::new(0, 100, 64)]);
        // 100 bytes rounds to two 64 B granules; the rest is page-sized.
        assert_eq!(m.granule_len(0), 64);
        assert_eq!(m.granule_len(1), 64);
        assert_eq!(m.granule_of(127), 1);
        assert_eq!(m.granule_of(128), 2);
        assert_eq!(m.granule_len(2), 8192);
    }
}
