//! TreadMarks-style lazy release consistency (LRC) substrate.
//!
//! CarlOS "began with the TreadMarks code. While the basic mechanisms of
//! lazy release consistency are intact, data structures and internal
//! protocols have been restructured extensively" (§4). This crate is that
//! substrate, rebuilt from scratch:
//!
//! - [`vc::Vc`] — vector timestamps summarizing each node's consistency
//!   state (element *i* = index of the most recently seen interval of
//!   node *i*).
//! - [`interval`] — intervals and write notices: each node's execution is
//!   an indexed sequence of intervals whose endpoints are acquire/release
//!   events; each interval carries one write notice per page modified in it.
//! - [`diff`] — run-length-encoded diffs produced by comparing a page with
//!   its twin, and applied (possibly from multiple concurrent writers) to
//!   bring an invalidated page up to date.
//! - [`page`] — the software page table replacing `mprotect`/`SIGSEGV`:
//!   page states, twin management, per-page application bookkeeping.
//! - [`engine::LrcEngine`] — the per-node protocol state machine, written
//!   *sans-I/O*: faults and consistency operations return explicit demands
//!   ([`engine::Demand`]) that the messaging layer satisfies with protocol
//!   replies. This keeps the protocol purely testable and lets the
//!   `carlos-core` crate drive it from annotated messages.
//!
//! The write-detection substitution (software page table instead of VM
//! protection traps) is documented in the repository's `DESIGN.md`; the
//! protocol above the detection mechanism is the paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diff;
pub mod engine;
pub mod interval;
pub mod observer;
pub mod page;
pub mod region;
pub mod vc;

pub use config::{LrcConfig, PageOwnership};
pub use diff::{Diff, DiffRecord};
pub use engine::{Demand, LrcEngine};
pub use interval::IntervalRecord;
pub use observer::{EngineObserver, ObserverSlot};
pub use page::{PageId, PageState};
pub use region::{GranuleMap, RegionSpec};
pub use vc::Vc;
