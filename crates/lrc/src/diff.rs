//! Run-length-encoded page diffs.
//!
//! "On a write-access fault to a protected page, a copy (a twin) is created
//! and the page is marked read-write. When [needed], the page is compared
//! with its twin and the modifications are recorded in a run-length encoded
//! diff structure" (§4.2). Applying an appropriate sequence of diffs,
//! perhaps from multiple writers, brings an invalid page up to date.

use carlos_util::codec::{DecodeError, Decoder, Encoder, Wire};

use crate::vc::Vc;

/// One modified byte run within a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    /// Byte offset within the page.
    pub offset: u32,
    /// The new bytes starting at `offset`.
    pub data: Vec<u8>,
}

/// A run-length-encoded description of the difference between a page and
/// its twin.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    /// Modified runs in increasing, non-overlapping offset order.
    pub runs: Vec<Run>,
}

/// SWAR constants for the has-zero-byte test: `x` contains a zero byte iff
/// `(x - LOW_BITS) & !x & HIGH_BITS != 0`.
const LOW_BITS: u64 = 0x0101_0101_0101_0101;
const HIGH_BITS: u64 = 0x8080_8080_8080_8080;

#[inline]
fn load_word(s: &[u8], i: usize) -> u64 {
    u64::from_ne_bytes(s[i..i + 8].try_into().expect("8-byte chunk"))
}

/// First index `>= i` where the slices disagree (or `len` if none): whole
/// equal words are skipped 8 bytes at a time; bytes are only examined
/// inside the first differing word.
#[inline]
fn first_mismatch(a: &[u8], b: &[u8], mut i: usize) -> usize {
    let n = a.len();
    while i + 8 <= n && load_word(a, i) == load_word(b, i) {
        i += 8;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// First index `>= i` where the slices agree (or `len` if none): words in
/// which all 8 bytes differ (their XOR has no zero byte) are skipped whole;
/// bytes are only examined inside the first word holding an equal byte.
#[inline]
fn first_match(a: &[u8], b: &[u8], mut i: usize) -> usize {
    let n = a.len();
    while i + 8 <= n {
        let x = load_word(a, i) ^ load_word(b, i);
        if x.wrapping_sub(LOW_BITS) & !x & HIGH_BITS != 0 {
            break;
        }
        i += 8;
    }
    while i < n && a[i] != b[i] {
        i += 1;
    }
    i
}

impl Diff {
    /// Computes the diff that rewrites `twin` into `current`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn create(twin: &[u8], current: &[u8]) -> Self {
        let mut scratch = Vec::new();
        Self::create_with_scratch(twin, current, &mut scratch)
    }

    /// [`Diff::create`] with a caller-owned scratch vector for run-boundary
    /// assembly, so a hot caller (the LRC engine diffing on every release)
    /// amortizes the boundary allocation across captures. The result is
    /// identical to [`Diff::create_naive`]; the scan compares a word at a
    /// time and touches individual bytes only inside boundary words.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn create_with_scratch(
        twin: &[u8],
        current: &[u8],
        scratch: &mut Vec<(u32, u32)>,
    ) -> Self {
        assert_eq!(twin.len(), current.len(), "twin/page size mismatch");
        scratch.clear();
        let n = twin.len();
        let mut i = 0;
        while i < n {
            i = first_mismatch(twin, current, i);
            if i >= n {
                break;
            }
            let start = i;
            i = first_match(twin, current, i + 1);
            scratch.push((start as u32, i as u32));
        }
        let runs = scratch
            .iter()
            .map(|&(start, end)| Run {
                offset: start,
                data: current[start as usize..end as usize].to_vec(),
            })
            .collect();
        Self { runs }
    }

    /// The straightforward byte-at-a-time diff. Kept as the executable
    /// specification for the word-level scan (property tests assert the two
    /// agree) and as the "before" side of the hot-path benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn create_naive(twin: &[u8], current: &[u8]) -> Self {
        assert_eq!(twin.len(), current.len(), "twin/page size mismatch");
        let mut runs = Vec::new();
        let mut i = 0;
        let n = twin.len();
        while i < n {
            if twin[i] == current[i] {
                i += 1;
                continue;
            }
            let start = i;
            while i < n && twin[i] != current[i] {
                i += 1;
            }
            runs.push(Run {
                offset: start as u32,
                data: current[start..i].to_vec(),
            });
        }
        Self { runs }
    }

    /// Applies the diff to `page` in place.
    ///
    /// # Panics
    ///
    /// Panics if a run extends past the end of the page (a malformed diff).
    pub fn apply(&self, page: &mut [u8]) {
        for run in &self.runs {
            let start = run.offset as usize;
            let end = start + run.data.len();
            assert!(end <= page.len(), "diff run out of page bounds");
            page[start..end].copy_from_slice(&run.data);
        }
    }

    /// True if the diff changes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total number of modified bytes described.
    #[must_use]
    pub fn modified_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.data.len()).sum()
    }
}

impl Wire for Diff {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_seq(&self.runs, |enc, run| {
            enc.put_u32(run.offset);
            enc.put_bytes(&run.data);
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let runs = dec.get_seq(|dec| {
            Ok(Run {
                offset: dec.get_u32()?,
                data: dec.get_bytes()?,
            })
        })?;
        Ok(Self { runs })
    }
}

/// A stored, shippable diff: which node produced it, for which page, and
/// which of the producer's intervals it covers.
///
/// Because diffing is lazy, one record may cover several consecutive
/// intervals of its creator (`first..=last`): the page was dirtied across
/// multiple release points before anyone requested the modifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRecord {
    /// The node whose modifications this diff describes.
    pub node: u32,
    /// The page the diff applies to.
    pub page: u32,
    /// First interval index of `node` covered by this record.
    pub first: u32,
    /// Last interval index of `node` covered by this record.
    pub last: u32,
    /// The creator's vector timestamp when the diff was created; used to
    /// order diffs from multiple writers before application.
    pub vc: Vc,
    /// The encoded modifications.
    pub diff: Diff,
}

impl Wire for DiffRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.node);
        enc.put_u32(self.page);
        enc.put_u32(self.first);
        enc.put_u32(self.last);
        self.vc.encode(enc);
        self.diff.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            node: dec.get_u32()?,
            page: dec.get_u32()?,
            first: dec.get_u32()?,
            last: dec.get_u32()?,
            vc: Vc::decode(dec)?,
            diff: Diff::decode(dec)?,
        })
    }
}

/// Sorts diff records into a linear extension of happened-before, so that
/// causally later diffs overwrite earlier ones when applied in order.
///
/// The key is `(vc.sum(), node, last)`: if record A's timestamp is strictly
/// dominated by record B's, then `sum(A) < sum(B)`, so A sorts first;
/// concurrent records (necessarily from different writers touching disjoint
/// bytes in a data-race-free program) tie-break deterministically.
pub fn sort_causally(records: &mut [DiffRecord]) {
    records.sort_by_key(|r| (r.vc.sum(), r.node, r.last));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc2(a: u32, b: u32) -> Vc {
        let mut v = Vc::new(2);
        v.set(0, a);
        v.set(1, b);
        v
    }

    #[test]
    fn create_empty_for_identical() {
        let a = vec![7u8; 64];
        let d = Diff::create(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.modified_bytes(), 0);
    }

    #[test]
    fn create_single_run() {
        let twin = vec![0u8; 32];
        let mut cur = twin.clone();
        cur[5] = 1;
        cur[6] = 2;
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 5);
        assert_eq!(d.runs[0].data, vec![1, 2]);
    }

    #[test]
    fn create_multiple_runs_and_apply() {
        let twin: Vec<u8> = (0..128).map(|i| i as u8).collect();
        let mut cur = twin.clone();
        cur[0] = 0xFF;
        cur[50] = 0xEE;
        cur[51] = 0xDD;
        cur[127] = 0xCC;
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs.len(), 3);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn apply_roundtrip_random() {
        let mut rng = carlos_util::rng::Xoshiro256::new(11);
        for _ in 0..50 {
            let n = 256;
            let twin: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            let mut cur = twin.clone();
            for _ in 0..rng.next_below(40) {
                let i = rng.next_below(n as u64) as usize;
                cur[i] = rng.next_u64() as u8;
            }
            let d = Diff::create(&twin, &cur);
            let mut rebuilt = twin.clone();
            d.apply(&mut rebuilt);
            assert_eq!(rebuilt, cur);
        }
    }

    #[test]
    fn word_scan_matches_naive_on_random_pages() {
        let mut rng = carlos_util::rng::Xoshiro256::new(99);
        // Unaligned lengths on purpose: the word loop must hand off to the
        // byte tail correctly.
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 256, 1021] {
            for _ in 0..20 {
                let twin: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
                let mut cur = twin.clone();
                for _ in 0..rng.next_below(32) {
                    if n == 0 {
                        break;
                    }
                    let i = rng.next_below(n as u64) as usize;
                    cur[i] = rng.next_u64() as u8;
                }
                assert_eq!(Diff::create(&twin, &cur), Diff::create_naive(&twin, &cur));
            }
        }
    }

    #[test]
    fn word_scan_matches_naive_all_dirty_and_all_clean() {
        for n in [8usize, 13, 64, 4096] {
            let twin = vec![0xAAu8; n];
            let dirty = vec![0x55u8; n];
            assert_eq!(
                Diff::create(&twin, &dirty),
                Diff::create_naive(&twin, &dirty)
            );
            assert_eq!(Diff::create(&twin, &dirty).runs.len(), 1);
            assert!(Diff::create(&twin, &twin).is_empty());
        }
    }

    #[test]
    fn scratch_is_reusable_across_captures() {
        let mut scratch = Vec::new();
        let twin = vec![0u8; 128];
        for round in 0..4u8 {
            let mut cur = twin.clone();
            cur[round as usize * 20] = round + 1;
            let d = Diff::create_with_scratch(&twin, &cur, &mut scratch);
            assert_eq!(d, Diff::create_naive(&twin, &cur));
        }
    }

    #[test]
    fn run_boundary_at_page_end() {
        let twin = vec![0u8; 16];
        let mut cur = twin.clone();
        cur[15] = 9;
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 15);
        let mut rebuilt = twin;
        d.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur);
    }

    #[test]
    #[should_panic(expected = "out of page bounds")]
    fn apply_rejects_overflowing_run() {
        let d = Diff {
            runs: vec![Run {
                offset: 14,
                data: vec![1, 2, 3, 4],
            }],
        };
        let mut page = vec![0u8; 16];
        d.apply(&mut page);
    }

    #[test]
    fn wire_roundtrip() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[3] = 1;
        cur[60] = 2;
        let rec = DiffRecord {
            node: 1,
            page: 42,
            first: 3,
            last: 5,
            vc: vc2(5, 2),
            diff: Diff::create(&twin, &cur),
        };
        let back = DiffRecord::from_wire(&rec.to_wire()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn sort_causally_orders_dominated_first() {
        let early = DiffRecord {
            node: 0,
            page: 0,
            first: 1,
            last: 1,
            vc: vc2(1, 0),
            diff: Diff::default(),
        };
        let late = DiffRecord {
            node: 1,
            page: 0,
            first: 1,
            last: 1,
            vc: vc2(1, 1), // saw node 0's interval, then wrote
            diff: Diff::default(),
        };
        let mut v = vec![late.clone(), early.clone()];
        sort_causally(&mut v);
        assert_eq!(v[0], early);
        assert_eq!(v[1], late);
    }

    #[test]
    fn causally_later_diff_wins() {
        // Node 0 writes byte 0 = 1 (interval vc [1,0]); node 1, having seen
        // it, writes byte 0 = 2 (vc [1,1]). Applying in sorted order must
        // leave 2.
        let base = vec![0u8; 8];
        let mut v1 = base.clone();
        v1[0] = 1;
        let mut v2 = base.clone();
        v2[0] = 2;
        let mut records = vec![
            DiffRecord {
                node: 1,
                page: 0,
                first: 1,
                last: 1,
                vc: vc2(1, 1),
                diff: Diff::create(&base, &v2),
            },
            DiffRecord {
                node: 0,
                page: 0,
                first: 1,
                last: 1,
                vc: vc2(1, 0),
                diff: Diff::create(&base, &v1),
            },
        ];
        sort_causally(&mut records);
        let mut page = base;
        for r in &records {
            r.diff.apply(&mut page);
        }
        assert_eq!(page[0], 2);
    }
}
