//! Configuration for the LRC engine.

use crate::region::RegionSpec;

/// Which node owns (pins a copy of, and answers full-page requests for)
/// each page of the coherent region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOwnership {
    /// One node owns every page — natural when that node initializes all
    /// shared data (the paper's applications initialize on node 0).
    SingleOwner(u32),
    /// Pages are split into contiguous bands, one per node — natural for
    /// band-partitioned grids, avoiding a cold-start stampede to node 0.
    Banded,
}

/// Static parameters of a node's coherent shared-memory region.
#[derive(Debug, Clone)]
pub struct LrcConfig {
    /// Number of nodes in the cluster.
    pub n_nodes: usize,
    /// Page size in bytes. The paper's testbed (Alpha AXP under OSF/1) used
    /// 8 KiB virtual-memory pages; tests often use smaller pages to force
    /// interesting sharing patterns.
    pub page_size: usize,
    /// Total size of the coherent shared region in bytes (rounded up to a
    /// whole number of pages).
    pub region_bytes: usize,
    /// Garbage-collect consistency records (intervals + diffs) once their
    /// total count exceeds this threshold (see §5.2: "when the free space
    /// for system structures falls below a threshold, a global garbage
    /// collection is performed").
    pub gc_threshold_records: usize,
    /// Page-ownership policy.
    pub ownership: PageOwnership,
    /// Variable-granularity coherence hints: address ranges whose coherence
    /// unit differs from `page_size`. Empty (the default) means the whole
    /// region uses `page_size` granules, bit-for-bit as before the region
    /// table existed. See [`crate::region::GranuleMap`].
    pub regions: Vec<RegionSpec>,
}

impl LrcConfig {
    /// A configuration matching the paper's testbed geometry.
    #[must_use]
    pub fn osdi94(n_nodes: usize, region_bytes: usize) -> Self {
        Self {
            n_nodes,
            page_size: 8192,
            region_bytes,
            gc_threshold_records: 12_000,
            ownership: PageOwnership::SingleOwner(0),
            regions: Vec::new(),
        }
    }

    /// A small geometry for unit tests: tiny pages force multi-page data
    /// structures and false sharing with little data.
    #[must_use]
    pub fn small_test(n_nodes: usize) -> Self {
        Self {
            n_nodes,
            page_size: 64,
            region_bytes: 64 * 64,
            gc_threshold_records: 1_000_000,
            ownership: PageOwnership::SingleOwner(0),
            regions: Vec::new(),
        }
    }

    /// Number of pages in the region.
    #[must_use]
    pub fn n_pages(&self) -> usize {
        self.region_bytes.div_ceil(self.page_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_count_rounds_up() {
        let c = LrcConfig {
            n_nodes: 2,
            page_size: 100,
            region_bytes: 250,
            gc_threshold_records: 10,
            ownership: PageOwnership::SingleOwner(0),
            regions: Vec::new(),
        };
        assert_eq!(c.n_pages(), 3);
    }

    #[test]
    fn osdi94_uses_alpha_pages() {
        let c = LrcConfig::osdi94(4, 1 << 20);
        assert_eq!(c.page_size, 8192);
        assert_eq!(c.n_pages(), 128);
    }
}
