//! The software page table.
//!
//! The paper detects modifications with `mprotect` and a `SIGSEGV` handler.
//! This reproduction substitutes a software page table: every shared-memory
//! access goes through the engine, which checks the page state and runs the
//! identical fault paths (twin creation on write faults; diff/page fetches
//! on access to invalid pages). See `DESIGN.md` §1 for the substitution
//! rationale.

use crate::vc::Vc;

/// Page identifier within the coherent region (0-based, dense).
pub type PageId = u32;

/// Access state of one page on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// No local copy of the data: a full page must be fetched.
    Missing,
    /// A local copy exists but remote write notices have not been applied;
    /// the missing diffs must be fetched before any access.
    Invalid,
    /// Clean and protected: reads proceed, the first write faults and
    /// creates a twin.
    ReadOnly,
    /// Write-enabled with a twin recording the pre-modification contents.
    ReadWrite,
}

/// Per-node, per-page protocol bookkeeping.
#[derive(Debug, Clone)]
pub struct PageMeta {
    /// Current access state.
    pub state: PageState,
    /// Local copy of the page contents (empty iff `Missing`).
    pub data: Vec<u8>,
    /// Pre-modification copy, present iff `ReadWrite`.
    pub twin: Option<Vec<u8>>,
    /// `applied[q]` = highest interval index of node `q` whose modifications
    /// to this page are reflected in `data`.
    pub applied: Vc,
    /// `max_notice[q]` = highest interval index of node `q` for which a
    /// write notice naming this page has been seen. The page is up to date
    /// when `applied` dominates `max_notice`.
    pub max_notice: Vc,
    /// Highest *own* interval index whose modifications to this page have
    /// been captured in a created diff. Own modifications newer than this
    /// live only in the twin/data pair.
    pub own_covered: u32,
}

impl PageMeta {
    /// A page with no local copy.
    #[must_use]
    pub fn missing(n_nodes: usize) -> Self {
        Self {
            state: PageState::Missing,
            data: Vec::new(),
            twin: None,
            applied: Vc::new(n_nodes),
            max_notice: Vc::new(n_nodes),
            own_covered: 0,
        }
    }

    /// A valid zero-filled page (the initial state on the page's owner).
    #[must_use]
    pub fn zeroed(n_nodes: usize, page_size: usize) -> Self {
        Self {
            state: PageState::ReadOnly,
            data: vec![0; page_size],
            twin: None,
            applied: Vc::new(n_nodes),
            max_notice: Vc::new(n_nodes),
            own_covered: 0,
        }
    }

    /// True when every known write notice has been applied to `data`.
    #[must_use]
    pub fn up_to_date(&self) -> bool {
        self.applied.dominates(&self.max_notice)
    }

    /// True when the page holds local modifications not yet captured in a
    /// diff (i.e. a twin exists).
    #[must_use]
    pub fn dirty(&self) -> bool {
        self.twin.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_page_has_no_data() {
        let p = PageMeta::missing(3);
        assert_eq!(p.state, PageState::Missing);
        assert!(p.data.is_empty());
        assert!(!p.dirty());
        assert!(p.up_to_date());
    }

    #[test]
    fn zeroed_page_is_readonly() {
        let p = PageMeta::zeroed(2, 128);
        assert_eq!(p.state, PageState::ReadOnly);
        assert_eq!(p.data.len(), 128);
        assert!(p.data.iter().all(|&b| b == 0));
    }

    #[test]
    fn up_to_date_tracks_notices() {
        let mut p = PageMeta::zeroed(2, 16);
        assert!(p.up_to_date());
        p.max_notice.set(1, 3);
        assert!(!p.up_to_date());
        p.applied.set(1, 3);
        assert!(p.up_to_date());
    }
}
