//! Property-based tests for the LRC substrate.

use carlos_lrc::{Demand, Diff, LrcConfig, LrcEngine, Vc};
use carlos_util::codec::Wire;
use proptest::prelude::*;

fn satisfy(engines: &mut [LrcEngine], node: usize, demands: Vec<Demand>) {
    for d in demands {
        match d {
            Demand::Diffs {
                to,
                page,
                after,
                through,
            } => {
                let recs = engines[to as usize].serve_diffs(page, after, through);
                engines[node].apply_diff_records(page, recs);
            }
            Demand::Page { to, page } => {
                let (data, applied) = engines[to as usize].serve_page(page);
                engines[node].install_page(page, data, applied);
            }
        }
    }
}

fn resolve_write(engines: &mut [LrcEngine], node: usize, addr: usize, data: &[u8]) {
    loop {
        match engines[node].write(addr, data) {
            Ok(()) => return,
            Err(d) => satisfy(engines, node, d),
        }
    }
}

fn resolve_read(engines: &mut [LrcEngine], node: usize, addr: usize, buf: &mut [u8]) {
    loop {
        match engines[node].read(addr, buf) {
            Ok(()) => return,
            Err(d) => satisfy(engines, node, d),
        }
    }
}

fn sync_release(engines: &mut [LrcEngine], from: usize, to: usize) {
    engines[from].close_interval();
    let have = engines[to].vt().clone();
    let records = engines[from].records_newer_than(&have);
    engines[to].close_interval();
    engines[to].apply_records(&records);
}

proptest! {
    #[test]
    fn diff_roundtrip(twin in proptest::collection::vec(any::<u8>(), 128),
                      edits in proptest::collection::vec((0usize..128, any::<u8>()), 0..40)) {
        let mut cur = twin.clone();
        for (i, v) in edits {
            cur[i] = v;
        }
        let d = Diff::create(&twin, &cur);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        prop_assert_eq!(rebuilt, cur);
        // Modified byte count never exceeds the edit count upper bound.
        prop_assert!(d.modified_bytes() <= 128);
    }

    /// The word-level scanner is an exact drop-in for the retained naive
    /// byte scanner: identical runs on random pages of *unaligned* lengths
    /// (the SWAR loop's boundary-word handling is the risky part).
    #[test]
    fn word_diff_equals_naive_reference(
        len in 0usize..200,
        edits in proptest::collection::vec((0usize..200, any::<u8>()), 0..64),
    ) {
        let twin: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
        let mut cur = twin.clone();
        for (i, v) in edits {
            if len > 0 {
                cur[i % len] = v;
            }
        }
        let word = Diff::create(&twin, &cur);
        let naive = Diff::create_naive(&twin, &cur);
        prop_assert_eq!(word, naive);
    }

    /// Degenerate dirtiness extremes at word-multiple and odd sizes.
    #[test]
    fn word_diff_equals_naive_at_extremes(len in 1usize..96, flip in any::<bool>()) {
        let twin = vec![0xA5u8; len];
        let cur = if flip { vec![0x5Au8; len] } else { twin.clone() };
        let word = Diff::create(&twin, &cur);
        let naive = Diff::create_naive(&twin, &cur);
        prop_assert_eq!(&word, &naive);
        prop_assert_eq!(word.modified_bytes(), if flip { len } else { 0 });
    }

    /// Diffing at the variable-coherence granule sizes (sub-page 64 B and
    /// 256 B fine granules, 1 MiB bulk granules): create/apply roundtrips
    /// and the word scanner still matches the naive reference exactly.
    /// Granules are always powers of two, so unlike
    /// `word_diff_equals_naive_reference` these lengths never exercise the
    /// odd-tail path — what they add is coverage of whole-buffer scans far
    /// from the 8 KiB page the rest of the suite uses.
    #[test]
    fn granule_sized_diffs_match_naive(
        size_sel in 0usize..3,
        edits in proptest::collection::vec((any::<usize>(), any::<u8>()), 0..48),
        seed in any::<u64>(),
    ) {
        let len = [64usize, 256, 1 << 20][size_sel];
        let mut rng = carlos_util::rng::Xoshiro256::new(seed | 1);
        let twin: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let mut cur = twin.clone();
        for (i, v) in edits {
            cur[i % len] = v;
        }
        let word = Diff::create(&twin, &cur);
        let naive = Diff::create_naive(&twin, &cur);
        prop_assert_eq!(&word, &naive, "scanners diverged at {} B granule", len);
        let mut rebuilt = twin.clone();
        word.apply(&mut rebuilt);
        prop_assert_eq!(rebuilt, cur);
    }

    #[test]
    fn diff_wire_roundtrip(twin in proptest::collection::vec(any::<u8>(), 64),
                           edits in proptest::collection::vec((0usize..64, any::<u8>()), 0..20)) {
        let mut cur = twin.clone();
        for (i, v) in edits {
            cur[i] = v;
        }
        let d = Diff::create(&twin, &cur);
        let back = Diff::from_wire(&d.to_wire()).unwrap();
        prop_assert_eq!(back, d);
    }

    #[test]
    fn vc_lattice_laws(a in proptest::collection::vec(0u32..100, 4),
                       b in proptest::collection::vec(0u32..100, 4)) {
        let mut va = Vc::new(4);
        let mut vb = Vc::new(4);
        for i in 0..4 {
            va.set(i as u32, a[i]);
            vb.set(i as u32, b[i]);
        }
        // Join is an upper bound of both.
        let mut j = va.clone();
        j.join(&vb);
        prop_assert!(j.dominates(&va));
        prop_assert!(j.dominates(&vb));
        // Join is commutative.
        let mut j2 = vb.clone();
        j2.join(&va);
        prop_assert_eq!(&j, &j2);
        // Join is idempotent.
        let mut j3 = j.clone();
        j3.join(&j);
        prop_assert_eq!(&j3, &j);
        // Domination is antisymmetric up to equality.
        if va.dominates(&vb) && vb.dominates(&va) {
            prop_assert_eq!(&va, &vb);
        }
        // sum() is a monotone witness.
        if va.dominates(&vb) {
            prop_assert!(va.sum() >= vb.sum());
        }
    }

    /// Data-race-free fuzz: each node owns a disjoint byte range and writes
    /// random values into it with random interleavings of release pairs.
    /// After a closing all-to-all synchronization, every node must read
    /// every writer's final values.
    #[test]
    fn drf_runs_converge(ops in proptest::collection::vec((0usize..3, 0usize..48, any::<u8>(), 0usize..3), 1..60)) {
        let n = 3usize;
        let cfg = LrcConfig::small_test(n);
        let region = cfg.region_bytes;
        let slice = region / n;
        let mut engines: Vec<LrcEngine> =
            (0..n as u32).map(|i| LrcEngine::new(i, cfg.clone())).collect();
        let mut expected = vec![0u8; region];

        for (node, off, val, peer) in ops {
            let addr = node * slice + (off % slice);
            resolve_write(&mut engines, node, addr, &[val]);
            expected[addr] = val;
            if peer != node {
                sync_release(&mut engines, node, peer);
            }
        }
        // Closing synchronization: two all-to-all rounds make everyone
        // cover everyone (round one may create new intervals on acquirers).
        for _round in 0..2 {
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        sync_release(&mut engines, a, b);
                    }
                }
            }
        }
        for node in 0..n {
            let mut buf = vec![0u8; region];
            resolve_read(&mut engines, node, 0, &mut buf);
            prop_assert_eq!(&buf, &expected, "node {} diverged", node);
        }
    }

    /// The release/acquire pair always leaves the acquirer's timestamp
    /// covering the releaser's, regardless of history.
    #[test]
    fn release_always_covers(ops in proptest::collection::vec((0usize..3, 0usize..3, 0usize..64, any::<u8>()), 1..40)) {
        let n = 3usize;
        let cfg = LrcConfig::small_test(n);
        let mut engines: Vec<LrcEngine> =
            (0..n as u32).map(|i| LrcEngine::new(i, cfg.clone())).collect();
        for (from, to, addr_seed, val) in ops {
            let slice = cfg.region_bytes / n;
            let addr = from * slice + (addr_seed % slice);
            resolve_write(&mut engines, from, addr, &[val]);
            if from != to {
                sync_release(&mut engines, from, to);
                let vt_from = engines[from].vt().clone();
                prop_assert!(engines[to].vt().dominates(&vt_from));
            }
        }
    }
}

/// The region table rejects every non-power-of-two granule (and the
/// power-of-two ones below the 8-byte floor), whatever the rest of the
/// spec looks like — hints can degrade a run but never mis-map addresses.
mod granule_validation {
    use super::*;
    use carlos_lrc::region::{GranuleMap, RegionSpec};

    proptest! {
        #[test]
        fn non_pow2_granules_are_rejected(raw in 8usize..100_000, len in 1usize..4096) {
            // Nudge powers of two off by one; n and n+1 are never both
            // powers of two for n >= 8.
            let granule = if raw.is_power_of_two() { raw + 1 } else { raw };
            let spec = RegionSpec::new(0, len, granule);
            let r = GranuleMap::try_new(1 << 20, 8192, &[spec]);
            prop_assert!(r.is_err(), "granule {} must be rejected", granule);
        }

        #[test]
        fn sub_floor_granules_are_rejected(shift in 0u32..3, len in 1usize..4096) {
            // Powers of two below the 8-byte floor (1, 2, 4) are invalid too.
            let spec = RegionSpec::new(0, len, 1usize << shift);
            prop_assert!(GranuleMap::try_new(1 << 20, 8192, &[spec]).is_err());
        }

        #[test]
        fn pow2_granules_are_accepted(shift in 3u32..17, len in 1usize..4096) {
            let granule = 1usize << shift;
            let spec = RegionSpec::new(0, len, granule);
            let m = GranuleMap::try_new(1 << 20, 8192, &[spec]);
            prop_assert!(m.is_ok());
            let m = m.unwrap();
            prop_assert!(m.hinted() || granule == 8192);
            prop_assert_eq!(m.granule_len(0), granule);
        }
    }
}

/// Reference implementation of the interval-store suffix scans: the
/// historical full-store linear walk. The optimized per-node range scans
/// must return byte-identical output (same records, same order) for any
/// store contents and any `have`/`through` clocks.
mod interval_scan_equivalence {
    use super::*;
    use carlos_lrc::interval::{IntervalRecord, IntervalStore};

    fn linear_newer_than(s: &IntervalStore, have: &Vc) -> Vec<IntervalRecord> {
        let mut out = Vec::new();
        for node in 0..64u32 {
            for idx in 1..=80u32 {
                if let Some(r) = s.get(node, idx) {
                    if r.index > have.get(r.node) {
                        out.push(r.clone());
                    }
                }
            }
        }
        out
    }

    fn linear_newer_than_bounded(
        s: &IntervalStore,
        have: &Vc,
        through: &Vc,
    ) -> Vec<IntervalRecord> {
        linear_newer_than(s, have)
            .into_iter()
            .filter(|r| r.index <= through.get(r.node))
            .collect()
    }

    proptest! {
        #[test]
        fn range_scan_matches_linear_scan(
            recs in proptest::collection::vec((0u32..6, 1u32..80), 0..120),
            have_raw in proptest::collection::vec(0u32..90, 6),
            through_raw in proptest::collection::vec(0u32..90, 6),
        ) {
            let mut store = IntervalStore::new();
            for &(node, index) in &recs {
                let mut vc = Vc::new(6);
                vc.set(node, index);
                store.insert(IntervalRecord { node, index, vc, pages: vec![node + index] });
            }
            let mut have = Vc::new(6);
            let mut through = Vc::new(6);
            for (i, (&h, &t)) in have_raw.iter().zip(&through_raw).enumerate() {
                have.set(i as u32, h);
                through.set(i as u32, t);
            }
            prop_assert_eq!(store.newer_than(&have), linear_newer_than(&store, &have));
            prop_assert_eq!(
                store.newer_than_bounded(&have, &through),
                linear_newer_than_bounded(&store, &have, &through)
            );
        }
    }
}
