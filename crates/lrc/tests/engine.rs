//! Protocol tests that drive several `LrcEngine`s by hand, playing the role
//! of the messaging layer: demands are satisfied by calling the serving
//! engine directly.

use carlos_lrc::{Demand, LrcConfig, LrcEngine, PageState, Vc};

/// Satisfies every outstanding demand for `node` against the other engines,
/// looping until the access succeeds. Returns the number of demands served.
fn resolve_read(engines: &mut [LrcEngine], node: usize, addr: usize, buf: &mut [u8]) -> usize {
    let mut served = 0;
    loop {
        let r = engines[node].read(addr, buf);
        match r {
            Ok(()) => return served,
            Err(demands) => {
                served += demands.len();
                satisfy(engines, node, demands);
            }
        }
    }
}

fn resolve_write(engines: &mut [LrcEngine], node: usize, addr: usize, data: &[u8]) -> usize {
    let mut served = 0;
    loop {
        match engines[node].write(addr, data) {
            Ok(()) => return served,
            Err(demands) => {
                served += demands.len();
                satisfy(engines, node, demands);
            }
        }
    }
}

fn satisfy(engines: &mut [LrcEngine], node: usize, demands: Vec<Demand>) {
    for d in demands {
        match d {
            Demand::Diffs {
                to,
                page,
                after,
                through,
            } => {
                let recs = engines[to as usize].serve_diffs(page, after, through);
                engines[node].apply_diff_records(page, recs);
            }
            Demand::Page { to, page } => {
                let (data, applied) = engines[to as usize].serve_page(page);
                engines[node].install_page(page, data, applied);
            }
        }
    }
}

/// Performs the release side on `from` and the acquire side on `to`,
/// shipping exactly the records the receiver lacks (a RELEASE message).
fn sync_release(engines: &mut [LrcEngine], from: usize, to: usize) {
    engines[from].close_interval();
    let have = engines[to].vt().clone();
    let records = engines[from].records_newer_than(&have);
    engines[to].close_interval();
    engines[to].apply_records(&records);
    assert!(
        engines[to].vt().dominates(engines[from].vt()),
        "acquirer must cover releaser after a full RELEASE"
    );
}

fn cluster(n: usize) -> Vec<LrcEngine> {
    let cfg = LrcConfig::small_test(n);
    (0..n as u32).map(|i| LrcEngine::new(i, cfg.clone())).collect()
}

#[test]
fn local_read_write_roundtrip() {
    let mut e = cluster(1);
    resolve_write(&mut e, 0, 10, &[1, 2, 3]);
    let mut buf = [0u8; 3];
    resolve_read(&mut e, 0, 10, &mut buf);
    assert_eq!(buf, [1, 2, 3]);
}

#[test]
fn write_fault_creates_twin_once() {
    let mut e = cluster(1);
    resolve_write(&mut e, 0, 0, &[9]);
    assert_eq!(e[0].stats().write_faults, 1);
    resolve_write(&mut e, 0, 1, &[8]); // Same page: no second fault.
    assert_eq!(e[0].stats().write_faults, 1);
    assert_eq!(e[0].page_state(0), PageState::ReadWrite);
}

#[test]
fn remote_node_faults_in_page_from_owner() {
    let mut e = cluster(2);
    resolve_write(&mut e, 0, 0, &[42]);
    // Node 1 has no copy: first read must demand the page.
    let mut buf = [0u8; 1];
    let r = e[1].read(0, &mut buf);
    let demands = r.expect_err("node 1 should fault");
    assert!(matches!(demands[0], Demand::Page { to: 0, .. }));
    satisfy(&mut e, 1, demands);
    e[1].read(0, &mut buf).expect("valid after install");
    assert_eq!(buf[0], 42);
}

#[test]
fn release_acquire_propagates_value() {
    let mut e = cluster(2);
    resolve_write(&mut e, 0, 100, &[7]);
    // Warm node 1's copy so we exercise the diff path, not the page path.
    let mut buf = [0u8; 1];
    resolve_read(&mut e, 1, 0, &mut buf);
    // Node 0 writes under "a lock", then releases to node 1.
    resolve_write(&mut e, 0, 0, &[55]);
    sync_release(&mut e, 0, 1);
    // Node 1's page is invalidated; the read faults and fetches diffs.
    assert_eq!(e[1].page_state(0), PageState::Invalid);
    let served = resolve_read(&mut e, 1, 0, &mut buf);
    assert_eq!(buf[0], 55);
    assert!(served >= 1, "a diff fetch must have happened");
    assert!(e[0].stats().diffs_created >= 1);
    assert!(e[1].stats().diffs_applied >= 1);
}

#[test]
fn no_invalidation_without_release() {
    let mut e = cluster(2);
    let mut buf = [0u8; 1];
    resolve_read(&mut e, 1, 0, &mut buf); // Node 1 caches page 0.
    resolve_write(&mut e, 0, 0, &[9]); // Node 0 dirties it, no release.
    e[1].read(0, &mut buf).expect("no notice, still valid");
    assert_eq!(buf[0], 0, "stale read allowed before synchronization");
}

#[test]
fn transitive_consistency_through_chain() {
    // 0 writes x; 0 -> 1 release; 1 -> 2 release. Node 2 must see x even
    // though it never synchronized with 0 directly (transitivity of ->).
    let mut e = cluster(3);
    let mut buf = [0u8; 1];
    resolve_read(&mut e, 2, 0, &mut buf); // Warm node 2's copy.
    resolve_write(&mut e, 0, 0, &[11]);
    sync_release(&mut e, 0, 1);
    sync_release(&mut e, 1, 2);
    let _ = resolve_read(&mut e, 2, 0, &mut buf);
    assert_eq!(buf[0], 11, "transitive propagation failed");
}

#[test]
fn multiple_writer_merge_on_one_page() {
    // Nodes 1 and 2 concurrently write disjoint bytes of page 0 (classic
    // false sharing); node 0 acquires from both and must see both writes.
    let mut e = cluster(3);
    let mut buf = [0u8; 2];
    resolve_write(&mut e, 1, 0, &[1]);
    resolve_write(&mut e, 2, 1, &[2]);
    sync_release(&mut e, 1, 0);
    sync_release(&mut e, 2, 0);
    resolve_read(&mut e, 0, 0, &mut buf);
    assert_eq!(buf, [1, 2], "multiple-writer diffs must merge");
}

#[test]
fn causally_ordered_writes_last_writer_wins() {
    // 0 writes x=1, releases to 1; 1 overwrites x=2, releases to 2.
    // 2 must read 2, not 1 (diff application order respects causality).
    let mut e = cluster(3);
    let mut buf = [0u8; 1];
    resolve_read(&mut e, 2, 0, &mut buf);
    resolve_write(&mut e, 0, 0, &[1]);
    sync_release(&mut e, 0, 1);
    let _ = resolve_read(&mut e, 1, 0, &mut buf); // 1 fetches 0's diff.
    resolve_write(&mut e, 1, 0, &[2]);
    sync_release(&mut e, 1, 2);
    resolve_read(&mut e, 2, 0, &mut buf);
    assert_eq!(buf[0], 2, "causally later write must win");
}

#[test]
fn eager_capture_is_per_interval() {
    // Each interval's diff is captured at the close that announces it, so
    // every record covers exactly one interval and carries its timestamp
    // (the property that makes cross-writer causal ordering sound). The
    // page is re-protected at each close: post-close writes fault again
    // and land in the next interval.
    let mut e = cluster(2);
    resolve_write(&mut e, 0, 0, &[1]);
    e[0].close_interval();
    assert_eq!(e[0].stats().diffs_created, 1);
    assert_eq!(e[0].page_state(0), PageState::ReadOnly, "re-protected");
    resolve_write(&mut e, 0, 1, &[2]); // Faults again: next interval.
    assert_eq!(e[0].stats().write_faults, 2);
    e[0].close_interval();
    let recs = e[0].serve_diffs(0, 0, 2);
    assert_eq!(recs.len(), 2, "one record per interval");
    assert_eq!((recs[0].first, recs[0].last), (1, 1));
    assert_eq!((recs[1].first, recs[1].last), (2, 2));
    assert_eq!(recs[0].vc.get(0), 1);
    assert_eq!(recs[1].vc.get(0), 2);
    // Applying both in order reconstructs the page.
    let mut page = vec![0u8; 64];
    for r in &recs {
        r.diff.apply(&mut page);
    }
    assert_eq!((page[0], page[1]), (1, 2));
}

#[test]
fn write_notice_on_dirty_page_captures_diff_first() {
    // Node 1 has local dirty data on page 0 when a notice arrives; its own
    // modifications must survive invalidation and subsequent validation.
    let mut e = cluster(2);
    let mut buf = [0u8; 2];
    resolve_read(&mut e, 1, 0, &mut buf);
    resolve_write(&mut e, 1, 1, &[77]); // Node 1's own write (byte 1).
    resolve_write(&mut e, 0, 0, &[66]); // Node 0 writes byte 0.
    sync_release(&mut e, 0, 1); // Notice for page 0 hits node 1.
    resolve_read(&mut e, 1, 0, &mut buf);
    assert_eq!(buf, [66, 77], "own modification lost or remote one missed");
}

#[test]
fn page_spanning_access() {
    // With 64-byte pages, a 100-byte write spans two pages.
    let mut e = cluster(2);
    let data: Vec<u8> = (0..100).map(|i| i as u8).collect();
    resolve_write(&mut e, 0, 30, &data);
    sync_release(&mut e, 0, 1);
    let mut buf = vec![0u8; 100];
    resolve_read(&mut e, 1, 30, &mut buf);
    assert_eq!(buf, data);
}

#[test]
fn release_nt_payload_contains_only_own_records() {
    let mut e = cluster(3);
    resolve_write(&mut e, 0, 0, &[1]);
    sync_release(&mut e, 0, 1); // Node 1 now stores node 0's record.
    resolve_write(&mut e, 1, 64, &[2]);
    e[1].close_interval();
    let have = Vc::new(3);
    let own = e[1].own_records_newer_than(&have);
    assert!(own.iter().all(|r| r.node == 1), "NT payload leaked records");
    assert_eq!(own.len(), 1);
    let full = e[1].records_newer_than(&have);
    assert_eq!(full.len(), 2, "full payload carries both");
}

#[test]
fn gap_detection_and_repair() {
    // Simulates a RELEASE_NT arriving with a causal gap: node 2 gets node
    // 1's records but not node 0's, detects non-domination, and repairs by
    // fetching the missing range.
    let mut e = cluster(3);
    resolve_write(&mut e, 0, 0, &[1]);
    sync_release(&mut e, 0, 1);
    resolve_write(&mut e, 1, 64, &[2]);
    e[1].close_interval();
    let required = e[1].vt().clone();
    // Non-transitive payload only.
    let have0 = Vc::new(3);
    let nt = e[1].own_records_newer_than(&have0);
    e[2].apply_records(&nt);
    assert!(
        !e[2].vt().dominates(&required),
        "gap must be visible in the timestamp"
    );
    // Repair: ask the original sender for the difference.
    let missing = e[1].records_between(&e[2].vt().clone(), &required);
    assert!(!missing.is_empty());
    e[2].apply_records(&missing);
    assert!(e[2].vt().dominates(&required), "repair failed");
}

#[test]
fn apply_records_skips_gapped_and_duplicate() {
    let mut e = cluster(2);
    resolve_write(&mut e, 0, 0, &[1]);
    e[0].close_interval();
    resolve_write(&mut e, 0, 64, &[2]);
    e[0].close_interval();
    resolve_write(&mut e, 0, 128, &[3]);
    e[0].close_interval();
    let all = e[0].records_newer_than(&Vc::new(2));
    assert_eq!(all.len(), 3);
    // Deliver only record #2: gapped, must not apply.
    let second = all.iter().find(|r| r.index == 2).unwrap().clone();
    assert_eq!(e[1].apply_records(std::slice::from_ref(&second)), 0);
    assert_eq!(e[1].vt().get(0), 0);
    // Deliver 1 and 2 (2 duplicated): both apply once.
    let first = all.iter().find(|r| r.index == 1).unwrap().clone();
    assert_eq!(
        e[1].apply_records(&[second.clone(), first, second.clone()]),
        2
    );
    assert_eq!(e[1].vt().get(0), 2);
}

#[test]
fn gc_cycle_resets_records_and_preserves_data() {
    let mut e = cluster(2);
    let mut buf = [0u8; 1];
    resolve_read(&mut e, 1, 0, &mut buf);
    for round in 0..5u8 {
        resolve_write(&mut e, 0, 0, &[round]);
        sync_release(&mut e, 0, 1);
        resolve_read(&mut e, 1, 0, &mut buf);
        assert_eq!(buf[0], round);
    }
    assert!(e[0].record_count() > 0);
    // Phase 1 of GC: equalize timestamps (here: both already equal after
    // the last acquire; node 0 must also cover node 1, which wrote nothing).
    assert!(e[0].vt().dominates(e[1].vt()) || e[1].vt().dominates(e[0].vt()));
    let records = e[1].records_newer_than(&e[0].vt().clone());
    e[0].apply_records(&records);
    // Phase 2: validate all pages everywhere.
    for node in 0..2 {
        let demands = e[node].gc_validate_demands();
        satisfy(&mut e, node, demands);
    }
    // Phase 3: discard.
    e[0].gc_discard();
    e[1].gc_discard();
    assert_eq!(e[0].record_count(), 0);
    assert_eq!(e[1].record_count(), 0);
    // Data survives and the protocol still works.
    resolve_read(&mut e, 1, 0, &mut buf);
    assert_eq!(buf[0], 4);
    resolve_write(&mut e, 0, 0, &[99]);
    sync_release(&mut e, 0, 1);
    resolve_read(&mut e, 1, 0, &mut buf);
    assert_eq!(buf[0], 99);
}

#[test]
fn empty_interval_not_created() {
    let mut e = cluster(2);
    assert!(e[0].close_interval().is_none());
    assert_eq!(e[0].vt().get(0), 0);
    resolve_write(&mut e, 0, 0, &[1]);
    assert!(e[0].close_interval().is_some());
    assert!(e[0].close_interval().is_none(), "nothing new to announce");
    assert_eq!(e[0].vt().get(0), 1);
}

#[test]
fn serving_page_from_invalid_owner_copy_is_repaired_by_diffs() {
    // Node 1 writes page 0 and releases to owner 0, which does NOT fault
    // the page in (stays invalid). Node 2 then fetches the page from the
    // owner and must end up needing node 1's diff.
    let mut e = cluster(3);
    let mut buf = [0u8; 1];
    resolve_write(&mut e, 1, 0, &[123]);
    sync_release(&mut e, 1, 0);
    assert_eq!(e[0].page_state(0), PageState::Invalid);
    // Node 2 learns about node 1's interval too (e.g. via a barrier).
    sync_release(&mut e, 1, 2);
    let served = resolve_read(&mut e, 2, 0, &mut buf);
    assert_eq!(buf[0], 123);
    assert!(served >= 2, "expected page fetch plus diff fetch, got {served}");
}

#[test]
fn interval_vc_snapshot_is_stable() {
    let mut e = cluster(2);
    resolve_write(&mut e, 0, 0, &[1]);
    let rec1 = e[0].close_interval().unwrap();
    resolve_write(&mut e, 0, 64, &[2]);
    let rec2 = e[0].close_interval().unwrap();
    assert_eq!(rec1.vc.get(0), 1);
    assert_eq!(rec2.vc.get(0), 2);
    assert_eq!(rec1.index, 1);
    assert_eq!(rec2.index, 2);
}

#[test]
fn install_then_own_write_not_clobbered_by_merged_diff() {
    // Regression test for a subtle interaction of lazy diffing, page
    // installs, and merged diff records:
    //
    // 1. Node 0 writes page 0 in interval 1 and keeps writing after the
    //    close (folded, unannounced modifications).
    // 2. Node 1 first touches the page and receives a full copy; serving
    //    the copy captures node 0's merged diff (covering 1..=k) and the
    //    install must record that coverage.
    // 3. Node 1 writes its own bytes (causally after, via the sync chain).
    // 4. Node 0 writes *other* bytes in a later interval; node 1 learns the
    //    notice, fetches diffs — and must NOT reapply the merged record
    //    over its own newer writes.
    let mut e = cluster(2);
    // Interval 1: node 0 writes byte 0.
    resolve_write(&mut e, 0, 0, &[10]);
    e[0].close_interval();
    // Intervals 2..3 driven by another page; page 0 stays write-enabled.
    resolve_write(&mut e, 0, 64, &[1]);
    e[0].close_interval();
    // Folded, unannounced write to page 0, byte 5.
    resolve_write(&mut e, 0, 5, &[55]);
    // Bring node 1 up to date record-wise, then install the page.
    sync_release(&mut e, 0, 1);
    let mut b = [0u8; 1];
    resolve_read(&mut e, 1, 5, &mut b);
    assert_eq!(b[0], 55, "install must carry folded bytes");
    // Node 1 now writes byte 5 itself (causally after node 0's write).
    resolve_write(&mut e, 1, 5, &[77]);
    e[1].close_interval();
    // Node 0 writes a different byte of page 0 in a new interval.
    resolve_write(&mut e, 0, 9, &[99]);
    sync_release(&mut e, 0, 1);
    // Node 1 revalidates: must see node 0's new byte AND keep its own.
    resolve_read(&mut e, 1, 9, &mut b);
    assert_eq!(b[0], 99);
    resolve_read(&mut e, 1, 5, &mut b);
    assert_eq!(b[0], 77, "merged diff clobbered a causally-later write");
}
