//! Per-node time accounting and counters.
//!
//! The paper's Figure 2 breaks execution time into `User` (application
//! computation), `Unix` (OSF/1 system calls and the UDP/IP stack), `CarlOS`
//! (message handling and consistency processing), and `Idle` (waiting for
//! remote operations). The simulator charges every nanosecond of each node's
//! existence to exactly one of those buckets.

use std::collections::BTreeMap;

use crate::time::Ns;

/// The four execution-time buckets of the paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// Application computation.
    User,
    /// Operating-system cost: syscalls, UDP/IP protocol stack.
    Unix,
    /// CarlOS message-passing and shared-memory (consistency) overhead.
    Carlos,
    /// Time blocked waiting for remote operations to complete.
    Idle,
}

impl Bucket {
    /// All buckets, in display order.
    pub const ALL: [Bucket; 4] = [Bucket::User, Bucket::Unix, Bucket::Carlos, Bucket::Idle];

    /// Display name matching the paper's figure legend.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Bucket::User => "User",
            Bucket::Unix => "Unix",
            Bucket::Carlos => "CarlOS",
            Bucket::Idle => "Idle",
        }
    }

    fn index(self) -> usize {
        match self {
            Bucket::User => 0,
            Bucket::Unix => 1,
            Bucket::Carlos => 2,
            Bucket::Idle => 3,
        }
    }
}

/// Accumulated time per [`Bucket`] for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBuckets {
    ns: [Ns; 4],
}

impl TimeBuckets {
    /// Adds `dt` to `bucket`.
    pub fn charge(&mut self, bucket: Bucket, dt: Ns) {
        self.ns[bucket.index()] += dt;
    }

    /// Time accumulated in `bucket`.
    #[must_use]
    pub fn get(&self, bucket: Bucket) -> Ns {
        self.ns[bucket.index()]
    }

    /// Sum over all buckets.
    #[must_use]
    pub fn total(&self) -> Ns {
        self.ns.iter().sum()
    }

    /// Merges another node's buckets into this one (for cluster-wide sums).
    pub fn merge(&mut self, other: &TimeBuckets) {
        for i in 0..4 {
            self.ns[i] += other.ns[i];
        }
    }
}

/// Named event counters, used by the protocol layers for statistics the
/// paper reports (diffs created, write notices sent, messages per category).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Adds `v` to the counter `name`.
    pub fn add(&mut self, name: &'static str, v: u64) {
        *self.map.entry(name).or_insert(0) += v;
    }

    /// Current value of `name` (0 if never touched).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

/// Sent/byte tally for one wire frame class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Frames of this class handed to the wire.
    pub sent: u64,
    /// Sum of payload bytes over those frames.
    pub bytes: u64,
}

impl ClassStats {
    fn note(&mut self, bytes: usize) {
        self.sent += 1;
        self.bytes += bytes as u64;
    }

    /// Average payload size in bytes (0 when no frames).
    #[must_use]
    pub fn avg_size(&self) -> u64 {
        self.bytes.checked_div(self.sent).unwrap_or(0)
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &ClassStats) {
        self.sent += other.sent;
        self.bytes += other.bytes;
    }
}

/// Per-frame-class breakdown of everything handed to the wire, keyed by the
/// transport header's kind byte. Raw datagrams shorter than a transport
/// header (and unknown kinds) land in `other`. Every wire frame is counted
/// in exactly one class, so the class sums reconcile with
/// [`NetStats::messages`] / [`NetStats::payload_bytes`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameClasses {
    /// Transport DATA frames (application and protocol payloads).
    pub data: ClassStats,
    /// Transport cumulative ACK frames.
    pub ack: ClassStats,
    /// Transport liveness PING frames.
    pub ping: ClassStats,
    /// Transport liveness PONG frames.
    pub pong: ClassStats,
    /// Frames that carry no recognizable transport header.
    pub other: ClassStats,
}

impl FrameClasses {
    /// Classifies `payload` by its transport kind byte and tallies it.
    pub(crate) fn note(&mut self, payload: &[u8]) {
        // Mirrors the transport framing: 1 kind byte + 4-byte LE sequence.
        // Anything shorter (or with an unknown kind) is not transport
        // traffic and is classified `other`.
        let class = if payload.len() >= 5 {
            match payload[0] {
                0 => &mut self.data,
                1 => &mut self.ack,
                2 => &mut self.ping,
                3 => &mut self.pong,
                _ => &mut self.other,
            }
        } else {
            &mut self.other
        };
        class.note(payload.len());
    }

    /// Total frames across all classes (must equal [`NetStats::messages`]).
    #[must_use]
    pub fn total_sent(&self) -> u64 {
        self.data.sent + self.ack.sent + self.ping.sent + self.pong.sent + self.other.sent
    }

    /// Total payload bytes across all classes (must equal
    /// [`NetStats::payload_bytes`]).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.data.bytes + self.ack.bytes + self.ping.bytes + self.pong.bytes + self.other.bytes
    }

    /// Merges another breakdown into this one (per-node shards -> cluster).
    pub fn merge(&mut self, other: &FrameClasses) {
        self.data.merge(&other.data);
        self.ack.merge(&other.ack);
        self.ping.merge(&other.ping);
        self.pong.merge(&other.pong);
        self.other.merge(&other.other);
    }

    /// Iterates `(class name, stats)` in display order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, ClassStats)> {
        [
            ("data", self.data),
            ("ack", self.ack),
            ("ping", self.ping),
            ("pong", self.pong),
            ("other", self.other),
        ]
        .into_iter()
    }
}

/// Network-level statistics for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Datagrams handed to the wire (including ones later dropped).
    pub messages: u64,
    /// Sum of datagram payload bytes (headers excluded), as the paper counts.
    pub payload_bytes: u64,
    /// Datagrams dropped by loss injection (uniform, burst, and partition
    /// drops all count here; the fault-specific counters below attribute
    /// their shares).
    pub dropped: u64,
    /// Of `dropped`: frames lost to a scripted Gilbert–Elliott burst window.
    pub dropped_burst: u64,
    /// Of `dropped`: frames lost to a scripted link partition.
    pub dropped_partition: u64,
    /// Datagrams discarded because the destination node had fail-stopped
    /// (pending mailbox contents at the crash instant plus later arrivals).
    /// Not part of `dropped`: these frames did traverse the wire.
    pub dropped_crash: u64,
    /// Deliveries deferred because the destination was in a scripted pause.
    pub deferred_pause: u64,
    /// Datagrams actually appended to a destination mailbox (loopback
    /// excluded, matching `messages`).
    pub delivered: u64,
    /// Of `dropped_crash`: datagrams that had already been delivered to the
    /// crashed node's mailbox and were purged at the crash instant. The
    /// remainder of `dropped_crash` arrived after the crash and was never
    /// delivered.
    pub purged_crash: u64,
    /// Datagrams still queued for delivery when the run ended (sent, not
    /// dropped, not yet in any mailbox).
    pub in_flight: u64,
    /// Per-frame-class breakdown of `messages` / `payload_bytes`.
    pub classes: FrameClasses,
}

impl NetStats {
    /// Merges another node's shard into this one. Every field is a plain
    /// sum, so the cluster-wide totals are independent of merge order; the
    /// kernel still merges in node-id order so the operation is bit-for-bit
    /// reproducible by construction, not by accident.
    pub fn merge(&mut self, other: &NetStats) {
        self.messages += other.messages;
        self.payload_bytes += other.payload_bytes;
        self.dropped += other.dropped;
        self.dropped_burst += other.dropped_burst;
        self.dropped_partition += other.dropped_partition;
        self.dropped_crash += other.dropped_crash;
        self.deferred_pause += other.deferred_pause;
        self.delivered += other.delivered;
        self.purged_crash += other.purged_crash;
        self.in_flight += other.in_flight;
        self.classes.merge(&other.classes);
    }

    /// Average datagram payload size in bytes (0 when no messages).
    ///
    /// Mixes every frame class: in ARQ mode the 5-byte ACK/PING/PONG
    /// control frames drag this figure well below the data-frame average.
    /// Use [`NetStats::avg_data_size`] for the paper-comparable number.
    #[must_use]
    pub fn avg_size(&self) -> u64 {
        self.payload_bytes.checked_div(self.messages).unwrap_or(0)
    }

    /// Average payload size of DATA frames only, which is what the paper's
    /// byte-count tables measure (control frames excluded).
    #[must_use]
    pub fn avg_data_size(&self) -> u64 {
        self.classes.data.avg_size()
    }

    /// Network utilization over `elapsed`, computed the paper's way:
    /// payload bits over an ideal `bandwidth_bps` wire, headers excluded.
    #[must_use]
    pub fn utilization(&self, elapsed: Ns, bandwidth_bps: u64) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let bits = self.payload_bytes as f64 * 8.0;
        let secs = elapsed as f64 / 1e9;
        bits / secs / bandwidth_bps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_charge_and_total() {
        let mut b = TimeBuckets::default();
        b.charge(Bucket::User, 100);
        b.charge(Bucket::User, 50);
        b.charge(Bucket::Idle, 25);
        assert_eq!(b.get(Bucket::User), 150);
        assert_eq!(b.get(Bucket::Idle), 25);
        assert_eq!(b.get(Bucket::Unix), 0);
        assert_eq!(b.total(), 175);
    }

    #[test]
    fn buckets_merge() {
        let mut a = TimeBuckets::default();
        a.charge(Bucket::Carlos, 10);
        let mut b = TimeBuckets::default();
        b.charge(Bucket::Carlos, 5);
        b.charge(Bucket::Unix, 7);
        a.merge(&b);
        assert_eq!(a.get(Bucket::Carlos), 15);
        assert_eq!(a.get(Bucket::Unix), 7);
    }

    #[test]
    fn bucket_names() {
        assert_eq!(Bucket::Carlos.name(), "CarlOS");
        assert_eq!(Bucket::ALL.len(), 4);
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::default();
        c.add("diffs", 3);
        c.add("diffs", 2);
        assert_eq!(c.get("diffs"), 5);
        assert_eq!(c.get("absent"), 0);
    }

    #[test]
    fn counters_merge_and_iterate() {
        let mut a = Counters::default();
        a.add("x", 1);
        let mut b = Counters::default();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        let all: Vec<_> = a.iter().collect();
        assert_eq!(all, vec![("x", 3), ("y", 3)]);
    }

    #[test]
    fn frame_classes_classify_and_reconcile() {
        let mut c = FrameClasses::default();
        c.note(&[0, 0, 0, 0, 0, 9, 9, 9]); // DATA, 8 bytes
        c.note(&[1, 0, 0, 0, 0]); // ACK, 5 bytes
        c.note(&[2, 0, 0, 0, 0]); // PING
        c.note(&[3, 0, 0, 0, 0]); // PONG
        c.note(&[7, 0, 0, 0, 0]); // unknown kind -> other
        c.note(&[0, 1, 2]); // too short for a header -> other
        assert_eq!(c.data.sent, 1);
        assert_eq!(c.data.bytes, 8);
        assert_eq!(c.ack.sent, 1);
        assert_eq!(c.ping.sent, 1);
        assert_eq!(c.pong.sent, 1);
        assert_eq!(c.other.sent, 2);
        assert_eq!(c.other.bytes, 8);
        assert_eq!(c.total_sent(), 6);
        assert_eq!(c.total_bytes(), 8 + 5 + 5 + 5 + 5 + 3);
        assert_eq!(c.iter().count(), 5);
    }

    #[test]
    fn avg_data_size_excludes_control_frames() {
        let mut n = NetStats::default();
        n.classes.note(&[0, 0, 0, 0, 0, 1, 2, 3, 4, 5]); // 10-byte DATA
        n.classes.note(&[1, 0, 0, 0, 0]); // 5-byte ACK
        n.messages = 2;
        n.payload_bytes = 15;
        assert_eq!(n.avg_size(), 7); // polluted by the ACK
        assert_eq!(n.avg_data_size(), 10); // what the paper counts
        assert_eq!(ClassStats::default().avg_size(), 0);
    }

    #[test]
    fn netstats_avg_and_utilization() {
        let n = NetStats {
            messages: 4,
            payload_bytes: 1000,
            ..NetStats::default()
        };
        assert_eq!(n.avg_size(), 250);
        // 8000 bits over 1 ms at 10 Mbit/s = 80% utilization.
        let u = n.utilization(1_000_000, 10_000_000);
        assert!((u - 0.8).abs() < 1e-9);
        assert_eq!(NetStats::default().avg_size(), 0);
        assert_eq!(NetStats::default().utilization(0, 1), 0.0);
    }
}
