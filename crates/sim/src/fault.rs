//! Scripted fault injection: deterministic, virtual-time fault schedules.
//!
//! A [`FaultPlan`] is a list of fault windows applied by the kernel's wire
//! model while the simulation runs. Because every fault is triggered by
//! virtual time and every random decision comes from a dedicated seeded
//! stream, the same seed and plan always produce the same run — fault
//! experiments are as reproducible as fault-free ones.
//!
//! Four fault classes are injectable:
//!
//! - **Burst loss** ([`FaultPlan::burst_loss`]): a Gilbert–Elliott two-state
//!   Markov chain gates frame loss inside a time window, producing the
//!   correlated loss bursts real shared media exhibit (collisions, noise
//!   bursts) rather than the i.i.d. loss of `loss_probability`.
//! - **Link partitions** ([`FaultPlan::link_down`] /
//!   [`FaultPlan::partition`]): every frame on a directed link is dropped
//!   until the heal time.
//! - **Node pause** ([`FaultPlan::pause`]): the node stops draining its
//!   mailbox for a duration; deliveries are deferred to the pause end
//!   (in their original order), modeling a long GC pause or scheduling
//!   stall.
//! - **Fail-stop crash** ([`FaultPlan::crash`]): at the scripted instant the
//!   node's procs are terminated, its mailbox is discarded, and all future
//!   deliveries to it are dropped. Nothing is ever delivered *from* a
//!   crashed node again.
//!
//! The plan composes with [`crate::SimConfig::loss_probability`]: the
//! uniform loss draw happens first (from its own `loss_seed` stream), the
//! plan's faults after, so adding an empty plan — or a plan whose windows
//! never overlap traffic — changes nothing about an existing run.

use carlos_util::rng::Xoshiro256;

use crate::time::{NodeId, Ns};

/// Parameters of a Gilbert–Elliott burst-loss chain.
///
/// The chain has a *good* and a *bad* state with independent loss rates;
/// per frame it first draws a state transition, then a loss decision from
/// the current state's rate. High `loss_bad` with sticky transitions
/// (`p_enter_bad`, `p_exit_bad` small) yields long loss bursts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeParams {
    /// Per-frame probability of moving good → bad.
    pub p_enter_bad: f64,
    /// Per-frame probability of moving bad → good.
    pub p_exit_bad: f64,
    /// Frame loss probability while in the good state.
    pub loss_good: f64,
    /// Frame loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GeParams {
    /// A bursty profile: rare entry into a sticky bad state that loses
    /// `loss_bad` of its frames, near-clean otherwise.
    #[must_use]
    pub fn bursty(loss_bad: f64) -> Self {
        Self {
            p_enter_bad: 0.05,
            p_exit_bad: 0.25,
            loss_good: 0.0,
            loss_bad,
        }
    }

    fn validate(&self) {
        for (name, p) in [
            ("p_enter_bad", self.p_enter_bad),
            ("p_exit_bad", self.p_exit_bad),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "GeParams.{name} must be within [0, 1], got {p}"
            );
        }
    }
}

/// One scripted fault. Build these through the [`FaultPlan`] methods.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// Gilbert–Elliott burst loss on the shared wire in `[start, end)`.
    BurstLoss {
        /// Window start (virtual time).
        start: Ns,
        /// Window end (exclusive).
        end: Ns,
        /// Chain parameters.
        ge: GeParams,
    },
    /// Every frame from `src` to `dst` is dropped in `[start, heal)`.
    LinkDown {
        /// Sending side of the dead directed link.
        src: NodeId,
        /// Receiving side.
        dst: NodeId,
        /// Partition start (virtual time).
        start: Ns,
        /// Heal time (exclusive; frames at or after this time pass).
        heal: Ns,
    },
    /// `node` stops draining its mailbox in `[start, end)`; deliveries are
    /// deferred to `end` in arrival order.
    Pause {
        /// Paused node.
        node: NodeId,
        /// Pause start (virtual time).
        start: Ns,
        /// Pause end: deferred datagrams are delivered here.
        end: Ns,
    },
    /// `node` fail-stops at `at`: procs terminate, mailbox and all later
    /// deliveries are discarded.
    Crash {
        /// Crashing node.
        node: NodeId,
        /// Crash instant (virtual time).
        at: Ns,
    },
}

/// A deterministic, virtual-time-scripted schedule of faults.
///
/// The default (empty) plan injects nothing and leaves runs bit-identical
/// to a build without fault support. Attach a plan with
/// [`crate::SimConfig::with_fault_plan`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan whose random faults (burst loss) draw from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            specs: Vec::new(),
        }
    }

    /// True when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The scripted faults, in insertion order.
    #[must_use]
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Adds a Gilbert–Elliott burst-loss window over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or a probability is outside `[0, 1]`.
    #[must_use]
    pub fn burst_loss(mut self, start: Ns, end: Ns, ge: GeParams) -> Self {
        assert!(start <= end, "burst-loss window ends before it starts");
        ge.validate();
        self.specs.push(FaultSpec::BurstLoss { start, end, ge });
        self
    }

    /// Adds a directed link outage: frames `src → dst` are dropped during
    /// `[start, heal)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > heal`.
    #[must_use]
    pub fn link_down(mut self, src: NodeId, dst: NodeId, start: Ns, heal: Ns) -> Self {
        assert!(start <= heal, "link outage heals before it starts");
        self.specs.push(FaultSpec::LinkDown {
            src,
            dst,
            start,
            heal,
        });
        self
    }

    /// Adds a bidirectional partition separating the node sets `a` and `b`
    /// during `[start, heal)` (expands to directed link outages both ways
    /// for every cross pair).
    ///
    /// # Panics
    ///
    /// Panics if `start > heal`.
    #[must_use]
    pub fn partition(mut self, a: &[NodeId], b: &[NodeId], start: Ns, heal: Ns) -> Self {
        for &x in a {
            for &y in b {
                self = self.link_down(x, y, start, heal);
                self = self.link_down(y, x, start, heal);
            }
        }
        self
    }

    /// Adds a mailbox pause of `node` over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    #[must_use]
    pub fn pause(mut self, node: NodeId, start: Ns, end: Ns) -> Self {
        assert!(start <= end, "pause ends before it starts");
        self.specs.push(FaultSpec::Pause { node, start, end });
        self
    }

    /// Adds a fail-stop crash of `node` at virtual time `at`.
    #[must_use]
    pub fn crash(mut self, node: NodeId, at: Ns) -> Self {
        self.specs.push(FaultSpec::Crash { node, at });
        self
    }

    /// The scripted crash instants, in insertion order.
    pub(crate) fn crash_times(&self) -> impl Iterator<Item = (NodeId, Ns)> + '_ {
        self.specs.iter().filter_map(|s| match *s {
            FaultSpec::Crash { node, at } => Some((node, at)),
            _ => None,
        })
    }
}

/// Why the fault layer dropped a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DropCause {
    Burst,
    Partition,
}

/// One live Gilbert–Elliott chain (a burst-loss window during the run).
#[derive(Debug)]
struct GeChain {
    ge: GeParams,
    start: Ns,
    end: Ns,
    bad: bool,
    rng: Xoshiro256,
}

/// Kernel-side runtime state compiled from a [`FaultPlan`].
#[derive(Debug)]
pub(crate) struct FaultState {
    chains: Vec<GeChain>,
    /// `(src, dst, start, heal)` directed outages.
    links: Vec<(NodeId, NodeId, Ns, Ns)>,
    /// `(node, start, end)` mailbox pauses.
    pauses: Vec<(NodeId, Ns, Ns)>,
    crashed: Vec<bool>,
}

impl FaultState {
    /// Compiles `plan` for an `n_nodes` cluster.
    ///
    /// # Panics
    ///
    /// Panics if the plan names a node outside `0..n_nodes`.
    pub fn new(plan: &FaultPlan, n_nodes: usize) -> Self {
        let check = |node: NodeId, what: &str| {
            assert!(
                (node as usize) < n_nodes,
                "fault plan {what} names node {node}, but the cluster has {n_nodes} nodes"
            );
        };
        let mut st = Self {
            chains: Vec::new(),
            links: Vec::new(),
            pauses: Vec::new(),
            crashed: vec![false; n_nodes],
        };
        // Each chain gets its own stream derived from the plan seed and its
        // position, so reordering unrelated specs does not reshuffle loss.
        for (i, spec) in plan.specs.iter().enumerate() {
            match *spec {
                FaultSpec::BurstLoss { start, end, ge } => st.chains.push(GeChain {
                    ge,
                    start,
                    end,
                    bad: false,
                    rng: Xoshiro256::new(plan.seed ^ (0x9E37 + i as u64)),
                }),
                FaultSpec::LinkDown {
                    src,
                    dst,
                    start,
                    heal,
                } => {
                    check(src, "link outage");
                    check(dst, "link outage");
                    st.links.push((src, dst, start, heal));
                }
                FaultSpec::Pause { node, start, end } => {
                    check(node, "pause");
                    st.pauses.push((node, start, end));
                }
                FaultSpec::Crash { node, at } => {
                    check(node, "crash");
                    let _ = at;
                }
            }
        }
        st
    }

    /// Decides the fate of one frame entering the wire at `at`. Advances
    /// every in-window burst chain whether or not another fault already
    /// doomed the frame, so the loss streams depend only on traffic order.
    pub fn frame_fate(&mut self, src: NodeId, dst: NodeId, at: Ns) -> Option<DropCause> {
        let mut burst = false;
        for c in &mut self.chains {
            if at < c.start || at >= c.end {
                continue;
            }
            let flip = if c.bad { c.ge.p_exit_bad } else { c.ge.p_enter_bad };
            if c.rng.next_f64() < flip {
                c.bad = !c.bad;
            }
            let p = if c.bad { c.ge.loss_bad } else { c.ge.loss_good };
            if p > 0.0 && c.rng.next_f64() < p {
                burst = true;
            }
        }
        let partitioned = self
            .links
            .iter()
            .any(|&(s, d, start, heal)| s == src && d == dst && at >= start && at < heal);
        if partitioned {
            Some(DropCause::Partition)
        } else if burst {
            Some(DropCause::Burst)
        } else {
            None
        }
    }

    /// If `node`'s mailbox is paused at `at`, the time the pause ends.
    pub fn pause_until(&self, node: NodeId, at: Ns) -> Option<Ns> {
        self.pauses
            .iter()
            .filter(|&&(n, start, end)| n == node && at >= start && at < end)
            .map(|&(_, _, end)| end)
            .max()
    }

    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node as usize]
    }

    pub fn mark_crashed(&mut self, node: NodeId) {
        self.crashed[node as usize] = true;
    }

    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        self.crashed
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| i as NodeId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let mut st = FaultState::new(&FaultPlan::default(), 4);
        for i in 0..100 {
            assert_eq!(st.frame_fate(0, 1, i * 1000), None);
        }
        assert_eq!(st.pause_until(0, 0), None);
        assert!(st.crashed_nodes().is_empty());
    }

    #[test]
    fn burst_chain_is_deterministic_and_windowed() {
        let plan = FaultPlan::new(42).burst_loss(1_000, 2_000, GeParams::bursty(0.9));
        let fates = |plan: &FaultPlan| {
            let mut st = FaultState::new(plan, 2);
            (0..300u64)
                .map(|i| st.frame_fate(0, 1, i * 10).is_some())
                .collect::<Vec<_>>()
        };
        let a = fates(&plan);
        let b = fates(&plan);
        assert_eq!(a, b, "same seed, same plan, same loss pattern");
        assert!(a[..100].iter().all(|&d| !d), "no loss before the window");
        assert!(a[200..].iter().all(|&d| !d), "no loss after the window");
        assert!(a[100..200].iter().any(|&d| d), "bursty window loses frames");
    }

    #[test]
    fn link_down_is_directed_and_heals() {
        let plan = FaultPlan::new(0).link_down(0, 1, 100, 200);
        let mut st = FaultState::new(&plan, 2);
        assert_eq!(st.frame_fate(0, 1, 50), None);
        assert_eq!(st.frame_fate(0, 1, 150), Some(DropCause::Partition));
        assert_eq!(st.frame_fate(1, 0, 150), None, "reverse direction is up");
        assert_eq!(st.frame_fate(0, 1, 200), None, "healed at the boundary");
    }

    #[test]
    fn partition_expands_both_ways() {
        let plan = FaultPlan::new(0).partition(&[0], &[1, 2], 0, 100);
        let mut st = FaultState::new(&plan, 3);
        assert_eq!(st.frame_fate(0, 2, 10), Some(DropCause::Partition));
        assert_eq!(st.frame_fate(2, 0, 10), Some(DropCause::Partition));
        assert_eq!(st.frame_fate(1, 2, 10), None, "same side stays connected");
    }

    #[test]
    fn pause_window_reports_end() {
        let plan = FaultPlan::new(0).pause(1, 100, 300);
        let st = FaultState::new(&plan, 2);
        assert_eq!(st.pause_until(1, 99), None);
        assert_eq!(st.pause_until(1, 100), Some(300));
        assert_eq!(st.pause_until(1, 299), Some(300));
        assert_eq!(st.pause_until(1, 300), None);
        assert_eq!(st.pause_until(0, 150), None);
    }

    #[test]
    #[should_panic(expected = "names node 7")]
    fn plan_validates_node_ids() {
        let _ = FaultState::new(&FaultPlan::new(0).crash(7, 0), 2);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn ge_params_validated() {
        let _ = FaultPlan::new(0).burst_loss(
            0,
            1,
            GeParams {
                p_enter_bad: 1.5,
                p_exit_bad: 0.1,
                loss_good: 0.0,
                loss_bad: 0.5,
            },
        );
    }
}
