//! Conservative parallel runner with bit-identical virtual time.
//!
//! The serial scheduler in [`crate::cluster`] hands a single baton between
//! the runner and one proc at a time; all host-CPU work (the applications'
//! real computation between simulator calls) therefore serializes too. This
//! module keeps *every kernel transition* — event order, `ord` assignment,
//! RNG draws, statistics, `events_processed` — byte-for-byte identical to
//! the serial runner while letting procs on different nodes burn host CPU
//! concurrently.
//!
//! # Architecture: op-log + authoritative serial replay
//!
//! In parallel mode a proc thread **never touches the kernel**. Instead it
//! appends *operations* (advance, send, recv, …) to a per-proc channel and
//! keeps running whenever the operation's outcome is provable locally
//! ("fire-and-forget"). The runner thread holds the kernel for the whole
//! run and executes the ordinary serial event loop, except that where the
//! serial loop would hand the baton to a proc, the parallel loop *replays*
//! that proc's logged operations against the kernel — same pushes, same
//! park-ticket arithmetic, same fast-path decisions. Determinism is by
//! construction: there is exactly one kernel mutator, and it performs the
//! serial algorithm.
//!
//! # Lookahead: per-pair channel clocks
//!
//! A proc may run ahead of the replay only while its interactions are
//! provably unaffected. The wire model guarantees that any datagram handed
//! to the wire at `σ` is delivered no earlier than
//! `σ + frame_time(0) + wire_latency` (frame time is monotone in payload
//! size, jitter only adds delay, and the FIFO clamp only raises delivery
//! times), and handing it to the wire itself costs `send_overhead` first.
//! So with `I = send_overhead + frame_time(0) + wire_latency` (the
//! *influence delay*), a node `n` can receive no delivery before
//!
//! ```text
//! quiet(n) = min( earliest queued delivery for n,
//!                 this lane's earliest pending loopback delivery,
//!                 min over chans c on other nodes of
//!                     min(clock(c), send_min(c → n)) + I )
//! ```
//!
//! `clock(c)` is `c`'s lane clock — pinned at the issuing time of `c`'s
//! oldest *rendezvous* op until the replay publishes its outcome, so every
//! wire effect of ops `c` has not finished issuing is covered. Logged
//! fire-and-forget sends advance the clock past their issue time, so each
//! one leaves a per-destination promise: `send_min(c → n)` is the issue
//! time of `c`'s oldest logged-but-unreplayed fire-and-forget send to `n`
//! (`u64::MAX` when none), removed only after the replay has handed that
//! datagram to the wire and published the resulting delivery into `n`'s
//! queued-delivery bound. Per-pair promises are what let a lane blocked on
//! traffic to node A keep lanes that only talk to B running: `c`'s
//! unreplayed sends to A never lower `quiet(B)`.
//!
//! One refinement keeps pinned clocks from strangling the bound: when the
//! replay parks a proc *inside* a rendezvous op that has no pending wire
//! effect (`wait_recv`, `wait_mailbox`, recv overhead, sync advance,
//! interruptible compute), that lane is blocked until its outcome is
//! published at replay time `k.now` — so its next send cannot be issued
//! before `k.now` either. The runner flags such chans (`rv_parked`) and
//! publishes a monotone `replay_now`; quiet readers lift a flagged chan's
//! clock to the floor. Parked *sends* are never flagged: their datagram
//! reaches the wire priced off the old pinned clock, which is the only
//! term covering it. This floor is what makes the post-wait `try_recv`
//! poll storm in message-pump loops resolve locally — right after a
//! genuine wait, the poller's clock sits within one influence delay of
//! `replay_now`, and every other lane is either running (clock advanced)
//! or blocked (clock lifted).
//!
//! Stale reads are safe by ordering, not luck: a reader samples `clock`
//! before `send_min` for each chan (a fire-and-forget send lowers
//! `send_min` *before* raising `clock`, both releases, so seeing the new
//! clock implies seeing the promise), reads the queued-delivery bound
//! *last* (the replay lowers it before raising `send_min` or the loopback
//! head, so seeing a promise retired implies seeing its delivery queued),
//! and consults the mailbox mirror after all of the above (the bound is
//! only re-raised after the delivered datagram reached the mirror).
//! Every handoff between covering terms is therefore visible in the order
//! the reader needs.
//!
//! Each single-proc node also keeps a *mirror* of its mailbox, appended by
//! the replay at the authoritative delivery instant. Because the replay
//! can never advance past a lane's own unreplayed operations, every mirror
//! entry is at or before the lane's clock — which makes a non-empty mirror
//! a provable `recv` hit and an empty mirror plus a high `quiet` bound a
//! provable miss. Loopback sends on single-proc lanes are fire-and-forget
//! too: the lane tracks its own pending loopback delivery times (the
//! `loop_head` term above) and the replay delivers into the mirror exactly
//! like a remote datagram, so a self-send followed by `wait_recv` runs
//! without a rendezvous. Everything else rendezvouses with the replay (the
//! proc blocks until the runner publishes the outcome), which degrades to
//! the serial schedule but never to a wrong one.
//!
//! Nodes that spawn extra user threads share `cpu_free` between procs, so
//! their lanes lose the "advance ends at `clock + dt`" invariant; such
//! lanes disable the mirror and run every operation as a rendezvous.
//!
//! # Batched replay
//!
//! The runner drains a lane's whole op channel into a private buffer in
//! one lock acquisition (and at most one wakeup in each direction), then
//! replays ops lock-free from the buffer; per-op locking only remains on
//! the rendezvous path. Promises (`send_min`, loopback heads) are retired
//! at wire-handoff time, not drain time, so a drained-but-unreplayed send
//! stays covered. Condvar signals are skipped entirely unless the other
//! side is actually parked (tracked by flags under the channel lock),
//! which removes two futex syscalls from the per-op fast path.

use std::{
    any::Any,
    collections::{BTreeMap, VecDeque},
    sync::{
        atomic::{AtomicBool, AtomicU64, Ordering},
        Arc, OnceLock,
    },
};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::{
    cluster::{
        build_report, spawn_proc_thread, CrashUnwind, Datagram, NodeCtx, RunFailure, Shared,
        POISON_MSG,
    },
    config::SimConfig,
    error::{BlockedProc, SimError},
    kernel::{EvKind, Kernel, ProcId, ProcState},
    stats::Bucket,
    time::{NodeId, Ns},
};

/// One logged operation plus the lane clock at which it was issued. The
/// replay consumes the op when kernel time reaches exactly `pre_clock`
/// (asserted), so the log doubles as a lockstep self-check.
struct OpMsg {
    pre_clock: Ns,
    op: Op,
}

/// Operations a proc can log. Fire-and-forget ops carry everything the
/// replay needs and publish no outcome; rendezvous ops block the lane until
/// the replay publishes an [`Outcome`].
enum Op {
    /// `charge`/`compute`: advance the lane CPU by `dt` in `bucket`.
    /// `sync` is set by multi-proc lanes, which cannot predict the end time
    /// (CPU serialization) and need the resulting clock published.
    Advance {
        bucket: Bucket,
        dt: Ns,
        sync: bool,
    },
    /// `sleep(dt)`: park until `pre_clock + dt` (no CPU).
    Sleep { dt: Ns },
    /// `count(name, v)`: counter bump, no time.
    Count { name: &'static str, v: u64 },
    /// `counter(name)` read — rendezvous (another proc of the node may
    /// still have pending bumps only the replay serializes).
    CounterRead { name: &'static str },
    /// `send_datagram`: send overhead then the wire. Multi-proc lanes set
    /// `sync`; single-proc lanes fire-and-forget everything, including
    /// loopback (covered by the lane's own pending-loopback head).
    Send {
        dst: NodeId,
        payload: Bytes,
        sync: bool,
    },
    /// Lane-proved uninterrupted `compute_interruptible`: the full `dt`
    /// elapses with no delivery before `pre_clock + dt`.
    QuietCompute { bucket: Bucket, dt: Ns },
    /// Unprovable `compute_interruptible` — rendezvous.
    Interruptible { bucket: Bucket, dt: Ns },
    /// Lane-proved mailbox hit: the mirror head (identified by
    /// `src`/`sent_at`/`len`) is popped and the recv overhead charged.
    RecvHit {
        src: NodeId,
        sent_at: Ns,
        len: usize,
    },
    /// Lane-proved timeout of `wait_recv`/`wait_mailbox`: park until
    /// `deadline` with no delivery at or before it.
    QuietTimeout { deadline: Ns },
    /// Unprovable `try_recv` — rendezvous.
    TryRecv,
    /// Unprovable `wait_recv` — rendezvous.
    WaitRecv { deadline: Option<Ns> },
    /// Unprovable `wait_mailbox` — rendezvous.
    WaitMailbox { deadline: Option<Ns> },
    /// Unprovable `mailbox_nonempty` — rendezvous.
    MailboxProbe,
    /// `spawn_thread`: register a sibling proc — rendezvous (the lane
    /// becomes multi-proc).
    Spawn {
        main: Box<dyn FnOnce(NodeCtx) + Send>,
    },
    /// The proc's main returned (or panicked with `payload`).
    Finished {
        panic: Option<Box<dyn Any + Send>>,
    },
}

/// Outcome of a rendezvous op, carrying the authoritative post-op clock.
enum Outcome {
    Clock(Ns),
    Recv(Option<Datagram>, Ns),
    Interrupt(Option<Ns>, Ns),
    Flag(bool, Ns),
    Value(u64, Ns),
}

impl Outcome {
    fn clock(&self) -> Ns {
        match self {
            Outcome::Clock(c)
            | Outcome::Recv(_, c)
            | Outcome::Interrupt(_, c)
            | Outcome::Flag(_, c)
            | Outcome::Value(_, c) => *c,
        }
    }
}

struct ChanQ {
    ops: VecDeque<OpMsg>,
    outcome: Option<Outcome>,
    /// Issue times (`pre_clock`) of logged-but-unretired fire-and-forget
    /// sends, per destination node; fronts are mirrored into
    /// `ProcChan::send_min`. Entries retire at wire-handoff time, not
    /// drain time, so a drained-but-unreplayed send stays covered.
    send_minq: Vec<VecDeque<Ns>>,
    /// Delivery times (`pre_clock + send_overhead`) of pending
    /// fire-and-forget loopback sends; front mirrored into
    /// `ProcChan::loop_head`.
    loop_pending: VecDeque<Ns>,
    /// Runner is parked on `ops_cv` waiting for ops; a pushing lane only
    /// pays the wakeup syscall when set.
    runner_waiting: bool,
    /// The lane thread is parked on `out_cv` (for log space or a
    /// rendezvous outcome); the runner only signals when set.
    lane_waiting: bool,
}

/// Per-proc channel between a lane thread and the replay.
pub(crate) struct ProcChan {
    pub(crate) node: NodeId,
    q: Mutex<ChanQ>,
    /// Signaled when an op is appended (runner waits here).
    ops_cv: Condvar,
    /// Signaled when an outcome is published or log space frees up.
    out_cv: Condvar,
    /// The lane's current virtual clock (reads back as `NodeCtx::now`).
    /// Pinned at the issue time of the oldest pending rendezvous op until
    /// the replay publishes its outcome, so it conservatively covers every
    /// wire effect the lane has not finished issuing; `u64::MAX` once the
    /// proc is finished or crashed. Fire-and-forget sends advance it past
    /// their issue time and leave a `send_min`/`loop_head` promise behind
    /// instead.
    pub(crate) clock: AtomicU64,
    /// Per-destination promise: issue time of the oldest unretired
    /// fire-and-forget send to that node (`u64::MAX` when none). Lowered
    /// *before* `clock` is raised on push; raised only after the replay
    /// queued the resulting delivery into the destination's
    /// `queued_head` bound.
    send_min: Vec<AtomicU64>,
    /// Earliest pending fire-and-forget loopback delivery time
    /// (`u64::MAX` when none); same retire protocol as `send_min`, read
    /// only by this lane's own quiet bound.
    loop_head: AtomicU64,
    /// Set by the replay when it parks this proc *inside a rendezvous op
    /// that has no pending wire effect* (`wait_recv`, `wait_mailbox`,
    /// recv-overhead, sync advance, interruptible compute). While set, the
    /// lane is blocked on the outcome and all its promises are retired, so
    /// its next send cannot be issued before the replay's current time:
    /// quiet readers may lift this chan's clock to `ParCtrl::replay_now`.
    /// Cleared (before the outcome) by every publish. Never set for parked
    /// sends — their datagram reaches the wire at the *old* pinned clock.
    rv_parked: AtomicBool,
    /// Set when the proc's node fail-stops; lane unwinds at the next call.
    dead: AtomicBool,
}

impl ProcChan {
    fn new(node: NodeId, n_nodes: usize) -> Self {
        Self {
            node,
            q: Mutex::new(ChanQ {
                ops: VecDeque::new(),
                outcome: None,
                send_minq: (0..n_nodes).map(|_| VecDeque::new()).collect(),
                loop_pending: VecDeque::new(),
                runner_waiting: false,
                lane_waiting: false,
            }),
            ops_cv: Condvar::new(),
            out_cv: Condvar::new(),
            clock: AtomicU64::new(0),
            send_min: (0..n_nodes).map(|_| AtomicU64::new(u64::MAX)).collect(),
            loop_head: AtomicU64::new(u64::MAX),
            rv_parked: AtomicBool::new(false),
            dead: AtomicBool::new(false),
        }
    }
}

struct Mirror {
    /// `(delivery_time, datagram)` in mailbox order; appended by the replay
    /// at the authoritative delivery instant, popped by the lane on proved
    /// hits and by the replay on rendezvous pops.
    q: VecDeque<(Ns, Datagram)>,
    /// Mirrors are only maintained for single-proc lanes.
    enabled: bool,
}

/// Per-node state shared between lane threads and the replay.
pub(crate) struct LaneShared {
    /// Earliest queued `Deliver` time for this node (`u64::MAX` when none).
    /// Lowered before the corresponding event is pushed; raised only after
    /// any resulting mailbox append has reached the mirror.
    queued_head: AtomicU64,
    crashed: AtomicBool,
    multi: AtomicBool,
    mirror: Mutex<Mirror>,
}

impl LaneShared {
    fn new() -> Self {
        Self {
            queued_head: AtomicU64::new(u64::MAX),
            crashed: AtomicBool::new(false),
            multi: AtomicBool::new(false),
            mirror: Mutex::new(Mirror {
                q: VecDeque::new(),
                enabled: true,
            }),
        }
    }
}

/// Control block for one parallel run, owned by [`Shared`].
pub(crate) struct ParCtrl {
    /// `None` until the runner decides serial vs. parallel at run start.
    mode: Mutex<Option<bool>>,
    mode_cv: Condvar,
    chans: RwLock<Vec<Arc<ProcChan>>>,
    lanes: Vec<LaneShared>,
    poisoned: AtomicBool,
    send_overhead: Ns,
    recv_overhead: Ns,
    /// Minimum wire-to-delivery delay: `frame_time(0) + wire_latency`.
    lookahead: Ns,
    /// Backpressure bound on each proc's op log (see
    /// [`SimConfig::op_log_cap`]).
    op_log_cap: usize,
    /// Monotone snapshot of the replay's `k.now`, stored by the runner at
    /// each event pop and each consumed op. Always `<= k.now`. Quiet
    /// readers load it *first* (see [`quiet_bound`]) and use it as a floor
    /// for `rv_parked` chans: a rendezvous-blocked lane's next effect is
    /// published at `k.now` or later, so the stale pinned clock it parked
    /// with can be lifted to this value.
    replay_now: AtomicU64,
}

impl ParCtrl {
    pub(crate) fn new(config: &SimConfig, n_nodes: usize) -> Self {
        assert!(config.op_log_cap > 0, "op_log_cap must be nonzero");
        Self {
            mode: Mutex::new(None),
            mode_cv: Condvar::new(),
            chans: RwLock::new(Vec::new()),
            lanes: (0..n_nodes).map(|_| LaneShared::new()).collect(),
            poisoned: AtomicBool::new(false),
            send_overhead: config.send_overhead,
            recv_overhead: config.recv_overhead,
            lookahead: config.frame_time(0) + config.wire_latency,
            op_log_cap: config.op_log_cap,
            replay_now: AtomicU64::new(0),
        }
    }

    /// Publishes the run mode; in parallel mode also fixes up the
    /// registered procs to look replay-managed (parked with ticket 1,
    /// matching the queued time-0 `Wake { seq: 1 }`) and creates their
    /// channels.
    pub(crate) fn publish_mode(&self, parallel: bool, k: &mut Kernel) {
        if parallel {
            let n_nodes = k.nodes.len();
            let mut chans = self.chans.write();
            debug_assert!(chans.is_empty(), "mode published twice");
            for p in k.procs.iter_mut() {
                p.parked = true;
                p.park_seq = 1;
                chans.push(Arc::new(ProcChan::new(p.node, n_nodes)));
            }
        }
        *self.mode.lock() = Some(parallel);
        self.mode_cv.notify_all();
    }

    /// Blocks a fresh proc thread until the run mode is known. `None`
    /// means the cluster was torn down before running.
    pub(crate) fn wait_mode(&self) -> Option<bool> {
        let mut m = self.mode.lock();
        loop {
            if let Some(v) = *m {
                return Some(v);
            }
            if self.poisoned.load(Ordering::Acquire) {
                return None;
            }
            self.mode_cv.wait(&mut m);
        }
    }

    pub(crate) fn chan(&self, pid: ProcId) -> Arc<ProcChan> {
        Arc::clone(&self.chans.read()[pid])
    }

    /// Tears down: every lane blocked on the mode gate, log space, or an
    /// outcome unwinds with the poison panic (filtered by the proc-thread
    /// epilogue, exactly like the serial poison path).
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        {
            let _gate = self.mode.lock();
        }
        self.mode_cv.notify_all();
        for ch in self.chans.read().iter() {
            let _q = ch.q.lock();
            ch.ops_cv.notify_all();
            ch.out_cv.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Lane side: called from NodeCtx methods on proc threads. No kernel access.
// ---------------------------------------------------------------------------

fn wait_space(ctrl: &ParCtrl, ch: &ProcChan, q: &mut parking_lot::MutexGuard<'_, ChanQ>) {
    loop {
        if ctrl.poisoned.load(Ordering::Acquire) {
            panic!("{POISON_MSG}");
        }
        if ch.dead.load(Ordering::Acquire) {
            std::panic::panic_any(CrashUnwind);
        }
        if q.ops.len() < ctrl.op_log_cap {
            return;
        }
        q.lane_waiting = true;
        ch.out_cv.wait(q);
        q.lane_waiting = false;
    }
}

/// Wakes the runner iff it is parked waiting for ops; pushing is
/// otherwise signal-free.
fn notify_runner(ch: &ProcChan, q: &mut parking_lot::MutexGuard<'_, ChanQ>) {
    if q.runner_waiting {
        q.runner_waiting = false;
        ch.ops_cv.notify_one();
    }
}

/// Appends a fire-and-forget op and advances the lane clock to
/// `new_clock` (the provable post-op time).
fn push_ff(ctrl: &ParCtrl, ch: &ProcChan, op: Op, new_clock: Ns) {
    let mut q = ch.q.lock();
    wait_space(ctrl, ch, &mut q);
    let pre = ch.clock.load(Ordering::Relaxed);
    debug_assert!(new_clock >= pre, "lane clock would go backwards");
    q.ops.push_back(OpMsg { pre_clock: pre, op });
    ch.clock.store(new_clock, Ordering::Release);
    notify_runner(ch, &mut q);
}

/// Appends a rendezvous op and blocks until the replay publishes its
/// outcome (which also advances the lane clock). The clock stays pinned
/// at the op's issue time meanwhile, keeping the quiet bound conservative
/// for any wire effect the op has yet to produce.
fn push_sync(ctrl: &ParCtrl, ch: &ProcChan, op: Op) -> Outcome {
    let mut q = ch.q.lock();
    wait_space(ctrl, ch, &mut q);
    let pre = ch.clock.load(Ordering::Relaxed);
    q.ops.push_back(OpMsg { pre_clock: pre, op });
    notify_runner(ch, &mut q);
    loop {
        if let Some(o) = q.outcome.take() {
            return o;
        }
        if ctrl.poisoned.load(Ordering::Acquire) {
            panic!("{POISON_MSG}");
        }
        if ch.dead.load(Ordering::Acquire) {
            std::panic::panic_any(CrashUnwind);
        }
        q.lane_waiting = true;
        ch.out_cv.wait(&mut q);
        q.lane_waiting = false;
    }
}

/// The earliest virtual time at which a delivery can still reach `node`
/// (`ch` is the calling lane's own channel). Sound against stale reads by
/// read order — `replay_now` first (so a stale `rv_parked` flag can only
/// pair with a floor the runner published *before* clearing it: the
/// acquire on `replay_now` makes any earlier clear visible), then per chan
/// `clock` then `send_min` (push lowers the promise before raising the
/// clock), own loopback head next, and the queued-delivery bound *last*
/// (the replay lowers it before retiring the promise that covered the
/// send); see the module docs.
fn quiet_bound(ctrl: &ParCtrl, ch: &ProcChan, node: usize) -> Ns {
    let influence = ctrl.send_overhead + ctrl.lookahead;
    let rnow = ctrl.replay_now.load(Ordering::Acquire);
    let mut quiet = u64::MAX;
    for c in ctrl.chans.read().iter() {
        if c.node as usize == node {
            continue;
        }
        let mut clk = c.clock.load(Ordering::Acquire);
        let sm = c.send_min[node].load(Ordering::Acquire);
        if c.rv_parked.load(Ordering::Acquire) {
            // Rendezvous-blocked lane: its clock is pinned at the issue
            // time of the blocked op, but its next send can only be issued
            // after the replay publishes — at `k.now >= rnow` — so the
            // floor is a sound lift. The promise term stays unlifted
            // (blocked lanes have all promises retired anyway).
            clk = clk.max(rnow);
        }
        quiet = quiet.min(clk.min(sm).saturating_add(influence));
    }
    quiet = quiet.min(ch.loop_head.load(Ordering::Acquire));
    quiet.min(ctrl.lanes[node].queued_head.load(Ordering::Acquire))
}

fn is_multi(ctrl: &ParCtrl, node: usize) -> bool {
    ctrl.lanes[node].multi.load(Ordering::Acquire)
}

/// Pops the mirror head, if any. Mirror entries are always at or before
/// the lane clock (the replay cannot pass the lane's own unreplayed ops),
/// so any entry is an immediate hit.
fn mirror_pop_lane(ctrl: &ParCtrl, node: usize, clock: Ns) -> Option<Datagram> {
    let mut m = ctrl.lanes[node].mirror.lock();
    if !m.enabled {
        return None;
    }
    match m.q.front() {
        Some(&(u, _)) => {
            debug_assert!(u <= clock, "mirror ran ahead of the lane clock");
            Some(m.q.pop_front().expect("front just observed").1)
        }
        None => None,
    }
}

pub(crate) fn lane_now(ch: &ProcChan) -> Ns {
    ch.clock.load(Ordering::Acquire)
}

pub(crate) fn lane_charge(ctrl: &ParCtrl, ch: &ProcChan, bucket: Bucket, dt: Ns) {
    if is_multi(ctrl, ch.node as usize) {
        push_sync(ctrl, ch, Op::Advance { bucket, dt, sync: true });
        return;
    }
    // Single-proc lane invariant: cpu_free <= now, so the charge runs
    // `[clock, clock + dt)` exactly like the serial `advance_locked`.
    let c = ch.clock.load(Ordering::Relaxed);
    push_ff(ctrl, ch, Op::Advance { bucket, dt, sync: false }, c + dt);
}

pub(crate) fn lane_sleep(ctrl: &ParCtrl, ch: &ProcChan, dt: Ns) {
    // sleep ends at now + dt regardless of cpu_free: predictable even on
    // multi-proc lanes.
    let c = ch.clock.load(Ordering::Relaxed);
    push_ff(ctrl, ch, Op::Sleep { dt }, c + dt);
}

pub(crate) fn lane_count(ctrl: &ParCtrl, ch: &ProcChan, name: &'static str, v: u64) {
    let c = ch.clock.load(Ordering::Relaxed);
    push_ff(ctrl, ch, Op::Count { name, v }, c);
}

pub(crate) fn lane_counter_read(ctrl: &ParCtrl, ch: &ProcChan, name: &'static str) -> u64 {
    match push_sync(ctrl, ch, Op::CounterRead { name }) {
        Outcome::Value(v, _) => v,
        _ => unreachable!("CounterRead publishes Value"),
    }
}

pub(crate) fn lane_send(ctrl: &ParCtrl, ch: &ProcChan, dst: NodeId, payload: Bytes) {
    if is_multi(ctrl, ch.node as usize) {
        // Shared-CPU lane: the overhead advance end time is unpredictable.
        push_sync(ctrl, ch, Op::Send { dst, payload, sync: true });
        return;
    }
    // Fire-and-forget: leave a promise covering the eventual delivery.
    // Promise before clock (both releases) — a reader seeing the advanced
    // clock must also see the promise, or the delivery would be uncovered.
    let mut q = ch.q.lock();
    wait_space(ctrl, ch, &mut q);
    let pre = ch.clock.load(Ordering::Relaxed);
    q.ops.push_back(OpMsg {
        pre_clock: pre,
        op: Op::Send { dst, payload, sync: false },
    });
    if dst == ch.node {
        // Loopback lands in our own mailbox at pre + send_overhead; track
        // it in the lane-local pending list read by our own quiet bound.
        q.loop_pending.push_back(pre + ctrl.send_overhead);
        let head = *q.loop_pending.front().expect("just pushed");
        ch.loop_head.store(head, Ordering::Release);
    } else {
        q.send_minq[dst as usize].push_back(pre);
        let head = *q.send_minq[dst as usize].front().expect("just pushed");
        ch.send_min[dst as usize].store(head, Ordering::Release);
    }
    ch.clock.store(pre + ctrl.send_overhead, Ordering::Release);
    notify_runner(ch, &mut q);
}

pub(crate) fn lane_try_recv(ctrl: &ParCtrl, ch: &ProcChan) -> Option<Datagram> {
    let node = ch.node as usize;
    if is_multi(ctrl, node) {
        return match push_sync(ctrl, ch, Op::TryRecv) {
            Outcome::Recv(d, _) => d,
            _ => unreachable!("TryRecv publishes Recv"),
        };
    }
    let c = ch.clock.load(Ordering::Relaxed);
    // Order matters: sample the bound *before* the mirror, so a delivery
    // landing in between is caught by the mirror read.
    let quiet = quiet_bound(ctrl, ch, node);
    if let Some(d) = mirror_pop_lane(ctrl, node, c) {
        let op = Op::RecvHit {
            src: d.src,
            sent_at: d.sent_at,
            len: d.payload.len(),
        };
        push_ff(ctrl, ch, op, c + ctrl.recv_overhead);
        return Some(d);
    }
    if quiet > c {
        return None; // Provably empty now: serial try_recv charges nothing.
    }
    match push_sync(ctrl, ch, Op::TryRecv) {
        Outcome::Recv(d, _) => d,
        _ => unreachable!("TryRecv publishes Recv"),
    }
}

pub(crate) fn lane_wait_recv(
    ctrl: &ParCtrl,
    ch: &ProcChan,
    deadline: Option<Ns>,
) -> Option<Datagram> {
    let node = ch.node as usize;
    if is_multi(ctrl, node) {
        return match push_sync(ctrl, ch, Op::WaitRecv { deadline }) {
            Outcome::Recv(d, _) => d,
            _ => unreachable!("WaitRecv publishes Recv"),
        };
    }
    let c = ch.clock.load(Ordering::Relaxed);
    let quiet = quiet_bound(ctrl, ch, node);
    if let Some(d) = mirror_pop_lane(ctrl, node, c) {
        let op = Op::RecvHit {
            src: d.src,
            sent_at: d.sent_at,
            len: d.payload.len(),
        };
        push_ff(ctrl, ch, op, c + ctrl.recv_overhead);
        return Some(d);
    }
    if let Some(dl) = deadline {
        if dl <= c {
            if quiet > c {
                return None; // Already past the deadline, provably empty.
            }
        } else if quiet > dl {
            // No delivery can land at or before the deadline: the serial
            // path parks once and times out.
            push_ff(ctrl, ch, Op::QuietTimeout { deadline: dl }, dl);
            return None;
        }
    }
    match push_sync(ctrl, ch, Op::WaitRecv { deadline }) {
        Outcome::Recv(d, _) => d,
        _ => unreachable!("WaitRecv publishes Recv"),
    }
}

pub(crate) fn lane_wait_mailbox(ctrl: &ParCtrl, ch: &ProcChan, deadline: Option<Ns>) -> bool {
    let node = ch.node as usize;
    if is_multi(ctrl, node) {
        return match push_sync(ctrl, ch, Op::WaitMailbox { deadline }) {
            Outcome::Flag(b, _) => b,
            _ => unreachable!("WaitMailbox publishes Flag"),
        };
    }
    let c = ch.clock.load(Ordering::Relaxed);
    let quiet = quiet_bound(ctrl, ch, node);
    if mirror_nonempty(ctrl, node) {
        return true;
    }
    if let Some(dl) = deadline {
        if dl <= c {
            if quiet > c {
                return false;
            }
        } else if quiet > dl {
            push_ff(ctrl, ch, Op::QuietTimeout { deadline: dl }, dl);
            return false;
        }
    }
    match push_sync(ctrl, ch, Op::WaitMailbox { deadline }) {
        Outcome::Flag(b, _) => b,
        _ => unreachable!("WaitMailbox publishes Flag"),
    }
}

fn mirror_nonempty(ctrl: &ParCtrl, node: usize) -> bool {
    let m = ctrl.lanes[node].mirror.lock();
    m.enabled && !m.q.is_empty()
}

pub(crate) fn lane_mailbox_nonempty(ctrl: &ParCtrl, ch: &ProcChan) -> bool {
    let node = ch.node as usize;
    if is_multi(ctrl, node) {
        return match push_sync(ctrl, ch, Op::MailboxProbe) {
            Outcome::Flag(b, _) => b,
            _ => unreachable!("MailboxProbe publishes Flag"),
        };
    }
    let c = ch.clock.load(Ordering::Relaxed);
    let quiet = quiet_bound(ctrl, ch, node);
    if mirror_nonempty(ctrl, node) {
        return true;
    }
    if quiet > c {
        return false;
    }
    match push_sync(ctrl, ch, Op::MailboxProbe) {
        Outcome::Flag(b, _) => b,
        _ => unreachable!("MailboxProbe publishes Flag"),
    }
}

pub(crate) fn lane_compute_interruptible(
    ctrl: &ParCtrl,
    ch: &ProcChan,
    bucket: Bucket,
    dt: Ns,
) -> Option<Ns> {
    let node = ch.node as usize;
    if is_multi(ctrl, node) {
        return match push_sync(ctrl, ch, Op::Interruptible { bucket, dt }) {
            Outcome::Interrupt(r, _) => r,
            _ => unreachable!("Interruptible publishes Interrupt"),
        };
    }
    let c = ch.clock.load(Ordering::Relaxed);
    let quiet = quiet_bound(ctrl, ch, node);
    if mirror_nonempty(ctrl, node) {
        // Pending work: serial returns Some(dt) without charging anything.
        return Some(dt);
    }
    if quiet >= c + dt {
        // No delivery strictly before c + dt: the compute cannot be
        // interrupted (a delivery exactly at c + dt loses to the earlier
        // timer wake and still yields None).
        push_ff(ctrl, ch, Op::QuietCompute { bucket, dt }, c + dt);
        return None;
    }
    match push_sync(ctrl, ch, Op::Interruptible { bucket, dt }) {
        Outcome::Interrupt(r, _) => r,
        _ => unreachable!("Interruptible publishes Interrupt"),
    }
}

pub(crate) fn lane_spawn(
    ctrl: &ParCtrl,
    ch: &ProcChan,
    main: Box<dyn FnOnce(NodeCtx) + Send>,
) {
    push_sync(ctrl, ch, Op::Spawn { main });
}

/// Proc-thread epilogue in parallel mode: report termination (or an
/// application panic) to the replay. Best-effort during teardown.
pub(crate) fn lane_finish(ctrl: &ParCtrl, ch: &ProcChan, panic: Option<Box<dyn Any + Send>>) {
    let mut q = ch.q.lock();
    loop {
        if ctrl.poisoned.load(Ordering::Acquire) || ch.dead.load(Ordering::Acquire) {
            return; // Run already over (teardown or fail-stop); nothing to report.
        }
        if q.ops.len() < ctrl.op_log_cap {
            break;
        }
        q.lane_waiting = true;
        ch.out_cv.wait(&mut q);
        q.lane_waiting = false;
    }
    let pre = ch.clock.load(Ordering::Relaxed);
    q.ops.push_back(OpMsg {
        pre_clock: pre,
        op: Op::Finished { panic },
    });
    notify_runner(ch, &mut q);
}

// ---------------------------------------------------------------------------
// Runner side: the authoritative replay. Single thread, holds the kernel.
// ---------------------------------------------------------------------------

/// Pending continuation for a proc the replay parked mid-operation.
enum Cont {
    /// Nothing left at wake; publish the clock if the op was a rendezvous.
    Park { publish_clock: bool },
    /// Tail of a lane-proved uninterrupted compute.
    QuietCompute { start: Ns, dt: Ns, bucket: Bucket },
    /// Tail of a rendezvous `compute_interruptible`.
    Interruptible { start: Ns, dt: Ns, bucket: Bucket },
    /// Send overhead parked; hand the datagram to the wire at wake.
    SendWire {
        dst: NodeId,
        payload: Bytes,
        sync: bool,
    },
    /// Recv overhead parked; publish the datagram (rendezvous pops only).
    RecvOverhead { publish: Option<Datagram> },
    /// Tail of a lane-proved `QuietTimeout` park.
    QuietTimeout { deadline: Ns, park_start: Ns },
    /// Parked inside the rendezvous `wait_recv` loop.
    WaitRecv { deadline: Option<Ns>, park_start: Ns },
    /// Parked inside the rendezvous `wait_mailbox` loop.
    WaitMailbox { deadline: Option<Ns>, park_start: Ns },
}

enum StepRes {
    /// The op (or continuation) fully applied; consume the next op.
    Done,
    /// The proc parked; a queued wake will resume its continuation.
    Parked,
    /// The proc finished; stop consuming its log.
    Finished,
}

struct Rep {
    chan: Arc<ProcChan>,
    cont: Option<Cont>,
    /// Ops drained from the channel in one batch, replayed lock-free.
    buf: VecDeque<OpMsg>,
}

/// The parallel twin of `Cluster::event_loop`. Event handling is
/// byte-for-byte the serial algorithm; only the baton handoff is replaced
/// by op-log replay.
pub(crate) fn event_loop(
    shared: &Arc<Shared>,
    mut k: parking_lot::MutexGuard<'_, Kernel>,
) -> Result<crate::cluster::SimReport, RunFailure> {
    let mut r = Runner {
        shared: Arc::clone(shared),
        reps: shared
            .par
            .chans
            .read()
            .iter()
            .map(|c| Rep {
                chan: Arc::clone(c),
                cont: None,
                buf: VecDeque::new(),
            })
            .collect(),
        pend: (0..k.nodes.len()).map(|_| BTreeMap::new()).collect(),
    };
    loop {
        if let Some(payload) = k.panic.take() {
            let node = k.panic_node.take();
            return Err(RunFailure::Panic { payload, node });
        }
        if k.live_procs == 0 {
            return Ok(build_report(&k));
        }
        let Some(std::cmp::Reverse(ev)) = k.queue.pop() else {
            return Err(RunFailure::Error(SimError::Stalled {
                at: k.now,
                blocked: blocked_lanes(&k, &r.reps),
                crashed: k.fault.crashed_nodes(),
            }));
        };
        k.events_processed += 1;
        if let Some(max) = k.config.max_events {
            if k.events_processed > max {
                return Err(RunFailure::Error(SimError::MaxEvents {
                    limit: max,
                    at: k.now,
                    crashed: k.fault.crashed_nodes(),
                }));
            }
        }
        debug_assert!(ev.time >= k.now, "event queue went backwards in time");
        k.now = k.now.max(ev.time);
        shared.par.replay_now.store(k.now, Ordering::Release);
        if let Some(max) = k.config.max_virtual_time {
            if k.now > max {
                return Err(RunFailure::Error(SimError::MaxVirtualTime {
                    limit: max,
                    crashed: k.fault.crashed_nodes(),
                }));
            }
        }
        match ev.kind {
            EvKind::Wake { pid, seq } => {
                let p = &k.procs[pid];
                if p.finished || !p.parked || p.park_seq != seq {
                    continue; // Stale wake.
                }
                k.procs[pid].parked = false;
                k.procs[pid].waiting_for_msg = false;
                r.drive(&mut k, pid);
            }
            EvKind::Deliver { dst, dgram } => {
                let scheduled_at = ev.time;
                r.pend_sub(dst, scheduled_at);
                if k.fault.is_crashed(dst) {
                    k.nodes[dst as usize].net.dropped_crash += 1;
                    r.republish(dst);
                    continue;
                }
                if let Some(until) = k.fault.pause_until(dst, k.now) {
                    k.nodes[dst as usize].net.deferred_pause += 1;
                    k.push_event(until, EvKind::Deliver { dst, dgram });
                    r.pend_add(dst, until);
                    r.republish(dst);
                    continue;
                }
                if dgram.src != dst {
                    k.nodes[dst as usize].net.delivered += 1;
                    debug_assert!(k.observer.is_none(), "observers force serial mode");
                }
                let now = k.now;
                r.mirror_append(dst, now, &dgram);
                k.nodes[dst as usize].mailbox.push_back(dgram);
                r.republish(dst);
                let waiters: Vec<(ProcId, u64)> = k
                    .procs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.node == dst && p.parked && p.waiting_for_msg)
                    .map(|(pid, p)| (pid, p.park_seq))
                    .collect();
                for (pid, seq) in waiters {
                    k.push_event(now, EvKind::Wake { pid, seq });
                }
            }
            EvKind::Crash { node } => {
                if k.fault.is_crashed(node) {
                    continue;
                }
                k.fault.mark_crashed(node);
                let pending = k.nodes[node as usize].mailbox.len() as u64;
                k.nodes[node as usize].net.dropped_crash += pending;
                k.nodes[node as usize].net.purged_crash += k.nodes[node as usize]
                    .mailbox
                    .iter()
                    .filter(|d| d.src != node)
                    .count() as u64;
                k.nodes[node as usize].mailbox.clear();
                k.nodes[node as usize].counters.add("node.crashed", 1);
                r.crash_lane(&mut k, node);
            }
        }
    }
}

fn blocked_lanes(k: &Kernel, reps: &[Rep]) -> Vec<BlockedProc> {
    k.procs
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.finished)
        .map(|(pid, p)| BlockedProc {
            pid,
            node: p.node,
            waiting_for_msg: p.waiting_for_msg,
            at: reps.get(pid).map_or(k.now, |r| r.chan.clock.load(Ordering::Acquire)),
        })
        .collect()
}

struct Runner {
    shared: Arc<Shared>,
    reps: Vec<Rep>,
    /// Per-node multiset of queued `Deliver` times, mirrored into
    /// `LaneShared::queued_head` for the lookahead bound.
    pend: Vec<BTreeMap<Ns, u64>>,
}

impl Runner {
    fn pend_add(&mut self, node: NodeId, at: Ns) {
        *self.pend[node as usize].entry(at).or_insert(0) += 1;
    }

    fn pend_sub(&mut self, node: NodeId, at: Ns) {
        let m = &mut self.pend[node as usize];
        let n = m.get_mut(&at).expect("queued delivery was tracked");
        *n -= 1;
        if *n == 0 {
            m.remove(&at);
        }
    }

    /// Stores the current earliest queued delivery for `node`. Call only
    /// after any mailbox append from the same event reached the mirror.
    fn republish(&self, node: NodeId) {
        let head = self.pend[node as usize]
            .keys()
            .next()
            .copied()
            .unwrap_or(u64::MAX);
        self.shared.par.lanes[node as usize]
            .queued_head
            .store(head, Ordering::Release);
    }

    /// Lowers the queued-head bound *before* pushing the delivery event —
    /// lowering early is conservative for readers.
    fn pend_add_published(&mut self, node: NodeId, at: Ns) {
        self.pend_add(node, at);
        self.republish(node);
    }

    fn mirror_append(&self, node: NodeId, at: Ns, d: &Datagram) {
        let mut m = self.shared.par.lanes[node as usize].mirror.lock();
        if m.enabled {
            m.q.push_back((at, d.clone()));
        }
    }

    /// Pops the mirror head to match a rendezvous mailbox pop.
    fn mirror_pop_replay(&self, node: NodeId, d: &Datagram) {
        let mut m = self.shared.par.lanes[node as usize].mirror.lock();
        if !m.enabled {
            return;
        }
        let (_, md) = m.q.pop_front().expect("mirror matches the mailbox");
        debug_assert_eq!(
            (md.src, md.sent_at, md.payload.len()),
            (d.src, d.sent_at, d.payload.len()),
            "mirror diverged from the mailbox"
        );
    }

    /// Drives `pid` after a wake: finish any pending continuation, then
    /// consume ops until the proc parks or finishes. Blocking on the op
    /// channel is safe: lane threads never take the kernel lock.
    fn drive(&mut self, k: &mut Kernel, pid: ProcId) {
        if let Some(cont) = self.reps[pid].cont.take() {
            match self.step_cont(k, pid, cont) {
                StepRes::Parked => return,
                StepRes::Done => {}
                StepRes::Finished => return,
            }
        }
        loop {
            let msg = self.next_op(pid);
            debug_assert_eq!(
                msg.pre_clock, k.now,
                "lane clock diverged from the replay for proc {pid}"
            );
            // Keep the blocked-lane floor fresh while replaying a batch:
            // `k.now` can fast-forward through op after op without an
            // event pop, and a stale floor just costs other lanes local
            // resolutions.
            self.shared.par.replay_now.store(k.now, Ordering::Release);
            match self.apply_op(k, pid, msg.op) {
                StepRes::Done => {}
                StepRes::Parked => return,
                StepRes::Finished => return,
            }
        }
    }

    /// Next op for `pid`: from the drained batch if any, else one swap of
    /// the channel's whole deque under a single lock acquisition (waking a
    /// space-blocked lane at most once per batch).
    fn next_op(&mut self, pid: ProcId) -> OpMsg {
        let cap = self.shared.par.op_log_cap;
        let rep = &mut self.reps[pid];
        if let Some(msg) = rep.buf.pop_front() {
            return msg;
        }
        let ch = &rep.chan;
        let mut q = ch.q.lock();
        loop {
            if !q.ops.is_empty() {
                let was_full = q.ops.len() >= cap;
                std::mem::swap(&mut rep.buf, &mut q.ops);
                // Only a full log can have a lane parked for space; a
                // lane parked for an outcome is woken by publish.
                if was_full && q.lane_waiting {
                    ch.out_cv.notify_one();
                }
                return rep.buf.pop_front().expect("swapped a non-empty deque");
            }
            q.runner_waiting = true;
            ch.ops_cv.wait(&mut q);
            q.runner_waiting = false;
        }
    }

    fn publish(&self, pid: ProcId, out: Outcome) {
        let ch = &self.reps[pid].chan;
        let mut q = ch.q.lock();
        // Unblock order: drop the parked flag before the clock/outcome so
        // no reader can pair the flag with a floor published after the
        // lane resumed (the floor's release/acquire edge carries this
        // clear; see `quiet_bound`).
        ch.rv_parked.store(false, Ordering::Release);
        ch.clock.store(out.clock(), Ordering::Release);
        q.outcome = Some(out);
        if q.lane_waiting {
            ch.out_cv.notify_one();
        }
    }

    /// Marks `pid` as parked inside a rendezvous op with no pending wire
    /// effect (see [`ProcChan::rv_parked`]). Call only from park sites
    /// whose wake produces no datagram priced off the *pre-park* clock —
    /// never for `Cont::SendWire`, whose wire handoff at wake is only
    /// covered by the old pinned clock.
    fn mark_rv_parked(&self, pid: ProcId) {
        self.reps[pid]
            .chan
            .rv_parked
            .store(true, Ordering::Release);
    }

    /// Serial `advance_locked`, replayed. Returns true when the proc
    /// parked (caller must set a continuation).
    fn replay_advance(&self, k: &mut Kernel, pid: ProcId, bucket: Bucket, dt: Ns) -> bool {
        let node = k.procs[pid].node as usize;
        let start = k.now.max(k.nodes[node].cpu_free);
        if start > k.now {
            let gap = start - k.now;
            k.nodes[node].buckets.charge(Bucket::Idle, gap);
        }
        let wake_at = start + dt;
        k.nodes[node].buckets.charge(bucket, dt);
        k.nodes[node].cpu_free = wake_at;
        if k.peek_time().is_none_or(|t| t >= wake_at) {
            k.now = wake_at;
            return false;
        }
        self.replay_park_until(k, pid, wake_at);
        true
    }

    fn replay_park_until(&self, k: &mut Kernel, pid: ProcId, wake_at: Ns) {
        let seq = k.procs[pid].park_seq + 1;
        k.push_event(wake_at, EvKind::Wake { pid, seq });
        replay_park(k, pid);
    }

    /// Serial `send_datagram` after the overhead advance. For
    /// fire-and-forget sends (`sync` false) this also retires the lane's
    /// covering promise — strictly *after* the resulting delivery (if any)
    /// lowered the destination's queued bound, so coverage never lapses.
    fn send_wire(&mut self, k: &mut Kernel, pid: ProcId, dst: NodeId, payload: Bytes, sync: bool) {
        let src = k.procs[pid].node;
        let now = k.now;
        if dst == src {
            k.nodes[src as usize].counters.add("net.loopback", 1);
            let dgram = Datagram {
                src,
                payload,
                sent_at: now,
            };
            self.pend_add_published(dst, now);
            k.push_event(now, EvKind::Deliver { dst, dgram });
            if !sync {
                let ch = &self.reps[pid].chan;
                let mut q = ch.q.lock();
                let t = q.loop_pending.pop_front().expect("ff loopback tracked");
                debug_assert_eq!(t, now, "loopback promise diverged from the replay");
                let head = q.loop_pending.front().copied().unwrap_or(u64::MAX);
                ch.loop_head.store(head, Ordering::Release);
            }
            return;
        }
        k.nodes[src as usize].net.messages += 1;
        k.nodes[src as usize].net.payload_bytes += payload.len() as u64;
        k.nodes[src as usize].net.classes.note(&payload);
        k.nodes[src as usize].counters.add("net.sent", 1);
        k.nodes[src as usize]
            .counters
            .add("net.sent_bytes", payload.len() as u64);
        debug_assert!(k.observer.is_none(), "observers force serial mode");
        if let Some(deliver_at) = k.wire_transmit_frame(src, dst, &payload, now) {
            let dgram = Datagram {
                src,
                payload,
                sent_at: now,
            };
            self.pend_add_published(dst, deliver_at);
            k.push_event(deliver_at, EvKind::Deliver { dst, dgram });
        }
        if !sync {
            // Retire the promise whether the frame was delivered or lost:
            // a lost frame needs no coverage.
            let ch = &self.reps[pid].chan;
            let mut q = ch.q.lock();
            let _ = q.send_minq[dst as usize]
                .pop_front()
                .expect("ff send tracked");
            let head = q.send_minq[dst as usize]
                .front()
                .copied()
                .unwrap_or(u64::MAX);
            ch.send_min[dst as usize].store(head, Ordering::Release);
        }
    }

    /// One iteration of the serial `wait_recv` loop body.
    fn wait_recv_step(&mut self, k: &mut Kernel, pid: ProcId, deadline: Option<Ns>) -> StepRes {
        let node = k.procs[pid].node as usize;
        if let Some(d) = k.nodes[node].mailbox.pop_front() {
            self.mirror_pop_replay(node as NodeId, &d);
            let ro = k.config.recv_overhead;
            if self.replay_advance(k, pid, Bucket::Unix, ro) {
                self.mark_rv_parked(pid);
                self.reps[pid].cont = Some(Cont::RecvOverhead { publish: Some(d) });
                return StepRes::Parked;
            }
            self.publish(pid, Outcome::Recv(Some(d), k.now));
            return StepRes::Done;
        }
        if let Some(dl) = deadline {
            if k.now >= dl {
                self.publish(pid, Outcome::Recv(None, k.now));
                return StepRes::Done;
            }
        }
        let park_start = k.now;
        k.procs[pid].waiting_for_msg = true;
        if let Some(dl) = deadline {
            let seq = k.procs[pid].park_seq + 1;
            k.push_event(dl, EvKind::Wake { pid, seq });
        }
        replay_park(k, pid);
        self.mark_rv_parked(pid);
        self.reps[pid].cont = Some(Cont::WaitRecv {
            deadline,
            park_start,
        });
        StepRes::Parked
    }

    /// One iteration of the serial `wait_mailbox` loop body.
    fn wait_mailbox_step(&mut self, k: &mut Kernel, pid: ProcId, deadline: Option<Ns>) -> StepRes {
        let node = k.procs[pid].node as usize;
        if !k.nodes[node].mailbox.is_empty() {
            self.publish(pid, Outcome::Flag(true, k.now));
            return StepRes::Done;
        }
        if let Some(dl) = deadline {
            if k.now >= dl {
                self.publish(pid, Outcome::Flag(false, k.now));
                return StepRes::Done;
            }
        }
        let park_start = k.now;
        k.procs[pid].waiting_for_msg = true;
        if let Some(dl) = deadline {
            let seq = k.procs[pid].park_seq + 1;
            k.push_event(dl, EvKind::Wake { pid, seq });
        }
        replay_park(k, pid);
        self.mark_rv_parked(pid);
        self.reps[pid].cont = Some(Cont::WaitMailbox {
            deadline,
            park_start,
        });
        StepRes::Parked
    }

    fn apply_op(&mut self, k: &mut Kernel, pid: ProcId, op: Op) -> StepRes {
        match op {
            Op::Advance { bucket, dt, sync } => {
                if self.replay_advance(k, pid, bucket, dt) {
                    if sync {
                        self.mark_rv_parked(pid);
                    }
                    self.reps[pid].cont = Some(Cont::Park {
                        publish_clock: sync,
                    });
                    return StepRes::Parked;
                }
                if sync {
                    self.publish(pid, Outcome::Clock(k.now));
                }
                StepRes::Done
            }
            Op::Sleep { dt } => {
                let node = k.procs[pid].node as usize;
                let wake_at = k.now + dt;
                k.nodes[node].buckets.charge(Bucket::Idle, dt);
                self.replay_park_until(k, pid, wake_at);
                self.reps[pid].cont = Some(Cont::Park {
                    publish_clock: false,
                });
                StepRes::Parked
            }
            Op::Count { name, v } => {
                let node = k.procs[pid].node as usize;
                k.nodes[node].counters.add(name, v);
                StepRes::Done
            }
            Op::CounterRead { name } => {
                let node = k.procs[pid].node as usize;
                let v = k.nodes[node].counters.get(name);
                self.publish(pid, Outcome::Value(v, k.now));
                StepRes::Done
            }
            Op::Send { dst, payload, sync } => {
                let so = k.config.send_overhead;
                if self.replay_advance(k, pid, Bucket::Unix, so) {
                    self.reps[pid].cont = Some(Cont::SendWire { dst, payload, sync });
                    return StepRes::Parked;
                }
                self.send_wire(k, pid, dst, payload, sync);
                if sync {
                    self.publish(pid, Outcome::Clock(k.now));
                }
                StepRes::Done
            }
            Op::QuietCompute { bucket, dt } => {
                let node = k.procs[pid].node as usize;
                debug_assert!(
                    k.nodes[node].mailbox.is_empty(),
                    "quiet compute with a pending delivery (lookahead bug)"
                );
                let start = k.now.max(k.nodes[node].cpu_free);
                debug_assert_eq!(start, k.now, "single-proc lane with a busy CPU");
                let wake_at = start + dt;
                if k.peek_time().is_none_or(|t| t >= wake_at) {
                    k.nodes[node].buckets.charge(bucket, dt);
                    k.nodes[node].cpu_free = wake_at;
                    k.now = wake_at;
                    return StepRes::Done;
                }
                k.procs[pid].waiting_for_msg = true;
                self.replay_park_until(k, pid, wake_at);
                self.reps[pid].cont = Some(Cont::QuietCompute { start, dt, bucket });
                StepRes::Parked
            }
            Op::Interruptible { bucket, dt } => {
                let node = k.procs[pid].node as usize;
                if !k.nodes[node].mailbox.is_empty() {
                    self.publish(pid, Outcome::Interrupt(Some(dt), k.now));
                    return StepRes::Done;
                }
                let start = k.now.max(k.nodes[node].cpu_free);
                if start > k.now {
                    let gap = start - k.now;
                    k.nodes[node].buckets.charge(Bucket::Idle, gap);
                }
                let wake_at = start + dt;
                if k.peek_time().is_none_or(|t| t >= wake_at) {
                    k.nodes[node].buckets.charge(bucket, dt);
                    k.nodes[node].cpu_free = wake_at;
                    k.now = wake_at;
                    self.publish(pid, Outcome::Interrupt(None, k.now));
                    return StepRes::Done;
                }
                k.procs[pid].waiting_for_msg = true;
                self.replay_park_until(k, pid, wake_at);
                self.mark_rv_parked(pid);
                self.reps[pid].cont = Some(Cont::Interruptible { start, dt, bucket });
                StepRes::Parked
            }
            Op::RecvHit { src, sent_at, len } => {
                let node = k.procs[pid].node as usize;
                let d = k.nodes[node]
                    .mailbox
                    .pop_front()
                    .expect("lane recv hit raced the mailbox");
                assert_eq!(
                    (d.src, d.sent_at, d.payload.len()),
                    (src, sent_at, len),
                    "lane popped a different datagram than the mailbox head"
                );
                // The lane already popped the mirror for this entry.
                let ro = k.config.recv_overhead;
                if self.replay_advance(k, pid, Bucket::Unix, ro) {
                    self.reps[pid].cont = Some(Cont::RecvOverhead { publish: None });
                    return StepRes::Parked;
                }
                StepRes::Done
            }
            Op::QuietTimeout { deadline } => {
                let node = k.procs[pid].node as usize;
                debug_assert!(
                    k.nodes[node].mailbox.is_empty(),
                    "quiet timeout with a pending delivery (lookahead bug)"
                );
                debug_assert!(deadline > k.now);
                let park_start = k.now;
                k.procs[pid].waiting_for_msg = true;
                let seq = k.procs[pid].park_seq + 1;
                k.push_event(deadline, EvKind::Wake { pid, seq });
                replay_park(k, pid);
                self.reps[pid].cont = Some(Cont::QuietTimeout {
                    deadline,
                    park_start,
                });
                StepRes::Parked
            }
            Op::TryRecv => {
                let node = k.procs[pid].node as usize;
                match k.nodes[node].mailbox.pop_front() {
                    Some(d) => {
                        self.mirror_pop_replay(node as NodeId, &d);
                        let ro = k.config.recv_overhead;
                        if self.replay_advance(k, pid, Bucket::Unix, ro) {
                            self.mark_rv_parked(pid);
                            self.reps[pid].cont = Some(Cont::RecvOverhead { publish: Some(d) });
                            return StepRes::Parked;
                        }
                        self.publish(pid, Outcome::Recv(Some(d), k.now));
                        StepRes::Done
                    }
                    None => {
                        self.publish(pid, Outcome::Recv(None, k.now));
                        StepRes::Done
                    }
                }
            }
            Op::WaitRecv { deadline } => self.wait_recv_step(k, pid, deadline),
            Op::WaitMailbox { deadline } => self.wait_mailbox_step(k, pid, deadline),
            Op::MailboxProbe => {
                let node = k.procs[pid].node as usize;
                let b = !k.nodes[node].mailbox.is_empty();
                self.publish(pid, Outcome::Flag(b, k.now));
                StepRes::Done
            }
            Op::Spawn { main } => {
                let node = k.procs[pid].node;
                let new_pid = k.procs.len();
                k.procs.push(ProcState {
                    cv: Arc::new(Condvar::new()),
                    node,
                    parked: true,
                    runnable: false,
                    finished: false,
                    park_seq: 1,
                    waiting_for_msg: false,
                });
                k.live_procs += 1;
                let now = k.now;
                k.push_event(now, EvKind::Wake { pid: new_pid, seq: 1 });
                let chan = Arc::new(ProcChan::new(node, k.nodes.len()));
                chan.clock.store(now, Ordering::Release);
                // The node now shares its CPU between procs: disable the
                // mirror and force every lane op through the rendezvous
                // path (for both the spawner and the new proc).
                let lane = &self.shared.par.lanes[node as usize];
                {
                    let mut m = lane.mirror.lock();
                    m.enabled = false;
                    m.q.clear();
                }
                lane.multi.store(true, Ordering::Release);
                // Push before publishing the spawner's outcome: a quiet
                // reader either sees the new chan, or still sees the
                // spawner's clock pinned at `now`, which covers anything
                // the new proc can send (its sends start at `now` too).
                self.shared.par.chans.write().push(Arc::clone(&chan));
                self.reps.push(Rep {
                    chan,
                    cont: None,
                    buf: VecDeque::new(),
                });
                let ctx = NodeCtx::new_internal(
                    Arc::clone(&self.shared),
                    new_pid,
                    node,
                    k.nodes.len(),
                );
                let _ = spawn_proc_thread(ctx, main);
                self.publish(pid, Outcome::Clock(k.now));
                StepRes::Done
            }
            Op::Finished { panic } => {
                let node = k.procs[pid].node;
                k.procs[pid].finished = true;
                k.procs[pid].parked = false;
                k.live_procs -= 1;
                k.end_time = k.end_time.max(k.now);
                if let Some(p) = panic {
                    if k.panic.is_none() {
                        k.panic = Some(p);
                        k.panic_node = Some(node);
                    }
                }
                let ch = &self.reps[pid].chan;
                ch.dead.store(true, Ordering::Release);
                // A finished proc influences nobody: stop it from capping
                // other lanes' quiet bounds.
                ch.clock.store(u64::MAX, Ordering::Release);
                StepRes::Finished
            }
        }
    }

    fn step_cont(&mut self, k: &mut Kernel, pid: ProcId, cont: Cont) -> StepRes {
        match cont {
            Cont::Park { publish_clock } => {
                if publish_clock {
                    self.publish(pid, Outcome::Clock(k.now));
                }
                StepRes::Done
            }
            Cont::QuietCompute { start, dt, bucket } => {
                let node = k.procs[pid].node as usize;
                let ran = k.now.saturating_sub(start).min(dt);
                assert_eq!(
                    ran, dt,
                    "conservative lookahead violated: quiet compute was interrupted"
                );
                k.nodes[node].buckets.charge(bucket, ran);
                k.nodes[node].cpu_free = k.now.max(k.nodes[node].cpu_free);
                StepRes::Done
            }
            Cont::Interruptible { start, dt, bucket } => {
                let node = k.procs[pid].node as usize;
                let ran = k.now.saturating_sub(start).min(dt);
                k.nodes[node].buckets.charge(bucket, ran);
                k.nodes[node].cpu_free = k.now.max(k.nodes[node].cpu_free);
                let res = if ran < dt { Some(dt - ran) } else { None };
                self.publish(pid, Outcome::Interrupt(res, k.now));
                StepRes::Done
            }
            Cont::SendWire { dst, payload, sync } => {
                self.send_wire(k, pid, dst, payload, sync);
                if sync {
                    self.publish(pid, Outcome::Clock(k.now));
                }
                StepRes::Done
            }
            Cont::RecvOverhead { publish } => {
                if let Some(d) = publish {
                    self.publish(pid, Outcome::Recv(Some(d), k.now));
                }
                StepRes::Done
            }
            Cont::QuietTimeout {
                deadline,
                park_start,
            } => {
                let node = k.procs[pid].node as usize;
                assert_eq!(
                    k.now, deadline,
                    "conservative lookahead violated: quiet timeout woke early"
                );
                let waited = k.now - park_start;
                k.nodes[node].buckets.charge(Bucket::Idle, waited);
                debug_assert!(k.nodes[node].mailbox.is_empty());
                StepRes::Done
            }
            Cont::WaitRecv {
                deadline,
                park_start,
            } => {
                let node = k.procs[pid].node as usize;
                let waited = k.now - park_start;
                k.nodes[node].buckets.charge(Bucket::Idle, waited);
                self.wait_recv_step(k, pid, deadline)
            }
            Cont::WaitMailbox {
                deadline,
                park_start,
            } => {
                let node = k.procs[pid].node as usize;
                let waited = k.now - park_start;
                k.nodes[node].buckets.charge(Bucket::Idle, waited);
                self.wait_mailbox_step(k, pid, deadline)
            }
        }
    }

    /// Fail-stops every proc of `node`: the replay performs the bookkeeping
    /// the serial crash handshake delegates to each proc's epilogue, then
    /// cuts the lanes loose (their threads unwind at the next channel op).
    fn crash_lane(&mut self, k: &mut Kernel, node: NodeId) {
        let lane = &self.shared.par.lanes[node as usize];
        lane.crashed.store(true, Ordering::Release);
        {
            let mut m = lane.mirror.lock();
            m.enabled = false;
            m.q.clear();
        }
        let pids: Vec<ProcId> = k
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.node == node && !p.finished)
            .map(|(pid, _)| pid)
            .collect();
        for pid in pids {
            k.procs[pid].finished = true;
            k.procs[pid].parked = false;
            k.live_procs -= 1;
            k.end_time = k.end_time.max(k.now);
            let rep = &mut self.reps[pid];
            rep.cont = None;
            // Discard drained-but-unreplayed ops along with the queued
            // ones: they are ops the serial run would never execute (the
            // kernel cannot pass the crash event to reach them).
            rep.buf.clear();
            let ch = &rep.chan;
            {
                let mut q = ch.q.lock();
                q.ops.clear();
                q.outcome = None;
                q.loop_pending.clear();
                for d in q.send_minq.iter_mut() {
                    d.clear();
                }
                ch.dead.store(true, Ordering::Release);
                for sm in ch.send_min.iter() {
                    sm.store(u64::MAX, Ordering::Release);
                }
                ch.loop_head.store(u64::MAX, Ordering::Release);
                ch.clock.store(u64::MAX, Ordering::Release);
                ch.ops_cv.notify_all();
                ch.out_cv.notify_all();
            }
        }
    }
}

/// Serial `park` replayed: the state flip without the thread blocking.
fn replay_park(k: &mut Kernel, pid: ProcId) {
    let p = &mut k.procs[pid];
    p.parked = true;
    p.park_seq += 1;
}

/// The per-proc lane handle stored on a [`NodeCtx`]: empty in serial mode,
/// set once by the proc-thread preamble in parallel mode.
pub(crate) type LaneHandle = OnceLock<Arc<ProcChan>>;
