//! Virtual time and identifier types.

/// Virtual time in nanoseconds since simulation start.
pub type Ns = u64;

/// Identifier of a simulated cluster node (0-based, dense).
pub type NodeId = u32;

/// Converts microseconds to [`Ns`].
#[must_use]
pub const fn us(v: u64) -> Ns {
    v * 1_000
}

/// Converts milliseconds to [`Ns`].
#[must_use]
pub const fn ms(v: u64) -> Ns {
    v * 1_000_000
}

/// Converts whole seconds to [`Ns`].
#[must_use]
pub const fn secs(v: u64) -> Ns {
    v * 1_000_000_000
}

/// Converts [`Ns`] to fractional seconds.
#[must_use]
pub fn to_secs(ns: Ns) -> f64 {
    ns as f64 / 1e9
}

/// Converts [`Ns`] to whole microseconds (rounding down).
#[must_use]
pub const fn to_us(ns: Ns) -> u64 {
    ns / 1_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(us(5), 5_000);
        assert_eq!(ms(2), 2_000_000);
        assert_eq!(secs(1), 1_000_000_000);
        assert_eq!(to_us(us(123)), 123);
        assert!((to_secs(secs(3)) - 3.0).abs() < 1e-12);
    }
}
