//! Structured run failures: [`SimError`] and the proc [`abort`] escape.
//!
//! [`crate::Cluster::try_run`] reports every way a run can fail as a value
//! instead of a panic: which nodes crashed (per the fault plan), which
//! procs were still blocked and on what, and — for protocol layers that
//! detect a dead peer — an attributed abort with the detecting node and a
//! human-readable context. [`crate::Cluster::run`] keeps the historical
//! panicking behavior for tests and benchmarks that want failures loud.

use std::fmt;

use crate::time::{NodeId, Ns};

/// A proc still alive when the run failed, and what it was doing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedProc {
    /// Scheduler proc id (dense; the node's main proc comes first).
    pub pid: usize,
    /// Node the proc belongs to.
    pub node: NodeId,
    /// Parked waiting for a mailbox delivery (vs. a timer or the baton).
    pub waiting_for_msg: bool,
    /// The proc's virtual time when the run failed. In serial mode this is
    /// the global clock; in parallel mode it is the proc's lane clock,
    /// which names how far each blocked lane had progressed.
    pub at: Ns,
}

impl fmt::Display for BlockedProc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "proc {} on node {} ({}, t = {} ns)",
            self.pid,
            self.node,
            if self.waiting_for_msg {
                "waiting for a message"
            } else {
                "parked"
            },
            self.at
        )
    }
}

/// A structured simulation failure, returned by [`crate::Cluster::try_run`].
#[derive(Debug, Clone)]
pub enum SimError {
    /// No pending events but live procs remain: the protocol deadlocked
    /// (often because a scripted crash took a manager down with it).
    Stalled {
        /// Virtual time of the stall.
        at: Ns,
        /// The procs still alive and what they were waiting for.
        blocked: Vec<BlockedProc>,
        /// Nodes fail-stopped by the fault plan before the stall.
        crashed: Vec<NodeId>,
    },
    /// A proc called [`abort`]: a protocol layer detected an unrecoverable
    /// condition (e.g. a dead peer) and gave up cleanly.
    Aborted {
        /// Node that aborted.
        node: NodeId,
        /// Human-readable description of what was abandoned and why.
        context: String,
        /// Nodes fail-stopped by the fault plan before the abort.
        crashed: Vec<NodeId>,
    },
    /// A proc panicked (assertion failure, protocol bug).
    NodePanic {
        /// Node whose proc panicked, when attributable.
        node: Option<NodeId>,
        /// The panic payload, stringified when possible.
        message: String,
        /// Nodes fail-stopped by the fault plan before the panic.
        crashed: Vec<NodeId>,
    },
    /// The run exceeded [`crate::SimConfig::max_events`].
    MaxEvents {
        /// The configured limit.
        limit: u64,
        /// Virtual time when the valve tripped.
        at: Ns,
        /// Nodes fail-stopped by the fault plan before the valve tripped.
        crashed: Vec<NodeId>,
    },
    /// The run exceeded [`crate::SimConfig::max_virtual_time`].
    MaxVirtualTime {
        /// The configured limit (ns).
        limit: Ns,
        /// Nodes fail-stopped by the fault plan before the valve tripped.
        crashed: Vec<NodeId>,
    },
}

impl SimError {
    /// Nodes fail-stopped by the fault plan before the failure.
    #[must_use]
    pub fn crashed_nodes(&self) -> &[NodeId] {
        match self {
            SimError::Stalled { crashed, .. }
            | SimError::Aborted { crashed, .. }
            | SimError::NodePanic { crashed, .. }
            | SimError::MaxEvents { crashed, .. }
            | SimError::MaxVirtualTime { crashed, .. } => crashed,
        }
    }
}

fn write_crashed(f: &mut fmt::Formatter<'_>, crashed: &[NodeId]) -> fmt::Result {
    if crashed.is_empty() {
        return Ok(());
    }
    let list: Vec<String> = crashed.iter().map(ToString::to_string).collect();
    write!(f, "; crashed nodes: [{}]", list.join(", "))
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled {
                at,
                blocked,
                crashed,
            } => {
                let stuck: Vec<String> = blocked.iter().map(ToString::to_string).collect();
                write!(
                    f,
                    "simulation deadlock: no pending events at t = {at} ns but {} procs alive: [{}]",
                    blocked.len(),
                    stuck.join(", ")
                )?;
                write_crashed(f, crashed)
            }
            SimError::Aborted {
                node,
                context,
                crashed,
            } => {
                write!(f, "node {node} aborted: {context}")?;
                write_crashed(f, crashed)
            }
            SimError::NodePanic {
                node,
                message,
                crashed,
            } => {
                match node {
                    Some(n) => write!(f, "node {n} panicked: {message}")?,
                    None => write!(f, "a proc panicked: {message}")?,
                }
                write_crashed(f, crashed)
            }
            SimError::MaxEvents { limit, at, crashed } => {
                write!(
                    f,
                    "simulation exceeded max_events = {limit} (runaway protocol?) at t = {at} ns"
                )?;
                write_crashed(f, crashed)
            }
            SimError::MaxVirtualTime { limit, crashed } => {
                write!(f, "simulation exceeded max_virtual_time = {limit} ns")?;
                write_crashed(f, crashed)
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Panic payload carried by [`abort`]; recognized by the cluster runner
/// and turned into [`SimError::Aborted`].
#[derive(Debug, Clone)]
pub struct AbortInfo {
    /// Node that aborted.
    pub node: NodeId,
    /// Why.
    pub context: String,
}

impl fmt::Display for AbortInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {} aborted: {}", self.node, self.context)
    }
}

/// Aborts the calling proc with an attributed, structured failure.
///
/// Protocol layers call this when they detect an unrecoverable condition —
/// a peer flagged down by the failure detector, an operation that timed
/// out past its retry budget — instead of panicking with a bare message.
/// Under [`crate::Cluster::try_run`] the whole run then returns
/// [`SimError::Aborted`] naming this node; under [`crate::Cluster::run`]
/// it surfaces as a panic with the same text.
pub fn abort(node: NodeId, context: impl Into<String>) -> ! {
    std::panic::panic_any(AbortInfo {
        node,
        context: context.into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stalled_display_mentions_deadlock_and_crashes() {
        let e = SimError::Stalled {
            at: 123,
            blocked: vec![BlockedProc {
                pid: 0,
                node: 0,
                waiting_for_msg: true,
                at: 123,
            }],
            crashed: vec![1],
        };
        let s = e.to_string();
        assert!(s.contains("deadlock"), "must keep the deadlock marker: {s}");
        assert!(s.contains("waiting for a message"));
        assert!(s.contains("crashed nodes: [1]"));
    }

    #[test]
    fn aborted_display_names_node() {
        let e = SimError::Aborted {
            node: 2,
            context: "lock 7 acquire: peer down".into(),
            crashed: vec![0],
        };
        let s = e.to_string();
        assert!(s.contains("node 2 aborted"));
        assert!(s.contains("lock 7"));
        assert!(s.contains("crashed nodes: [0]"));
    }
}
