//! Simulator configuration: network model and cost constants.

use crate::{
    fault::FaultPlan,
    schedule::SchedulePlan,
    time::{us, Ns},
};
#[cfg(any(test, feature = "seeded-bugs"))]
use crate::time::NodeId;

/// Configuration for a simulated cluster.
///
/// The defaults describe the paper's testbed: a 10 Mbit/s shared Ethernet
/// with mid-1990s UDP/IP software overheads on DEC OSF/1. The `osdi94`
/// constructor documents the calibration used by the benchmark harnesses.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Network bandwidth in bits per second (shared medium).
    pub bandwidth_bps: u64,
    /// Fixed one-way latency after the frame leaves the wire (controller,
    /// interrupt dispatch) in nanoseconds.
    pub wire_latency: Ns,
    /// Per-frame header bytes occupying the wire but excluded from the
    /// "network utilization" statistic (Ethernet + IP + UDP headers; the
    /// paper's utilization figure is conservative in the same way).
    pub frame_header_bytes: u32,
    /// Sender-side software cost per datagram (syscall + UDP/IP stack),
    /// charged to the `Unix` bucket.
    pub send_overhead: Ns,
    /// Receiver-side software cost per datagram, charged to `Unix`.
    pub recv_overhead: Ns,
    /// Probability in `[0, 1]` that a datagram is dropped on the wire.
    pub loss_probability: f64,
    /// Seed for the loss-injection stream.
    pub loss_seed: u64,
    /// Abort the run if virtual time exceeds this bound (protocol-bug
    /// safety valve for tests). `None` disables the check.
    pub max_virtual_time: Option<Ns>,
    /// Abort the run after this many kernel events. `None` disables.
    pub max_events: Option<u64>,
    /// Scripted fault schedule (burst loss, partitions, pauses, crashes).
    /// The default empty plan injects nothing.
    pub fault_plan: FaultPlan,
    /// Maximum extra receiver-side delivery delay per frame, in
    /// nanoseconds. `0` (the default) disables jitter entirely: no random
    /// numbers are drawn and event timing is bit-identical to builds
    /// predating the knob. Nonzero values perturb cross-pair delivery
    /// ordering deterministically (per-pair FIFO is preserved), which the
    /// schedule-exploration harness uses to widen interleaving coverage.
    pub jitter_max: Ns,
    /// Seed for the delivery-jitter stream (independent of `loss_seed`).
    pub jitter_seed: u64,
    /// Run the conservative parallel scheduler: procs on *different* nodes
    /// whose work lies within the safe lookahead window execute
    /// concurrently on real host threads, while a serial replay of their
    /// operation logs keeps every kernel transition — event order, wire
    /// serialization, RNG draws, statistics — bit-identical to the
    /// single-baton runner. Off by default. Automatically falls back to
    /// serial whenever a [`crate::WireObserver`] (checker, tracer) is
    /// attached, since observers require a single serialized wire view.
    pub parallel: bool,
    /// Bounded capacity (in ops) of each lane's op-log channel under the
    /// parallel scheduler. Lanes that run this far ahead of the replay
    /// runner block until the runner drains the channel, bounding memory
    /// and lane run-ahead. Capacity never changes results — only how often
    /// the backpressure stall path is exercised — so tests force it small
    /// to stress that path. Must be nonzero.
    pub op_log_cap: usize,
    /// Targeted per-flow delivery perturbations. The empty default plan
    /// perturbs nothing and leaves event timing bit-identical to builds
    /// predating the knob. A non-empty plan adds the named extra delays to
    /// specific `(src, dst, seq)` DATA flows, preserving per-pair FIFO by
    /// the same clamp the jitter path uses. Deterministic (no RNG) and
    /// parallel-mode compatible: a plan only ever adds delay, so the
    /// conservative scheduler's lookahead lower bound still holds.
    pub schedule: SchedulePlan,
    /// Seeded wire bug for explorer-recall tests: when set, a plan-perturbed
    /// DATA frame on this `(src, dst)` pair skips the per-pair FIFO clamp,
    /// allowing its successor to overtake it — a protocol-order violation
    /// the checker's FIFO mirror reports. Only compiled under
    /// `cfg(any(test, feature = "seeded-bugs"))`; never set in production
    /// configs, and inert under the random jitter sweep (which uses no
    /// plan), so only guided exploration can expose it.
    #[cfg(any(test, feature = "seeded-bugs"))]
    pub seeded_fifo_pair: Option<(NodeId, NodeId)>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::osdi94()
    }
}

impl SimConfig {
    /// The calibration used to reproduce the paper's tables.
    ///
    /// - 10 Mbit/s Ethernet, 42-byte frame headers (14 Ethernet + 20 IP +
    ///   8 UDP), 50 µs fixed latency.
    /// - 350 µs per-datagram send cost and 400 µs receive cost. These sit in
    ///   the range measured for UDP on early-1990s workstation-class Unix
    ///   (the paper reports that OS and protocol-stack costs *dwarf* its
    ///   5–30 µs consistency costs, §5.4).
    /// - No loss: the paper's Ethernet was isolated, and its message counts
    ///   assume no retransmissions.
    #[must_use]
    pub fn osdi94() -> Self {
        Self {
            bandwidth_bps: 10_000_000,
            wire_latency: us(50),
            frame_header_bytes: 42,
            send_overhead: us(350),
            recv_overhead: us(400),
            loss_probability: 0.0,
            loss_seed: 0x0C0A_5105,
            max_virtual_time: None,
            max_events: None,
            fault_plan: FaultPlan::default(),
            jitter_max: 0,
            jitter_seed: 0,
            parallel: false,
            op_log_cap: 1024,
            schedule: SchedulePlan::new(),
            #[cfg(any(test, feature = "seeded-bugs"))]
            seeded_fifo_pair: None,
        }
    }

    /// A fast, loss-free network for unit tests that do not measure time.
    #[must_use]
    pub fn fast_test() -> Self {
        Self {
            bandwidth_bps: 1_000_000_000,
            wire_latency: us(1),
            frame_header_bytes: 0,
            send_overhead: us(1),
            recv_overhead: us(1),
            loss_probability: 0.0,
            loss_seed: 1,
            max_virtual_time: Some(crate::time::secs(7_200)),
            max_events: Some(200_000_000),
            fault_plan: FaultPlan::default(),
            jitter_max: 0,
            jitter_seed: 0,
            parallel: false,
            op_log_cap: 1024,
            schedule: SchedulePlan::new(),
            #[cfg(any(test, feature = "seeded-bugs"))]
            seeded_fifo_pair: None,
        }
    }

    /// Returns `self` with the conservative parallel scheduler enabled (or
    /// disabled) — builder style. Every `SimReport` fingerprint is
    /// bit-identical either way; parallelism only changes host wall-clock.
    #[must_use]
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Returns `self` with the given parallel op-log channel capacity
    /// (builder style). Results are capacity-independent; tests force a
    /// tiny capacity to stress the bounded-channel stall path.
    #[must_use]
    pub fn with_op_log_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "op_log_cap must be nonzero");
        self.op_log_cap = cap;
        self
    }

    /// Returns `self` with the given loss probability and seed (builder style).
    #[must_use]
    pub fn with_loss(mut self, probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "loss probability must be within [0, 1]"
        );
        self.loss_probability = probability;
        self.loss_seed = seed;
        self
    }

    /// Returns `self` with the given scripted fault plan (builder style).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Returns `self` with deterministic delivery jitter (builder style).
    /// Each successfully transmitted frame is delayed by an extra amount
    /// in `[0, max]` drawn from a stream seeded by `seed`; per-pair FIFO
    /// order is preserved by clamping to the pair's previous delivery time.
    #[must_use]
    pub fn with_jitter(mut self, max: Ns, seed: u64) -> Self {
        self.jitter_max = max;
        self.jitter_seed = seed;
        self
    }

    /// Returns `self` with the given targeted delivery-perturbation plan
    /// (builder style). Generalizes [`SimConfig::with_jitter`]: instead of
    /// delaying every frame by a pseudo-random amount, the plan delays only
    /// the named `(src, dst, seq)` DATA flows by chosen amounts. Composes
    /// with jitter (plan delay is added after the jitter draw).
    #[must_use]
    pub fn with_schedule(mut self, plan: SchedulePlan) -> Self {
        self.schedule = plan;
        self
    }

    /// Time a frame of `payload_bytes` occupies the shared wire.
    #[must_use]
    pub fn frame_time(&self, payload_bytes: usize) -> Ns {
        let bits = (payload_bytes as u64 + u64::from(self.frame_header_bytes)) * 8;
        // ns = bits / (bits/s) * 1e9, computed without overflow for sane sizes.
        bits * 1_000_000_000 / self.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_time_at_10mbit() {
        let c = SimConfig::osdi94();
        // 1208 bytes + 42 header = 1250 B = 10_000 bits = 1 ms at 10 Mbit/s.
        assert_eq!(c.frame_time(1208), 1_000_000);
        // Empty payload still pays for headers.
        assert!(c.frame_time(0) > 0);
    }

    #[test]
    fn with_loss_builder() {
        let c = SimConfig::fast_test().with_loss(0.25, 9);
        assert!((c.loss_probability - 0.25).abs() < 1e-12);
        assert_eq!(c.loss_seed, 9);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn with_loss_rejects_bad_probability() {
        let _ = SimConfig::fast_test().with_loss(1.5, 0);
    }

    #[test]
    fn with_schedule_builder() {
        let plan = SchedulePlan::new().delay(0, 1, 3, us(25));
        let c = SimConfig::fast_test().with_schedule(plan.clone());
        assert_eq!(c.schedule, plan);
        // Defaults carry the empty plan.
        assert!(SimConfig::osdi94().schedule.is_empty());
        assert!(SimConfig::fast_test().schedule.is_empty());
    }

    #[test]
    fn with_op_log_cap_builder() {
        let c = SimConfig::fast_test().with_op_log_cap(8);
        assert_eq!(c.op_log_cap, 8);
        assert_eq!(SimConfig::osdi94().op_log_cap, 1024);
        assert_eq!(SimConfig::fast_test().op_log_cap, 1024);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn with_op_log_cap_rejects_zero() {
        let _ = SimConfig::fast_test().with_op_log_cap(0);
    }

    #[test]
    fn with_jitter_builder() {
        let c = SimConfig::fast_test().with_jitter(us(50), 7);
        assert_eq!(c.jitter_max, us(50));
        assert_eq!(c.jitter_seed, 7);
        // Defaults keep jitter disabled.
        assert_eq!(SimConfig::osdi94().jitter_max, 0);
        assert_eq!(SimConfig::fast_test().jitter_max, 0);
    }
}
