//! Scheduler internals: the event queue, proc states, and the wire model.
//!
//! One global [`Kernel`] sits behind a mutex. Simulated procs (OS threads)
//! and the runner thread hand a *baton* back and forth: the runner pops the
//! earliest event, wakes the corresponding proc, and blocks until that proc
//! parks again. At most one proc executes at any real-time instant, and all
//! virtual-time ordering comes from the event queue, so runs are
//! deterministic.

use std::{
    any::Any,
    cmp::Reverse,
    collections::{BTreeMap, BinaryHeap, VecDeque},
    sync::Arc,
};

use parking_lot::Condvar;

use carlos_util::rng::{SplitMix64, Xoshiro256};

use crate::{
    cluster::{Datagram, WireObserver},
    config::SimConfig,
    fault::{DropCause, FaultState},
    stats::{Counters, NetStats, TimeBuckets},
    time::{NodeId, Ns},
};

/// Dense identifier of a simulated proc (thread of control).
pub(crate) type ProcId = usize;

/// What a scheduled event does when it fires.
#[derive(Debug)]
pub(crate) enum EvKind {
    /// Transfer the baton to proc `pid`, provided it is still parked with
    /// park ticket `seq` (stale wakes are ignored).
    Wake { pid: ProcId, seq: u64 },
    /// Append a datagram to `dst`'s mailbox and wake its mailbox waiters.
    Deliver { dst: NodeId, dgram: Datagram },
    /// Fail-stop `node` per the fault plan: discard its mailbox, terminate
    /// its procs, drop all future deliveries to it.
    Crash { node: NodeId },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub time: Ns,
    /// Global insertion sequence number: ties on `time` fire in push order,
    /// which keeps runs deterministic.
    pub ord: u64,
    pub kind: EvKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.ord == other.ord
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.ord).cmp(&(other.time, other.ord))
    }
}

/// Scheduler-visible state of one proc.
pub(crate) struct ProcState {
    /// Condvar the proc's OS thread blocks on while parked.
    pub cv: Arc<Condvar>,
    /// Node this proc belongs to.
    pub node: NodeId,
    /// True between park and the wake that hands the baton back.
    pub parked: bool,
    /// Set by the runner to hand the proc the baton.
    pub runnable: bool,
    /// The proc's main function returned (or panicked).
    pub finished: bool,
    /// Ticket incremented on every park; wake events must match it.
    pub park_seq: u64,
    /// Parked specifically waiting for a mailbox delivery.
    pub waiting_for_msg: bool,
}

/// Per-node state: mailbox, CPU availability, and statistics.
pub(crate) struct NodeState {
    pub mailbox: VecDeque<Datagram>,
    /// Virtual time at which the node's (single) CPU becomes free. Charges
    /// from concurrent user threads on one node serialize through this.
    pub cpu_free: Ns,
    pub buckets: TimeBuckets,
    pub counters: Counters,
    /// This node's shard of the wire statistics. Send-side figures
    /// (messages, bytes, loss) are charged to the sender's shard, delivery
    /// figures (delivered, pause deferrals, crash drops) to the receiver's.
    /// The report merges shards in node-id order, so totals are independent
    /// of which node did what and identical to the historical global tally.
    pub net: NetStats,
}

impl NodeState {
    fn new() -> Self {
        Self {
            mailbox: VecDeque::new(),
            cpu_free: 0,
            buckets: TimeBuckets::default(),
            counters: Counters::default(),
            net: NetStats::default(),
        }
    }
}

/// The global simulation state, always accessed under one mutex.
pub(crate) struct Kernel {
    pub config: SimConfig,
    pub now: Ns,
    pub queue: BinaryHeap<Reverse<Event>>,
    pub next_ord: u64,
    pub procs: Vec<ProcState>,
    pub nodes: Vec<NodeState>,
    /// Which proc currently holds the baton (None while the runner decides).
    pub running: Option<ProcId>,
    /// Number of spawned procs whose main has not finished.
    pub live_procs: usize,
    /// Virtual time at which the shared Ethernet becomes free.
    pub medium_busy_until: Ns,
    pub loss_rng: Xoshiro256,
    /// Per-source-node delivery-jitter streams, each deterministically
    /// reseeded from `(jitter_seed, src)`. Sharding by sender makes a
    /// pair's jitter sequence a function of that sender's own traffic
    /// order alone — independent of how transmissions from other nodes
    /// interleave on the shared wire — which is what lets the parallel
    /// scheduler treat jitter draws as lane-local state rather than a
    /// global rendezvous. Only consulted when `config.jitter_max > 0`, so
    /// jitter-free configs draw nothing and stay bit-identical.
    pub jitter_rngs: Vec<Xoshiro256>,
    /// Last scheduled delivery time per (src, dst) pair, used to clamp
    /// jittered deliveries so per-pair FIFO order is preserved. Empty (and
    /// never touched) while jitter is disabled.
    pub pair_last_delivery: BTreeMap<(NodeId, NodeId), Ns>,
    /// Scripted-fault runtime state compiled from the config's plan.
    pub fault: FaultState,
    /// Passive wire observer invoked at each mailbox delivery (checker
    /// instrumentation). Charges no virtual time.
    pub observer: Option<Arc<dyn WireObserver>>,
    /// First panic payload captured from a proc, re-thrown by the runner.
    pub panic: Option<Box<dyn Any + Send>>,
    /// Node of the proc whose panic was captured.
    pub panic_node: Option<NodeId>,
    /// Set when the run is being torn down; parked procs abort.
    pub poisoned: bool,
    /// Events processed so far (for the runaway safety valve).
    pub events_processed: u64,
    /// Virtual time when the last proc finished.
    pub end_time: Ns,
}

impl Kernel {
    pub fn new(config: SimConfig, n_nodes: usize) -> Self {
        let loss_rng = Xoshiro256::new(config.loss_seed);
        let jitter_rngs = (0..n_nodes)
            .map(|src| Xoshiro256::new(jitter_shard_seed(config.jitter_seed, src as u64)))
            .collect();
        let fault = FaultState::new(&config.fault_plan, n_nodes);
        let crashes: Vec<(NodeId, Ns)> = config.fault_plan.crash_times().collect();
        let mut k = Self {
            config,
            now: 0,
            queue: BinaryHeap::new(),
            next_ord: 0,
            procs: Vec::new(),
            nodes: (0..n_nodes).map(|_| NodeState::new()).collect(),
            running: None,
            live_procs: 0,
            medium_busy_until: 0,
            loss_rng,
            jitter_rngs,
            pair_last_delivery: BTreeMap::new(),
            fault,
            observer: None,
            panic: None,
            panic_node: None,
            poisoned: false,
            events_processed: 0,
            end_time: 0,
        };
        for (node, at) in crashes {
            k.push_event(at, EvKind::Crash { node });
        }
        k
    }

    pub fn push_event(&mut self, time: Ns, kind: EvKind) {
        let ord = self.next_ord;
        self.next_ord += 1;
        self.queue.push(Reverse(Event { time, ord, kind }));
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Ns> {
        self.queue.peek().map(|Reverse(e)| e.time)
    }

    /// Models the shared wire carrying `bytes` of payload from `src` to
    /// `dst` starting no earlier than `ready_at`. Returns
    /// `Some(delivery_time)` or `None` if loss injection — uniform or
    /// scripted (burst window, partition) — dropped the frame. The wire is
    /// occupied either way.
    ///
    /// The fault evaluation is additive and deterministic: the scripted
    /// fault state is advanced for every frame (its Gilbert–Elliott streams
    /// depend only on traffic order, not on the uniform-loss RNG), and the
    /// uniform-loss draw is short-circuited when `loss_probability` is zero,
    /// so fault-free configs see bit-identical RNG consumption with or
    /// without this code path.
    pub fn wire_transmit(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        ready_at: Ns,
    ) -> Option<Ns> {
        let start = self.medium_busy_until.max(ready_at);
        let ft = self.config.frame_time(bytes);
        self.medium_busy_until = start + ft;
        let base_drop = self.config.loss_probability > 0.0
            && self.loss_rng.next_f64() < self.config.loss_probability;
        let fault_drop = self.fault.frame_fate(src, dst, start);
        if base_drop {
            self.nodes[src as usize].net.dropped += 1;
            return None;
        }
        match fault_drop {
            Some(DropCause::Burst) => {
                self.nodes[src as usize].net.dropped += 1;
                self.nodes[src as usize].net.dropped_burst += 1;
                None
            }
            Some(DropCause::Partition) => {
                self.nodes[src as usize].net.dropped += 1;
                self.nodes[src as usize].net.dropped_partition += 1;
                None
            }
            None => {
                let mut at = start + ft + self.config.wire_latency;
                if self.config.jitter_max > 0 {
                    // Receiver-side scheduling variance: delay the delivery
                    // event without occupying the medium longer. Clamping to
                    // the pair's previous delivery time preserves per-pair
                    // FIFO (which the transport and `known`-snapshot logic
                    // rely on); cross-pair reordering is the point.
                    at += self.jitter_rngs[src as usize].next_below(self.config.jitter_max + 1)
                        as Ns;
                    let last = self
                        .pair_last_delivery
                        .entry((src, dst))
                        .or_insert(0);
                    at = at.max(*last);
                    *last = at;
                }
                Some(at)
            }
        }
    }

    /// [`Kernel::wire_transmit`] plus targeted schedule-plan perturbation.
    ///
    /// Inspects the frame's wire header to identify its flow: DATA frames
    /// carry the per-(src, dst) transport sequence number, and if the
    /// config's [`crate::SchedulePlan`] names the `(src, dst, seq)` flow,
    /// the plan's extra delay is added to the delivery time. The per-pair
    /// FIFO clamp then runs for *every* frame on the wire (not just
    /// perturbed ones) whenever a plan is installed, mirroring the jitter
    /// path: delaying one DATA frame must also hold back its successors on
    /// the same pair, or the transport's in-order assumption breaks.
    ///
    /// With the empty plan this is exactly `wire_transmit`: no header
    /// parsing, no clamp bookkeeping, bit-identical timing.
    pub fn wire_transmit_frame(
        &mut self,
        src: NodeId,
        dst: NodeId,
        payload: &[u8],
        ready_at: Ns,
    ) -> Option<Ns> {
        let base = self.wire_transmit(src, dst, payload.len(), ready_at)?;
        if self.config.schedule.is_empty() {
            return Some(base);
        }
        let mut at = base;
        if let Some(seq) = data_frame_seq(payload) {
            if let Some(extra) = self.config.schedule.get(src, dst, seq) {
                at += extra;
                // Seeded bug (FifoReorder): on the configured pair a
                // perturbed frame skips the FIFO clamp below and leaves no
                // record of its delivery time, so the pair's next frame can
                // overtake it — the checker's FIFO mirror flags the swap.
                #[cfg(any(test, feature = "seeded-bugs"))]
                if self.config.seeded_fifo_pair == Some((src, dst)) {
                    return Some(at);
                }
            }
        }
        let last = self.pair_last_delivery.entry((src, dst)).or_insert(0);
        at = at.max(*last);
        *last = at;
        Some(at)
    }
}

/// Deterministic per-source seed for a jitter shard: a SplitMix64 hop from
/// the user seed mixed with the source node id, so shards are decorrelated
/// even for adjacent seeds/nodes while staying a pure function of
/// `(seed, src)`.
fn jitter_shard_seed(seed: u64, src: u64) -> u64 {
    SplitMix64::new(seed ^ (src + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// Transport sequence number of a DATA frame, parsed from the wire header
/// (`None` for control frames and anything too short to carry a header).
fn data_frame_seq(payload: &[u8]) -> Option<u32> {
    use crate::transport::{HEADER_BYTES, KIND_DATA};
    if payload.len() >= HEADER_BYTES && payload[0] == KIND_DATA {
        Some(u32::from_le_bytes(payload[1..HEADER_BYTES].try_into().ok()?))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SchedulePlan;

    fn frame(seq: u32) -> Vec<u8> {
        let mut p = vec![0u8; 64];
        p[1..5].copy_from_slice(&seq.to_le_bytes());
        p
    }

    #[test]
    fn plan_clamp_holds_back_successors() {
        let cfg = SimConfig::fast_test()
            .with_schedule(SchedulePlan::new().delay(0, 1, 0, crate::time::ms(10)));
        let mut k = Kernel::new(cfg, 2);
        let t0 = k.wire_transmit_frame(0, 1, &frame(0), 0).unwrap();
        let t1 = k.wire_transmit_frame(0, 1, &frame(1), 0).unwrap();
        assert!(t0 >= crate::time::ms(10));
        assert!(t1 >= t0, "FIFO clamp failed: {t1} < {t0}");
    }

    #[test]
    fn jitter_shards_are_interleaving_independent() {
        // One node's jitter draws must not depend on how often *other*
        // nodes transmit in between: the draws come from per-source
        // streams seeded by (jitter_seed, src).
        let cfg = || SimConfig::fast_test().with_jitter(crate::time::us(200), 42);
        let draws = |k: &mut Kernel, n: usize| -> Vec<Ns> {
            (0..n)
                .map(|_| k.jitter_rngs[0].next_below(1000))
                .collect()
        };
        let mut alone = Kernel::new(cfg(), 3);
        let expect = draws(&mut alone, 4);
        let mut busy = Kernel::new(cfg(), 3);
        let mut got = Vec::new();
        for _ in 0..4 {
            // Interleave traffic from src 1 and 2; src 0's stream is its own.
            let _ = busy.wire_transmit(1, 2, 64, 0);
            let _ = busy.wire_transmit(2, 1, 64, 0);
            got.push(busy.jitter_rngs[0].next_below(1000));
        }
        assert_eq!(got, expect);
        // Different sources draw from decorrelated streams.
        let mut k = Kernel::new(cfg(), 3);
        let a: Vec<u64> = (0..4).map(|_| k.jitter_rngs[1].next_below(1000)).collect();
        let b: Vec<u64> = (0..4).map(|_| k.jitter_rngs[2].next_below(1000)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn seeded_fifo_pair_lets_successor_overtake() {
        let mut cfg = SimConfig::fast_test()
            .with_schedule(SchedulePlan::new().delay(0, 1, 0, crate::time::ms(10)));
        cfg.seeded_fifo_pair = Some((0, 1));
        let mut k = Kernel::new(cfg, 2);
        let t0 = k.wire_transmit_frame(0, 1, &frame(0), 0).unwrap();
        let t1 = k.wire_transmit_frame(0, 1, &frame(1), 0).unwrap();
        assert!(t1 < t0, "seeded bug should let seq 1 overtake: {t1} {t0}");
        // The bug is pair-scoped: other pairs still clamp.
        let u0 = k.wire_transmit_frame(1, 0, &frame(0), 0).unwrap();
        let u1 = k.wire_transmit_frame(1, 0, &frame(1), 0).unwrap();
        assert!(u1 >= u0);
    }
}
