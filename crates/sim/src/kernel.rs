//! Scheduler internals: the event queue, proc states, and the wire model.
//!
//! One global [`Kernel`] sits behind a mutex. Simulated procs (OS threads)
//! and the runner thread hand a *baton* back and forth: the runner pops the
//! earliest event, wakes the corresponding proc, and blocks until that proc
//! parks again. At most one proc executes at any real-time instant, and all
//! virtual-time ordering comes from the event queue, so runs are
//! deterministic.

use std::{
    any::Any,
    cmp::Reverse,
    collections::{BinaryHeap, VecDeque},
    sync::Arc,
};

use parking_lot::Condvar;

use carlos_util::rng::Xoshiro256;

use crate::{
    cluster::Datagram,
    config::SimConfig,
    stats::{Counters, NetStats, TimeBuckets},
    time::{NodeId, Ns},
};

/// Dense identifier of a simulated proc (thread of control).
pub(crate) type ProcId = usize;

/// What a scheduled event does when it fires.
#[derive(Debug)]
pub(crate) enum EvKind {
    /// Transfer the baton to proc `pid`, provided it is still parked with
    /// park ticket `seq` (stale wakes are ignored).
    Wake { pid: ProcId, seq: u64 },
    /// Append a datagram to `dst`'s mailbox and wake its mailbox waiters.
    Deliver { dst: NodeId, dgram: Datagram },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub time: Ns,
    /// Global insertion sequence number: ties on `time` fire in push order,
    /// which keeps runs deterministic.
    pub ord: u64,
    pub kind: EvKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.ord == other.ord
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.ord).cmp(&(other.time, other.ord))
    }
}

/// Scheduler-visible state of one proc.
pub(crate) struct ProcState {
    /// Condvar the proc's OS thread blocks on while parked.
    pub cv: Arc<Condvar>,
    /// Node this proc belongs to.
    pub node: NodeId,
    /// True between park and the wake that hands the baton back.
    pub parked: bool,
    /// Set by the runner to hand the proc the baton.
    pub runnable: bool,
    /// The proc's main function returned (or panicked).
    pub finished: bool,
    /// Ticket incremented on every park; wake events must match it.
    pub park_seq: u64,
    /// Parked specifically waiting for a mailbox delivery.
    pub waiting_for_msg: bool,
}

/// Per-node state: mailbox, CPU availability, and statistics.
pub(crate) struct NodeState {
    pub mailbox: VecDeque<Datagram>,
    /// Virtual time at which the node's (single) CPU becomes free. Charges
    /// from concurrent user threads on one node serialize through this.
    pub cpu_free: Ns,
    pub buckets: TimeBuckets,
    pub counters: Counters,
}

impl NodeState {
    fn new() -> Self {
        Self {
            mailbox: VecDeque::new(),
            cpu_free: 0,
            buckets: TimeBuckets::default(),
            counters: Counters::default(),
        }
    }
}

/// The global simulation state, always accessed under one mutex.
pub(crate) struct Kernel {
    pub config: SimConfig,
    pub now: Ns,
    pub queue: BinaryHeap<Reverse<Event>>,
    pub next_ord: u64,
    pub procs: Vec<ProcState>,
    pub nodes: Vec<NodeState>,
    /// Which proc currently holds the baton (None while the runner decides).
    pub running: Option<ProcId>,
    /// Number of spawned procs whose main has not finished.
    pub live_procs: usize,
    /// Virtual time at which the shared Ethernet becomes free.
    pub medium_busy_until: Ns,
    pub net: NetStats,
    pub loss_rng: Xoshiro256,
    /// First panic payload captured from a proc, re-thrown by the runner.
    pub panic: Option<Box<dyn Any + Send>>,
    /// Set when the run is being torn down; parked procs abort.
    pub poisoned: bool,
    /// Events processed so far (for the runaway safety valve).
    pub events_processed: u64,
    /// Virtual time when the last proc finished.
    pub end_time: Ns,
}

impl Kernel {
    pub fn new(config: SimConfig, n_nodes: usize) -> Self {
        let loss_rng = Xoshiro256::new(config.loss_seed);
        Self {
            config,
            now: 0,
            queue: BinaryHeap::new(),
            next_ord: 0,
            procs: Vec::new(),
            nodes: (0..n_nodes).map(|_| NodeState::new()).collect(),
            running: None,
            live_procs: 0,
            medium_busy_until: 0,
            net: NetStats::default(),
            loss_rng,
            panic: None,
            poisoned: false,
            events_processed: 0,
            end_time: 0,
        }
    }

    pub fn push_event(&mut self, time: Ns, kind: EvKind) {
        let ord = self.next_ord;
        self.next_ord += 1;
        self.queue.push(Reverse(Event { time, ord, kind }));
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Ns> {
        self.queue.peek().map(|Reverse(e)| e.time)
    }

    /// Models the shared wire carrying `bytes` of payload starting no
    /// earlier than `ready_at`. Returns `Some(delivery_time)` or `None` if
    /// loss injection dropped the frame (the wire is occupied either way).
    pub fn wire_transmit(&mut self, bytes: usize, ready_at: Ns) -> Option<Ns> {
        let start = self.medium_busy_until.max(ready_at);
        let ft = self.config.frame_time(bytes);
        self.medium_busy_until = start + ft;
        let dropped = self.config.loss_probability > 0.0
            && self.loss_rng.next_f64() < self.config.loss_probability;
        if dropped {
            self.net.dropped += 1;
            None
        } else {
            Some(start + ft + self.config.wire_latency)
        }
    }
}
