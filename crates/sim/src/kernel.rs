//! Scheduler internals: the event queue, proc states, and the wire model.
//!
//! One global [`Kernel`] sits behind a mutex. Simulated procs (OS threads)
//! and the runner thread hand a *baton* back and forth: the runner pops the
//! earliest event, wakes the corresponding proc, and blocks until that proc
//! parks again. At most one proc executes at any real-time instant, and all
//! virtual-time ordering comes from the event queue, so runs are
//! deterministic.

use std::{
    any::Any,
    cmp::Reverse,
    collections::{BTreeMap, BinaryHeap, VecDeque},
    sync::Arc,
};

use parking_lot::Condvar;

use carlos_util::rng::Xoshiro256;

use crate::{
    cluster::{Datagram, WireObserver},
    config::SimConfig,
    fault::{DropCause, FaultState},
    stats::{Counters, NetStats, TimeBuckets},
    time::{NodeId, Ns},
};

/// Dense identifier of a simulated proc (thread of control).
pub(crate) type ProcId = usize;

/// What a scheduled event does when it fires.
#[derive(Debug)]
pub(crate) enum EvKind {
    /// Transfer the baton to proc `pid`, provided it is still parked with
    /// park ticket `seq` (stale wakes are ignored).
    Wake { pid: ProcId, seq: u64 },
    /// Append a datagram to `dst`'s mailbox and wake its mailbox waiters.
    Deliver { dst: NodeId, dgram: Datagram },
    /// Fail-stop `node` per the fault plan: discard its mailbox, terminate
    /// its procs, drop all future deliveries to it.
    Crash { node: NodeId },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub time: Ns,
    /// Global insertion sequence number: ties on `time` fire in push order,
    /// which keeps runs deterministic.
    pub ord: u64,
    pub kind: EvKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.ord == other.ord
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.ord).cmp(&(other.time, other.ord))
    }
}

/// Scheduler-visible state of one proc.
pub(crate) struct ProcState {
    /// Condvar the proc's OS thread blocks on while parked.
    pub cv: Arc<Condvar>,
    /// Node this proc belongs to.
    pub node: NodeId,
    /// True between park and the wake that hands the baton back.
    pub parked: bool,
    /// Set by the runner to hand the proc the baton.
    pub runnable: bool,
    /// The proc's main function returned (or panicked).
    pub finished: bool,
    /// Ticket incremented on every park; wake events must match it.
    pub park_seq: u64,
    /// Parked specifically waiting for a mailbox delivery.
    pub waiting_for_msg: bool,
}

/// Per-node state: mailbox, CPU availability, and statistics.
pub(crate) struct NodeState {
    pub mailbox: VecDeque<Datagram>,
    /// Virtual time at which the node's (single) CPU becomes free. Charges
    /// from concurrent user threads on one node serialize through this.
    pub cpu_free: Ns,
    pub buckets: TimeBuckets,
    pub counters: Counters,
    /// This node's shard of the wire statistics. Send-side figures
    /// (messages, bytes, loss) are charged to the sender's shard, delivery
    /// figures (delivered, pause deferrals, crash drops) to the receiver's.
    /// The report merges shards in node-id order, so totals are independent
    /// of which node did what and identical to the historical global tally.
    pub net: NetStats,
}

impl NodeState {
    fn new() -> Self {
        Self {
            mailbox: VecDeque::new(),
            cpu_free: 0,
            buckets: TimeBuckets::default(),
            counters: Counters::default(),
            net: NetStats::default(),
        }
    }
}

/// The global simulation state, always accessed under one mutex.
pub(crate) struct Kernel {
    pub config: SimConfig,
    pub now: Ns,
    pub queue: BinaryHeap<Reverse<Event>>,
    pub next_ord: u64,
    pub procs: Vec<ProcState>,
    pub nodes: Vec<NodeState>,
    /// Which proc currently holds the baton (None while the runner decides).
    pub running: Option<ProcId>,
    /// Number of spawned procs whose main has not finished.
    pub live_procs: usize,
    /// Virtual time at which the shared Ethernet becomes free.
    pub medium_busy_until: Ns,
    pub loss_rng: Xoshiro256,
    /// Delivery-jitter stream; only consulted when `config.jitter_max > 0`,
    /// so jitter-free configs draw nothing and stay bit-identical.
    pub jitter_rng: Xoshiro256,
    /// Last scheduled delivery time per (src, dst) pair, used to clamp
    /// jittered deliveries so per-pair FIFO order is preserved. Empty (and
    /// never touched) while jitter is disabled.
    pub pair_last_delivery: BTreeMap<(NodeId, NodeId), Ns>,
    /// Scripted-fault runtime state compiled from the config's plan.
    pub fault: FaultState,
    /// Passive wire observer invoked at each mailbox delivery (checker
    /// instrumentation). Charges no virtual time.
    pub observer: Option<Arc<dyn WireObserver>>,
    /// First panic payload captured from a proc, re-thrown by the runner.
    pub panic: Option<Box<dyn Any + Send>>,
    /// Node of the proc whose panic was captured.
    pub panic_node: Option<NodeId>,
    /// Set when the run is being torn down; parked procs abort.
    pub poisoned: bool,
    /// Events processed so far (for the runaway safety valve).
    pub events_processed: u64,
    /// Virtual time when the last proc finished.
    pub end_time: Ns,
}

impl Kernel {
    pub fn new(config: SimConfig, n_nodes: usize) -> Self {
        let loss_rng = Xoshiro256::new(config.loss_seed);
        let jitter_rng = Xoshiro256::new(config.jitter_seed);
        let fault = FaultState::new(&config.fault_plan, n_nodes);
        let crashes: Vec<(NodeId, Ns)> = config.fault_plan.crash_times().collect();
        let mut k = Self {
            config,
            now: 0,
            queue: BinaryHeap::new(),
            next_ord: 0,
            procs: Vec::new(),
            nodes: (0..n_nodes).map(|_| NodeState::new()).collect(),
            running: None,
            live_procs: 0,
            medium_busy_until: 0,
            loss_rng,
            jitter_rng,
            pair_last_delivery: BTreeMap::new(),
            fault,
            observer: None,
            panic: None,
            panic_node: None,
            poisoned: false,
            events_processed: 0,
            end_time: 0,
        };
        for (node, at) in crashes {
            k.push_event(at, EvKind::Crash { node });
        }
        k
    }

    pub fn push_event(&mut self, time: Ns, kind: EvKind) {
        let ord = self.next_ord;
        self.next_ord += 1;
        self.queue.push(Reverse(Event { time, ord, kind }));
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Ns> {
        self.queue.peek().map(|Reverse(e)| e.time)
    }

    /// Models the shared wire carrying `bytes` of payload from `src` to
    /// `dst` starting no earlier than `ready_at`. Returns
    /// `Some(delivery_time)` or `None` if loss injection — uniform or
    /// scripted (burst window, partition) — dropped the frame. The wire is
    /// occupied either way.
    ///
    /// The fault evaluation is additive and deterministic: the scripted
    /// fault state is advanced for every frame (its Gilbert–Elliott streams
    /// depend only on traffic order, not on the uniform-loss RNG), and the
    /// uniform-loss draw is short-circuited when `loss_probability` is zero,
    /// so fault-free configs see bit-identical RNG consumption with or
    /// without this code path.
    pub fn wire_transmit(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        ready_at: Ns,
    ) -> Option<Ns> {
        let start = self.medium_busy_until.max(ready_at);
        let ft = self.config.frame_time(bytes);
        self.medium_busy_until = start + ft;
        let base_drop = self.config.loss_probability > 0.0
            && self.loss_rng.next_f64() < self.config.loss_probability;
        let fault_drop = self.fault.frame_fate(src, dst, start);
        if base_drop {
            self.nodes[src as usize].net.dropped += 1;
            return None;
        }
        match fault_drop {
            Some(DropCause::Burst) => {
                self.nodes[src as usize].net.dropped += 1;
                self.nodes[src as usize].net.dropped_burst += 1;
                None
            }
            Some(DropCause::Partition) => {
                self.nodes[src as usize].net.dropped += 1;
                self.nodes[src as usize].net.dropped_partition += 1;
                None
            }
            None => {
                let mut at = start + ft + self.config.wire_latency;
                if self.config.jitter_max > 0 {
                    // Receiver-side scheduling variance: delay the delivery
                    // event without occupying the medium longer. Clamping to
                    // the pair's previous delivery time preserves per-pair
                    // FIFO (which the transport and `known`-snapshot logic
                    // rely on); cross-pair reordering is the point.
                    at += self.jitter_rng.next_below(self.config.jitter_max + 1) as Ns;
                    let last = self
                        .pair_last_delivery
                        .entry((src, dst))
                        .or_insert(0);
                    at = at.max(*last);
                    *last = at;
                }
                Some(at)
            }
        }
    }
}
