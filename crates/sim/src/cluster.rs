//! Public simulator API: [`Cluster`], [`NodeCtx`], and [`SimReport`].

use std::{
    panic::{catch_unwind, resume_unwind, AssertUnwindSafe},
    sync::Arc,
    thread::JoinHandle,
};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::{
    config::SimConfig,
    error::{AbortInfo, BlockedProc, SimError},
    kernel::{EvKind, Kernel, ProcId, ProcState},
    parallel,
    stats::{Bucket, Counters, NetStats, TimeBuckets},
    time::{NodeId, Ns},
};

/// Passive observer of wire-level deliveries (checker instrumentation).
///
/// The event loop invokes [`WireObserver::frame_delivered`] on the runner
/// thread, under the kernel lock, at the instant a datagram is appended to
/// a destination mailbox. Implementations must only record: they must not
/// call back into the simulator, block on simulated state, or panic —
/// escalation belongs in node-side hooks. Loopback datagrams (src == dst)
/// skip the wire and are not reported. Observer calls charge no virtual
/// time, so observed runs are event-for-event identical to unobserved ones.
pub trait WireObserver: Send + Sync {
    /// A datagram from `src` was appended to `dst`'s mailbox.
    fn frame_delivered(
        &self,
        src: NodeId,
        dst: NodeId,
        sent_at: Ns,
        delivered_at: Ns,
        bytes: usize,
    );

    /// A datagram from `src` was handed to the wire toward `dst` at `at`
    /// (it may still be dropped). Fired from the sender's context, under
    /// the kernel lock. Default: ignored.
    fn frame_sent(&self, src: NodeId, dst: NodeId, at: Ns, payload: &Bytes) {
        let _ = (src, dst, at, payload);
    }

    /// A datagram from `src` toward `dst` was dropped by loss injection
    /// (uniform, burst, or partition) at send time. Default: ignored.
    fn frame_dropped(&self, src: NodeId, dst: NodeId, at: Ns, payload: &Bytes) {
        let _ = (src, dst, at, payload);
    }

    /// Payload-carrying companion to [`WireObserver::frame_delivered`],
    /// invoked immediately after it with the same frame. Split out so
    /// observers that only need sizes (the checker) keep their narrower
    /// signature. Default: ignored.
    fn frame_delivered_payload(
        &self,
        src: NodeId,
        dst: NodeId,
        sent_at: Ns,
        delivered_at: Ns,
        payload: &Bytes,
    ) {
        let _ = (src, dst, sent_at, delivered_at, payload);
    }
}

/// A datagram as seen by a receiving node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Sending node.
    pub src: NodeId,
    /// Payload bytes (transport headers included; wire frame headers not).
    /// A shared handle: forwarding or retransmitting a datagram clones the
    /// handle, not the bytes.
    pub payload: Bytes,
    /// Virtual time at which the sender handed the datagram to the wire.
    pub sent_at: Ns,
}

pub(crate) struct Shared {
    pub(crate) kernel: Mutex<Kernel>,
    pub(crate) runner_cv: Condvar,
    /// Parallel-mode control block (mode gate, op channels, lane state).
    /// Inert in serial mode beyond publishing the mode decision.
    pub(crate) par: parallel::ParCtrl,
}

/// Why the event loop stopped without a report.
pub(crate) enum RunFailure {
    /// A proc panicked; the payload is re-thrown (or stringified) later.
    Panic {
        payload: Box<dyn std::any::Any + Send>,
        /// Node of the panicking proc, when attributable.
        node: Option<NodeId>,
    },
    /// The runner itself detected a failure (deadlock, safety valve).
    Error(SimError),
}

/// A deterministic simulated cluster.
///
/// Create one, spawn a main proc per node with [`Cluster::spawn_node`], then
/// call [`Cluster::run`], which drives the event loop to completion on the
/// calling thread and returns a [`SimReport`].
pub struct Cluster {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    n_nodes: usize,
}

impl Cluster {
    /// Creates a cluster of `n_nodes` nodes (node ids `0..n_nodes`).
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes == 0`.
    #[must_use]
    pub fn new(config: SimConfig, n_nodes: usize) -> Self {
        assert!(n_nodes > 0, "a cluster needs at least one node");
        install_quiet_unwind_hook();
        let par = parallel::ParCtrl::new(&config, n_nodes);
        Self {
            shared: Arc::new(Shared {
                kernel: Mutex::new(Kernel::new(config, n_nodes)),
                runner_cv: Condvar::new(),
                par,
            }),
            threads: Vec::new(),
            n_nodes,
        }
    }

    /// Spawns the main proc of `node`, running `main` from virtual time 0.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn spawn_node(&mut self, node: NodeId, main: impl FnOnce(NodeCtx) + Send + 'static) {
        assert!(
            (node as usize) < self.n_nodes,
            "node {node} out of range (cluster has {} nodes)",
            self.n_nodes
        );
        let pid = self.register_proc(node, 0);
        let ctx = NodeCtx::new_internal(Arc::clone(&self.shared), pid, node, self.n_nodes);
        self.threads.push(spawn_proc_thread(ctx, main));
    }

    /// Installs a passive [`WireObserver`] notified at each non-loopback
    /// mailbox delivery. Install before [`Cluster::run`]; observation adds
    /// zero virtual-time cost.
    pub fn set_observer(&mut self, obs: Arc<dyn WireObserver>) {
        self.shared.kernel.lock().observer = Some(obs);
    }

    fn register_proc(&self, node: NodeId, start_at: Ns) -> ProcId {
        let mut k = self.shared.kernel.lock();
        let pid = k.procs.len();
        k.procs.push(ProcState {
            cv: Arc::new(Condvar::new()),
            node,
            parked: false,
            runnable: false,
            finished: false,
            park_seq: 0,
            waiting_for_msg: false,
        });
        k.live_procs += 1;
        // The proc's initial park will use ticket 1.
        k.push_event(start_at, EvKind::Wake { pid, seq: 1 });
        pid
    }

    /// Runs the simulation to completion and returns the report.
    ///
    /// # Panics
    ///
    /// Re-raises any panic from a proc (so test assertions inside node code
    /// fail the test), and panics on deadlock (all procs parked with no
    /// pending events) or when a configured safety valve trips. Use
    /// [`Cluster::try_run`] to receive those failures as a [`SimError`]
    /// value instead.
    pub fn run(mut self) -> SimReport {
        let outcome = self.event_loop();
        self.teardown();
        match outcome {
            Ok(report) => report,
            // Runner-synthesized failures re-panic with panic! so the
            // message actually prints; proc panics already printed.
            Err(RunFailure::Error(e)) => panic!("{e}"),
            Err(RunFailure::Panic { payload, .. }) => match payload.downcast::<AbortInfo>() {
                Ok(a) => panic!("{a}"),
                Err(other) => resume_unwind(other),
            },
        }
    }

    /// Runs the simulation to completion, returning failures as values.
    ///
    /// Unlike [`Cluster::run`], a deadlock, safety-valve trip, proc panic,
    /// or protocol-layer [`crate::abort`] does not panic here: it comes back
    /// as the corresponding [`SimError`] variant, with the fault plan's
    /// crashed nodes attached so callers can attribute the failure.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] describing how the run failed.
    pub fn try_run(mut self) -> Result<SimReport, SimError> {
        let outcome = self.event_loop();
        self.teardown();
        let crashed = self.shared.kernel.lock().fault.crashed_nodes();
        match outcome {
            Ok(report) => Ok(report),
            Err(RunFailure::Error(e)) => Err(e),
            Err(RunFailure::Panic { payload, node }) => match payload.downcast::<AbortInfo>() {
                Ok(a) => Err(SimError::Aborted {
                    node: a.node,
                    context: a.context,
                    crashed,
                }),
                Err(other) => Err(SimError::NodePanic {
                    node,
                    message: payload_message(&other),
                    crashed,
                }),
            },
        }
    }

    /// Poisons the kernel, wakes every parked proc, and joins all threads.
    fn teardown(&mut self) {
        self.shared.par.poison();
        {
            let mut k = self.shared.kernel.lock();
            k.poisoned = true;
            for p in &k.procs {
                if p.parked {
                    p.cv.notify_one();
                }
            }
        }
        for t in self.threads.drain(..) {
            // A proc that panicked already had its payload captured; the
            // join error here is its secondary "poisoned" unwind at worst.
            let _ = t.join();
        }
    }

    fn event_loop(&mut self) -> Result<SimReport, RunFailure> {
        let shared = Arc::clone(&self.shared);
        let mut k = shared.kernel.lock();
        // Decide the run mode once, before any proc executes. Observers
        // need the serialized single-baton wire view, so their presence
        // forces serial mode regardless of the config.
        let parallel = k.config.parallel && k.observer.is_none();
        shared.par.publish_mode(parallel, &mut k);
        if parallel {
            return parallel::event_loop(&shared, k);
        }
        loop {
            if let Some(p) = k.panic.take() {
                let node = k.panic_node.take();
                return Err(RunFailure::Panic { payload: p, node });
            }
            if k.live_procs == 0 {
                return Ok(build_report(&k));
            }
            let Some(std::cmp::Reverse(ev)) = k.queue.pop() else {
                return Err(RunFailure::Error(SimError::Stalled {
                    at: k.now,
                    blocked: blocked_procs(&k),
                    crashed: k.fault.crashed_nodes(),
                }));
            };
            k.events_processed += 1;
            if let Some(max) = k.config.max_events {
                if k.events_processed > max {
                    return Err(RunFailure::Error(SimError::MaxEvents {
                        limit: max,
                        at: k.now,
                        crashed: k.fault.crashed_nodes(),
                    }));
                }
            }
            debug_assert!(ev.time >= k.now, "event queue went backwards in time");
            k.now = k.now.max(ev.time);
            if let Some(max) = k.config.max_virtual_time {
                if k.now > max {
                    return Err(RunFailure::Error(SimError::MaxVirtualTime {
                        limit: max,
                        crashed: k.fault.crashed_nodes(),
                    }));
                }
            }
            match ev.kind {
                EvKind::Wake { pid, seq } => {
                    // Wait for a freshly spawned proc to reach its first park.
                    while !k.procs[pid].parked && !k.procs[pid].finished && k.procs[pid].park_seq < seq
                    {
                        shared.runner_cv.wait(&mut k);
                    }
                    let p = &mut k.procs[pid];
                    if p.finished || !p.parked || p.park_seq != seq {
                        continue; // Stale wake.
                    }
                    p.parked = false;
                    p.runnable = true;
                    p.waiting_for_msg = false;
                    k.running = Some(pid);
                    let cv = Arc::clone(&k.procs[pid].cv);
                    cv.notify_one();
                    while k.running.is_some() {
                        shared.runner_cv.wait(&mut k);
                    }
                }
                EvKind::Deliver { dst, dgram } => {
                    if k.fault.is_crashed(dst) {
                        // The frame crossed the wire but nobody is home.
                        k.nodes[dst as usize].net.dropped_crash += 1;
                        continue;
                    }
                    if let Some(until) = k.fault.pause_until(dst, k.now) {
                        // The node is in a scripted pause: it drains nothing
                        // until the pause ends. Re-deliver at that instant.
                        k.nodes[dst as usize].net.deferred_pause += 1;
                        k.push_event(until, EvKind::Deliver { dst, dgram });
                        continue;
                    }
                    if dgram.src != dst {
                        k.nodes[dst as usize].net.delivered += 1;
                        if let Some(obs) = &k.observer {
                            obs.frame_delivered(
                                dgram.src,
                                dst,
                                dgram.sent_at,
                                k.now,
                                dgram.payload.len(),
                            );
                            obs.frame_delivered_payload(
                                dgram.src,
                                dst,
                                dgram.sent_at,
                                k.now,
                                &dgram.payload,
                            );
                        }
                    }
                    k.nodes[dst as usize].mailbox.push_back(dgram);
                    let now = k.now;
                    let waiters: Vec<(ProcId, u64)> = k
                        .procs
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.node == dst && p.parked && p.waiting_for_msg)
                        .map(|(pid, p)| (pid, p.park_seq))
                        .collect();
                    for (pid, seq) in waiters {
                        k.push_event(now, EvKind::Wake { pid, seq });
                    }
                }
                EvKind::Crash { node } => {
                    if k.fault.is_crashed(node) {
                        continue;
                    }
                    k.fault.mark_crashed(node);
                    let pending = k.nodes[node as usize].mailbox.len() as u64;
                    k.nodes[node as usize].net.dropped_crash += pending;
                    // Conservation bookkeeping: purged frames were already
                    // counted as delivered (when non-loopback), so record
                    // them to keep `messages` balanceable.
                    k.nodes[node as usize].net.purged_crash += k.nodes[node as usize]
                        .mailbox
                        .iter()
                        .filter(|d| d.src != node)
                        .count() as u64;
                    k.nodes[node as usize].mailbox.clear();
                    k.nodes[node as usize].counters.add("node.crashed", 1);
                    // Terminate the node's procs: each wakes inside park(),
                    // observes the crash flag, and unwinds with a
                    // CrashUnwind payload (not captured as a panic). Wait
                    // for each to finish its bookkeeping so live_procs and
                    // the queue are consistent before the next event.
                    let pids: Vec<ProcId> = k
                        .procs
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.node == node && !p.finished)
                        .map(|(pid, _)| pid)
                        .collect();
                    for pid in pids {
                        while !k.procs[pid].finished {
                            k.procs[pid].cv.notify_one();
                            shared.runner_cv.wait(&mut k);
                        }
                    }
                }
            }
        }
    }
}

fn blocked_procs(k: &Kernel) -> Vec<BlockedProc> {
    k.procs
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.finished)
        .map(|(pid, p)| BlockedProc {
            pid,
            node: p.node,
            waiting_for_msg: p.waiting_for_msg,
            // Serial mode: every proc's virtual time is the global clock.
            at: k.now,
        })
        .collect()
}

fn payload_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

pub(crate) fn build_report(k: &Kernel) -> SimReport {
    // Deterministic merge of the per-node shards, in node-id order. Every
    // field is a sum, so the totals equal the historical global tally.
    let mut net = NetStats::default();
    for n in &k.nodes {
        net.merge(&n.net);
    }
    // Events already popped are gone from the queue, so what remains is
    // exactly the set of deliveries that were scheduled but never landed.
    net.in_flight = k
        .queue
        .iter()
        .filter(|ev| matches!(&ev.0.kind, EvKind::Deliver { dst, dgram } if dgram.src != *dst))
        .count() as u64;
    SimReport {
        elapsed: k.end_time,
        node_buckets: k.nodes.iter().map(|n| n.buckets).collect(),
        node_counters: k.nodes.iter().map(|n| n.counters.clone()).collect(),
        node_net: k.nodes.iter().map(|n| n.net).collect(),
        net,
        bandwidth_bps: k.config.bandwidth_bps,
        events_processed: k.events_processed,
        crashed_nodes: k.fault.crashed_nodes(),
    }
}

pub(crate) fn spawn_proc_thread(
    ctx: NodeCtx,
    main: impl FnOnce(NodeCtx) + Send + 'static,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("sim-node-{}-proc-{}", ctx.node, ctx.pid))
        .spawn(move || {
            let shared = Arc::clone(&ctx.shared);
            let pid = ctx.pid;
            // Block until the runner decides serial vs. parallel (None:
            // the cluster was torn down before it ever ran).
            let Some(is_parallel) = shared.par.wait_mode() else {
                return;
            };
            if is_parallel {
                // Parallel mode: never touch the kernel. Bind the lane
                // handle, run the app, and report termination through the
                // op channel. Poison/crash unwinds need no report — the
                // runner initiated them and already did the bookkeeping.
                let chan = shared.par.chan(pid);
                let _ = ctx.par.set(Arc::clone(&chan));
                let result = catch_unwind(AssertUnwindSafe(|| main(ctx)));
                let payload = match result {
                    Ok(()) => None,
                    Err(p) if is_poison_unwind(&p) || p.is::<CrashUnwind>() => return,
                    Err(p) => Some(p),
                };
                parallel::lane_finish(&shared.par, &chan, payload);
                return;
            }
            // Initial park: wait for the time-0 wake without owning the baton.
            {
                let mut k = shared.kernel.lock();
                let p = &mut k.procs[pid];
                p.parked = true;
                p.park_seq += 1;
                shared.runner_cv.notify_one();
                let cv = Arc::clone(&k.procs[pid].cv);
                while !k.procs[pid].runnable {
                    let node = k.procs[pid].node;
                    if k.poisoned || k.fault.is_crashed(node) {
                        // Teardown or fail-stop before we ever ran; exit.
                        k.procs[pid].finished = true;
                        k.live_procs -= 1;
                        shared.runner_cv.notify_one();
                        return;
                    }
                    cv.wait(&mut k);
                }
                k.procs[pid].runnable = false;
            }
            let result = catch_unwind(AssertUnwindSafe(|| main(ctx)));
            let mut k = shared.kernel.lock();
            let node = k.procs[pid].node;
            k.procs[pid].finished = true;
            k.procs[pid].parked = false;
            k.live_procs -= 1;
            k.end_time = k.end_time.max(k.now);
            if let Err(payload) = result {
                if !is_poison_unwind(&payload) && !payload.is::<CrashUnwind>() && k.panic.is_none()
                {
                    k.panic = Some(payload);
                    k.panic_node = Some(node);
                }
            }
            if k.running == Some(pid) {
                k.running = None;
            }
            shared.runner_cv.notify_one();
        })
        .expect("failed to spawn proc thread")
}

pub(crate) fn is_poison_unwind(payload: &Box<dyn std::any::Any + Send>) -> bool {
    payload
        .downcast_ref::<&'static str>()
        .is_some_and(|s| *s == POISON_MSG)
        || payload
            .downcast_ref::<String>()
            .is_some_and(|s| s == POISON_MSG)
}

pub(crate) const POISON_MSG: &str = "carlos-sim: run torn down while proc was parked";

/// Installs (once per process) a panic hook that silences the *expected*
/// unwinds the simulator uses for control flow — scripted crashes
/// ([`CrashUnwind`]), attributed aborts ([`AbortInfo`]), and the poison
/// unwind that tears down parked procs. Without this, the default hook
/// prints `Box<dyn Any>` plus a backtrace to stderr every time a fault
/// plan crashes a node, even though the unwind is caught and handled.
/// Every other panic still reaches the previously installed hook.
fn install_quiet_unwind_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let expected = p.is::<CrashUnwind>()
                || p.is::<AbortInfo>()
                || p.downcast_ref::<&'static str>()
                    .is_some_and(|s| *s == POISON_MSG)
                || p.downcast_ref::<String>().is_some_and(|s| s == POISON_MSG);
            if !expected {
                prev(info);
            }
        }));
    });
}

/// Zero-sized panic payload used to unwind the procs of a fail-stopped
/// node. Recognized (and discarded) by the proc-thread epilogue so a
/// scripted crash is never mistaken for an application panic.
pub(crate) struct CrashUnwind;

/// Handle through which simulated node code interacts with the cluster.
///
/// Cloneable; all clones refer to the same proc. Every method that charges
/// time advances the virtual clock, so node code observes a consistent
/// timeline through [`NodeCtx::now`].
#[derive(Clone)]
pub struct NodeCtx {
    pub(crate) shared: Arc<Shared>,
    pub(crate) pid: ProcId,
    pub(crate) node: NodeId,
    pub(crate) n_nodes: usize,
    /// Lane handle, set by the proc-thread preamble in parallel mode.
    /// Empty in serial mode, so every method falls through to the
    /// historical kernel-locking paths untouched.
    pub(crate) par: Arc<parallel::LaneHandle>,
}

impl NodeCtx {
    pub(crate) fn new_internal(
        shared: Arc<Shared>,
        pid: ProcId,
        node: NodeId,
        n_nodes: usize,
    ) -> Self {
        Self {
            shared,
            pid,
            node,
            n_nodes,
            par: Arc::new(parallel::LaneHandle::new()),
        }
    }

    /// This proc's node id.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the cluster.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Current virtual time (in parallel mode: this proc's lane clock,
    /// which is where the serial run's clock would be at the same point in
    /// the proc's execution).
    #[must_use]
    pub fn now(&self) -> Ns {
        if let Some(ch) = self.par.get() {
            return parallel::lane_now(ch);
        }
        self.shared.kernel.lock().now
    }

    /// Charges `dt` of application computation (the `User` bucket) and
    /// advances virtual time.
    pub fn compute(&self, dt: Ns) {
        self.charge(Bucket::User, dt);
    }

    /// Charges `dt` of CPU time to `bucket` and advances virtual time.
    ///
    /// When several user threads share the node, CPU time serializes: the
    /// charge starts when the node CPU is free, and any wait for the CPU is
    /// charged to `Idle`.
    pub fn charge(&self, bucket: Bucket, dt: Ns) {
        if let Some(ch) = self.par.get() {
            parallel::lane_charge(&self.shared.par, ch, bucket, dt);
            return;
        }
        let mut k = self.shared.kernel.lock();
        self.advance_locked(&mut k, bucket, dt);
    }

    /// Charges up to `dt` of CPU time to `bucket`, but returns early if a
    /// datagram arrives at this node, modeling interrupt-driven message
    /// handling during computation.
    ///
    /// Returns `Some(remaining)` when interrupted with `remaining > 0` time
    /// still to charge (the mailbox is non-empty), `None` when the full
    /// `dt` elapsed. Callers loop: handle the message, then continue with
    /// the remainder.
    pub fn compute_interruptible(&self, bucket: Bucket, dt: Ns) -> Option<Ns> {
        if let Some(ch) = self.par.get() {
            return parallel::lane_compute_interruptible(&self.shared.par, ch, bucket, dt);
        }
        let mut k = self.shared.kernel.lock();
        if !k.nodes[self.node as usize].mailbox.is_empty() {
            return Some(dt); // Pending work: handle it before computing.
        }
        let node = self.node as usize;
        let start = k.now.max(k.nodes[node].cpu_free);
        if start > k.now {
            let gap = start - k.now;
            k.nodes[node].buckets.charge(Bucket::Idle, gap);
        }
        let wake_at = start + dt;
        if k.peek_time().is_none_or(|t| t >= wake_at) {
            // Nothing can arrive before we finish; run to completion.
            k.nodes[node].buckets.charge(bucket, dt);
            k.nodes[node].cpu_free = wake_at;
            k.now = wake_at;
            return None;
        }
        k.procs[self.pid].waiting_for_msg = true;
        self.park_until(&mut k, wake_at);
        // Either the timer fired (now == wake_at) or a delivery woke us.
        let ran = k.now.saturating_sub(start).min(dt);
        k.nodes[node].buckets.charge(bucket, ran);
        k.nodes[node].cpu_free = k.now.max(k.nodes[node].cpu_free);
        if ran < dt && !k.nodes[node].mailbox.is_empty() {
            Some(dt - ran)
        } else if ran < dt {
            // Spurious wake (e.g. stale timer): treat the gap as idle and
            // report the remainder so the caller continues.
            Some(dt - ran)
        } else {
            None
        }
    }

    /// Sleeps for `dt` without using the CPU; the time is charged to `Idle`.
    pub fn sleep(&self, dt: Ns) {
        if let Some(ch) = self.par.get() {
            parallel::lane_sleep(&self.shared.par, ch, dt);
            return;
        }
        let mut k = self.shared.kernel.lock();
        let wake_at = k.now + dt;
        k.nodes[self.node as usize].buckets.charge(Bucket::Idle, dt);
        self.park_until(&mut k, wake_at);
    }

    /// Adds `v` to this node's counter `name`.
    pub fn count(&self, name: &'static str, v: u64) {
        if let Some(ch) = self.par.get() {
            parallel::lane_count(&self.shared.par, ch, name, v);
            return;
        }
        let mut k = self.shared.kernel.lock();
        k.nodes[self.node as usize].counters.add(name, v);
    }

    /// Reads this node's counter `name`.
    #[must_use]
    pub fn counter(&self, name: &'static str) -> u64 {
        if let Some(ch) = self.par.get() {
            return parallel::lane_counter_read(&self.shared.par, ch, name);
        }
        self.shared.kernel.lock().nodes[self.node as usize]
            .counters
            .get(name)
    }

    /// Sends a datagram to `dst`.
    ///
    /// Charges the per-datagram send overhead to `Unix`, then occupies the
    /// shared wire. Loopback (`dst == self`) skips the wire and is not
    /// counted in network statistics. The call is asynchronous: it returns
    /// once the local send processing is done, not when the datagram
    /// arrives.
    pub fn send_datagram(&self, dst: NodeId, payload: impl Into<Bytes>) {
        let payload = payload.into();
        assert!(
            (dst as usize) < self.n_nodes,
            "datagram to unknown node {dst}"
        );
        if let Some(ch) = self.par.get() {
            parallel::lane_send(&self.shared.par, ch, dst, payload);
            return;
        }
        let mut k = self.shared.kernel.lock();
        let send_overhead = k.config.send_overhead;
        self.advance_locked(&mut k, Bucket::Unix, send_overhead);
        let now = k.now;
        let dgram = Datagram {
            src: self.node,
            payload,
            sent_at: now,
        };
        if dst == self.node {
            k.nodes[self.node as usize].counters.add("net.loopback", 1);
            k.push_event(now, EvKind::Deliver { dst, dgram });
            return;
        }
        k.nodes[self.node as usize].net.messages += 1;
        k.nodes[self.node as usize].net.payload_bytes += dgram.payload.len() as u64;
        k.nodes[self.node as usize].net.classes.note(&dgram.payload);
        k.nodes[self.node as usize].counters.add("net.sent", 1);
        k.nodes[self.node as usize]
            .counters
            .add("net.sent_bytes", dgram.payload.len() as u64);
        if let Some(obs) = &k.observer {
            obs.frame_sent(self.node, dst, now, &dgram.payload);
        }
        if let Some(deliver_at) = k.wire_transmit_frame(self.node, dst, &dgram.payload, now) {
            k.push_event(deliver_at, EvKind::Deliver { dst, dgram });
        } else if let Some(obs) = &k.observer {
            obs.frame_dropped(self.node, dst, now, &dgram.payload);
        }
    }

    /// Pops the next mailbox datagram without blocking.
    ///
    /// Charges the per-datagram receive overhead (`Unix`) when a datagram is
    /// returned.
    pub fn try_recv(&self) -> Option<Datagram> {
        if let Some(ch) = self.par.get() {
            return parallel::lane_try_recv(&self.shared.par, ch);
        }
        let mut k = self.shared.kernel.lock();
        let d = k.nodes[self.node as usize].mailbox.pop_front()?;
        let recv_overhead = k.config.recv_overhead;
        self.advance_locked(&mut k, Bucket::Unix, recv_overhead);
        Some(d)
    }

    /// Blocks until a datagram arrives (or `deadline` passes), charging the
    /// wait to `Idle` and the receive processing to `Unix`.
    ///
    /// Returns `None` on timeout. `deadline` is an absolute virtual time.
    pub fn wait_recv(&self, deadline: Option<Ns>) -> Option<Datagram> {
        if let Some(ch) = self.par.get() {
            return parallel::lane_wait_recv(&self.shared.par, ch, deadline);
        }
        let mut k = self.shared.kernel.lock();
        loop {
            if let Some(d) = k.nodes[self.node as usize].mailbox.pop_front() {
                let recv_overhead = k.config.recv_overhead;
                self.advance_locked(&mut k, Bucket::Unix, recv_overhead);
                return Some(d);
            }
            if let Some(dl) = deadline {
                if k.now >= dl {
                    return None;
                }
            }
            let park_start = k.now;
            k.procs[self.pid].waiting_for_msg = true;
            if let Some(dl) = deadline {
                let seq = k.procs[self.pid].park_seq + 1;
                k.push_event(dl, EvKind::Wake { pid: self.pid, seq });
            }
            self.park(&mut k);
            let waited = k.now - park_start;
            k.nodes[self.node as usize]
                .buckets
                .charge(Bucket::Idle, waited);
        }
    }

    /// Parks until the node's mailbox is non-empty (or `deadline` passes)
    /// **without consuming anything**. Returns whether the mailbox has a
    /// datagram.
    ///
    /// This is the building block for multiple user threads sharing one
    /// node runtime: a thread that finds nothing to do sleeps here, and any
    /// delivery wakes every such thread so one of them can take the
    /// runtime lock and process the message.
    pub fn wait_mailbox(&self, deadline: Option<Ns>) -> bool {
        if let Some(ch) = self.par.get() {
            return parallel::lane_wait_mailbox(&self.shared.par, ch, deadline);
        }
        let mut k = self.shared.kernel.lock();
        loop {
            if !k.nodes[self.node as usize].mailbox.is_empty() {
                return true;
            }
            if let Some(dl) = deadline {
                if k.now >= dl {
                    return false;
                }
            }
            let park_start = k.now;
            k.procs[self.pid].waiting_for_msg = true;
            if let Some(dl) = deadline {
                let seq = k.procs[self.pid].park_seq + 1;
                k.push_event(dl, EvKind::Wake { pid: self.pid, seq });
            }
            self.park(&mut k);
            let waited = k.now - park_start;
            k.nodes[self.node as usize]
                .buckets
                .charge(Bucket::Idle, waited);
        }
    }

    /// Virtual time of the next pending mailbox datagram's arrival, if the
    /// mailbox is non-empty (used by transports to decide whether to poll).
    #[must_use]
    pub fn mailbox_nonempty(&self) -> bool {
        if let Some(ch) = self.par.get() {
            return parallel::lane_mailbox_nonempty(&self.shared.par, ch);
        }
        !self.shared.kernel.lock().nodes[self.node as usize]
            .mailbox
            .is_empty()
    }

    /// Spawns an additional user thread on this node, starting now.
    ///
    /// The new proc shares the node's mailbox, CPU, buckets, and counters.
    /// This supports the paper's §4.4 user-level multithreading: while one
    /// thread blocks on a remote operation, another can run (their CPU
    /// charges serialize through the node's single simulated CPU).
    pub fn spawn_thread(&self, f: impl FnOnce(NodeCtx) + Send + 'static) {
        if let Some(ch) = self.par.get() {
            parallel::lane_spawn(&self.shared.par, ch, Box::new(f));
            return;
        }
        let pid = {
            let mut k = self.shared.kernel.lock();
            let pid = k.procs.len();
            k.procs.push(ProcState {
                cv: Arc::new(Condvar::new()),
                node: self.node,
                parked: false,
                runnable: false,
                finished: false,
                park_seq: 0,
                waiting_for_msg: false,
            });
            k.live_procs += 1;
            let now = k.now;
            k.push_event(now, EvKind::Wake { pid, seq: 1 });
            pid
        };
        let ctx = NodeCtx::new_internal(Arc::clone(&self.shared), pid, self.node, self.n_nodes);
        // The thread handle is detached; `run` joins only registered
        // threads, but teardown poisons all procs, so the thread always
        // exits. Detaching keeps `spawn_thread` usable from inside procs.
        let _ = spawn_proc_thread(ctx, f);
    }

    /// Advances time by `dt` charged to `bucket`, serializing on the node
    /// CPU. Fast-paths the common case where no other event intervenes.
    fn advance_locked(&self, k: &mut MutexGuard<'_, Kernel>, bucket: Bucket, dt: Ns) {
        let node = self.node as usize;
        let start = k.now.max(k.nodes[node].cpu_free);
        if start > k.now {
            // Waited for the node CPU: that gap is idle time.
            let gap = start - k.now;
            k.nodes[node].buckets.charge(Bucket::Idle, gap);
        }
        let wake_at = start + dt;
        k.nodes[node].buckets.charge(bucket, dt);
        k.nodes[node].cpu_free = wake_at;
        if k.peek_time().is_none_or(|t| t >= wake_at) {
            // Nothing can observably interleave; advance the clock in place.
            k.now = wake_at;
            return;
        }
        self.park_until(k, wake_at);
    }

    /// Schedules a wake at `wake_at` and parks until it fires.
    fn park_until(&self, k: &mut MutexGuard<'_, Kernel>, wake_at: Ns) {
        let seq = k.procs[self.pid].park_seq + 1;
        k.push_event(wake_at, EvKind::Wake { pid: self.pid, seq });
        self.park(k);
    }

    /// Parks this proc: releases the baton and blocks until a wake event
    /// hands it back.
    fn park(&self, k: &mut MutexGuard<'_, Kernel>) {
        let p = &mut k.procs[self.pid];
        p.parked = true;
        p.park_seq += 1;
        k.running = None;
        self.shared.runner_cv.notify_one();
        let cv = Arc::clone(&k.procs[self.pid].cv);
        while !k.procs[self.pid].runnable {
            if k.poisoned {
                panic!("{POISON_MSG}");
            }
            if k.fault.is_crashed(self.node) {
                // Fail-stop: unwind out of the proc without being treated
                // as an application panic.
                std::panic::panic_any(CrashUnwind);
            }
            cv.wait(k);
        }
        k.procs[self.pid].runnable = false;
        k.procs[self.pid].waiting_for_msg = false;
    }
}

/// Results of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual time at which the last proc finished.
    pub elapsed: Ns,
    /// Per-node time buckets, indexed by node id.
    pub node_buckets: Vec<TimeBuckets>,
    /// Per-node counters, indexed by node id.
    pub node_counters: Vec<Counters>,
    /// Per-node shards of the wire statistics, indexed by node id: send-side
    /// figures on the sender's shard, delivery-side figures on the
    /// receiver's. `net` is their node-id-order merge (plus the global
    /// `in_flight`), so shard sums always reconcile with the totals.
    pub node_net: Vec<NetStats>,
    /// Wire-level statistics (deterministic merge of `node_net`).
    pub net: NetStats,
    /// Bandwidth the run was configured with (for utilization).
    pub bandwidth_bps: u64,
    /// Kernel events processed (a determinism fingerprint).
    pub events_processed: u64,
    /// Nodes fail-stopped by the fault plan during the run, in id order.
    /// Empty for fault-free runs (and absent from fingerprints).
    pub crashed_nodes: Vec<NodeId>,
}

impl SimReport {
    /// Network utilization computed the paper's way (payload bits over the
    /// ideal wire, headers excluded).
    #[must_use]
    pub fn net_utilization(&self) -> f64 {
        self.net.utilization(self.elapsed, self.bandwidth_bps)
    }

    /// Sum of a bucket across all nodes.
    #[must_use]
    pub fn bucket_total(&self, bucket: Bucket) -> Ns {
        self.node_buckets.iter().map(|b| b.get(bucket)).sum()
    }

    /// Cluster-wide counter sum.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.node_counters.iter().map(|c| c.get(name)).sum()
    }

    /// Average per-node time in `bucket` in seconds.
    #[must_use]
    pub fn bucket_avg_secs(&self, bucket: Bucket) -> f64 {
        if self.node_buckets.is_empty() {
            return 0.0;
        }
        self.bucket_total(bucket) as f64 / 1e9 / self.node_buckets.len() as f64
    }
}
