//! Targeted per-flow delivery perturbation plans.
//!
//! A [`SchedulePlan`] names individual transport-level data flows — a flow
//! is a `(src, dst, seq)` triple, where `seq` is the per-(sender, receiver)
//! sequence number the transport stamps into every DATA frame header — and
//! assigns each an *extra* delivery delay. The kernel adds the extra delay
//! after the ordinary wire model (medium serialization + latency + jitter)
//! has produced a delivery time, then re-clamps so per-pair FIFO order is
//! preserved, exactly as the blanket jitter knob does.
//!
//! This generalizes [`crate::SimConfig::with_jitter`]: jitter perturbs
//! *every* frame by a pseudo-random amount, a plan perturbs *named* frames
//! by chosen amounts. The schedule-exploration harness uses plans to flip
//! the order of two racing deliveries without disturbing anything else.
//! Plans are deterministic (no RNG is consulted) and parallel-mode
//! compatible: like jitter, a plan only ever *adds* delay, so the
//! conservative scheduler's lookahead lower bound still holds.

use std::collections::BTreeMap;

use crate::time::{NodeId, Ns};

/// Identity of one transport-level data flow: sender, receiver, and the
/// per-(sender, receiver) transport sequence number carried in the wire
/// header of every DATA frame. Retransmissions of a sealed frame reuse its
/// sequence number and therefore name the same flow.
pub type FlowId = (NodeId, NodeId, u32);

/// A set of targeted per-flow delivery delays (see module docs).
///
/// Plans are value types: build one with [`SchedulePlan::delay`] chains or
/// [`SchedulePlan::add`], install it with
/// [`crate::SimConfig::with_schedule`]. The empty plan is free — the kernel
/// skips the whole lookup path, and event timing is bit-identical to a
/// config without the knob.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulePlan {
    delays: BTreeMap<FlowId, Ns>,
}

impl SchedulePlan {
    /// The empty plan: no frame is perturbed.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `self` with `extra` nanoseconds of delivery delay added to
    /// the flow `(src, dst, seq)` (builder style). Adding the same flow
    /// twice keeps the larger delay, so merged plans never *weaken* a
    /// perturbation.
    #[must_use]
    pub fn delay(mut self, src: NodeId, dst: NodeId, seq: u32, extra: Ns) -> Self {
        self.add(src, dst, seq, extra);
        self
    }

    /// In-place form of [`SchedulePlan::delay`].
    pub fn add(&mut self, src: NodeId, dst: NodeId, seq: u32, extra: Ns) {
        let slot = self.delays.entry((src, dst, seq)).or_insert(0);
        *slot = (*slot).max(extra);
    }

    /// Removes the perturbation for one flow, returning its delay if it was
    /// present. Used by counterexample shrinking.
    pub fn remove(&mut self, src: NodeId, dst: NodeId, seq: u32) -> Option<Ns> {
        self.delays.remove(&(src, dst, seq))
    }

    /// Extra delay for the flow, if the plan names it.
    #[must_use]
    pub fn get(&self, src: NodeId, dst: NodeId, seq: u32) -> Option<Ns> {
        self.delays.get(&(src, dst, seq)).copied()
    }

    /// True when the plan names the flow.
    #[must_use]
    pub fn contains(&self, src: NodeId, dst: NodeId, seq: u32) -> bool {
        self.delays.contains_key(&(src, dst, seq))
    }

    /// Number of perturbed flows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.delays.len()
    }

    /// True when no flow is perturbed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.delays.is_empty()
    }

    /// Iterates perturbations in deterministic (flow-id) order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, Ns)> + '_ {
        self.delays.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let p = SchedulePlan::new().delay(0, 1, 7, 500).delay(2, 1, 0, 90);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.get(0, 1, 7), Some(500));
        assert_eq!(p.get(2, 1, 0), Some(90));
        assert_eq!(p.get(1, 0, 7), None);
        assert!(p.contains(0, 1, 7));
        assert!(!p.contains(0, 1, 8));
    }

    #[test]
    fn duplicate_flow_keeps_larger_delay() {
        let p = SchedulePlan::new().delay(0, 1, 3, 100).delay(0, 1, 3, 40);
        assert_eq!(p.get(0, 1, 3), Some(100));
        let q = SchedulePlan::new().delay(0, 1, 3, 40).delay(0, 1, 3, 100);
        assert_eq!(q.get(0, 1, 3), Some(100));
    }

    #[test]
    fn remove_supports_shrinking() {
        let mut p = SchedulePlan::new().delay(0, 1, 3, 100).delay(0, 2, 4, 60);
        assert_eq!(p.remove(0, 1, 3), Some(100));
        assert_eq!(p.remove(0, 1, 3), None);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn iter_is_deterministic() {
        let p = SchedulePlan::new().delay(2, 0, 1, 10).delay(0, 1, 5, 20);
        let flows: Vec<_> = p.iter().collect();
        assert_eq!(flows, vec![((0, 1, 5), 20), ((2, 0, 1), 10)]);
    }
}
