//! Reliable, in-order message delivery over datagrams.
//!
//! CarlOS messages "are implemented using UDP/IP datagrams supplemented with
//! a sliding window protocol to assure reliable, in-order delivery" (§4.3).
//! [`Transport`] implements that protocol: per-peer sequence numbers, a
//! bounded in-flight window, cumulative acknowledgements, go-back-N
//! retransmission on timeout, duplicate suppression, and a reorder buffer.
//!
//! Two modes are provided:
//!
//! - [`AckMode::Implicit`] — no acknowledgement traffic. Correct only on a
//!   loss-free FIFO wire (which the simulated shared Ethernet is when loss
//!   injection is off). The benchmark harnesses use this mode so message
//!   counts match the paper's tables, which were measured on an isolated
//!   Ethernet without retransmissions.
//! - [`AckMode::Arq`] — the full sliding-window protocol, exercised by the
//!   loss-injection tests.

use std::collections::{BTreeMap, VecDeque};

use crate::{
    cluster::NodeCtx,
    time::{NodeId, Ns},
};

/// Acknowledgement strategy for a [`Transport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// No acks, no retransmission. Requires a loss-free in-order wire.
    Implicit,
    /// Sliding window with cumulative acks and go-back-N retransmission.
    Arq {
        /// Maximum unacknowledged data messages per peer.
        window: u32,
        /// Retransmission timeout.
        rto: Ns,
    },
}

/// Wire header: 1 byte kind + 4 bytes sequence/ack number.
const HEADER_BYTES: usize = 5;
const KIND_DATA: u8 = 0;
const KIND_ACK: u8 = 1;

#[derive(Debug, Default)]
struct PeerTx {
    next_seq: u32,
    /// Sent but unacknowledged `(seq, payload)` in seq order.
    unacked: VecDeque<(u32, Vec<u8>)>,
    /// Waiting for window space.
    queued: VecDeque<Vec<u8>>,
    /// Absolute deadline of the pending retransmission timer.
    rto_at: Option<Ns>,
}

#[derive(Debug, Default)]
struct PeerRx {
    next_seq: u32,
    /// Out-of-order arrivals awaiting the gap to fill.
    reorder: BTreeMap<u32, Vec<u8>>,
}

/// Reliable in-order transport endpoint for one node.
///
/// All methods run on the owning node's proc. Incoming datagrams are read
/// from the node mailbox; user messages come out of [`Transport::wait`] /
/// [`Transport::poll`] in per-sender order, exactly once.
pub struct Transport {
    ctx: NodeCtx,
    mode: AckMode,
    tx: Vec<PeerTx>,
    rx: Vec<PeerRx>,
    ready: VecDeque<(NodeId, Vec<u8>)>,
}

impl Transport {
    /// Creates the endpoint for the node behind `ctx`.
    #[must_use]
    pub fn new(ctx: NodeCtx, mode: AckMode) -> Self {
        let n = ctx.num_nodes();
        Self {
            ctx,
            mode,
            tx: (0..n).map(|_| PeerTx::default()).collect(),
            rx: (0..n).map(|_| PeerRx::default()).collect(),
            ready: VecDeque::new(),
        }
    }

    /// The node context this transport runs on.
    #[must_use]
    pub fn ctx(&self) -> &NodeCtx {
        &self.ctx
    }

    /// Replaces the proc context used for waiting and time charging.
    ///
    /// All procs of one node share the mailbox, CPU, and counters, but
    /// parking is per proc: when several user threads share one endpoint,
    /// each must install its own context before blocking so it parks its
    /// own proc rather than a sibling's.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` belongs to a different node.
    pub fn set_ctx(&mut self, ctx: NodeCtx) {
        assert_eq!(
            ctx.node_id(),
            self.ctx.node_id(),
            "transport context must stay on its node"
        );
        self.ctx = ctx;
    }

    /// Sends `msg` to `dst` reliably and in order. Asynchronous: returns
    /// after local send processing, not delivery.
    pub fn send(&mut self, dst: NodeId, msg: Vec<u8>) {
        if dst == self.ctx.node_id() {
            // Loopback delivery is lossless and in order by construction,
            // and a node never acknowledges itself — putting loopback
            // frames in the ARQ window would retransmit them forever.
            let seq = self.tx[dst as usize].next_seq;
            self.tx[dst as usize].next_seq += 1;
            self.ctx.send_datagram(dst, frame(KIND_DATA, seq, &msg));
            return;
        }
        match self.mode {
            AckMode::Implicit => {
                let seq = self.tx[dst as usize].next_seq;
                self.tx[dst as usize].next_seq += 1;
                self.ctx.send_datagram(dst, frame(KIND_DATA, seq, &msg));
            }
            AckMode::Arq { window, rto } => {
                let peer = &mut self.tx[dst as usize];
                if (peer.unacked.len() as u32) < window {
                    let seq = peer.next_seq;
                    peer.next_seq += 1;
                    peer.unacked.push_back((seq, msg.clone()));
                    if peer.rto_at.is_none() {
                        peer.rto_at = Some(self.ctx.now() + rto);
                    }
                    self.ctx.send_datagram(dst, frame(KIND_DATA, seq, &msg));
                } else {
                    peer.queued.push_back(msg);
                }
            }
        }
    }

    /// Returns the next ready user message without blocking, after draining
    /// any datagrams already in the mailbox.
    pub fn poll(&mut self) -> Option<(NodeId, Vec<u8>)> {
        self.drain_mailbox();
        self.ready.pop_front()
    }

    /// Blocks until a user message is available or `deadline` (absolute
    /// virtual time) passes. Drives retransmission timers while waiting.
    pub fn wait(&mut self, deadline: Option<Ns>) -> Option<(NodeId, Vec<u8>)> {
        loop {
            if let Some(m) = self.poll() {
                return Some(m);
            }
            let now = self.ctx.now();
            if let Some(dl) = deadline {
                if now >= dl {
                    return None;
                }
            }
            let rto = self.earliest_rto();
            let wait_until = match (deadline, rto) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) => Some(a),
                (None, b) => b,
            };
            match self.ctx.wait_recv(wait_until) {
                Some(d) => self.handle_datagram(d.src, d.payload),
                None => self.fire_timeouts(),
            }
        }
    }

    /// True if any peer has unacknowledged or queued data (Arq mode).
    #[must_use]
    pub fn has_unacked(&self) -> bool {
        self.tx
            .iter()
            .any(|p| !p.unacked.is_empty() || !p.queued.is_empty())
    }

    /// Blocks until all sent data has been acknowledged (no-op in Implicit
    /// mode), bounded to 32 retransmission timeouts per call.
    ///
    /// The bound matters at shutdown: if this node's final acknowledgement
    /// to a peer was lost after the peer already exited, no ack will ever
    /// arrive and an unbounded flush would retransmit forever. Real stacks
    /// bound connection teardown the same way.
    pub fn flush(&mut self) {
        let AckMode::Arq { rto, .. } = self.mode else {
            return;
        };
        // Progress-based bound: each incoming datagram (ack or data) pushes
        // the give-up deadline out again, so heavy loss merely slows the
        // flush; only total silence — a peer that already exited — ends it.
        let mut deadline = self.ctx.now() + rto * 32;
        while self.has_unacked() {
            if self.ctx.now() >= deadline {
                self.ctx.count("transport.flush_gave_up", 1);
                return;
            }
            let next = self.earliest_rto().map_or(deadline, |t| t.min(deadline));
            match self.ctx.wait_recv(Some(next)) {
                Some(d) => {
                    self.handle_datagram(d.src, d.payload);
                    deadline = self.ctx.now() + rto * 32;
                }
                None => self.fire_timeouts(),
            }
        }
    }

    fn drain_mailbox(&mut self) {
        while let Some(d) = self.ctx.try_recv() {
            self.handle_datagram(d.src, d.payload);
        }
    }

    fn earliest_rto(&self) -> Option<Ns> {
        self.tx.iter().filter_map(|p| p.rto_at).min()
    }

    fn fire_timeouts(&mut self) {
        let AckMode::Arq { rto, .. } = self.mode else {
            return;
        };
        let now = self.ctx.now();
        for dst in 0..self.tx.len() {
            let due = self.tx[dst].rto_at.is_some_and(|t| t <= now);
            if !due {
                continue;
            }
            // Go-back-N: retransmit everything unacknowledged.
            let frames: Vec<(u32, Vec<u8>)> = self.tx[dst].unacked.iter().cloned().collect();
            for (seq, payload) in frames {
                self.ctx.count("transport.retransmits", 1);
                self.ctx.send_datagram(dst as NodeId, frame(KIND_DATA, seq, &payload));
            }
            self.tx[dst].rto_at = if self.tx[dst].unacked.is_empty() {
                None
            } else {
                Some(self.ctx.now() + rto)
            };
        }
    }

    fn handle_datagram(&mut self, src: NodeId, payload: Vec<u8>) {
        if payload.len() < HEADER_BYTES {
            // Corrupt or foreign datagram; the real system would log and drop.
            self.ctx.count("transport.malformed", 1);
            return;
        }
        let kind = payload[0];
        let seq = u32::from_le_bytes(
            payload[1..5]
                .try_into()
                .expect("header slice is four bytes"),
        );
        let body = payload[HEADER_BYTES..].to_vec();
        match kind {
            KIND_DATA => self.handle_data(src, seq, body),
            KIND_ACK => self.handle_ack(src, seq),
            _ => self.ctx.count("transport.malformed", 1),
        }
    }

    fn handle_data(&mut self, src: NodeId, seq: u32, body: Vec<u8>) {
        let rx = &mut self.rx[src as usize];
        if seq < rx.next_seq {
            self.ctx.count("transport.duplicates", 1);
        } else if seq == rx.next_seq {
            rx.next_seq += 1;
            self.ready.push_back((src, body));
            // Drain any buffered successors.
            while let Some(b) = rx.reorder.remove(&rx.next_seq) {
                rx.next_seq += 1;
                self.ready.push_back((src, b));
            }
        } else {
            rx.reorder.insert(seq, body);
            self.ctx.count("transport.reordered", 1);
        }
        if matches!(self.mode, AckMode::Arq { .. }) && src != self.ctx.node_id() {
            let cum = self.rx[src as usize].next_seq;
            self.ctx.count("transport.acks", 1);
            self.ctx.send_datagram(src, frame(KIND_ACK, cum, &[]));
        }
    }

    fn handle_ack(&mut self, src: NodeId, cum: u32) {
        let AckMode::Arq { window, rto } = self.mode else {
            return;
        };
        let peer = &mut self.tx[src as usize];
        while peer.unacked.front().is_some_and(|(s, _)| *s < cum) {
            peer.unacked.pop_front();
        }
        peer.rto_at = if peer.unacked.is_empty() {
            None
        } else {
            Some(self.ctx.now() + rto)
        };
        // Window space may have opened; send queued data.
        let mut to_send = Vec::new();
        while (peer.unacked.len() as u32) < window {
            let Some(msg) = peer.queued.pop_front() else {
                break;
            };
            let seq = peer.next_seq;
            peer.next_seq += 1;
            peer.unacked.push_back((seq, msg.clone()));
            to_send.push((seq, msg));
        }
        if !to_send.is_empty() && self.tx[src as usize].rto_at.is_none() {
            self.tx[src as usize].rto_at = Some(self.ctx.now() + rto);
        }
        for (seq, msg) in to_send {
            self.ctx.send_datagram(src, frame(KIND_DATA, seq, &msg));
        }
    }
}

fn frame(kind: u8, seq: u32, body: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(HEADER_BYTES + body.len());
    v.push(kind);
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(body);
    v
}
