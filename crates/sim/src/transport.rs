//! Reliable, in-order message delivery over datagrams.
//!
//! CarlOS messages "are implemented using UDP/IP datagrams supplemented with
//! a sliding window protocol to assure reliable, in-order delivery" (§4.3).
//! [`Transport`] implements that protocol: per-peer sequence numbers, a
//! bounded in-flight window, cumulative acknowledgements, go-back-N
//! retransmission on timeout, duplicate suppression, and a reorder buffer.
//!
//! Two modes are provided:
//!
//! - [`AckMode::Implicit`] — no acknowledgement traffic. Correct only on a
//!   loss-free FIFO wire (which the simulated shared Ethernet is when loss
//!   injection is off). The benchmark harnesses use this mode so message
//!   counts match the paper's tables, which were measured on an isolated
//!   Ethernet without retransmissions.
//! - [`AckMode::Arq`] — the full sliding-window protocol, exercised by the
//!   loss-injection tests.

use std::{
    collections::{BTreeMap, VecDeque},
    sync::Arc,
};

use bytes::{BufMut, Bytes, BytesMut};

use carlos_util::rng::SplitMix64;

use crate::{
    cluster::NodeCtx,
    time::{NodeId, Ns},
};

/// Passive observer of one node's transport endpoint (trace
/// instrumentation).
///
/// Every method is invoked synchronously on the owning node's proc, charges
/// no virtual time, and has a no-op default, so an endpoint with an observer
/// installed behaves bit-identically to one without. `bytes` is always the
/// sealed wire-frame length (header included). Sequence numbers are the
/// per-(sender, receiver) transport sequence, which together with the node
/// pair uniquely identifies a data frame for the lifetime of a run — trace
/// layers use `(src, dst, seq)` as the causal flow id.
pub trait TransportObserver: Send + Sync {
    /// A data frame was sealed with `seq` and handed to the wire (first
    /// transmission; includes loopback frames, which skip the wire).
    fn data_sent(&self, node: NodeId, dst: NodeId, seq: u32, bytes: usize, at: Ns) {
        let _ = (node, dst, seq, bytes, at);
    }

    /// A message could not enter the ARQ window and was queued unsealed;
    /// its `data_sent` fires later, when acknowledgements open the window.
    fn data_queued(&self, node: NodeId, dst: NodeId, bytes: usize, at: Ns) {
        let _ = (node, dst, bytes, at);
    }

    /// A go-back-N timeout retransmitted the already-sealed frame `seq`.
    fn data_retransmitted(&self, node: NodeId, dst: NodeId, seq: u32, bytes: usize, at: Ns) {
        let _ = (node, dst, seq, bytes, at);
    }

    /// Frame `seq` from `src` was released to the application in order
    /// (`bytes` is the body length, header stripped).
    fn data_delivered(&self, node: NodeId, src: NodeId, seq: u32, bytes: usize, at: Ns) {
        let _ = (node, src, seq, bytes, at);
    }

    /// A duplicate of an already-delivered frame arrived and was suppressed.
    fn data_duplicate(&self, node: NodeId, src: NodeId, seq: u32, at: Ns) {
        let _ = (node, src, seq, at);
    }
}

/// Acknowledgement strategy for a [`Transport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// No acks, no retransmission. Requires a loss-free in-order wire.
    Implicit,
    /// Sliding window with cumulative acks and go-back-N retransmission.
    Arq {
        /// Maximum unacknowledged data messages per peer.
        window: u32,
        /// Retransmission timeout.
        rto: Ns,
    },
}

/// Wire header: 1 byte kind + 4 bytes sequence/ack number.
pub(crate) const HEADER_BYTES: usize = 5;
pub(crate) const KIND_DATA: u8 = 0;
const KIND_ACK: u8 = 1;
const KIND_PING: u8 = 2;
const KIND_PONG: u8 = 3;

/// Retransmission and failure-detection knobs for [`AckMode::Arq`].
///
/// The defaults give classic bounded exponential backoff (interval
/// `rto << min(attempts - 1, max_backoff_exp)` after the `attempts`-th
/// consecutive timeout) plus a small deterministic per-(node, peer,
/// attempt) jitter that decorrelates retransmit storms between nodes
/// without breaking run-to-run determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArqTuning {
    /// Cap on the backoff shift: the retransmit interval never exceeds
    /// `rto << max_backoff_exp`.
    pub max_backoff_exp: u32,
    /// Consecutive timeouts without ack progress after which the peer is
    /// flagged down ([`Transport::peer_down`]). Retransmission continues at
    /// the capped interval so a healed partition still recovers.
    pub max_attempts: u32,
    /// Add deterministic jitter (up to interval/8) to each backoff.
    pub jitter: bool,
    /// An explicit [`Transport::probe`] waits this many RTOs for any sign
    /// of life before flagging the peer down.
    pub probe_rtos: u32,
}

impl Default for ArqTuning {
    fn default() -> Self {
        Self {
            max_backoff_exp: 6,
            max_attempts: 30,
            jitter: true,
            probe_rtos: 8,
        }
    }
}

/// An outgoing message body with transport-header headroom in front.
///
/// Framing writes the 5-byte header into the headroom in place and freezes
/// the buffer once, so the wire copy, the ARQ retransmission queue, and any
/// store-and-forward hop all share one allocation ([`Bytes`] clones are
/// O(1)). Senders that already encode through [`carlos_util::codec::Encoder`]
/// should reserve [`FrameBuf::HEADROOM`] placeholder bytes up front and wrap
/// the result with [`FrameBuf::from_reserved`]; anything else (tests, raw
/// byte payloads) converts via `From<Vec<u8>>` / [`FrameBuf::from_body`],
/// which pays one copy.
#[derive(Debug)]
pub struct FrameBuf(BytesMut);

impl FrameBuf {
    /// Placeholder bytes a pre-reserved buffer must carry in front of the
    /// payload (the transport header is written over them).
    pub const HEADROOM: usize = HEADER_BYTES;

    /// Wraps a buffer whose first [`Self::HEADROOM`] bytes are placeholder
    /// header space (the payload starts at byte [`Self::HEADROOM`]).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than the headroom.
    #[must_use]
    pub fn from_reserved(buf: BytesMut) -> Self {
        assert!(
            buf.len() >= Self::HEADROOM,
            "frame buffer missing header headroom"
        );
        Self(buf)
    }

    /// Copies `body` into a fresh buffer behind header headroom.
    #[must_use]
    pub fn from_body(body: &[u8]) -> Self {
        let mut buf = BytesMut::with_capacity(Self::HEADROOM + body.len());
        buf.put_slice(&[0u8; Self::HEADROOM]);
        buf.put_slice(body);
        Self(buf)
    }

    /// Fills in the header and freezes the frame for the wire.
    fn seal(mut self, kind: u8, seq: u32) -> Bytes {
        self.0[0] = kind;
        self.0[1..HEADER_BYTES].copy_from_slice(&seq.to_le_bytes());
        self.0.freeze()
    }
}

impl From<Vec<u8>> for FrameBuf {
    fn from(body: Vec<u8>) -> Self {
        Self::from_body(&body)
    }
}

impl From<&[u8]> for FrameBuf {
    fn from(body: &[u8]) -> Self {
        Self::from_body(body)
    }
}

fn frame_ack(cum: u32) -> Bytes {
    FrameBuf::from_body(&[]).seal(KIND_ACK, cum)
}

fn frame_ping() -> Bytes {
    FrameBuf::from_body(&[]).seal(KIND_PING, 0)
}

fn frame_pong() -> Bytes {
    FrameBuf::from_body(&[]).seal(KIND_PONG, 0)
}

#[derive(Debug, Default)]
struct PeerTx {
    next_seq: u32,
    /// Sent but unacknowledged `(seq, sealed frame)` in seq order. Storing
    /// the sealed frame means retransmission is an O(1) handle clone of the
    /// bytes already sent, not a re-framing copy.
    unacked: VecDeque<(u32, Bytes)>,
    /// Waiting for window space (not yet framed: no sequence number yet).
    queued: VecDeque<FrameBuf>,
    /// Absolute deadline of the pending retransmission timer.
    rto_at: Option<Ns>,
    /// Consecutive retransmission timeouts without ack progress.
    attempts: u32,
    /// Failure-detector verdict: the peer has gone `max_attempts` timeouts
    /// (or an unanswered probe) without any sign of life. Cleared the
    /// moment anything arrives from the peer.
    down: bool,
    /// Deadline by which an outstanding [`Transport::probe`] ping must be
    /// answered (by any datagram from the peer).
    probe_deadline: Option<Ns>,
}

#[derive(Debug, Default)]
struct PeerRx {
    next_seq: u32,
    /// Out-of-order arrivals awaiting the gap to fill.
    reorder: BTreeMap<u32, Bytes>,
}

/// Reliable in-order transport endpoint for one node.
///
/// All methods run on the owning node's proc. Incoming datagrams are read
/// from the node mailbox; user messages come out of [`Transport::wait`] /
/// [`Transport::poll`] in per-sender order, exactly once.
pub struct Transport {
    ctx: NodeCtx,
    mode: AckMode,
    tuning: ArqTuning,
    tx: Vec<PeerTx>,
    rx: Vec<PeerRx>,
    ready: VecDeque<(NodeId, Bytes)>,
    obs: Option<Arc<dyn TransportObserver>>,
}

impl Transport {
    /// Creates the endpoint for the node behind `ctx`.
    #[must_use]
    pub fn new(ctx: NodeCtx, mode: AckMode) -> Self {
        let n = ctx.num_nodes();
        Self {
            ctx,
            mode,
            tuning: ArqTuning::default(),
            tx: (0..n).map(|_| PeerTx::default()).collect(),
            rx: (0..n).map(|_| PeerRx::default()).collect(),
            ready: VecDeque::new(),
            obs: None,
        }
    }

    /// Installs a passive [`TransportObserver`] on this endpoint.
    pub fn set_observer(&mut self, obs: Arc<dyn TransportObserver>) {
        self.obs = Some(obs);
    }

    /// The node context this transport runs on.
    #[must_use]
    pub fn ctx(&self) -> &NodeCtx {
        &self.ctx
    }

    /// Replaces the retransmission/failure-detection tuning (Arq mode).
    pub fn set_tuning(&mut self, tuning: ArqTuning) {
        self.tuning = tuning;
    }

    /// The current retransmission/failure-detection tuning.
    #[must_use]
    pub fn tuning(&self) -> ArqTuning {
        self.tuning
    }

    /// Whether the failure detector currently considers `peer` dead: it has
    /// gone [`ArqTuning::max_attempts`] consecutive retransmission timeouts,
    /// or an unanswered [`Transport::probe`], without any datagram arriving
    /// from it. Any later arrival clears the verdict (and counts
    /// `transport.peer_revived`), so a healed partition recovers.
    #[must_use]
    pub fn peer_down(&self, peer: NodeId) -> bool {
        self.tx
            .get(peer as usize)
            .is_some_and(|p| p.down)
    }

    /// Sends a liveness probe (ping) to `peer` unless one is already
    /// outstanding. If nothing — pong, ack, or data — arrives from the peer
    /// within [`ArqTuning::probe_rtos`] RTOs, the failure detector flags it
    /// down. No-op in Implicit mode and for self.
    ///
    /// Probes ride the normal datagram path, so they also serve as traffic
    /// that re-opens a healed link: the peer's pong resets this node's
    /// backoff state immediately.
    pub fn probe(&mut self, peer: NodeId) {
        let AckMode::Arq { rto, .. } = self.mode else {
            return;
        };
        if peer == self.ctx.node_id() || self.tx[peer as usize].probe_deadline.is_some() {
            return;
        }
        let wait = rto * Ns::from(self.tuning.probe_rtos);
        self.tx[peer as usize].probe_deadline = Some(self.ctx.now() + wait);
        self.ctx.count("transport.pings", 1);
        self.ctx.send_datagram(peer, frame_ping());
    }

    /// Replaces the proc context used for waiting and time charging.
    ///
    /// All procs of one node share the mailbox, CPU, and counters, but
    /// parking is per proc: when several user threads share one endpoint,
    /// each must install its own context before blocking so it parks its
    /// own proc rather than a sibling's.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` belongs to a different node.
    pub fn set_ctx(&mut self, ctx: NodeCtx) {
        assert_eq!(
            ctx.node_id(),
            self.ctx.node_id(),
            "transport context must stay on its node"
        );
        self.ctx = ctx;
    }

    /// Sends `msg` to `dst` reliably and in order. Asynchronous: returns
    /// after local send processing, not delivery.
    pub fn send(&mut self, dst: NodeId, msg: impl Into<FrameBuf>) {
        let msg = msg.into();
        if dst == self.ctx.node_id() {
            // Loopback delivery is lossless and in order by construction,
            // and a node never acknowledges itself — putting loopback
            // frames in the ARQ window would retransmit them forever.
            let seq = self.tx[dst as usize].next_seq;
            self.tx[dst as usize].next_seq += 1;
            let sealed = msg.seal(KIND_DATA, seq);
            if let Some(obs) = &self.obs {
                obs.data_sent(dst, dst, seq, sealed.len(), self.ctx.now());
            }
            self.ctx.send_datagram(dst, sealed);
            return;
        }
        match self.mode {
            AckMode::Implicit => {
                let seq = self.tx[dst as usize].next_seq;
                self.tx[dst as usize].next_seq += 1;
                let sealed = msg.seal(KIND_DATA, seq);
                if let Some(obs) = &self.obs {
                    obs.data_sent(self.ctx.node_id(), dst, seq, sealed.len(), self.ctx.now());
                }
                self.ctx.send_datagram(dst, sealed);
            }
            AckMode::Arq { window, rto } => {
                let peer = &mut self.tx[dst as usize];
                if (peer.unacked.len() as u32) < window {
                    let seq = peer.next_seq;
                    peer.next_seq += 1;
                    let sealed = msg.seal(KIND_DATA, seq);
                    peer.unacked.push_back((seq, sealed.clone()));
                    if peer.rto_at.is_none() {
                        peer.rto_at = Some(self.ctx.now() + rto);
                    }
                    if let Some(obs) = &self.obs {
                        obs.data_sent(self.ctx.node_id(), dst, seq, sealed.len(), self.ctx.now());
                    }
                    self.ctx.send_datagram(dst, sealed);
                } else {
                    if let Some(obs) = &self.obs {
                        obs.data_queued(self.ctx.node_id(), dst, msg.0.len(), self.ctx.now());
                    }
                    peer.queued.push_back(msg);
                }
            }
        }
    }

    /// Returns the next ready user message without blocking, after draining
    /// any datagrams already in the mailbox.
    pub fn poll(&mut self) -> Option<(NodeId, Bytes)> {
        self.drain_mailbox();
        self.ready.pop_front()
    }

    /// Blocks until a user message is available or `deadline` (absolute
    /// virtual time) passes. Drives retransmission timers while waiting.
    pub fn wait(&mut self, deadline: Option<Ns>) -> Option<(NodeId, Bytes)> {
        loop {
            if let Some(m) = self.poll() {
                return Some(m);
            }
            let now = self.ctx.now();
            if let Some(dl) = deadline {
                if now >= dl {
                    return None;
                }
            }
            let rto = self.earliest_timer();
            let wait_until = match (deadline, rto) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) => Some(a),
                (None, b) => b,
            };
            match self.ctx.wait_recv(wait_until) {
                Some(d) => self.handle_datagram(d.src, d.payload),
                None => self.fire_timeouts(),
            }
        }
    }

    /// True if any peer has unacknowledged or queued data (Arq mode).
    #[must_use]
    pub fn has_unacked(&self) -> bool {
        self.tx
            .iter()
            .any(|p| !p.unacked.is_empty() || !p.queued.is_empty())
    }

    /// Blocks until all sent data has been acknowledged (no-op in Implicit
    /// mode), bounded to 32 retransmission timeouts per call.
    ///
    /// The bound matters at shutdown: if this node's final acknowledgement
    /// to a peer was lost after the peer already exited, no ack will ever
    /// arrive and an unbounded flush would retransmit forever. Real stacks
    /// bound connection teardown the same way.
    pub fn flush(&mut self) {
        let AckMode::Arq { rto, .. } = self.mode else {
            return;
        };
        // Progress-based bound: each incoming datagram (ack or data) pushes
        // the give-up deadline out again, so heavy loss merely slows the
        // flush; only total silence — a peer that already exited — ends it.
        let mut deadline = self.ctx.now() + rto * 32;
        while self.has_unacked() {
            if self.ctx.now() >= deadline {
                // Count what is being abandoned — every frame still unacked
                // or never sent — then drop it all so the give-up is final
                // (and a later flush is an immediate no-op) instead of
                // silently retaining frames that will never be delivered.
                let abandoned: usize = self
                    .tx
                    .iter()
                    .map(|p| p.unacked.len() + p.queued.len())
                    .sum();
                self.ctx
                    .count("transport.flush_abandoned", abandoned as u64);
                self.ctx.count("transport.flush_gave_up", 1);
                for p in &mut self.tx {
                    p.unacked.clear();
                    p.queued.clear();
                    p.rto_at = None;
                }
                return;
            }
            let next = self.earliest_timer().map_or(deadline, |t| t.min(deadline));
            match self.ctx.wait_recv(Some(next)) {
                Some(d) => {
                    self.handle_datagram(d.src, d.payload);
                    deadline = self.ctx.now() + rto * 32;
                }
                None => self.fire_timeouts(),
            }
        }
    }

    fn drain_mailbox(&mut self) {
        while let Some(d) = self.ctx.try_recv() {
            self.handle_datagram(d.src, d.payload);
        }
    }

    /// Earliest pending transport timer: retransmission or probe deadline.
    fn earliest_timer(&self) -> Option<Ns> {
        self.tx
            .iter()
            .flat_map(|p| [p.rto_at, p.probe_deadline])
            .flatten()
            .min()
    }

    /// Backoff interval after the `attempts`-th consecutive timeout to
    /// `dst`: `rto << min(attempts - 1, cap)` plus a deterministic jitter of
    /// up to interval/8 derived from (node, peer, attempt) — two nodes
    /// retransmitting to each other never stay phase-locked, yet the same
    /// run replays identically.
    fn backoff_interval(&self, dst: NodeId, attempts: u32, rto: Ns) -> Ns {
        let exp = attempts.saturating_sub(1).min(self.tuning.max_backoff_exp);
        let base = rto << exp;
        if !self.tuning.jitter {
            return base;
        }
        let me = u64::from(self.ctx.node_id());
        let seed = me ^ (u64::from(dst) << 16) ^ (u64::from(attempts) << 32);
        base + SplitMix64::new(seed).next_u64() % (base / 8 + 1)
    }

    fn fire_timeouts(&mut self) {
        let AckMode::Arq { rto, .. } = self.mode else {
            return;
        };
        let now = self.ctx.now();
        for dst in 0..self.tx.len() {
            // An expired probe deadline means the ping went unanswered.
            if self.tx[dst].probe_deadline.is_some_and(|t| t <= now) {
                self.tx[dst].probe_deadline = None;
                self.ctx.count("transport.probe_timeouts", 1);
                if !self.tx[dst].down {
                    self.tx[dst].down = true;
                    self.ctx.count("transport.peer_down", 1);
                }
            }
            let due = self.tx[dst].rto_at.is_some_and(|t| t <= now);
            if !due {
                continue;
            }
            // Go-back-N: retransmit everything unacknowledged. The frames
            // were sealed at first transmission, so each retransmit is an
            // O(1) handle clone of the original bytes. Retransmission
            // continues even once the peer is flagged down — at the capped
            // backoff interval it doubles as a cheap reprobe, so a healed
            // partition recovers without explicit reconnection.
            let frames: Vec<(u32, Bytes)> = self.tx[dst].unacked.iter().cloned().collect();
            for (seq, payload) in frames {
                self.ctx.count("transport.retransmits", 1);
                if let Some(obs) = &self.obs {
                    obs.data_retransmitted(
                        self.ctx.node_id(),
                        dst as NodeId,
                        seq,
                        payload.len(),
                        self.ctx.now(),
                    );
                }
                self.ctx.send_datagram(dst as NodeId, payload);
            }
            if self.tx[dst].unacked.is_empty() {
                self.tx[dst].rto_at = None;
                continue;
            }
            let attempts = self.tx[dst].attempts.saturating_add(1);
            self.tx[dst].attempts = attempts;
            if attempts >= self.tuning.max_attempts && !self.tx[dst].down {
                self.tx[dst].down = true;
                self.ctx.count("transport.peer_down", 1);
            }
            let interval = self.backoff_interval(dst as NodeId, attempts, rto);
            self.tx[dst].rto_at = Some(self.ctx.now() + interval);
        }
    }

    /// Any datagram from `src` is proof of life: it clears the failure
    /// detector's verdict and any outstanding probe.
    fn note_heard(&mut self, src: NodeId) {
        let peer = &mut self.tx[src as usize];
        peer.probe_deadline = None;
        if peer.down {
            peer.down = false;
            peer.attempts = 0;
            self.ctx.count("transport.peer_revived", 1);
        }
    }

    fn handle_datagram(&mut self, src: NodeId, payload: Bytes) {
        if payload.len() < HEADER_BYTES {
            // Corrupt or foreign datagram; the real system would log and drop.
            self.ctx.count("transport.malformed", 1);
            return;
        }
        let kind = payload[0];
        let seq = u32::from_le_bytes(
            payload[1..5]
                .try_into()
                .expect("header slice is four bytes"),
        );
        // O(1) sub-view of the arriving frame — no receive-side body copy.
        let body = payload.slice(HEADER_BYTES..);
        self.note_heard(src);
        match kind {
            KIND_DATA => self.handle_data(src, seq, body),
            KIND_ACK => self.handle_ack(src, seq),
            KIND_PING => {
                self.ctx.count("transport.pings_answered", 1);
                if src != self.ctx.node_id() {
                    self.ctx.send_datagram(src, frame_pong());
                }
            }
            KIND_PONG => {}
            _ => self.ctx.count("transport.malformed", 1),
        }
    }

    fn handle_data(&mut self, src: NodeId, seq: u32, body: Bytes) {
        let me = self.ctx.node_id();
        let rx = &mut self.rx[src as usize];
        if seq < rx.next_seq {
            self.ctx.count("transport.duplicates", 1);
            if let Some(obs) = &self.obs {
                obs.data_duplicate(me, src, seq, self.ctx.now());
            }
        } else if seq == rx.next_seq {
            rx.next_seq += 1;
            if let Some(obs) = &self.obs {
                obs.data_delivered(me, src, seq, body.len(), self.ctx.now());
            }
            self.ready.push_back((src, body));
            // Drain any buffered successors.
            while let Some(b) = rx.reorder.remove(&rx.next_seq) {
                if let Some(obs) = &self.obs {
                    obs.data_delivered(me, src, rx.next_seq, b.len(), self.ctx.now());
                }
                rx.next_seq += 1;
                self.ready.push_back((src, b));
            }
        } else {
            rx.reorder.insert(seq, body);
            self.ctx.count("transport.reordered", 1);
        }
        if matches!(self.mode, AckMode::Arq { .. }) && src != self.ctx.node_id() {
            let cum = self.rx[src as usize].next_seq;
            self.ctx.count("transport.acks", 1);
            self.ctx.send_datagram(src, frame_ack(cum));
        }
    }

    fn handle_ack(&mut self, src: NodeId, cum: u32) {
        let AckMode::Arq { window, rto } = self.mode else {
            return;
        };
        let peer = &mut self.tx[src as usize];
        let before = peer.unacked.len();
        while peer.unacked.front().is_some_and(|(s, _)| *s < cum) {
            peer.unacked.pop_front();
        }
        if peer.unacked.len() < before {
            // Ack progress: the path works again; restart backoff from rto.
            peer.attempts = 0;
        }
        peer.rto_at = if peer.unacked.is_empty() {
            None
        } else {
            Some(self.ctx.now() + rto)
        };
        // Window space may have opened; seal and send queued data.
        let mut to_send = Vec::new();
        while (peer.unacked.len() as u32) < window {
            let Some(msg) = peer.queued.pop_front() else {
                break;
            };
            let seq = peer.next_seq;
            peer.next_seq += 1;
            let sealed = msg.seal(KIND_DATA, seq);
            peer.unacked.push_back((seq, sealed.clone()));
            to_send.push(sealed);
        }
        if !to_send.is_empty() && self.tx[src as usize].rto_at.is_none() {
            self.tx[src as usize].rto_at = Some(self.ctx.now() + rto);
        }
        for sealed in to_send {
            if let Some(obs) = &self.obs {
                // The frame's sequence number sits in its sealed header.
                let seq = u32::from_le_bytes(
                    sealed[1..HEADER_BYTES]
                        .try_into()
                        .expect("header slice is four bytes"),
                );
                obs.data_sent(self.ctx.node_id(), src, seq, sealed.len(), self.ctx.now());
            }
            self.ctx.send_datagram(src, sealed);
        }
    }
}
