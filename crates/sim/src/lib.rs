//! Deterministic discrete-event cluster simulator.
//!
//! The CarlOS paper ran on four DEC 3000/300 workstations on an isolated
//! 10 Mbit/s Ethernet under DEC OSF/1. This crate substitutes that testbed
//! with a virtual cluster:
//!
//! - Each simulated process ("proc") runs application and protocol code on
//!   its own OS thread, but a **baton-passing scheduler** ensures exactly one
//!   proc executes at a time, in virtual-time order, so every run is
//!   bit-for-bit deterministic.
//! - A **shared-medium Ethernet model** serializes frames at a configurable
//!   bandwidth, adds latency, charges per-message software overhead (the
//!   "Unix" cost of syscalls and the UDP/IP stack), and can drop datagrams
//!   with a seeded probability.
//! - A **sliding-window reliable transport** ([`transport::Transport`])
//!   recovers losses and guarantees in-order delivery, as §4.3 of the paper
//!   describes for the real system.
//! - Per-node **time buckets** (`User` / `Unix` / `CarlOS` / `Idle`) and
//!   counters reproduce the execution breakdowns of the paper's Figure 2 and
//!   the message statistics of Tables 1–3.
//!
//! Protocol layers above this crate (LRC, message-driven consistency, the
//! applications) are real implementations; the simulator only prices their
//! computation and communication.
//!
//! # Examples
//!
//! ```
//! use carlos_sim::{Cluster, SimConfig, time::us};
//!
//! let mut cluster = Cluster::new(SimConfig::default(), 2);
//! cluster.spawn_node(0, |ctx| {
//!     ctx.send_datagram(1, b"ping".to_vec());
//! });
//! cluster.spawn_node(1, |ctx| {
//!     let d = ctx.wait_recv(None).expect("ping arrives");
//!     assert_eq!(d.payload, b"ping");
//!     ctx.compute(us(10));
//! });
//! let report = cluster.run();
//! assert_eq!(report.net.messages, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod kernel;
mod parallel;

pub mod config;
pub mod error;
pub mod fault;
pub mod schedule;
pub mod stats;
pub mod time;
pub mod transport;

pub use cluster::{Cluster, Datagram, NodeCtx, SimReport, WireObserver};
pub use config::SimConfig;
pub use error::{abort, AbortInfo, BlockedProc, SimError};
pub use fault::{FaultPlan, FaultSpec, GeParams};
pub use schedule::{FlowId, SchedulePlan};
pub use stats::{Bucket, ClassStats, Counters, FrameClasses, NetStats, TimeBuckets};
pub use time::{NodeId, Ns};
pub use transport::{AckMode, ArqTuning, FrameBuf, Transport, TransportObserver};
