//! Tests for the sliding-window reliable transport, including loss recovery.

use std::sync::{
    atomic::{AtomicU64, Ordering},
    Arc,
};

use carlos_sim::{
    time::ms,
    transport::{AckMode, Transport},
    Cluster, SimConfig,
};

const ARQ: AckMode = AckMode::Arq {
    window: 8,
    rto: ms(20),
};

#[test]
fn implicit_mode_delivers_in_order() {
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        let mut t = Transport::new(ctx, AckMode::Implicit);
        for i in 0..50u32 {
            t.send(1, i.to_le_bytes().to_vec());
        }
    });
    c.spawn_node(1, |ctx| {
        let mut t = Transport::new(ctx, AckMode::Implicit);
        for i in 0..50u32 {
            let (src, body) = t.wait(None).expect("message");
            assert_eq!(src, 0);
            assert_eq!(u32::from_le_bytes(body[..].try_into().unwrap()), i);
        }
    });
    let r = c.run();
    assert_eq!(r.net.messages, 50, "implicit mode sends no acks");
}

#[test]
fn arq_delivers_without_loss() {
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        let mut t = Transport::new(ctx, ARQ);
        for i in 0..100u32 {
            t.send(1, i.to_le_bytes().to_vec());
        }
        t.flush();
    });
    c.spawn_node(1, |ctx| {
        let mut t = Transport::new(ctx, ARQ);
        for i in 0..100u32 {
            let (_, body) = t.wait(None).expect("message");
            assert_eq!(u32::from_le_bytes(body[..].try_into().unwrap()), i);
        }
    });
    let r = c.run();
    assert_eq!(r.counter_total("transport.retransmits"), 0);
    assert_eq!(r.counter_total("transport.duplicates"), 0);
}

#[test]
fn arq_recovers_from_heavy_loss() {
    let cfg = SimConfig::fast_test().with_loss(0.3, 1234);
    let received = Arc::new(AtomicU64::new(0));
    let received2 = Arc::clone(&received);
    let mut c = Cluster::new(cfg, 2);
    c.spawn_node(0, |ctx| {
        let mut t = Transport::new(ctx, ARQ);
        for i in 0..200u32 {
            t.send(1, i.to_le_bytes().to_vec());
        }
        t.flush();
    });
    c.spawn_node(1, move |ctx| {
        let mut t = Transport::new(ctx, ARQ);
        for i in 0..200u32 {
            let (_, body) = t.wait(None).expect("reliable delivery despite loss");
            assert_eq!(
                u32::from_le_bytes(body[..].try_into().unwrap()),
                i,
                "delivery out of order"
            );
            received2.fetch_add(1, Ordering::SeqCst);
        }
        // Keep acking retransmitted stragglers until the sender goes quiet.
        while t.wait(Some(t.ctx().now() + ms(100))).is_some() {}
    });
    let r = c.run();
    assert_eq!(received.load(Ordering::SeqCst), 200);
    assert!(
        r.counter_total("transport.retransmits") > 0,
        "30% loss must force retransmissions"
    );
    assert!(r.net.dropped > 0);
}

#[test]
fn arq_exactly_once_under_duplication_pressure() {
    // Loss of acks causes data retransmits, i.e. duplicates at the
    // receiver; they must be suppressed.
    let cfg = SimConfig::fast_test().with_loss(0.4, 99);
    let mut c = Cluster::new(cfg, 2);
    c.spawn_node(0, |ctx| {
        let mut t = Transport::new(ctx, ARQ);
        for i in 0..50u32 {
            t.send(1, i.to_le_bytes().to_vec());
        }
        t.flush();
    });
    c.spawn_node(1, |ctx| {
        let mut t = Transport::new(ctx, ARQ);
        let mut seen = [false; 50];
        for _ in 0..50 {
            let (_, body) = t.wait(None).expect("message");
            let v = u32::from_le_bytes(body[..].try_into().unwrap()) as usize;
            assert!(!seen[v], "duplicate delivery of {v}");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        while t.wait(Some(t.ctx().now() + ms(200))).is_some() {}
    });
    c.run();
}

#[test]
fn bidirectional_traffic() {
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    for node in 0..2u32 {
        c.spawn_node(node, move |ctx| {
            let peer = 1 - node;
            let mut t = Transport::new(ctx, ARQ);
            let mut received = 0u32;
            let mut sent = 0u32;
            while received < 30 {
                if sent < 30 {
                    t.send(peer, vec![sent as u8]);
                    sent += 1;
                }
                if let Some((src, body)) = t.wait(Some(t.ctx().now() + ms(1))) {
                    assert_eq!(src, peer);
                    assert_eq!(body[0] as u32, received);
                    received += 1;
                }
            }
            t.flush();
        });
    }
    c.run();
}

#[test]
fn window_blocks_excess_inflight() {
    // With window 2 and no receiver polling initially, only 2 frames can be
    // unacked; the rest queue and flow once acks return.
    let mode = AckMode::Arq {
        window: 2,
        rto: ms(10),
    };
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, move |ctx| {
        let mut t = Transport::new(ctx, mode);
        for i in 0..20u32 {
            t.send(1, vec![i as u8]);
        }
        assert!(t.has_unacked());
        t.flush();
        assert!(!t.has_unacked());
    });
    c.spawn_node(1, move |ctx| {
        let mut t = Transport::new(ctx, mode);
        for i in 0..20u32 {
            let (_, body) = t.wait(None).expect("message");
            assert_eq!(body[0] as u32, i);
        }
    });
    c.run();
}

#[test]
fn three_party_ordering_per_peer() {
    // Node 2 receives interleaved streams from 0 and 1; each stream must be
    // in order even though the interleaving is arbitrary.
    let mut c = Cluster::new(SimConfig::fast_test(), 3);
    for src in 0..2u32 {
        c.spawn_node(src, move |ctx| {
            let mut t = Transport::new(ctx, ARQ);
            for i in 0..40u32 {
                t.send(2, vec![src as u8, i as u8]);
            }
            t.flush();
        });
    }
    c.spawn_node(2, |ctx| {
        let mut t = Transport::new(ctx, ARQ);
        let mut next = [0u8; 2];
        for _ in 0..80 {
            let (src, body) = t.wait(None).expect("message");
            assert_eq!(body[0], src as u8);
            assert_eq!(body[1], next[src as usize], "per-peer order violated");
            next[src as usize] += 1;
        }
    });
    c.run();
}

#[test]
fn malformed_datagram_is_dropped() {
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        // Raw garbage, below the transport header size.
        ctx.send_datagram(1, vec![9]);
        ctx.send_datagram(1, vec![]);
    });
    c.spawn_node(1, |ctx| {
        let mut t = Transport::new(ctx, ARQ);
        let got = t.wait(Some(t.ctx().now() + ms(10)));
        assert!(got.is_none());
        assert_eq!(t.ctx().counter("transport.malformed"), 2);
    });
    c.run();
}

// ---------------------------------------------------------------------------
// Scripted-fault (chaos) coverage: the ARQ must ride out burst loss and
// partitions, and fail loudly — not silently — when a peer never answers.
// ---------------------------------------------------------------------------

use carlos_sim::{FaultPlan, GeParams};
use proptest::prelude::*;

#[test]
fn arq_delivers_through_burst_loss() {
    // A sticky Gilbert–Elliott bad state that eats 90% of its frames.
    let plan = FaultPlan::new(0xBEEF).burst_loss(0, ms(10_000), GeParams::bursty(0.9));
    let cfg = SimConfig::fast_test().with_fault_plan(plan);
    let mut c = Cluster::new(cfg, 2);
    c.spawn_node(0, |ctx| {
        let mut t = Transport::new(ctx, ARQ);
        for i in 0..150u32 {
            t.send(1, i.to_le_bytes().to_vec());
        }
        t.flush();
    });
    c.spawn_node(1, |ctx| {
        let mut t = Transport::new(ctx, ARQ);
        for i in 0..150u32 {
            let (_, body) = t.wait(None).expect("delivery despite burst loss");
            assert_eq!(u32::from_le_bytes(body[..].try_into().unwrap()), i);
        }
        while t.wait(Some(t.ctx().now() + ms(200))).is_some() {}
    });
    let r = c.run();
    assert!(r.net.dropped_burst > 0, "the burst window must bite");
    assert!(r.counter_total("transport.retransmits") > 0);
}

#[test]
fn arq_survives_partition_then_heal() {
    // Nothing crosses the wire between the two sides until the heal; the
    // sender's backoff keeps a retransmit pending across it.
    let plan = FaultPlan::new(3).partition(&[0], &[1], 0, ms(80));
    let cfg = SimConfig::fast_test().with_fault_plan(plan);
    let mut c = Cluster::new(cfg, 2);
    c.spawn_node(0, |ctx| {
        let mut t = Transport::new(ctx, ARQ);
        for i in 0..30u32 {
            t.send(1, i.to_le_bytes().to_vec());
        }
        t.flush();
    });
    c.spawn_node(1, |ctx| {
        let mut t = Transport::new(ctx, ARQ);
        for i in 0..30u32 {
            let (_, body) = t.wait(None).expect("delivery after heal");
            assert_eq!(u32::from_le_bytes(body[..].try_into().unwrap()), i);
        }
        while t.wait(Some(t.ctx().now() + ms(200))).is_some() {}
    });
    let r = c.run();
    assert!(r.net.dropped_partition > 0, "the partition must bite");
    assert!(r.counter_total("transport.retransmits") > 0);
}

#[test]
fn flush_abandons_frames_to_a_dead_link_and_counts_them() {
    // The link never heals and the receiver never answers: flush must give
    // up after sustained silence and account for every abandoned frame.
    let plan = FaultPlan::new(1).link_down(0, 1, 0, ms(3_600_000));
    let cfg = SimConfig::fast_test().with_fault_plan(plan);
    let mut c = Cluster::new(cfg, 2);
    c.spawn_node(0, |ctx| {
        let mut t = Transport::new(ctx, ARQ);
        for i in 0..5u32 {
            t.send(1, i.to_le_bytes().to_vec());
        }
        t.flush();
        assert!(!t.has_unacked(), "give-up must be final");
        assert_eq!(t.ctx().counter("transport.flush_abandoned"), 5);
        assert_eq!(t.ctx().counter("transport.flush_gave_up"), 1);
    });
    c.spawn_node(1, |_ctx| {});
    c.run();
}

#[test]
fn sustained_silence_convicts_the_peer() {
    let plan = FaultPlan::new(2).crash(1, ms(1));
    let cfg = SimConfig::fast_test().with_fault_plan(plan);
    let mut c = Cluster::new(cfg, 2);
    c.spawn_node(0, |ctx| {
        let mut t = Transport::new(ctx, ARQ);
        assert!(!t.peer_down(1));
        t.probe(1);
        // Pump until the probe deadline passes and the detector convicts.
        while !t.peer_down(1) {
            let _ = t.wait(Some(t.ctx().now() + ms(50)));
        }
        assert!(t.peer_down(1));
        assert!(t.ctx().counter("transport.probe_timeouts") >= 1);
    });
    c.spawn_node(1, |ctx| {
        // Park until well past our crash time so the cluster stays alive
        // from the scheduler's point of view until the fault fires.
        ctx.sleep(ms(100));
    });
    let r = c.try_run();
    // Node 1 crashed mid-sleep: the run reports it rather than succeeding.
    match r {
        Ok(rep) => assert_eq!(rep.crashed_nodes, vec![1]),
        Err(e) => assert_eq!(e.crashed_nodes(), vec![1]),
    }
}

/// Every datagram handed to the wire is accounted for exactly once: it is
/// delivered to a mailbox, dropped by loss injection, discarded because the
/// destination crashed (minus the frames that were delivered first and
/// purged at the crash instant), or still in flight when the run ends.
/// A chaos plan exercising all four fates at once must balance the books.
#[test]
fn netstats_conserve_every_datagram_under_chaos() {
    let ge = GeParams {
        p_enter_bad: 0.5,
        p_exit_bad: 0.2,
        loss_good: 0.05,
        loss_bad: 0.9,
    };
    let plan = FaultPlan::new(0xC0FFEE)
        .burst_loss(0, ms(50), ge)
        .partition(&[0], &[1], ms(60), ms(90))
        .pause(1, ms(10), ms(30))
        .crash(2, ms(40));
    let cfg = SimConfig::fast_test().with_fault_plan(plan);
    let mut c = Cluster::new(cfg, 3);
    c.spawn_node(0, |ctx| {
        // Raw datagrams on a fixed schedule spanning every fault window:
        // the burst (0-50ms), node 1's pause (10-30ms), node 2's crash
        // (40ms), and the 0<->1 partition (60-90ms).
        for i in 0..50u32 {
            ctx.send_datagram(1, i.to_le_bytes().to_vec());
            ctx.send_datagram(2, i.to_le_bytes().to_vec());
            ctx.sleep(ms(2));
        }
    });
    // Node 1 never drains its mailbox; delivery accounting is wire-level.
    c.spawn_node(1, |ctx| ctx.sleep(ms(150)));
    // Node 2 parks until well past its crash instant with frames pending
    // in its mailbox, so the crash purges some deliveries.
    c.spawn_node(2, |ctx| ctx.sleep(ms(150)));
    let rep = c.try_run().expect("survivors run to completion");
    assert_eq!(rep.crashed_nodes, vec![2]);
    let n = rep.net;
    // Each fate must actually occur for the balance to mean anything.
    assert!(n.delivered > 0, "some frames must land");
    assert!(n.dropped_burst > 0, "the burst window must bite");
    assert!(n.dropped_partition > 0, "the partition must bite");
    assert!(n.deferred_pause > 0, "the pause must defer deliveries");
    assert!(n.purged_crash > 0, "the crash must purge pending deliveries");
    assert!(
        n.dropped_crash > n.purged_crash,
        "some frames must arrive after the crash"
    );
    assert_eq!(
        n.messages,
        n.delivered + n.dropped + (n.dropped_crash - n.purged_crash) + n.in_flight,
        "datagram conservation violated: {n:?}"
    );
    // Per-class accounting partitions the same ledger: every datagram and
    // every payload byte lands in exactly one message class.
    assert_eq!(n.messages, n.classes.total_sent(), "class send totals: {n:?}");
    assert_eq!(
        n.payload_bytes,
        n.classes.total_bytes(),
        "class byte totals: {n:?}"
    );
}

/// On a quiet, fault-free run the ledger is trivial: everything handed to
/// the wire is delivered.
#[test]
fn netstats_conservation_without_faults() {
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        for i in 0..20u32 {
            ctx.send_datagram(1, i.to_le_bytes().to_vec());
        }
        ctx.sleep(ms(5));
    });
    c.spawn_node(1, |ctx| ctx.sleep(ms(5)));
    let n = c.run().net;
    assert_eq!(n.messages, 20);
    assert_eq!(n.delivered + n.in_flight, 20);
    assert_eq!(n.dropped, 0);
    assert_eq!(n.dropped_crash, 0);
    assert_eq!(n.purged_crash, 0);
    // Raw 4-byte datagrams are shorter than a transport header, so the
    // classifier files every one of them (and every byte) under `other`.
    assert_eq!(n.classes.other.sent, 20);
    assert_eq!(n.classes.other.bytes, 80);
    assert_eq!(n.messages, n.classes.total_sent());
    assert_eq!(n.payload_bytes, n.classes.total_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any loss regime short of a total blackout delivers every payload,
    /// in order, exactly once.
    #[test]
    fn arq_delivers_everything_below_blackout(
        loss_pct in 0u32..95,
        p_exit_pct in 10u32..60,
        seed in any::<u64>(),
        n_msgs in 1usize..48,
    ) {
        let ge = GeParams {
            p_enter_bad: 0.10,
            p_exit_bad: f64::from(p_exit_pct) / 100.0,
            loss_good: 0.02,
            loss_bad: f64::from(loss_pct) / 100.0,
        };
        let plan = FaultPlan::new(seed).burst_loss(0, ms(60_000), ge);
        let cfg = SimConfig::fast_test().with_fault_plan(plan);
        let mut c = Cluster::new(cfg, 2);
        let n = n_msgs as u32;
        c.spawn_node(0, move |ctx| {
            let mut t = Transport::new(ctx, ARQ);
            for i in 0..n {
                t.send(1, i.to_le_bytes().to_vec());
            }
            t.flush();
        });
        c.spawn_node(1, move |ctx| {
            let mut t = Transport::new(ctx, ARQ);
            for i in 0..n {
                let (_, body) = t.wait(None).expect("delivery below blackout");
                assert_eq!(u32::from_le_bytes(body[..].try_into().unwrap()), i);
            }
            while t.wait(Some(t.ctx().now() + ms(200))).is_some() {}
        });
        c.run();
    }
}
