//! Integration tests for the discrete-event scheduler and wire model.

use std::sync::{
    atomic::{AtomicU64, Ordering},
    Arc,
};

use carlos_sim::{
    time::{ms, us},
    Bucket, Cluster, SimConfig,
};

#[test]
fn single_node_compute_advances_clock() {
    let mut c = Cluster::new(SimConfig::fast_test(), 1);
    c.spawn_node(0, |ctx| {
        assert_eq!(ctx.now(), 0);
        ctx.compute(us(100));
        assert_eq!(ctx.now(), us(100));
        ctx.compute(us(50));
        assert_eq!(ctx.now(), us(150));
    });
    let r = c.run();
    assert_eq!(r.elapsed, us(150));
    assert_eq!(r.node_buckets[0].get(Bucket::User), us(150));
}

#[test]
fn sleep_charges_idle() {
    let mut c = Cluster::new(SimConfig::fast_test(), 1);
    c.spawn_node(0, |ctx| {
        ctx.sleep(ms(2));
        assert_eq!(ctx.now(), ms(2));
    });
    let r = c.run();
    assert_eq!(r.node_buckets[0].get(Bucket::Idle), ms(2));
}

#[test]
fn ping_pong_round_trip() {
    let cfg = SimConfig::fast_test();
    let mut c = Cluster::new(cfg, 2);
    c.spawn_node(0, |ctx| {
        ctx.send_datagram(1, b"ping".to_vec());
        let d = ctx.wait_recv(None).expect("pong arrives");
        assert_eq!(d.payload, b"pong");
        assert_eq!(d.src, 1);
    });
    c.spawn_node(1, |ctx| {
        let d = ctx.wait_recv(None).expect("ping arrives");
        assert_eq!(d.payload, b"ping");
        ctx.send_datagram(0, b"pong".to_vec());
    });
    let r = c.run();
    assert_eq!(r.net.messages, 2);
    assert_eq!(r.net.payload_bytes, 8);
    assert_eq!(r.net.dropped, 0);
}

#[test]
fn determinism_identical_reports() {
    let run = || {
        let mut c = Cluster::new(SimConfig::osdi94(), 3);
        for n in 0..3u32 {
            c.spawn_node(n, move |ctx| {
                for i in 0..20u32 {
                    ctx.compute(us(u64::from(i % 7 + 1)));
                    ctx.send_datagram((n + 1) % 3, vec![0u8; (i as usize * 13) % 97 + 1]);
                    if let Some(_d) = ctx.try_recv() {
                        ctx.compute(us(3));
                    }
                }
                // Drain whatever arrives in the next virtual millisecond.
                let deadline = ctx.now() + ms(1);
                while ctx.wait_recv(Some(deadline)).is_some() {}
            });
        }
        c.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.net, b.net);
    for i in 0..3 {
        assert_eq!(a.node_buckets[i], b.node_buckets[i]);
    }
}

#[test]
fn wire_serializes_frames() {
    // Two nodes send simultaneously; the shared medium must serialize, so
    // the second delivery is at least one frame-time after the first.
    let cfg = SimConfig {
        send_overhead: 0,
        recv_overhead: 0,
        wire_latency: 0,
        frame_header_bytes: 0,
        bandwidth_bps: 8_000_000, // 1 byte per microsecond
        ..SimConfig::fast_test()
    };
    let mut c = Cluster::new(cfg, 3);
    c.spawn_node(0, |ctx| ctx.send_datagram(2, vec![0u8; 1000]));
    c.spawn_node(1, |ctx| ctx.send_datagram(2, vec![0u8; 1000]));
    c.spawn_node(2, |ctx| {
        let a = ctx.wait_recv(None).expect("first frame");
        let t1 = ctx.now();
        let b = ctx.wait_recv(None).expect("second frame");
        let t2 = ctx.now();
        assert_eq!(a.payload.len(), 1000);
        assert_eq!(b.payload.len(), 1000);
        // Each 1000-byte frame takes 1 ms on the wire; arrivals are serialized.
        assert!(t2 - t1 >= ms(1), "medium did not serialize: {t1} {t2}");
    });
    c.run();
}

#[test]
fn send_charges_unix_bucket() {
    let cfg = SimConfig {
        send_overhead: us(350),
        recv_overhead: us(400),
        ..SimConfig::fast_test()
    };
    let mut c = Cluster::new(cfg, 2);
    c.spawn_node(0, |ctx| {
        ctx.send_datagram(1, vec![1, 2, 3]);
    });
    c.spawn_node(1, |ctx| {
        let _ = ctx.wait_recv(None).expect("message");
    });
    let r = c.run();
    assert_eq!(r.node_buckets[0].get(Bucket::Unix), us(350));
    assert_eq!(r.node_buckets[1].get(Bucket::Unix), us(400));
    // The receiver's wait shows up as idle time.
    assert!(r.node_buckets[1].get(Bucket::Idle) > 0);
}

#[test]
fn wait_recv_timeout_returns_none() {
    let mut c = Cluster::new(SimConfig::fast_test(), 1);
    c.spawn_node(0, |ctx| {
        let start = ctx.now();
        let got = ctx.wait_recv(Some(start + ms(5)));
        assert!(got.is_none());
        assert_eq!(ctx.now(), start + ms(5));
    });
    c.run();
}

#[test]
fn loopback_delivers_without_wire() {
    let mut c = Cluster::new(SimConfig::fast_test(), 1);
    c.spawn_node(0, |ctx| {
        ctx.send_datagram(0, b"self".to_vec());
        let d = ctx.wait_recv(None).expect("loopback arrives");
        assert_eq!(d.payload, b"self");
        assert_eq!(d.src, 0);
    });
    let r = c.run();
    assert_eq!(r.net.messages, 0, "loopback must not count as wire traffic");
    assert_eq!(r.counter_total("net.loopback"), 1);
}

#[test]
fn loss_injection_drops_messages() {
    let cfg = SimConfig::fast_test().with_loss(1.0, 42);
    let mut c = Cluster::new(cfg, 2);
    c.spawn_node(0, |ctx| {
        ctx.send_datagram(1, b"lost".to_vec());
    });
    c.spawn_node(1, |ctx| {
        let got = ctx.wait_recv(Some(ms(50)));
        assert!(got.is_none(), "message should have been dropped");
    });
    let r = c.run();
    assert_eq!(r.net.dropped, 1);
}

#[test]
fn partial_loss_is_deterministic() {
    let run = || {
        let cfg = SimConfig::fast_test().with_loss(0.5, 7);
        let mut c = Cluster::new(cfg, 2);
        c.spawn_node(0, |ctx| {
            for i in 0..100u8 {
                ctx.send_datagram(1, vec![i]);
            }
        });
        c.spawn_node(1, |ctx| {
            let mut got = 0u32;
            while ctx.wait_recv(Some(ms(200))).is_some() {
                got += 1;
            }
            ctx.count("got", u64::from(got));
        });
        c.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.net.dropped, b.net.dropped);
    assert!(a.net.dropped > 10 && a.net.dropped < 90, "loss rate wildly off");
}

#[test]
#[should_panic(expected = "deadlock")]
fn deadlock_is_detected() {
    let mut c = Cluster::new(SimConfig::fast_test(), 1);
    c.spawn_node(0, |ctx| {
        // Waits forever for a message no one sends.
        let _ = ctx.wait_recv(None);
    });
    c.run();
}

#[test]
#[should_panic(expected = "boom from node code")]
fn node_panic_propagates() {
    let mut c = Cluster::new(SimConfig::fast_test(), 1);
    c.spawn_node(0, |_ctx| {
        panic!("boom from node code");
    });
    c.run();
}

#[test]
fn spawned_thread_shares_node() {
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = Arc::clone(&seen);
    c.spawn_node(0, move |ctx| {
        let seen3 = Arc::clone(&seen2);
        ctx.spawn_thread(move |tctx| {
            // The user thread can receive on the node's mailbox.
            let d = tctx.wait_recv(None).expect("thread receives");
            seen3.store(d.payload[0] as u64, Ordering::SeqCst);
        });
        ctx.compute(us(10));
    });
    c.spawn_node(1, |ctx| {
        ctx.compute(us(5));
        ctx.send_datagram(0, vec![77]);
    });
    c.run();
    assert_eq!(seen.load(Ordering::SeqCst), 77);
}

#[test]
fn node_cpu_serializes_threads() {
    // Two threads on one node each compute 1 ms; a single node CPU means
    // the node finishes no earlier than 2 ms.
    let mut c = Cluster::new(SimConfig::fast_test(), 1);
    let end = Arc::new(AtomicU64::new(0));
    let end2 = Arc::clone(&end);
    c.spawn_node(0, move |ctx| {
        let end3 = Arc::clone(&end2);
        ctx.spawn_thread(move |tctx| {
            tctx.compute(ms(1));
            end3.fetch_max(tctx.now(), Ordering::SeqCst);
        });
        ctx.compute(ms(1));
        end2.fetch_max(ctx.now(), Ordering::SeqCst);
    });
    c.run();
    assert!(
        end.load(Ordering::SeqCst) >= ms(2),
        "threads overlapped on one CPU: {}",
        end.load(Ordering::SeqCst)
    );
}

#[test]
fn counters_accumulate_per_node() {
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        ctx.count("widgets", 2);
        ctx.count("widgets", 3);
        assert_eq!(ctx.counter("widgets"), 5);
    });
    c.spawn_node(1, |ctx| {
        ctx.count("widgets", 10);
    });
    let r = c.run();
    assert_eq!(r.node_counters[0].get("widgets"), 5);
    assert_eq!(r.node_counters[1].get("widgets"), 10);
    assert_eq!(r.counter_total("widgets"), 15);
}

#[test]
fn report_utilization_matches_definition() {
    // One 1250-byte message over a run that we stretch to a known length.
    let cfg = SimConfig {
        send_overhead: 0,
        recv_overhead: 0,
        ..SimConfig::osdi94()
    };
    let mut c = Cluster::new(cfg, 2);
    c.spawn_node(0, |ctx| {
        ctx.send_datagram(1, vec![0u8; 1250]);
        ctx.sleep(ms(10)); // Stretch elapsed to 10 ms.
    });
    c.spawn_node(1, |ctx| {
        let _ = ctx.wait_recv(None);
    });
    let r = c.run();
    // 1250 B = 10_000 bits over 10 ms at 10 Mbit/s = 10% utilization.
    assert!((r.net_utilization() - 0.10).abs() < 0.01, "{}", r.net_utilization());
}

#[test]
fn max_events_safety_valve() {
    let cfg = SimConfig {
        max_events: Some(100),
        ..SimConfig::fast_test()
    };
    let mut c = Cluster::new(cfg, 2);
    c.spawn_node(0, |ctx| loop {
        ctx.send_datagram(1, vec![0]);
        ctx.compute(us(1));
    });
    c.spawn_node(1, |ctx| while ctx.wait_recv(None).is_some() {});
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.run()));
    assert!(result.is_err(), "runaway loop should trip max_events");
}

#[test]
fn many_nodes_all_to_all() {
    let n = 8usize;
    let mut c = Cluster::new(SimConfig::fast_test(), n);
    for id in 0..n as u32 {
        c.spawn_node(id, move |ctx| {
            for other in 0..ctx.num_nodes() as u32 {
                if other != ctx.node_id() {
                    ctx.send_datagram(other, vec![id as u8]);
                }
            }
            let mut got = 0;
            while got < ctx.num_nodes() - 1 {
                let d = ctx.wait_recv(None).expect("peer message");
                assert_eq!(d.payload.len(), 1);
                got += 1;
            }
        });
    }
    let r = c.run();
    assert_eq!(r.net.messages as usize, n * (n - 1));
}

#[test]
fn compute_interruptible_returns_remainder() {
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        // A datagram arrives mid-computation; the remainder is returned.
        let r = ctx.compute_interruptible(Bucket::User, ms(10));
        match r {
            Some(rem) => {
                assert!(rem > 0 && rem < ms(10));
                let d = ctx.try_recv().expect("the interrupting datagram");
                assert_eq!(d.payload, b"interrupt");
                // Finish the remainder undisturbed.
                assert!(ctx.compute_interruptible(Bucket::User, rem).is_none());
            }
            None => panic!("computation should have been interrupted"),
        }
    });
    c.spawn_node(1, |ctx| {
        ctx.compute(ms(2));
        ctx.send_datagram(0, b"interrupt".to_vec());
    });
    let r = c.run();
    // The interrupted node still charged the full 10 ms of user time.
    assert_eq!(r.node_buckets[0].get(Bucket::User), ms(10));
}

#[test]
fn wait_mailbox_does_not_consume() {
    let mut c = Cluster::new(SimConfig::fast_test(), 2);
    c.spawn_node(0, |ctx| {
        assert!(ctx.wait_mailbox(None), "delivery should arrive");
        // Nothing was consumed: the datagram is still there.
        assert!(ctx.mailbox_nonempty());
        let d = ctx.try_recv().expect("datagram still in the mailbox");
        assert_eq!(d.payload, b"peek");
        // Timeout path: nothing further arrives.
        assert!(!ctx.wait_mailbox(Some(ctx.now() + ms(1))));
    });
    c.spawn_node(1, |ctx| {
        ctx.compute(us(100));
        ctx.send_datagram(0, b"peek".to_vec());
    });
    c.run();
}

/// A payload shaped like a transport DATA frame: kind byte 0 followed by
/// the little-endian sequence number, padded to `len` bytes.
fn data_frame(seq: u32, len: usize) -> Vec<u8> {
    let mut p = vec![0u8; len.max(5)];
    p[1..5].copy_from_slice(&seq.to_le_bytes());
    p
}

#[test]
fn schedule_plan_flips_racing_deliveries() {
    use carlos_sim::SchedulePlan;
    let cfg = || SimConfig {
        send_overhead: 0,
        recv_overhead: 0,
        wire_latency: 0,
        frame_header_bytes: 0,
        bandwidth_bps: 8_000_000, // 1 byte per microsecond
        ..SimConfig::fast_test()
    };
    let run = |plan: SchedulePlan| {
        let first = Arc::new(AtomicU64::new(u64::MAX));
        let mut c = Cluster::new(cfg().with_schedule(plan), 3);
        c.spawn_node(0, |ctx| ctx.send_datagram(2, data_frame(0, 1000)));
        c.spawn_node(1, |ctx| ctx.send_datagram(2, data_frame(0, 500)));
        let f = first.clone();
        c.spawn_node(2, move |ctx| {
            let a = ctx.wait_recv(None).expect("first frame");
            let _ = ctx.wait_recv(None).expect("second frame");
            f.store(u64::from(a.src), Ordering::SeqCst);
        });
        c.run();
        first.load(Ordering::SeqCst)
    };
    // Baseline: node 0 grabs the medium first, so its frame lands first.
    assert_eq!(run(SchedulePlan::new()), 0);
    // Delaying node 0's flow past node 1's frame flips the delivery order.
    let plan = SchedulePlan::new().delay(0, 2, 0, ms(5));
    assert_eq!(run(plan), 1);
}

#[test]
fn schedule_plan_preserves_pair_fifo() {
    use carlos_sim::SchedulePlan;
    // Delay only seq 0 on the pair; seq 1 must NOT overtake it.
    let plan = SchedulePlan::new().delay(0, 1, 0, ms(10));
    let mut c = Cluster::new(SimConfig::fast_test().with_schedule(plan), 2);
    c.spawn_node(0, |ctx| {
        ctx.send_datagram(1, data_frame(0, 100));
        ctx.send_datagram(1, data_frame(1, 100));
    });
    c.spawn_node(1, |ctx| {
        let a = ctx.wait_recv(None).expect("first");
        let t1 = ctx.now();
        let b = ctx.wait_recv(None).expect("second");
        let t2 = ctx.now();
        assert_eq!(u32::from_le_bytes(a.payload[1..5].try_into().unwrap()), 0);
        assert_eq!(u32::from_le_bytes(b.payload[1..5].try_into().unwrap()), 1);
        assert!(t1 >= ms(10), "perturbed frame not delayed: {t1}");
        assert!(t2 >= t1, "successor overtook the perturbed frame");
    });
    c.run();
}

#[test]
fn schedule_plan_runs_are_deterministic() {
    use carlos_sim::SchedulePlan;
    let run = || {
        let plan = SchedulePlan::new().delay(0, 1, 1, us(700)).delay(2, 1, 0, us(30));
        let mut c = Cluster::new(SimConfig::fast_test().with_schedule(plan), 3);
        for n in [0u32, 2u32] {
            c.spawn_node(n, move |ctx| {
                for i in 0..4u32 {
                    ctx.compute(us(u64::from(n) + 1));
                    ctx.send_datagram(1, data_frame(i, 64));
                }
            });
        }
        c.spawn_node(1, |ctx| {
            for _ in 0..8 {
                let _ = ctx.wait_recv(None).expect("frame");
            }
        });
        c.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.net, b.net);
}

#[test]
fn empty_schedule_is_bit_identical_to_no_schedule() {
    use carlos_sim::SchedulePlan;
    let run = |with_knob: bool| {
        let cfg = if with_knob {
            SimConfig::fast_test().with_schedule(SchedulePlan::new())
        } else {
            SimConfig::fast_test()
        };
        let mut c = Cluster::new(cfg, 2);
        c.spawn_node(0, |ctx| {
            for i in 0..6u32 {
                ctx.send_datagram(1, data_frame(i, 256));
                ctx.compute(us(5));
            }
        });
        c.spawn_node(1, |ctx| {
            for _ in 0..6 {
                let _ = ctx.wait_recv(None).expect("frame");
            }
        });
        c.run()
    };
    let a = run(false);
    let b = run(true);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.net, b.net);
}
