//! Online consistency oracle for the CarlOS simulator.
//!
//! `carlos-check` attaches a [`Checker`] to a simulated cluster and
//! validates, as the run unfolds, that the DSM actually delivers the lazy
//! release consistency contract it claims:
//!
//! - a **happens-before tracker** mirrors the vector timestamps carried by
//!   REQUEST/RELEASE/FORWARD annotations and re-derives the causal order of
//!   intervals, flagging non-monotone closes, out-of-order applies, and
//!   release/accept verdicts that contradict the mirrored state;
//! - a **shadow-memory oracle** keeps a per-word last-writer history and
//!   validates that every read returns a value some write produced that is
//!   not ordered *after* the read — a stale read past an established
//!   acquire is a protocol bug, not an application bug;
//! - a **data-race detector** reports concurrent writes (and uncovered
//!   reads) of the same word from different nodes with no intervening
//!   release/acquire chain, attributed by `(node, interval, address)`.
//!
//! The checker is an observer: it is invoked synchronously from the engine
//! and runtime hot paths but never sends messages, never advances virtual
//! time, and never perturbs scheduling. A run with the checker installed
//! produces a bit-identical [`carlos_sim::SimReport`] fingerprint to the
//! same run without it.
//!
//! By default violations accumulate and are inspected at the end of the
//! run via [`Checker::violations`] / [`Checker::assert_clean`]. With
//! [`Checker::fail_fast`], the first violation aborts the offending node
//! through [`carlos_sim::abort`], surfacing as
//! [`carlos_sim::SimError::Aborted`].
//!
//! Benign, intentionally racy words (e.g. a monotonically improving bound
//! polled without a lock) can be exempted from read-side checks with
//! [`Checker::allow_racy`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delivery;
mod hb;
mod oracle;

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use carlos_core::Runtime;
use carlos_lrc::{EngineObserver, IntervalRecord, Vc};
use carlos_sim::{Cluster, NodeId, Ns, WireObserver};
use parking_lot::Mutex;

use delivery::DeliveryLog;
pub use delivery::DeliveryEvent;
use hb::HbTracker;
use oracle::Oracle;

/// What a [`Violation`] asserts went wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two writes to the same word from different nodes with concurrent
    /// interval timestamps — no release/acquire chain orders them.
    WriteWriteRace,
    /// A read of a word for which another node's write is neither covered
    /// by the reader's timestamp nor causally after the read.
    ReadWriteRace,
    /// A race-free word read returned a value other than the one written
    /// by the unique most recent covered write.
    StaleRead,
    /// A nonzero value was read from a word no observed write produced.
    UnknownValue,
    /// The happens-before mirror caught the protocol misbehaving: a
    /// non-monotone close, an out-of-order apply, a timestamp mismatch, or
    /// a completeness verdict that contradicts the mirrored state.
    HbOrder,
}

/// One consistency violation, attributed to the node and (open) interval
/// that observed it and the word-aligned address involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The class of violation.
    pub kind: ViolationKind,
    /// Node at which the violation was observed.
    pub node: u32,
    /// That node's interval at observation time (the still-open interval
    /// for memory accesses).
    pub interval: u32,
    /// Word-aligned shared-memory address, or 0 for non-memory violations.
    pub addr: usize,
    /// Human-readable description naming the other party.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} at node {} interval {} addr {:#x}: {}",
            self.kind, self.node, self.interval, self.addr, self.detail
        )
    }
}

struct State {
    hb: HbTracker,
    oracle: Oracle,
    deliveries: DeliveryLog,
    violations: Vec<Violation>,
    reported: HashSet<String>,
    fail_fast: bool,
}

impl State {
    /// Deduplicate and store `found`; returns the first fresh violation's
    /// message when fail-fast escalation should fire.
    fn record(&mut self, found: Vec<(String, Violation)>) -> Option<String> {
        let mut first = None;
        for (key, v) in found {
            if self.reported.insert(key) {
                if first.is_none() {
                    first = Some(v.to_string());
                }
                self.violations.push(v);
            }
        }
        if self.fail_fast {
            first
        } else {
            None
        }
    }
}

/// The online LRC oracle. Cheap to clone (all clones share one state);
/// [`install`](Checker::install) it on every node's runtime and
/// [`attach`](Checker::attach) it to the cluster before the run.
#[derive(Clone)]
pub struct Checker {
    inner: Arc<Mutex<State>>,
}

impl fmt::Debug for Checker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.lock();
        write!(
            f,
            "Checker({} violations{})",
            st.violations.len(),
            if st.fail_fast { ", fail-fast" } else { "" }
        )
    }
}

impl Checker {
    /// A checker for an `n_nodes`-node cluster, accumulating violations.
    #[must_use]
    pub fn new(n_nodes: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(State {
                hb: HbTracker::new(n_nodes),
                oracle: Oracle::new(n_nodes),
                deliveries: DeliveryLog::new(n_nodes),
                violations: Vec::new(),
                reported: HashSet::new(),
                fail_fast: false,
            })),
        }
    }

    /// Escalate the first violation by aborting the offending node (the
    /// run then fails with [`carlos_sim::SimError::Aborted`]). Violations
    /// observed on the wire-delivery path are never escalated — that path
    /// runs outside any node — but they still accumulate.
    #[must_use]
    pub fn fail_fast(self) -> Self {
        self.inner.lock().fail_fast = true;
        self
    }

    /// Install the engine observer and core probe on one node's runtime.
    /// Call from the node closure, before the application touches shared
    /// memory.
    pub fn install(&self, rt: &mut Runtime) {
        rt.set_engine_observer(Arc::new(self.clone()));
        rt.set_probe(Arc::new(self.clone()));
    }

    /// Attach the wire observer to the cluster (FIFO delivery checks).
    pub fn attach(&self, cluster: &mut Cluster) {
        cluster.set_observer(Arc::new(self.clone()));
    }

    /// Exempt `[addr, addr + len)` from read-side checks. Use for words an
    /// application intentionally reads without synchronization (the read
    /// must tolerate any previously written value). Write/write race
    /// detection still applies.
    pub fn allow_racy(&self, addr: usize, len: usize) {
        self.inner.lock().oracle.allow_racy(addr, len);
    }

    /// The wire-delivery log in observation (virtual-time) order, each
    /// delivery annotated with message-level vector clocks. The schedule
    /// explorer queries this — via [`DeliveryEvent::flip_unordered`] — for
    /// the racing-delivery frontier of a finished run.
    #[must_use]
    pub fn deliveries(&self) -> Vec<DeliveryEvent> {
        self.inner.lock().deliveries.events().to_vec()
    }

    /// All violations recorded so far, in observation order.
    #[must_use]
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.lock().violations.clone()
    }

    /// True when no violation has been recorded.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.inner.lock().violations.is_empty()
    }

    /// Panics with a full listing if any violation was recorded.
    pub fn assert_clean(&self) {
        let st = self.inner.lock();
        assert!(
            st.violations.is_empty(),
            "consistency oracle found {} violation(s):\n{}",
            st.violations.len(),
            st.violations
                .iter()
                .map(|v| format!("  - {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Record `found` and, in fail-fast mode, abort `node` on the first
    /// fresh violation. Only safe from a node's own execution context.
    fn sink(&self, node: u32, found: Vec<(String, Violation)>) {
        if found.is_empty() {
            return;
        }
        let msg = self.inner.lock().record(found);
        if let Some(m) = msg {
            carlos_sim::abort(node, m);
        }
    }

    /// Record `found` without ever escalating (wire-delivery path: the
    /// caller holds the kernel lock and is not a node).
    fn sink_passive(&self, found: Vec<(String, Violation)>) {
        if found.is_empty() {
            return;
        }
        let _ = self.inner.lock().record(found);
    }
}

impl EngineObserver for Checker {
    fn mem_read(&self, node: u32, addr: usize, data: &[u8], vt: &Vc) {
        let found = {
            let mut guard = self.inner.lock();
            let st = &mut *guard;
            st.oracle.on_read(node, addr, data, vt)
        };
        self.sink(node, found);
    }

    fn mem_write(&self, node: u32, addr: usize, data: &[u8], vt: &Vc) {
        let found = {
            let mut guard = self.inner.lock();
            let st = &mut *guard;
            st.oracle.on_write(node, addr, data, vt, &st.hb.node_vt)
        };
        self.sink(node, found);
    }

    fn interval_closed(&self, node: u32, rec: &IntervalRecord) {
        let found = self.inner.lock().hb.on_interval_closed(node, rec);
        self.sink(node, found);
    }

    fn record_applied(&self, node: u32, rec: &IntervalRecord) {
        let found = self.inner.lock().hb.on_record_applied(node, rec);
        self.sink(node, found);
    }
}

impl carlos_core::CoreProbe for Checker {
    fn release_sent(&self, node: NodeId, _dst: NodeId, required: &Vc) {
        let found = self.inner.lock().hb.on_release_sent(node, required);
        self.sink(node, found);
    }

    fn release_accepted(&self, node: NodeId, _origin: NodeId, required: &Vc, complete: bool) {
        let found = self
            .inner
            .lock()
            .hb
            .on_release_accepted(node, required, complete);
        self.sink(node, found);
    }
}

impl WireObserver for Checker {
    fn frame_delivered(&self, src: NodeId, dst: NodeId, sent_at: Ns, delivered_at: Ns, _bytes: usize) {
        let found = self
            .inner
            .lock()
            .hb
            .on_frame(src, dst, sent_at, delivered_at);
        self.sink_passive(found);
    }

    fn frame_sent(&self, src: NodeId, dst: NodeId, at: Ns, payload: &Bytes) {
        self.inner.lock().deliveries.on_sent(src, dst, at, payload);
    }

    fn frame_dropped(&self, src: NodeId, dst: NodeId, at: Ns, payload: &Bytes) {
        self.inner.lock().deliveries.on_dropped(src, dst, at, payload);
    }

    fn frame_delivered_payload(
        &self,
        src: NodeId,
        dst: NodeId,
        sent_at: Ns,
        delivered_at: Ns,
        payload: &Bytes,
    ) {
        self.inner
            .lock()
            .deliveries
            .on_delivered(src, dst, sent_at, delivered_at, payload);
    }
}
