//! Ground-truth happens-before tracking.
//!
//! The tracker mirrors every node's vector timestamp from the observed
//! interval closes and record applications, independently re-deriving the
//! causal order the protocol claims to maintain. Divergence between an
//! engine's behavior and the mirror — a non-monotone close, an out-of-order
//! apply, a record whose timestamp disagrees with the creator's, a release
//! whose completeness verdict contradicts the mirrored coverage — is
//! reported as an [`Violation`] of kind [`ViolationKind::HbOrder`].

use std::collections::BTreeMap;

use carlos_lrc::{IntervalRecord, Vc};
use carlos_sim::{NodeId, Ns};

use crate::{Violation, ViolationKind};

/// Mirror of the cluster's causal state, fed by observer hooks.
pub(crate) struct HbTracker {
    /// `node_vt[n]` re-derives node `n`'s engine timestamp.
    pub(crate) node_vt: Vec<Vc>,
    /// Ground truth: the timestamp each `(creator, index)` interval was
    /// created with, pinned at first sight and compared ever after.
    records: BTreeMap<(u32, u32), Vc>,
    /// Last `(sent_at, delivered_at)` seen per wire pair, for FIFO checks.
    pair_fifo: BTreeMap<(NodeId, NodeId), (Ns, Ns)>,
}

impl HbTracker {
    pub(crate) fn new(n_nodes: usize) -> Self {
        Self {
            node_vt: (0..n_nodes).map(|_| Vc::new(n_nodes)).collect(),
            records: BTreeMap::new(),
            pair_fifo: BTreeMap::new(),
        }
    }

    fn hb_violation(node: u32, own_interval: u32, detail: String) -> (String, Violation) {
        let key = format!("hb:{node}:{detail}");
        (
            key,
            Violation {
                kind: ViolationKind::HbOrder,
                node,
                interval: own_interval,
                addr: 0,
                detail,
            },
        )
    }

    /// `node` closed interval `rec` (its own creation).
    pub(crate) fn on_interval_closed(
        &mut self,
        node: u32,
        rec: &IntervalRecord,
    ) -> Vec<(String, Violation)> {
        let mut out = Vec::new();
        let old = &self.node_vt[node as usize];
        if rec.node != node {
            out.push(Self::hb_violation(
                node,
                old.get(node),
                format!("closed an interval attributed to node {}", rec.node),
            ));
        }
        if rec.index != old.get(node) + 1 {
            out.push(Self::hb_violation(
                node,
                old.get(node),
                format!(
                    "interval index {} is not the successor of {}",
                    rec.index,
                    old.get(node)
                ),
            ));
        }
        if rec.vc.get(node) != rec.index || !rec.vc.dominates(old) {
            out.push(Self::hb_violation(
                node,
                old.get(node),
                format!(
                    "close timestamp {:?} regressed from mirrored {:?}",
                    rec.vc, old
                ),
            ));
        }
        if let Some(prev) = self.records.get(&(rec.node, rec.index)) {
            if *prev != rec.vc {
                out.push(Self::hb_violation(
                    node,
                    old.get(node),
                    format!(
                        "interval ({}, {}) re-created with timestamp {:?} != {:?}",
                        rec.node, rec.index, rec.vc, prev
                    ),
                ));
            }
        } else {
            self.records.insert((rec.node, rec.index), rec.vc.clone());
        }
        self.node_vt[node as usize] = rec.vc.clone();
        out
    }

    /// `node` applied the remote record `rec` (an acquire step).
    pub(crate) fn on_record_applied(
        &mut self,
        node: u32,
        rec: &IntervalRecord,
    ) -> Vec<(String, Violation)> {
        let mut out = Vec::new();
        let own = self.node_vt[node as usize].get(node);
        if rec.node == node {
            out.push(Self::hb_violation(
                node,
                own,
                format!("applied its own interval {} as remote", rec.index),
            ));
            return out;
        }
        let have = self.node_vt[node as usize].get(rec.node);
        if rec.index != have + 1 {
            out.push(Self::hb_violation(
                node,
                own,
                format!(
                    "applied interval ({}, {}) out of order (mirror has {})",
                    rec.node, rec.index, have
                ),
            ));
        }
        match self.records.get(&(rec.node, rec.index)) {
            Some(truth) if *truth != rec.vc => {
                out.push(Self::hb_violation(
                    node,
                    own,
                    format!(
                        "record ({}, {}) carries timestamp {:?}, creator made {:?}",
                        rec.node, rec.index, rec.vc, truth
                    ),
                ));
            }
            Some(_) => {}
            None => {
                // Creator unobserved (checker installed on a subset): adopt
                // the first sighting as ground truth.
                self.records.insert((rec.node, rec.index), rec.vc.clone());
            }
        }
        self.node_vt[node as usize].set(rec.node, rec.index.max(have));
        out
    }

    /// `node` sent a release with the given required timestamp.
    pub(crate) fn on_release_sent(
        &self,
        node: NodeId,
        required: &Vc,
    ) -> Vec<(String, Violation)> {
        let mirror = &self.node_vt[node as usize];
        if mirror != required {
            vec![Self::hb_violation(
                node,
                mirror.get(node),
                format!(
                    "release requires {required:?} but mirrored state is {mirror:?}"
                ),
            )]
        } else {
            Vec::new()
        }
    }

    /// `node` finished the acquire side of a release originated elsewhere.
    pub(crate) fn on_release_accepted(
        &self,
        node: NodeId,
        required: &Vc,
        complete: bool,
    ) -> Vec<(String, Violation)> {
        let mirror = &self.node_vt[node as usize];
        if mirror.dominates(required) != complete {
            vec![Self::hb_violation(
                node,
                mirror.get(node),
                format!(
                    "accept completeness {complete} contradicts mirror {mirror:?} \
                     vs required {required:?}"
                ),
            )]
        } else {
            Vec::new()
        }
    }

    /// A wire frame landed; verify per-pair FIFO delivery.
    pub(crate) fn on_frame(
        &mut self,
        src: NodeId,
        dst: NodeId,
        sent_at: Ns,
        delivered_at: Ns,
    ) -> Vec<(String, Violation)> {
        let mut out = Vec::new();
        let e = self.pair_fifo.entry((src, dst)).or_insert((0, 0));
        if sent_at < e.0 || delivered_at < e.1 {
            out.push(Self::hb_violation(
                dst,
                0,
                format!(
                    "pair {src}->{dst} delivery reordered: sent {sent_at} (last {}), \
                     delivered {delivered_at} (last {})",
                    e.0, e.1
                ),
            ));
        }
        e.0 = e.0.max(sent_at);
        e.1 = e.1.max(delivered_at);
        out
    }
}
