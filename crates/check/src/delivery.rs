//! Wire-delivery log: message-level vector clocks and racing-pair queries.
//!
//! The checker's oracle and interval mirror track the *protocol's* vector
//! timestamps; the schedule explorer needs something lower-level — the
//! happens-before relation over raw wire deliveries, independent of what
//! the protocol claims. This module derives it from the wire events the
//! checker already observes:
//!
//! - every frame **send** is an event at the sender (bump the sender's own
//!   clock component, snapshot the clock into the in-flight frame);
//! - every frame **delivery** is an event at the receiver (join the
//!   carried send clock, then bump the receiver's own component).
//!
//! Two deliveries at the same node then *race* — their order could flip
//! under a different schedule without violating causality — exactly when
//! the later frame's send does not causally depend on the earlier
//! delivery, which reduces to one component comparison
//! ([`DeliveryEvent::flip_unordered`]). This is the classic
//! message-passing DPOR condition: co-enabled receives at one endpoint
//! whose sends are concurrent.
//!
//! Loopback datagrams never reach the wire observer, which is harmless:
//! both endpoints are the same node, and intra-node program order is
//! already captured by that node's own clock component.

use std::collections::{BTreeMap, VecDeque};

use carlos_sim::{NodeId, Ns};

/// Transport DATA kind byte (mirrors `carlos_sim::transport`).
const KIND_DATA: u8 = 0;

/// Kind recorded for frames too short to carry a transport header.
const KIND_RAW: u8 = u8::MAX;

/// One wire delivery, annotated with message-level vector clocks.
///
/// `send_clock` is the sender's clock at the moment the frame was handed
/// to the wire (own component already bumped for this send);
/// `deliver_clock` is the receiver's clock just after absorbing the frame
/// (join + own bump). Clock components count wire events per node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryEvent {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Transport kind byte (0 = DATA; [`u8::MAX`] for unframed payloads).
    pub kind: u8,
    /// Transport sequence number on the (src, dst) pair (DATA frames).
    pub seq: u32,
    /// Virtual time the frame was handed to the wire.
    pub sent_at: Ns,
    /// Virtual time the frame reached the destination mailbox.
    pub delivered_at: Ns,
    /// Sender's message clock at send (own component included).
    pub send_clock: Vec<u64>,
    /// Receiver's message clock after this delivery.
    pub deliver_clock: Vec<u64>,
}

impl DeliveryEvent {
    /// True for transport DATA frames — the only frames a
    /// [`carlos_sim::SchedulePlan`] can name.
    #[must_use]
    pub fn is_data(&self) -> bool {
        self.kind == KIND_DATA
    }

    /// True when delivering `later` *before* `self` would still respect
    /// causality: both frames target the same node, come from different
    /// senders, and the later frame's send does not causally depend on
    /// this delivery. Such a pair is a racing-delivery frontier candidate
    /// — perturbing this frame's flow can realize the flipped order.
    #[must_use]
    pub fn flip_unordered(&self, later: &DeliveryEvent) -> bool {
        self.dst == later.dst
            && self.src != later.src
            && later.send_clock[self.dst as usize] < self.deliver_clock[self.dst as usize]
    }
}

/// A frame handed to the wire but not yet delivered or dropped.
#[derive(Debug)]
struct InFlight {
    seq: u32,
    sent_at: Ns,
    clock: Vec<u64>,
}

/// Accumulates wire events into ordered [`DeliveryEvent`]s.
#[derive(Debug)]
pub(crate) struct DeliveryLog {
    /// Per-node message-level vector clock (wire events only).
    node_clock: Vec<Vec<u64>>,
    /// Frames on the wire, per (src, dst) pair, in send order.
    in_flight: BTreeMap<(NodeId, NodeId), VecDeque<InFlight>>,
    /// Deliveries in observation (virtual-time) order.
    events: Vec<DeliveryEvent>,
}

fn header(payload: &[u8]) -> (u8, u32) {
    if payload.len() >= 5 {
        let seq = u32::from_le_bytes(payload[1..5].try_into().unwrap_or([0; 4]));
        (payload[0], seq)
    } else {
        (KIND_RAW, 0)
    }
}

fn join(into: &mut [u64], from: &[u64]) {
    for (a, b) in into.iter_mut().zip(from) {
        *a = (*a).max(*b);
    }
}

impl DeliveryLog {
    pub fn new(n_nodes: usize) -> Self {
        Self {
            node_clock: vec![vec![0; n_nodes]; n_nodes],
            in_flight: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// A frame left `src` toward `dst` (it may still be dropped).
    pub fn on_sent(&mut self, src: NodeId, dst: NodeId, at: Ns, payload: &[u8]) {
        let (_, seq) = header(payload);
        let clock = &mut self.node_clock[src as usize];
        clock[src as usize] += 1;
        let snapshot = clock.clone();
        self.in_flight.entry((src, dst)).or_default().push_back(InFlight {
            seq,
            sent_at: at,
            clock: snapshot,
        });
    }

    /// Loss injection dropped the frame sent at `at` (fired immediately
    /// after its `on_sent`, so it is the newest in-flight entry).
    pub fn on_dropped(&mut self, src: NodeId, dst: NodeId, at: Ns, payload: &[u8]) {
        let (_, seq) = header(payload);
        if let Some(q) = self.in_flight.get_mut(&(src, dst)) {
            if let Some(pos) = q
                .iter()
                .rposition(|f| f.sent_at == at && f.seq == seq)
            {
                q.remove(pos);
            }
        }
    }

    /// A frame reached `dst`'s mailbox: join clocks and record the event.
    pub fn on_delivered(
        &mut self,
        src: NodeId,
        dst: NodeId,
        sent_at: Ns,
        delivered_at: Ns,
        payload: &[u8],
    ) {
        let (kind, seq) = header(payload);
        // Deliveries are FIFO per pair except under seeded reordering, so
        // match by identity rather than assuming the queue front.
        let sent = self.in_flight.get_mut(&(src, dst)).and_then(|q| {
            q.iter()
                .position(|f| f.sent_at == sent_at && f.seq == seq)
                .and_then(|pos| q.remove(pos))
        });
        let send_clock = match sent {
            Some(f) => f.clock,
            // Observer attached mid-run or unmatched retransmit: fall back
            // to the sender's current clock (conservative over-ordering).
            None => self.node_clock[src as usize].clone(),
        };
        let clock = &mut self.node_clock[dst as usize];
        join(clock, &send_clock);
        clock[dst as usize] += 1;
        self.events.push(DeliveryEvent {
            src,
            dst,
            kind,
            seq,
            sent_at,
            delivered_at,
            send_clock,
            deliver_clock: clock.clone(),
        });
    }

    pub fn events(&self) -> &[DeliveryEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(seq: u32) -> Vec<u8> {
        let mut p = vec![0u8; 16];
        p[1..5].copy_from_slice(&seq.to_le_bytes());
        p
    }

    #[test]
    fn independent_sends_race_at_common_destination() {
        let mut log = DeliveryLog::new(3);
        log.on_sent(0, 2, 10, &data(0));
        log.on_sent(1, 2, 11, &data(0));
        log.on_delivered(0, 2, 10, 20, &data(0));
        log.on_delivered(1, 2, 11, 25, &data(0));
        let ev = log.events();
        assert_eq!(ev.len(), 2);
        // Node 1's send never saw node 0's delivery: the pair races.
        assert!(ev[0].flip_unordered(&ev[1]));
    }

    #[test]
    fn causal_chain_orders_the_pair() {
        let mut log = DeliveryLog::new(3);
        // 0 -> 2 delivered, then 2 -> 1, then 1 -> 2: the second delivery
        // at node 2 causally follows the first.
        log.on_sent(0, 2, 10, &data(0));
        log.on_delivered(0, 2, 10, 20, &data(0));
        log.on_sent(2, 1, 21, &data(0));
        log.on_delivered(2, 1, 21, 30, &data(0));
        log.on_sent(1, 2, 31, &data(0));
        log.on_delivered(1, 2, 31, 40, &data(0));
        let ev = log.events();
        assert_eq!(ev.len(), 3);
        assert!(!ev[0].flip_unordered(&ev[2]), "chained deliveries must not race");
    }

    #[test]
    fn same_source_deliveries_do_not_race() {
        let mut log = DeliveryLog::new(2);
        log.on_sent(0, 1, 10, &data(0));
        log.on_sent(0, 1, 12, &data(1));
        log.on_delivered(0, 1, 10, 20, &data(0));
        log.on_delivered(0, 1, 12, 22, &data(1));
        let ev = log.events();
        assert!(!ev[0].flip_unordered(&ev[1]), "per-pair FIFO is not a race");
    }

    #[test]
    fn dropped_frames_leave_no_event() {
        let mut log = DeliveryLog::new(2);
        log.on_sent(0, 1, 10, &data(0));
        log.on_dropped(0, 1, 10, &data(0));
        log.on_sent(0, 1, 12, &data(1));
        log.on_delivered(0, 1, 12, 22, &data(1));
        assert_eq!(log.events().len(), 1);
        assert_eq!(log.events()[0].seq, 1);
    }
}
