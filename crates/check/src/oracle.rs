//! Shadow-memory consistency oracle.
//!
//! The oracle keeps a per-word (4-byte) history of writes, each tagged with
//! the writer's node, the interval the write belongs to, and the vector
//! timestamp of that interval. From this history it decides, for every
//! observed read, which write the reader is *entitled* to see under lazy
//! release consistency, and flags:
//!
//! - **write/write races** — two writes to the same word from different
//!   nodes whose intervals are concurrent (no release/acquire chain orders
//!   them);
//! - **read/write races** — a read of a word for which some other node's
//!   write is not covered by the reader's timestamp (the write neither
//!   happened-before the read nor after it);
//! - **stale reads** — the word is data-race-free, a unique most-recent
//!   covered write exists, and the value returned differs from it (a
//!   protocol bug: an established acquire failed to invalidate or a diff
//!   was lost);
//! - **unknown values** — a nonzero value read from a word no observed
//!   write ever produced (shared regions are zero-initialized).
//!
//! A write at node `p` whose engine timestamp is `vt` belongs to the still
//! open interval `vt[p] + 1`; its timestamp is `vt` with the own component
//! bumped. A read at node `r` with timestamp `vt_r` covers a write `(p, i)`
//! iff `p == r` (program order) or `vt_r[p] >= i` (the interval record was
//! applied before the read). Because the simulator serializes observation
//! in virtual-time order and messages take nonzero time, a write observed
//! *after* a read can never happen-before it — so coverage alone decides
//! the race verdict.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use carlos_lrc::Vc;

use crate::{Violation, ViolationKind};

/// One recorded write to a word.
struct WriteRec {
    node: u32,
    interval: u32,
    vc: Vc,
    /// The 4 bytes the word held after this write, if the write covered the
    /// word entirely; `None` for partial (sub-word) writes.
    value: Option<[u8; 4]>,
}

/// Per-word write history plus the racy-by-design allowlist.
pub(crate) struct Oracle {
    n_nodes: usize,
    words: HashMap<usize, Vec<WriteRec>>,
    allow: BTreeSet<usize>,
}

impl Oracle {
    pub(crate) fn new(n_nodes: usize) -> Self {
        Self {
            n_nodes,
            words: HashMap::new(),
            allow: BTreeSet::new(),
        }
    }

    /// Exempt every word overlapping `[addr, addr + len)` from read-side
    /// checks (read/write race, stale, unknown). Write/write races on these
    /// words are still reported.
    pub(crate) fn allow_racy(&mut self, addr: usize, len: usize) {
        if len == 0 {
            return;
        }
        for w in addr / 4..=(addr + len - 1) / 4 {
            self.allow.insert(w);
        }
    }

    /// Record a write and check it against the existing history.
    pub(crate) fn on_write(
        &mut self,
        node: u32,
        addr: usize,
        data: &[u8],
        vt: &Vc,
        node_vt: &[Vc],
    ) -> Vec<(String, Violation)> {
        if data.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let interval = vt.get(node) + 1;
        let mut vc_w = vt.clone();
        vc_w.bump(node);
        // Pruning floor: every interval of `node` at or below `cover` has
        // been applied by the whole cluster, so only the newest such entry
        // can still be the legal value for any reader.
        let cover = (0..self.n_nodes)
            .map(|q| node_vt[q].get(node))
            .min()
            .unwrap_or(0);
        for w in addr / 4..=(addr + data.len() - 1) / 4 {
            let ws = w * 4;
            let value: Option<[u8; 4]> = if addr <= ws && ws + 4 <= addr + data.len() {
                Some(data[ws - addr..ws - addr + 4].try_into().unwrap())
            } else {
                None
            };
            let entries = self.words.entry(w).or_default();
            for e in entries.iter() {
                if e.node != node && vc_w.get(e.node) < e.interval {
                    out.push((
                        format!("ww:{w}:{}:{}:{node}:{interval}", e.node, e.interval),
                        Violation {
                            kind: ViolationKind::WriteWriteRace,
                            node,
                            interval,
                            addr: ws,
                            detail: format!(
                                "concurrent with write by node {} interval {}",
                                e.node, e.interval
                            ),
                        },
                    ));
                }
            }
            if let Some(e) = entries
                .iter_mut()
                .find(|e| e.node == node && e.interval == interval)
            {
                // Later write in the same interval: last value wins; a
                // partial overwrite makes the word's final bytes unknown.
                e.value = value;
            } else {
                entries.push(WriteRec {
                    node,
                    interval,
                    vc: vc_w.clone(),
                    value,
                });
                if cover > 0 {
                    if let Some(base) = entries
                        .iter()
                        .filter(|e| e.node == node && e.interval <= cover)
                        .map(|e| e.interval)
                        .max()
                    {
                        entries.retain(|e| e.node != node || e.interval >= base);
                    }
                }
            }
        }
        out
    }

    /// Check a read's race status and, where the word is race-free, the
    /// legality of the returned value.
    pub(crate) fn on_read(
        &self,
        node: u32,
        addr: usize,
        data: &[u8],
        vt: &Vc,
    ) -> Vec<(String, Violation)> {
        if data.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let interval = vt.get(node) + 1;
        for w in addr / 4..=(addr + data.len() - 1) / 4 {
            if self.allow.contains(&w) {
                continue;
            }
            let ws = w * 4;
            // Value checks apply only to words the read covers entirely.
            let got: Option<&[u8]> = if addr <= ws && ws + 4 <= addr + data.len() {
                Some(&data[ws - addr..ws - addr + 4])
            } else {
                None
            };
            let Some(entries) = self.words.get(&w) else {
                if let Some(g) = got {
                    if g != [0u8; 4] {
                        out.push((
                            format!("unk:{w}:{node}"),
                            Violation {
                                kind: ViolationKind::UnknownValue,
                                node,
                                interval,
                                addr: ws,
                                detail: format!(
                                    "read {g:02x?} from a word never written \
                                     (shared memory is zero-initialized)"
                                ),
                            },
                        ));
                    }
                }
                continue;
            };
            if let Some(e) = entries
                .iter()
                .find(|e| e.node != node && vt.get(e.node) < e.interval)
            {
                out.push((
                    format!("rw:{w}:{}:{}:{node}", e.node, e.interval),
                    Violation {
                        kind: ViolationKind::ReadWriteRace,
                        node,
                        interval,
                        addr: ws,
                        detail: format!(
                            "read races with uncovered write by node {} interval {}",
                            e.node, e.interval
                        ),
                    },
                ));
                continue; // racy word: any value is excused
            }
            let Some(g) = got else { continue };
            // All writes to this word are covered. The legal value is the
            // unique maximal write under happened-before, if one exists.
            let mut latest: BTreeMap<u32, &WriteRec> = BTreeMap::new();
            for e in entries {
                let cur = latest.entry(e.node).or_insert(e);
                if e.interval > cur.interval {
                    *cur = e;
                }
            }
            let maximal: Vec<&&WriteRec> = latest
                .values()
                .filter(|a| {
                    !latest
                        .values()
                        .any(|b| b.node != a.node && b.vc.get(a.node) >= a.interval)
                })
                .collect();
            if maximal.len() == 1 {
                if let Some(v) = maximal[0].value {
                    if g != v {
                        out.push((
                            format!("stale:{w}:{node}"),
                            Violation {
                                kind: ViolationKind::StaleRead,
                                node,
                                interval,
                                addr: ws,
                                detail: format!(
                                    "read {g:02x?} but the covering write by node {} \
                                     interval {} stored {v:02x?}",
                                    maximal[0].node, maximal[0].interval
                                ),
                            },
                        ));
                    }
                }
            }
            // Multiple maximal covered writes means the writes themselves
            // raced; that was reported at write time, so any of their
            // values is accepted here.
        }
        out
    }
}
