//! Intentional-bug smoke test: a tiny application reads a shared word
//! WITHOUT acquiring the lock that protects it. The race detector must
//! report the access with full `(node, interval, address)` attribution;
//! the corrected program (reader takes the lock) must come back clean.

use carlos_check::{Checker, ViolationKind};
use carlos_core::{CoreConfig, Runtime};
use carlos_lrc::LrcConfig;
use carlos_sim::{time::ms, Cluster, SimConfig, SimError};
use carlos_sync::{BarrierSpec, LockSpec};

const WORD: usize = 0;
const SECRET: u32 = 0xDEAD_BEEF;

/// Runs the two-node program; when `reader_locks` is false, node 1 commits
/// the intentional bug.
fn run_app(check: &Checker, reader_locks: bool) -> Result<carlos_sim::SimReport, SimError> {
    const N: usize = 2;
    let mut c = Cluster::new(SimConfig::fast_test(), N);
    check.attach(&mut c);
    let ck = check.clone();
    c.spawn_node(0, move |ctx| {
        let mut rt = Runtime::new(ctx, LrcConfig::small_test(N), CoreConfig::fast_test());
        ck.install(&mut rt);
        let sys = carlos_sync::install(&mut rt);
        let lock = LockSpec::new(1, 0);
        sys.acquire(&mut rt, lock);
        rt.write_u32(WORD, SECRET);
        sys.release(&mut rt, lock);
        sys.barrier(&mut rt, BarrierSpec::global(9, 0), 0);
        rt.shutdown();
    });
    let ck = check.clone();
    c.spawn_node(1, move |ctx| {
        let mut rt = Runtime::new(ctx, LrcConfig::small_test(N), CoreConfig::fast_test());
        ck.install(&mut rt);
        let sys = carlos_sync::install(&mut rt);
        let lock = LockSpec::new(1, 0);
        rt.sleep(ms(5)); // let the writer go first in virtual time
        if reader_locks {
            sys.acquire(&mut rt, lock);
        }
        let _ = rt.read_u32(WORD); // the unprotected read when !reader_locks
        if reader_locks {
            sys.release(&mut rt, lock);
        }
        sys.barrier(&mut rt, BarrierSpec::global(9, 0), 0);
        rt.shutdown();
    });
    c.try_run()
}

#[test]
fn unlocked_read_is_reported_with_attribution() {
    let check = Checker::new(2);
    run_app(&check, false).expect("accumulating checker must not abort the run");
    let vs = check.violations();
    let race = vs
        .iter()
        .find(|v| v.kind == ViolationKind::ReadWriteRace)
        .unwrap_or_else(|| panic!("no read/write race reported, got: {vs:?}"));
    // Attribution: reading node, its open interval, the word address, and
    // the racing writer named in the detail.
    assert_eq!(race.node, 1, "race must be attributed to the reader");
    assert_eq!(race.addr, WORD, "race must name the contested word");
    assert_eq!(race.interval, 1, "reader was in its first (open) interval");
    assert!(
        race.detail.contains("node 0 interval 1"),
        "race must name the racing write: {}",
        race.detail
    );
}

#[test]
fn locked_read_of_same_program_is_clean() {
    let check = Checker::new(2);
    run_app(&check, true).expect("clean run");
    check.assert_clean();
}

#[test]
fn fail_fast_surfaces_race_as_aborted_run() {
    let check = Checker::new(2).fail_fast();
    match run_app(&check, false) {
        Err(SimError::Aborted { node, context, .. }) => {
            assert_eq!(node, 1, "the racing reader aborts");
            assert!(context.contains("ReadWriteRace"), "{context}");
        }
        other => panic!("expected Aborted, got {other:?}"),
    }
}
