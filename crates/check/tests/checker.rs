//! Oracle and happens-before tracker unit tests, driven by raw LRC engines
//! (no simulator) and by direct observer-hook calls for the protocol-bug
//! cases a correct engine cannot produce.

use std::sync::Arc;

use carlos_check::{Checker, ViolationKind};
use carlos_lrc::{Demand, EngineObserver, IntervalRecord, LrcConfig, LrcEngine, Vc};

fn engines(n: usize, check: &Checker) -> Vec<LrcEngine> {
    (0..n as u32)
        .map(|i| {
            let mut e = LrcEngine::new(i, LrcConfig::small_test(n));
            e.set_observer(Arc::new(check.clone()));
            e
        })
        .collect()
}

fn satisfy(engines: &mut [LrcEngine], node: usize, demands: Vec<Demand>) {
    for d in demands {
        match d {
            Demand::Diffs {
                to,
                page,
                after,
                through,
            } => {
                let recs = engines[to as usize].serve_diffs(page, after, through);
                engines[node].apply_diff_records(page, recs);
            }
            Demand::Page { to, page } => {
                let (data, applied) = engines[to as usize].serve_page(page);
                engines[node].install_page(page, data, applied);
            }
        }
    }
}

fn resolve_write(engines: &mut [LrcEngine], node: usize, addr: usize, data: &[u8]) {
    loop {
        match engines[node].write(addr, data) {
            Ok(()) => return,
            Err(d) => satisfy(engines, node, d),
        }
    }
}

fn resolve_read(engines: &mut [LrcEngine], node: usize, addr: usize, buf: &mut [u8]) {
    loop {
        match engines[node].read(addr, buf) {
            Ok(()) => return,
            Err(d) => satisfy(engines, node, d),
        }
    }
}

fn sync_release(engines: &mut [LrcEngine], from: usize, to: usize) {
    engines[from].close_interval();
    let have = engines[to].vt().clone();
    let records = engines[from].records_newer_than(&have);
    engines[to].close_interval();
    engines[to].apply_records(&records);
}

#[test]
fn drf_release_chain_is_clean() {
    let check = Checker::new(2);
    let mut e = engines(2, &check);
    resolve_write(&mut e, 0, 0, &7u32.to_le_bytes());
    sync_release(&mut e, 0, 1);
    let mut buf = [0u8; 4];
    resolve_read(&mut e, 1, 0, &mut buf);
    assert_eq!(u32::from_le_bytes(buf), 7);
    check.assert_clean();
}

#[test]
fn partial_writes_are_tracked_without_false_positives() {
    let check = Checker::new(2);
    let mut e = engines(2, &check);
    resolve_write(&mut e, 0, 2, &[0xAB]); // sub-word write
    sync_release(&mut e, 0, 1);
    let mut buf = [0u8; 4];
    resolve_read(&mut e, 1, 0, &mut buf);
    assert_eq!(buf[2], 0xAB);
    check.assert_clean();
}

#[test]
fn unsynchronized_writes_report_ww_race() {
    let check = Checker::new(2);
    let mut e = engines(2, &check);
    resolve_write(&mut e, 0, 0, &1u32.to_le_bytes());
    resolve_write(&mut e, 1, 0, &2u32.to_le_bytes());
    let vs = check.violations();
    assert!(
        vs.iter().any(|v| v.kind == ViolationKind::WriteWriteRace
            && v.node == 1
            && v.interval == 1
            && v.addr == 0
            && v.detail.contains("node 0")
            && v.detail.contains("interval 1")),
        "missing attributed write/write race, got: {vs:?}"
    );
}

#[test]
fn unsynchronized_read_reports_rw_race() {
    let check = Checker::new(2);
    let mut e = engines(2, &check);
    resolve_write(&mut e, 0, 8, &3u32.to_le_bytes());
    e[0].close_interval();
    let mut buf = [0u8; 4];
    resolve_read(&mut e, 1, 8, &mut buf);
    let vs = check.violations();
    assert!(
        vs.iter().any(|v| v.kind == ViolationKind::ReadWriteRace
            && v.node == 1
            && v.addr == 8
            && v.detail.contains("node 0 interval 1")),
        "missing attributed read/write race, got: {vs:?}"
    );
}

#[test]
fn allow_racy_suppresses_read_side_checks() {
    let check = Checker::new(2);
    check.allow_racy(8, 4);
    let mut e = engines(2, &check);
    resolve_write(&mut e, 0, 8, &3u32.to_le_bytes());
    let mut buf = [0u8; 4];
    resolve_read(&mut e, 1, 8, &mut buf);
    check.assert_clean();
}

#[test]
fn duplicate_races_are_reported_once() {
    let check = Checker::new(2);
    let mut e = engines(2, &check);
    resolve_write(&mut e, 0, 8, &3u32.to_le_bytes());
    let mut buf = [0u8; 4];
    resolve_read(&mut e, 1, 8, &mut buf);
    resolve_read(&mut e, 1, 8, &mut buf);
    resolve_read(&mut e, 1, 8, &mut buf);
    assert_eq!(check.violations().len(), 1, "dedup failed");
}

/// A correct engine cannot return a stale value, so the stale-read path is
/// exercised by calling the observer hooks directly: the "engine" claims a
/// timestamp covering the write yet returns a different value.
#[test]
fn stale_read_past_established_acquire_is_flagged() {
    let check = Checker::new(2);
    check.mem_write(0, 0, &7u32.to_le_bytes(), &Vc::new(2));
    let mut vt1 = Vc::new(2);
    vt1.set(0, 1); // node 1 covers node 0's interval 1...
    check.mem_read(1, 0, &9u32.to_le_bytes(), &vt1); // ...but reads 9, not 7
    let vs = check.violations();
    assert_eq!(vs.len(), 1);
    assert_eq!(vs[0].kind, ViolationKind::StaleRead);
    assert_eq!((vs[0].node, vs[0].interval, vs[0].addr), (1, 1, 0));
    assert!(vs[0].detail.contains("node 0"), "{}", vs[0].detail);
}

/// The legal value after a release chain is the causally newest write, not
/// the first one: reading the older value is stale.
#[test]
fn stale_read_of_causally_older_write_is_flagged() {
    let check = Checker::new(2);
    // Node 0 writes 7 in interval 1; node 1, having covered it, overwrites
    // with 8 in its own interval 1.
    check.mem_write(0, 0, &7u32.to_le_bytes(), &Vc::new(2));
    let mut vt1 = Vc::new(2);
    vt1.set(0, 1);
    check.mem_write(1, 0, &8u32.to_le_bytes(), &vt1);
    // Node 0 covers both writes but reads its own old 7: stale.
    let mut vt0 = Vc::new(2);
    vt0.set(0, 1);
    vt0.set(1, 1);
    check.mem_read(0, 0, &7u32.to_le_bytes(), &vt0);
    let vs = check.violations();
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].kind, ViolationKind::StaleRead);
    assert!(vs[0].detail.contains("node 1"), "{}", vs[0].detail);
}

#[test]
fn nonzero_value_from_unwritten_word_is_flagged() {
    let check = Checker::new(2);
    check.mem_read(0, 4, &1u32.to_le_bytes(), &Vc::new(2));
    let vs = check.violations();
    assert_eq!(vs.len(), 1);
    assert_eq!(vs[0].kind, ViolationKind::UnknownValue);
    assert_eq!(vs[0].addr, 4);
}

#[test]
fn zero_read_from_unwritten_word_is_clean() {
    let check = Checker::new(2);
    check.mem_read(0, 4, &0u32.to_le_bytes(), &Vc::new(2));
    check.assert_clean();
}

#[test]
fn out_of_order_apply_is_flagged() {
    let check = Checker::new(2);
    let mut vc = Vc::new(2);
    vc.set(0, 2);
    let rec = IntervalRecord {
        node: 0,
        index: 2, // node 1 never applied interval 1: a gap
        vc,
        pages: vec![],
    };
    check.record_applied(1, &rec);
    let vs = check.violations();
    assert!(
        vs.iter()
            .any(|v| v.kind == ViolationKind::HbOrder && v.detail.contains("out of order")),
        "{vs:?}"
    );
}

#[test]
fn forged_record_timestamp_is_flagged() {
    let check = Checker::new(2);
    // Creator closes interval (0, 1) with its true timestamp...
    let mut vc = Vc::new(2);
    vc.set(0, 1);
    let rec = IntervalRecord {
        node: 0,
        index: 1,
        vc,
        pages: vec![],
    };
    check.interval_closed(0, &rec);
    // ...but node 1 applies a copy whose timestamp was tampered with.
    let mut forged_vc = Vc::new(2);
    forged_vc.set(0, 1);
    forged_vc.set(1, 3);
    let forged = IntervalRecord {
        node: 0,
        index: 1,
        vc: forged_vc,
        pages: vec![],
    };
    check.record_applied(1, &forged);
    let vs = check.violations();
    assert!(
        vs.iter()
            .any(|v| v.kind == ViolationKind::HbOrder && v.detail.contains("creator made")),
        "{vs:?}"
    );
}

#[test]
fn fail_fast_aborts_the_offending_node() {
    let check = Checker::new(2).fail_fast();
    check.mem_write(0, 0, &7u32.to_le_bytes(), &Vc::new(2));
    let c2 = check.clone();
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        // Unsynchronized read from node 1: escalates via carlos_sim::abort.
        c2.mem_read(1, 0, &7u32.to_le_bytes(), &Vc::new(2));
    }))
    .expect_err("fail-fast checker must abort");
    let info = payload
        .downcast::<carlos_sim::AbortInfo>()
        .expect("abort payload");
    assert_eq!(info.node, 1);
    assert!(info.context.contains("ReadWriteRace"), "{}", info.context);
    // The violation is still recorded for post-mortem inspection.
    assert_eq!(check.violations().len(), 1);
}

/// Three engines, a causal chain 0 -> 1 -> 2: node 2 must legally read
/// node 0's write through the transitive release, and the checker must
/// stay silent.
#[test]
fn transitive_chain_is_clean_and_converges() {
    let check = Checker::new(3);
    let mut e = engines(3, &check);
    resolve_write(&mut e, 0, 0, &11u32.to_le_bytes());
    sync_release(&mut e, 0, 1);
    resolve_write(&mut e, 1, 4, &22u32.to_le_bytes());
    sync_release(&mut e, 1, 2);
    let mut buf = [0u8; 4];
    resolve_read(&mut e, 2, 0, &mut buf);
    assert_eq!(u32::from_le_bytes(buf), 11);
    resolve_read(&mut e, 2, 4, &mut buf);
    assert_eq!(u32::from_le_bytes(buf), 22);
    check.assert_clean();
}
