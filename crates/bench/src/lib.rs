//! Benchmark harnesses that regenerate every table and figure of the
//! CarlOS paper (OSDI '94).
//!
//! Each `cargo bench` target prints one artifact, paper values alongside
//! measured ones:
//!
//! | bench target         | paper artifact |
//! |-----------------------|----------------|
//! | `table1`             | Table 1 — TSP, lock vs hybrid |
//! | `table2`             | Table 2 — Quicksort, lock vs Hybrid-1 vs Hybrid-2 |
//! | `table3`             | Table 3 — Water, lock vs hybrid |
//! | `figure2`            | Figure 2 — execution breakdown on four nodes |
//! | `annotation_costs`   | §5.4 — annotation micro-costs and all-RELEASE runs |
//! | `treadmarks_compare` | §5 — TreadMarks-style dispatch vs CarlOS generality |
//! | `update_strategy`    | ablation (beyond the paper): §4.3 update vs invalidate |
//! | `sor`                | workload (beyond the paper): red-black SOR scaling |
//! | `micro`              | Criterion microbenches of the core data structures |
//!
//! Absolute times come from the calibrated cost model (`DESIGN.md`); the
//! claims under reproduction are the *shapes*: who wins, by what factor,
//! and where overheads sit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use carlos_apps::{
    harness::AppReport,
    qsort::{run_qsort, QsortConfig, QsortVariant},
    tsp::{run_tsp, TspConfig, TspVariant},
    water::{run_water, WaterConfig, WaterVariant},
};
use carlos_sim::Bucket;
use carlos_util::fmt::{percent, ratio, secs_f, thousands, Table};

/// One row of a paper-style table: measured columns plus paper reference.
#[derive(Debug, Clone)]
pub struct Row {
    /// Variant label ("Lock", "Hybrid", …).
    pub version: String,
    /// Cluster size.
    pub n: usize,
    /// Measured elapsed seconds.
    pub time_s: f64,
    /// Speedup vs the measured single-node run of the same variant.
    pub speedup: f64,
    /// Messages on the wire.
    pub messages: u64,
    /// Average message payload size in bytes.
    pub avg_bytes: u64,
    /// Network utilization (fraction).
    pub util: f64,
}

/// Paper reference values for one row (from Tables 1–3).
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Elapsed seconds reported by the paper.
    pub time_s: f64,
    /// Speedup reported by the paper.
    pub speedup: f64,
    /// Message count reported by the paper.
    pub messages: u64,
    /// Average message size reported by the paper.
    pub avg_bytes: u64,
    /// Network utilization reported by the paper (fraction).
    pub util: f64,
}

/// Writes rows as CSV under `target/bench-results/<name>.csv` so runs can
/// be archived and diffed; failures to write are reported but non-fatal.
pub fn export_csv(name: &str, rows: &[(Row, Option<PaperRow>)]) {
    let dir = std::path::Path::new("target").join("bench-results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("(csv export skipped: {e})");
        return;
    }
    let mut out = String::from(
        "version,nodes,time_s,speedup,messages,avg_bytes,utilization,\
         paper_time_s,paper_speedup,paper_messages,paper_avg_bytes,paper_utilization\n",
    );
    for (r, p) in rows {
        out.push_str(&format!(
            "{},{},{:.3},{:.3},{},{},{:.4}",
            r.version, r.n, r.time_s, r.speedup, r.messages, r.avg_bytes, r.util
        ));
        match p {
            Some(p) => out.push_str(&format!(
                ",{:.3},{:.3},{},{},{:.4}\n",
                p.time_s, p.speedup, p.messages, p.avg_bytes, p.util
            )),
            None => out.push_str(",,,,,\n"),
        }
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, out) {
        Ok(()) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("(csv export skipped: {e})"),
    }
}

/// Renders measured rows next to paper references.
#[must_use]
pub fn render_table(title: &str, rows: &[(Row, Option<PaperRow>)]) -> String {
    let mut t = Table::new(&[
        "Version", "N", "Time(s)", "Speedup", "Msgs", "Avg(B)", "Util", "|", "paper:T", "Spd",
        "Msgs", "Avg", "Util",
    ]);
    for (r, p) in rows {
        let mut cells = vec![
            r.version.clone(),
            r.n.to_string(),
            secs_f(r.time_s),
            ratio(r.speedup),
            thousands(r.messages),
            r.avg_bytes.to_string(),
            percent(r.util),
            "|".to_string(),
        ];
        match p {
            Some(p) => cells.extend([
                secs_f(p.time_s),
                ratio(p.speedup),
                thousands(p.messages),
                p.avg_bytes.to_string(),
                percent(p.util),
            ]),
            None => cells.extend(["-".into(), "-".into(), "-".into(), "-".into(), "-".into()]),
        }
        t.row(&cells);
    }
    format!("{title}\n{}", t.render())
}

fn row_from(version: &str, n: usize, app: &AppReport, single_s: f64) -> Row {
    Row {
        version: version.to_string(),
        n,
        time_s: app.secs,
        speedup: if app.secs > 0.0 { single_s / app.secs } else { 0.0 },
        messages: app.messages,
        avg_bytes: app.avg_msg_bytes,
        util: app.net_util,
    }
}

/// Paper Table 1 reference rows (TSP): (variant, n) → values.
#[must_use]
pub fn paper_table1(version: &str, n: usize) -> Option<PaperRow> {
    let v = match (version, n) {
        ("Lock", 2) => (52.3, 1.64, 5_838, 133, 0.01),
        ("Lock", 3) => (39.7, 2.16, 8_626, 168, 0.03),
        ("Lock", 4) => (31.8, 2.69, 10_403, 219, 0.06),
        ("Hybrid", 2) => (44.9, 1.91, 1_204, 356, 0.01),
        ("Hybrid", 3) => (31.0, 2.76, 1_916, 426, 0.02),
        ("Hybrid", 4) => (22.0, 3.89, 2_198, 498, 0.04),
        _ => return None,
    };
    Some(PaperRow {
        time_s: v.0,
        speedup: v.1,
        messages: v.2,
        avg_bytes: v.3,
        util: v.4,
    })
}

/// Paper Table 2 reference rows (Quicksort).
#[must_use]
pub fn paper_table2(version: &str, n: usize) -> Option<PaperRow> {
    let v = match (version, n) {
        ("Lock", 2) => (19.6, 1.36, 2_426, 1_209, 0.12),
        ("Lock", 3) => (18.6, 1.44, 5_144, 1_446, 0.32),
        ("Lock", 4) => (17.3, 1.54, 6_866, 1_560, 0.50),
        ("Hybrid-1", 2) => (17.5, 1.53, 1_406, 1_704, 0.11),
        ("Hybrid-1", 3) => (13.9, 1.93, 2_282, 2_265, 0.30),
        ("Hybrid-1", 4) => (11.8, 2.27, 2_870, 2_564, 0.50),
        ("Hybrid-2", 4) => (14.2, 1.89, 4_361, 2_254, 0.55),
        _ => return None,
    };
    Some(PaperRow {
        time_s: v.0,
        speedup: v.1,
        messages: v.2,
        avg_bytes: v.3,
        util: v.4,
    })
}

/// Paper Table 3 reference rows (Water).
#[must_use]
pub fn paper_table3(version: &str, n: usize) -> Option<PaperRow> {
    let v = match (version, n) {
        ("Lock", 2) => (23.3, 1.34, 6_920, 368, 0.09),
        ("Lock", 3) => (19.4, 1.61, 11_348, 374, 0.17),
        ("Lock", 4) => (17.3, 1.81, 15_423, 379, 0.27),
        ("Hybrid", 2) => (18.4, 1.70, 2_546, 889, 0.10),
        ("Hybrid", 3) => (14.4, 2.20, 4_155, 876, 0.20),
        ("Hybrid", 4) => (12.1, 2.58, 5_634, 871, 0.32),
        _ => return None,
    };
    Some(PaperRow {
        time_s: v.0,
        speedup: v.1,
        messages: v.2,
        avg_bytes: v.3,
        util: v.4,
    })
}

/// Regenerates Table 1 (TSP on CarlOS, locks vs message-passing).
#[must_use]
pub fn table1() -> String {
    let mut rows = Vec::new();
    for (variant, name) in [(TspVariant::Lock, "Lock"), (TspVariant::Hybrid, "Hybrid")] {
        let single = run_tsp(&TspConfig::paper(1, variant)).app.secs;
        for n in [2, 3, 4] {
            let r = run_tsp(&TspConfig::paper(n, variant));
            rows.push((row_from(name, n, &r.app, single), paper_table1(name, n)));
        }
    }
    export_csv("table1", &rows);
    render_table("Table 1: TSP — coherent shared memory + locks vs message-passing", &rows)
}

/// Regenerates Table 2 (Quicksort: lock vs Hybrid-1 vs Hybrid-2).
#[must_use]
pub fn table2() -> String {
    let mut rows = Vec::new();
    let specs = [
        (QsortVariant::Lock, "Lock", vec![2usize, 3, 4]),
        (QsortVariant::Hybrid1, "Hybrid-1", vec![2, 3, 4]),
        (QsortVariant::Hybrid2, "Hybrid-2", vec![4]),
    ];
    for (variant, name, ns) in specs {
        // Hybrid-2's single-node baseline is Hybrid-1's, as in the paper
        // (the annotations differ only once messages actually flow).
        let base_variant = if variant == QsortVariant::Hybrid2 {
            QsortVariant::Hybrid1
        } else {
            variant
        };
        let single = run_qsort(&QsortConfig::paper(1, base_variant)).app.secs;
        for n in ns {
            let r = run_qsort(&QsortConfig::paper(n, variant));
            assert!(r.sorted && r.permutation_ok, "benchmark run must be correct");
            rows.push((row_from(name, n, &r.app, single), paper_table2(name, n)));
        }
    }
    export_csv("table2", &rows);
    render_table("Table 2: Quicksort — lock vs message-based work queue", &rows)
}

/// Regenerates Table 3 (Water: lock vs hybrid).
#[must_use]
pub fn table3() -> String {
    let mut rows = Vec::new();
    for (variant, name) in [(WaterVariant::Lock, "Lock"), (WaterVariant::Hybrid, "Hybrid")] {
        let single = run_water(&WaterConfig::paper(1, variant)).app.secs;
        for n in [2, 3, 4] {
            let r = run_water(&WaterConfig::paper(n, variant));
            rows.push((row_from(name, n, &r.app, single), paper_table3(name, n)));
        }
    }
    export_csv("table3", &rows);
    render_table("Table 3: Water — per-molecule locks vs shipped update functions", &rows)
}

/// One bar of Figure 2: the four-bucket execution breakdown at N = 4.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Application/variant label, e.g. "TSP/lock".
    pub label: String,
    /// Average per-node seconds: (User, Unix, CarlOS, Idle).
    pub buckets: [f64; 4],
    /// Total elapsed seconds (measured).
    pub total: f64,
    /// Total the paper's Figure 2 reports.
    pub paper_total: f64,
}

/// Regenerates the data behind Figure 2 (execution breakdown, four nodes).
#[must_use]
pub fn figure2() -> Vec<Breakdown> {
    let mut out = Vec::new();
    let mut push = |label: &str, app: &AppReport, paper_total: f64| {
        out.push(Breakdown {
            label: label.to_string(),
            buckets: [
                app.bucket_secs(Bucket::User),
                app.bucket_secs(Bucket::Unix),
                app.bucket_secs(Bucket::Carlos),
                app.bucket_secs(Bucket::Idle),
            ],
            total: app.secs,
            paper_total,
        });
    };
    let r = run_tsp(&TspConfig::paper(4, TspVariant::Lock));
    push("TSP/lock", &r.app, 31.8);
    let r = run_tsp(&TspConfig::paper(4, TspVariant::Hybrid));
    push("TSP/hybrid", &r.app, 22.0);
    let r = run_qsort(&QsortConfig::paper(4, QsortVariant::Lock));
    push("QS/lock", &r.app, 17.3);
    let r = run_qsort(&QsortConfig::paper(4, QsortVariant::Hybrid1));
    push("QS/hybrid", &r.app, 11.8);
    let r = run_water(&WaterConfig::paper(4, WaterVariant::Lock));
    push("Wtr/lock", &r.app, 17.3);
    let r = run_water(&WaterConfig::paper(4, WaterVariant::Hybrid));
    push("Wtr/hybrid", &r.app, 12.1);
    out
}

/// Renders Figure 2 as a text table plus proportional bars.
#[must_use]
pub fn render_figure2(bars: &[Breakdown]) -> String {
    let mut t = Table::new(&[
        "App", "User", "Unix", "CarlOS", "Idle", "Total", "paper:Total",
    ]);
    for b in bars {
        t.row(&[
            b.label.clone(),
            secs_f(b.buckets[0]),
            secs_f(b.buckets[1]),
            secs_f(b.buckets[2]),
            secs_f(b.buckets[3]),
            secs_f(b.total),
            secs_f(b.paper_total),
        ]);
    }
    let mut out = String::from(
        "Figure 2: execution breakdown on four nodes (average seconds per node)\n",
    );
    out.push_str(&t.render());
    out.push('\n');
    let max = bars.iter().map(|b| b.total).fold(0.0f64, f64::max).max(1e-9);
    for b in bars {
        let width = 56.0;
        let mut bar = String::new();
        for (ch, v) in [('U', b.buckets[0]), ('x', b.buckets[1]), ('C', b.buckets[2]), ('.', b.buckets[3])] {
            let k = ((v / max) * width).round() as usize;
            bar.extend(std::iter::repeat_n(ch, k));
        }
        out.push_str(&format!("{:>12} |{bar}\n", b.label));
    }
    out.push_str("              U = User   x = Unix   C = CarlOS   . = Idle\n");
    out
}
