//! The paper-table report harness: runs the four applications (TSP,
//! Quicksort, Water, SOR) across 1–4 nodes with a metrics-only
//! [`Tracer`] installed, and renders the results two ways:
//!
//! - `BENCH_paper.json` — machine-readable rows mirroring the paper's
//!   Tables 1–3 (time, speedup, messages, average size, utilization,
//!   paper reference values), extended with the per-message-class cost
//!   attribution the paper only reports as §5.4 microcosts;
//! - a Markdown table for `EXPERIMENTS.md`-style side-by-side reading.
//!
//! Scale comes from [`ReportOptions`]: paper-scale configurations by
//! default, test-scale when `CARLOS_REPORT_QUICK=1` (CI runs quick mode).

use std::collections::BTreeMap;

use carlos_apps::harness::AppReport;
use carlos_apps::qsort::{try_run_qsort, QsortConfig, QsortVariant};
use carlos_apps::sor::{try_run_sor, SorConfig};
use carlos_apps::tsp::{try_run_tsp, TspConfig, TspVariant};
use carlos_apps::water::{try_run_water, WaterConfig, WaterVariant};
use carlos_core::{CoreConfig, MsgClass};
use carlos_serve::run::{try_run_serve, ServeConfig, ServeResult};
use carlos_sim::SimError;
use carlos_trace::Tracer;

use crate::{paper_table1, paper_table2, paper_table3, PaperRow};

/// Scale and scope of one report run.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Test-scale configurations instead of paper-scale ones.
    pub quick: bool,
    /// Largest cluster size (the paper stops at 4).
    pub max_nodes: usize,
}

impl ReportOptions {
    /// Paper-scale, 1–4 nodes, unless `CARLOS_REPORT_QUICK=1` is set.
    #[must_use]
    pub fn from_env() -> Self {
        let quick = std::env::var("CARLOS_REPORT_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
        Self {
            quick,
            max_nodes: 4,
        }
    }
}

/// Per-message-class totals for one run: wire presence and protocol cost.
#[derive(Debug, Clone)]
pub struct ClassCost {
    /// Message class name (`NONE`, `REQUEST`, `RELEASE`, `RELEASE_NT`,
    /// `SYSTEM`).
    pub class: &'static str,
    /// Messages of this class sent.
    pub sent: u64,
    /// Messages of this class dispatched at their destination.
    pub dispatched: u64,
    /// Sealed wire-frame bytes carried by this class.
    pub bytes: u64,
    /// Total virtual nanoseconds of protocol cost attributed to this
    /// class across all phases (send, receive, accept, diffing, …).
    pub cost_ns: u64,
    /// Mean send-intent-to-dispatch latency for this class (virtual ns).
    pub mean_latency_ns: u64,
}

/// One row of the report: one (application, variant, cluster-size) run.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Application name ("TSP", "Quicksort", "Water", "SOR").
    pub app: &'static str,
    /// Variant label ("Lock", "Hybrid", "Hybrid-1", "-").
    pub variant: &'static str,
    /// Cluster size.
    pub n: usize,
    /// Measured elapsed virtual seconds.
    pub secs: f64,
    /// Speedup vs the measured single-node run of the same variant.
    pub speedup: f64,
    /// Messages on the wire.
    pub messages: u64,
    /// Average message payload size in bytes.
    pub avg_bytes: u64,
    /// Network utilization (fraction).
    pub util: f64,
    /// Per-message-class accounting (classes with traffic only).
    pub classes: Vec<ClassCost>,
    /// Demand diff fetches observed.
    pub fetch_diffs: u64,
    /// Whole-page fetches observed.
    pub fetch_pages: u64,
    /// Fulfilled fetches of sub-page (fine) granules.
    pub granule_fine_fetches: u64,
    /// Payload bytes delivered for fine granules.
    pub granule_fine_bytes: u64,
    /// Fulfilled fetches of base-page-sized granules.
    pub granule_page_fetches: u64,
    /// Payload bytes delivered for page granules.
    pub granule_page_bytes: u64,
    /// Fulfilled fetches of super-page (bulk) granules.
    pub granule_bulk_fetches: u64,
    /// Payload bytes delivered for bulk granules.
    pub granule_bulk_bytes: u64,
    /// Total virtual ns spent blocked in lock acquires.
    pub wait_lock_ns: u64,
    /// Total virtual ns spent blocked at barriers.
    pub wait_barrier_ns: u64,
    /// Paper reference values, where the paper reports this cell.
    pub paper: Option<PaperRow>,
}

/// Collapses a finished traced run into a [`ReportRow`].
fn finish_row(
    app: &'static str,
    variant: &'static str,
    n: usize,
    rep: &AppReport,
    single_s: f64,
    tracer: &Tracer,
    paper: Option<PaperRow>,
) -> ReportRow {
    let m = tracer.metrics();
    let mut class_bytes: BTreeMap<&'static str, u64> = BTreeMap::new();
    for f in tracer.flows() {
        if let Some(c) = f.class {
            *class_bytes.entry(c.name()).or_default() += f.bytes as u64;
        }
    }
    let classes = MsgClass::ALL
        .iter()
        .map(|c| {
            let name = c.name();
            let cost_prefix = format!("cost.{name}.");
            ClassCost {
                class: name,
                sent: m.counter(&format!("msg.sent.{name}")),
                dispatched: m.counter(&format!("msg.dispatched.{name}")),
                bytes: class_bytes.get(name).copied().unwrap_or(0),
                cost_ns: m
                    .histograms()
                    .filter(|(k, _)| k.starts_with(&cost_prefix))
                    .map(|(_, h)| h.sum())
                    .sum(),
                mean_latency_ns: m
                    .histogram(&format!("flow.latency.{name}"))
                    .map_or(0, |h| h.mean() as u64),
            }
        })
        .filter(|c| c.sent > 0)
        .collect();
    let wait_sum = |key: &str| m.histogram(key).map_or(0, carlos_trace::VtHistogram::sum);
    ReportRow {
        app,
        variant,
        n,
        secs: rep.secs,
        speedup: if rep.secs > 0.0 { single_s / rep.secs } else { 0.0 },
        messages: rep.messages,
        avg_bytes: rep.avg_msg_bytes,
        util: rep.net_util,
        classes,
        fetch_diffs: m.counter("fetch.diffs"),
        fetch_pages: m.counter("fetch.page"),
        granule_fine_fetches: m.counter("fetch.class.fine"),
        granule_fine_bytes: m.counter("fetch.bytes.fine"),
        granule_page_fetches: m.counter("fetch.class.page"),
        granule_page_bytes: m.counter("fetch.bytes.page"),
        granule_bulk_fetches: m.counter("fetch.class.bulk"),
        granule_bulk_bytes: m.counter("fetch.bytes.bulk"),
        wait_lock_ns: wait_sum("wait.lock acquire"),
        wait_barrier_ns: wait_sum("wait.barrier"),
        paper,
    }
}

/// Runs every (application, variant, n) cell and returns the rows in
/// table order: TSP lock/hybrid, Quicksort lock/hybrid-1, Water
/// lock/hybrid, SOR — each from 1 node up to `max_nodes`.
///
/// # Errors
///
/// Returns the first [`SimError`] if any run deadlocks, crashes, or
/// aborts (the tracer is an observer and cannot itself cause one).
pub fn run_report(opts: &ReportOptions) -> Result<Vec<ReportRow>, SimError> {
    let mut rows: Vec<ReportRow> = Vec::new();
    let ns = 1..=opts.max_nodes;

    for (variant, name) in [(TspVariant::Lock, "Lock"), (TspVariant::Hybrid, "Hybrid")] {
        let mut single = 0.0;
        for n in ns.clone() {
            let tracer = Tracer::metrics_only(n);
            let mut cfg = if opts.quick {
                // Test-scale workload, but the real cost model: the whole
                // point of the report is cost attribution, and
                // `fast_test` zeroes every protocol cost.
                let mut cfg = TspConfig::test(n, variant);
                cfg.core = CoreConfig::osdi94();
                cfg
            } else {
                TspConfig::paper(n, variant)
            };
            cfg.trace = Some(tracer.clone());
            let r = try_run_tsp(&cfg)?;
            if n == 1 {
                single = r.app.secs;
            }
            rows.push(finish_row("TSP", name, n, &r.app, single, &tracer, paper_table1(name, n)));
        }
    }

    for (variant, name) in [
        (QsortVariant::Lock, "Lock"),
        (QsortVariant::Hybrid1, "Hybrid-1"),
    ] {
        let mut single = 0.0;
        for n in ns.clone() {
            let tracer = Tracer::metrics_only(n);
            let mut cfg = if opts.quick {
                // Test-scale workload, but the real cost model: the whole
                // point of the report is cost attribution, and
                // `fast_test` zeroes every protocol cost.
                let mut cfg = QsortConfig::test(n, variant);
                cfg.core = CoreConfig::osdi94();
                cfg
            } else {
                QsortConfig::paper(n, variant)
            };
            cfg.trace = Some(tracer.clone());
            let r = try_run_qsort(&cfg)?;
            assert!(r.sorted && r.permutation_ok, "report run must be correct");
            if n == 1 {
                single = r.app.secs;
            }
            rows.push(finish_row(
                "Quicksort",
                name,
                n,
                &r.app,
                single,
                &tracer,
                paper_table2(name, n),
            ));
        }
    }

    for (variant, name) in [(WaterVariant::Lock, "Lock"), (WaterVariant::Hybrid, "Hybrid")] {
        let mut single = 0.0;
        for n in ns.clone() {
            let tracer = Tracer::metrics_only(n);
            let mut cfg = if opts.quick {
                // Test-scale workload, but the real cost model: the whole
                // point of the report is cost attribution, and
                // `fast_test` zeroes every protocol cost.
                let mut cfg = WaterConfig::test(n, variant);
                cfg.core = CoreConfig::osdi94();
                cfg
            } else {
                WaterConfig::paper(n, variant)
            };
            cfg.trace = Some(tracer.clone());
            let r = try_run_water(&cfg)?;
            if n == 1 {
                single = r.app.secs;
            }
            rows.push(finish_row("Water", name, n, &r.app, single, &tracer, paper_table3(name, n)));
        }
    }

    {
        let mut single = 0.0;
        for n in ns.clone() {
            let tracer = Tracer::metrics_only(n);
            let mut cfg = if opts.quick {
                // Test-scale workload, but the real cost model: the whole
                // point of the report is cost attribution, and
                // `fast_test` zeroes every protocol cost.
                let mut cfg = SorConfig::test(n);
                cfg.core = CoreConfig::osdi94();
                cfg
            } else {
                SorConfig::paper_scale(n)
            };
            cfg.trace = Some(tracer.clone());
            let r = try_run_sor(&cfg)?;
            if n == 1 {
                single = r.app.secs;
            }
            rows.push(finish_row("SOR", "-", n, &r.app, single, &tracer, None));
        }
    }

    // Variable-granularity rows ("+vg"): the same Lock-variant workloads
    // with per-region granule hints, coalesced demand fetches, and
    // aggregated write notices — the traffic-reduction configuration. The
    // legacy rows above are untouched, so the before/after comparison is
    // readable from a single document.
    {
        let mut single = 0.0;
        for n in ns.clone() {
            let tracer = Tracer::metrics_only(n);
            let mut cfg = if opts.quick {
                let mut cfg = TspConfig::test(n, TspVariant::Lock);
                cfg.core = CoreConfig::osdi94();
                cfg
            } else {
                TspConfig::paper(n, TspVariant::Lock)
            };
            cfg.granularity_hints = true;
            cfg.core = cfg.core.with_coalesced_fetches().with_aggregated_notices();
            cfg.trace = Some(tracer.clone());
            let r = try_run_tsp(&cfg)?;
            if n == 1 {
                single = r.app.secs;
            }
            rows.push(finish_row("TSP", "Lock+vg", n, &r.app, single, &tracer, None));
        }
    }

    {
        let mut single = 0.0;
        for n in ns.clone() {
            let tracer = Tracer::metrics_only(n);
            let mut cfg = if opts.quick {
                let mut cfg = QsortConfig::test(n, QsortVariant::Lock);
                cfg.core = CoreConfig::osdi94();
                cfg
            } else {
                QsortConfig::paper(n, QsortVariant::Lock)
            };
            cfg.granularity_hints = true;
            cfg.core = cfg.core.with_coalesced_fetches().with_aggregated_notices();
            cfg.trace = Some(tracer.clone());
            let r = try_run_qsort(&cfg)?;
            assert!(r.sorted && r.permutation_ok, "vg report run must be correct");
            if n == 1 {
                single = r.app.secs;
            }
            rows.push(finish_row(
                "Quicksort",
                "Lock+vg",
                n,
                &r.app,
                single,
                &tracer,
                None,
            ));
        }
    }

    {
        let mut single = 0.0;
        for n in ns.clone() {
            let tracer = Tracer::metrics_only(n);
            let mut cfg = if opts.quick {
                let mut cfg = WaterConfig::test(n, WaterVariant::Lock);
                cfg.core = CoreConfig::osdi94();
                cfg
            } else {
                WaterConfig::paper(n, WaterVariant::Lock)
            };
            cfg.granularity_hints = true;
            cfg.core = cfg.core.with_coalesced_fetches().with_aggregated_notices();
            cfg.trace = Some(tracer.clone());
            let r = try_run_water(&cfg)?;
            if n == 1 {
                single = r.app.secs;
            }
            rows.push(finish_row("Water", "Lock+vg", n, &r.app, single, &tracer, None));
        }
    }

    {
        let mut single = 0.0;
        for n in ns.clone() {
            let tracer = Tracer::metrics_only(n);
            let mut cfg = if opts.quick {
                let mut cfg = SorConfig::test(n);
                cfg.core = CoreConfig::osdi94();
                cfg
            } else {
                SorConfig::paper_scale(n)
            };
            cfg.granularity_hints = true;
            cfg.core = cfg.core.with_coalesced_fetches().with_aggregated_notices();
            cfg.trace = Some(tracer.clone());
            let r = try_run_sor(&cfg)?;
            if n == 1 {
                single = r.app.secs;
            }
            rows.push(finish_row("SOR", "-+vg", n, &r.app, single, &tracer, None));
        }
    }

    Ok(rows)
}

/// Collapses an untraced parallel-mode run into a [`ReportRow`]: no class
/// ledger (the tracer is a wire observer, and observers force the serial
/// scheduler), just the table columns the paper reports.
fn parallel_row(
    app: &'static str,
    variant: &'static str,
    n: usize,
    rep: &AppReport,
    single_s: f64,
) -> ReportRow {
    ReportRow {
        app,
        variant,
        n,
        secs: rep.secs,
        speedup: if rep.secs > 0.0 { single_s / rep.secs } else { 0.0 },
        messages: rep.messages,
        avg_bytes: rep.avg_msg_bytes,
        util: rep.net_util,
        classes: Vec::new(),
        fetch_diffs: 0,
        fetch_pages: 0,
        granule_fine_fetches: 0,
        granule_fine_bytes: 0,
        granule_page_fetches: 0,
        granule_page_bytes: 0,
        granule_bulk_fetches: 0,
        granule_bulk_bytes: 0,
        wait_lock_ns: 0,
        wait_barrier_ns: 0,
        paper: None,
    }
}

/// Runs TSP (Lock) and SOR on an 8-node cluster under the conservative
/// parallel scheduler (`SimConfig::parallel(true)`), beyond the paper's
/// 4-node testbed. The parallel scheduler is bit-identical to the serial
/// one (pinned by `tests/parallel_golden.rs`), so these rows extend the
/// paper's scaling tables; no tracer is installed because wire observers
/// force the serial fallback.
///
/// # Errors
///
/// Returns the first [`SimError`] if any run deadlocks, crashes, or
/// aborts.
pub fn run_parallel_rows(opts: &ReportOptions) -> Result<Vec<ReportRow>, SimError> {
    let mut rows = Vec::new();
    let sizes = [1, 8];

    let mut single = 0.0;
    for n in sizes {
        let mut cfg = if opts.quick {
            let mut cfg = TspConfig::test(n, TspVariant::Lock);
            cfg.core = CoreConfig::osdi94();
            cfg
        } else {
            TspConfig::paper(n, TspVariant::Lock)
        };
        cfg.sim = cfg.sim.parallel(true);
        let r = try_run_tsp(&cfg)?;
        if n == 1 {
            single = r.app.secs;
        }
        rows.push(parallel_row("TSP", "Lock/par", n, &r.app, single));
    }

    let mut single = 0.0;
    for n in sizes {
        let mut cfg = if opts.quick {
            let mut cfg = SorConfig::test(n);
            cfg.core = CoreConfig::osdi94();
            cfg
        } else {
            SorConfig::paper_scale(n)
        };
        cfg.sim = cfg.sim.parallel(true);
        let r = try_run_sor(&cfg)?;
        if n == 1 {
            single = r.app.secs;
        }
        rows.push(parallel_row("SOR", "-/par", n, &r.app, single));
    }

    Ok(rows)
}

/// One serving row: a `carlos-serve` run's latency/throughput/harvest
/// columns (see DESIGN.md §14 for the metric definitions).
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Variant label ("KV/par" fault-free under the parallel scheduler,
    /// "KV/chaos" under the fault plan).
    pub variant: &'static str,
    /// Cluster size.
    pub n: usize,
    /// Elapsed virtual seconds (timed window, `app.done_ns`).
    pub secs: f64,
    /// Completed operations per virtual second.
    pub ops_per_sec: f64,
    /// Operations submitted (including CAS wire retries).
    pub attempted: u64,
    /// Operations completed before their deadline.
    pub completed: u64,
    /// Operations expired at their deadline.
    pub timed_out: u64,
    /// Median completion latency (virtual ns).
    pub p50_ns: u64,
    /// 99th-percentile completion latency (virtual ns).
    pub p99_ns: u64,
    /// 99.9th-percentile completion latency (virtual ns).
    pub p999_ns: u64,
    /// Total wire payload bytes per completed op (DSM traffic included).
    pub bytes_per_op: u64,
    /// Messages on the wire.
    pub messages: u64,
    /// Network utilization (fraction).
    pub util: f64,
    /// Yield: completed / attempted.
    pub yield_fraction: f64,
    /// Harvest: probe gets answered in time / probes issued (1.0 when no
    /// probe was scheduled).
    pub harvest: f64,
    /// CAS increment intents that landed.
    pub cas_done: u64,
    /// Server mirror/DSM disagreements (must be 0).
    pub mirror_mismatches: u64,
    /// Host wall-clock seconds the run took (virtual-time metrics above
    /// are machine-independent; this one column records what the parallel
    /// scheduler actually bought on the generating host).
    pub host_seconds: f64,
}

fn serve_row(variant: &'static str, n: usize, r: &ServeResult, host_seconds: f64) -> ServeRow {
    let t = &r.totals;
    ServeRow {
        variant,
        n,
        secs: r.app.secs,
        ops_per_sec: r.ops_per_sec(),
        attempted: t.client.attempted,
        completed: t.client.completed,
        timed_out: t.client.timed_out,
        p50_ns: t.client.hist.quantile(0.50),
        p99_ns: t.client.hist.quantile(0.99),
        p999_ns: t.client.hist.quantile(0.999),
        bytes_per_op: r.bytes_per_op(),
        messages: r.app.messages,
        util: r.app.net_util,
        yield_fraction: t.yield_fraction(),
        harvest: t.harvest(),
        cas_done: t.cas_done,
        mirror_mismatches: t.mirror_mismatches,
        host_seconds,
    }
}

/// Runs the serving rows: fault-free KV workloads at n ∈ {8, 16, 32}
/// under the conservative parallel scheduler (latency collected app-side,
/// so no observer forces the serial fallback), plus one chaos row —
/// burst loss and a partition-heal window over an ARQ transport — run
/// serially, reporting harvest and yield. Quick mode runs a shortened
/// n = 8 schedule and the same chaos row.
///
/// # Errors
///
/// Returns the first [`SimError`] if any run deadlocks, crashes, or
/// aborts.
pub fn run_serve_rows(opts: &ReportOptions) -> Result<Vec<ServeRow>, SimError> {
    let mut rows = Vec::new();
    let sizes: &[usize] = if opts.quick { &[8] } else { &[8, 16, 32] };
    for &n in sizes {
        let mut cfg = ServeConfig::paper(n);
        if opts.quick {
            // Same cost model and protocol, 1/32 of the schedule.
            cfg.ops_per_client /= 32;
            cfg.cas_per_client /= 32;
        }
        cfg.sim = cfg.sim.parallel(true);
        let started = std::time::Instant::now();
        let r = try_run_serve(&cfg)?;
        let host = started.elapsed().as_secs_f64();
        assert_eq!(
            r.totals.mirror_mismatches, 0,
            "serve row {n}: store/mirror disagreement"
        );
        rows.push(serve_row("KV/par", n, &r, host));
    }
    let started = std::time::Instant::now();
    let r = try_run_serve(&ServeConfig::chaos(8))?;
    let host = started.elapsed().as_secs_f64();
    assert_eq!(r.totals.mirror_mismatches, 0, "chaos row: store/mirror disagreement");
    rows.push(serve_row("KV/chaos", 8, &r, host));
    Ok(rows)
}

/// Renders the serving rows as a Markdown table.
#[must_use]
pub fn serve_markdown(rows: &[ServeRow]) -> String {
    let mut out = String::from("\n## Serving (carlos-serve)\n\n");
    out.push_str(
        "| Variant | N | Time(s) | Ops/s | p50(ms) | p99(ms) | p999(ms) | B/op | Yield | Harvest |\n\
         |---|--:|--:|--:|--:|--:|--:|--:|--:|--:|\n",
    );
    #[allow(clippy::cast_precision_loss)]
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {:.2} | {:.1} | {:.3} | {:.3} | {:.3} | {} | {:.4} | {:.4} |\n",
            r.variant,
            r.n,
            r.secs,
            r.ops_per_sec,
            r.p50_ns as f64 / 1e6,
            r.p99_ns as f64 / 1e6,
            r.p999_ns as f64 / 1e6,
            r.bytes_per_op,
            r.yield_fraction,
            r.harvest
        ));
    }
    out
}

/// The serving regression gate: compares fresh serve rows against the
/// committed baseline's `serve_rows` by (variant, n) and rejects the run
/// if p999 latency grew or yield dropped by more than 5%.
/// Returns one human-readable comparison line per gated metric.
///
/// # Errors
///
/// Returns a description of the first regression, or of a baseline /
/// report row that is missing or malformed.
pub fn serve_gate(rows: &[ServeRow], baseline_json: &str) -> Result<Vec<String>, String> {
    const SERVE_TOLERANCE: f64 = 1.05;

    let doc = carlos_trace::json::parse(baseline_json)
        .map_err(|e| format!("baseline JSON does not parse: {e:?}"))?;
    let baseline_rows = doc
        .get("serve_rows")
        .and_then(carlos_trace::JsonValue::as_array)
        .ok_or_else(|| "baseline JSON has no serve_rows array".to_string())?;
    let mut lines = Vec::new();
    for r in rows {
        #[allow(clippy::cast_precision_loss)]
        let n = r.n as f64;
        let base = baseline_rows
            .iter()
            .find(|b| {
                b.get("variant").and_then(carlos_trace::JsonValue::as_str) == Some(r.variant)
                    && b.get("n").and_then(carlos_trace::JsonValue::as_f64) == Some(n)
            })
            .ok_or_else(|| format!("baseline has no {}/n={} serve row", r.variant, r.n))?;
        let base_p999 = base
            .get("p999_ns")
            .and_then(carlos_trace::JsonValue::as_f64)
            .ok_or_else(|| format!("baseline {}/n={} row has no p999_ns", r.variant, r.n))?;
        let base_yield = base
            .get("yield")
            .and_then(carlos_trace::JsonValue::as_f64)
            .ok_or_else(|| format!("baseline {}/n={} row has no yield", r.variant, r.n))?;
        #[allow(clippy::cast_precision_loss)]
        let p999 = r.p999_ns as f64;
        if p999 > base_p999 * SERVE_TOLERANCE {
            return Err(format!(
                "{}/n={} p999 regressed: {} ns vs baseline {} ns (>5%)",
                r.variant, r.n, r.p999_ns, base_p999
            ));
        }
        if r.yield_fraction < base_yield / SERVE_TOLERANCE {
            return Err(format!(
                "{}/n={} yield regressed: {:.4} vs baseline {:.4} (>5%)",
                r.variant, r.n, r.yield_fraction, base_yield
            ));
        }
        lines.push(format!(
            "{}/n={} p999: {} ns (baseline {} ns), yield: {:.4} (baseline {:.4})",
            r.variant, r.n, r.p999_ns, base_p999, r.yield_fraction, base_yield
        ));
    }
    Ok(lines)
}

/// Renders the rows as the `BENCH_paper.json` document (valid JSON; all
/// strings are fixed ASCII labels, so no escaping is required).
#[must_use]
pub fn to_json(rows: &[ReportRow], serve: &[ServeRow], opts: &ReportOptions) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"generated_by\": \"cargo run --release --example report\",\n");
    out.push_str(&format!("  \"quick_mode\": {},\n", opts.quick));
    out.push_str(&format!("  \"max_nodes\": {},\n", opts.max_nodes));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"variant\": \"{}\", \"n\": {}, \"time_s\": {:.4}, \
             \"speedup\": {:.3}, \"messages\": {}, \"avg_bytes\": {}, \"utilization\": {:.4},\n",
            r.app, r.variant, r.n, r.secs, r.speedup, r.messages, r.avg_bytes, r.util
        ));
        out.push_str(&format!(
            "     \"fetch_diffs\": {}, \"fetch_pages\": {}, \"wait_lock_ns\": {}, \
             \"wait_barrier_ns\": {},\n",
            r.fetch_diffs, r.fetch_pages, r.wait_lock_ns, r.wait_barrier_ns
        ));
        out.push_str(&format!(
            "     \"granule_fine_fetches\": {}, \"granule_fine_bytes\": {}, \
             \"granule_page_fetches\": {}, \"granule_page_bytes\": {}, \
             \"granule_bulk_fetches\": {}, \"granule_bulk_bytes\": {},\n",
            r.granule_fine_fetches,
            r.granule_fine_bytes,
            r.granule_page_fetches,
            r.granule_page_bytes,
            r.granule_bulk_fetches,
            r.granule_bulk_bytes
        ));
        out.push_str("     \"classes\": [");
        for (j, c) in r.classes.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"class\": \"{}\", \"sent\": {}, \"dispatched\": {}, \"bytes\": {}, \
                 \"cost_ns\": {}, \"mean_latency_ns\": {}}}",
                c.class, c.sent, c.dispatched, c.bytes, c.cost_ns, c.mean_latency_ns
            ));
        }
        out.push_str("],\n");
        match &r.paper {
            Some(p) => out.push_str(&format!(
                "     \"paper\": {{\"time_s\": {:.1}, \"speedup\": {:.2}, \"messages\": {}, \
                 \"avg_bytes\": {}, \"utilization\": {:.2}}}}}",
                p.time_s, p.speedup, p.messages, p.avg_bytes, p.util
            )),
            None => out.push_str("     \"paper\": null}"),
        }
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"serve_rows\": [\n");
    for (i, r) in serve.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"variant\": \"{}\", \"n\": {}, \"time_s\": {:.4}, \"ops_per_sec\": {:.3}, \
             \"attempted\": {}, \"completed\": {}, \"timed_out\": {},\n",
            r.variant, r.n, r.secs, r.ops_per_sec, r.attempted, r.completed, r.timed_out
        ));
        out.push_str(&format!(
            "     \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"bytes_per_op\": {}, \
             \"messages\": {}, \"utilization\": {:.4},\n",
            r.p50_ns, r.p99_ns, r.p999_ns, r.bytes_per_op, r.messages, r.util
        ));
        out.push_str(&format!(
            "     \"yield\": {:.6}, \"harvest\": {:.6}, \"cas_done\": {}, \
             \"mirror_mismatches\": {}, \"host_seconds\": {:.4}}}",
            r.yield_fraction, r.harvest, r.cas_done, r.mirror_mismatches, r.host_seconds
        ));
        out.push_str(if i + 1 < serve.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the rows as a Markdown report: one summary table in the
/// paper's column layout, then the per-class cost attribution for the
/// largest cluster size of every (application, variant).
#[must_use]
pub fn to_markdown(rows: &[ReportRow]) -> String {
    let mut out = String::from("## Paper tables, regenerated\n\n");
    out.push_str(
        "| App | Version | N | Time(s) | Speedup | Msgs | Avg(B) | Util | paper T(s) | paper spd |\n\
         |---|---|--:|--:|--:|--:|--:|--:|--:|--:|\n",
    );
    for r in rows {
        let (pt, ps) = r.paper.as_ref().map_or(("-".into(), "-".into()), |p| {
            (format!("{:.1}", p.time_s), format!("{:.2}", p.speedup))
        });
        out.push_str(&format!(
            "| {} | {} | {} | {:.2} | {:.2} | {} | {} | {:.1}% | {} | {} |\n",
            r.app,
            r.variant,
            r.n,
            r.secs,
            r.speedup,
            r.messages,
            r.avg_bytes,
            r.util * 100.0,
            pt,
            ps
        ));
    }
    out.push_str("\n## Per-message-class cost attribution (largest cluster)\n\n");
    out.push_str(
        "| App | Version | Class | Sent | Bytes | Cost(ms) | Mean latency(us) |\n\
         |---|---|---|--:|--:|--:|--:|\n",
    );
    // Parallel-mode rows carry no class ledger (no tracer), so the cost
    // table considers only traced rows.
    let max_n = rows
        .iter()
        .filter(|r| !r.classes.is_empty())
        .map(|r| r.n)
        .max()
        .unwrap_or(0);
    for r in rows.iter().filter(|r| r.n == max_n && !r.classes.is_empty()) {
        for c in &r.classes {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {:.3} | {:.1} |\n",
                r.app,
                r.variant,
                c.class,
                c.sent,
                c.bytes,
                c.cost_ns as f64 / 1e6,
                c.mean_latency_ns as f64 / 1e3
            ));
        }
    }
    out.push_str("\n## Per-granule-class demand traffic (largest cluster)\n\n");
    out.push_str(
        "| App | Version | Fine fetches | Fine B | Page fetches | Page B | Bulk fetches | Bulk B |\n\
         |---|---|--:|--:|--:|--:|--:|--:|\n",
    );
    for r in rows.iter().filter(|r| r.n == max_n && !r.classes.is_empty()) {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.app,
            r.variant,
            r.granule_fine_fetches,
            r.granule_fine_bytes,
            r.granule_page_fetches,
            r.granule_page_bytes,
            r.granule_bulk_fetches,
            r.granule_bulk_bytes
        ));
    }
    out
}

/// The wire-traffic regression gate: compares the freshly-run rows
/// against a committed baseline report JSON and rejects the run if the
/// legacy TSP or Quicksort Lock n=4 rows grew their total message count
/// or SYSTEM-class payload bytes by more than `TRAFFIC_TOLERANCE`.
/// Returns one human-readable comparison line per gated metric.
///
/// # Errors
///
/// Returns a description of the first regression, or of a baseline /
/// report row that is missing or malformed.
pub fn traffic_gate(rows: &[ReportRow], baseline_json: &str) -> Result<Vec<String>, String> {
    /// Quick-mode runs are deterministic, so any growth is a real protocol
    /// change; 5% headroom only forgives intentional small reshapes.
    const TRAFFIC_TOLERANCE: f64 = 1.05;

    let doc = carlos_trace::json::parse(baseline_json)
        .map_err(|e| format!("baseline JSON does not parse: {e:?}"))?;
    let baseline_rows = doc
        .get("rows")
        .and_then(carlos_trace::JsonValue::as_array)
        .ok_or_else(|| "baseline JSON has no rows array".to_string())?;
    let field = |row: &carlos_trace::JsonValue, key: &str| -> Option<u64> {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        row.get(key).and_then(|v| v.as_f64()).map(|v| v as u64)
    };
    let baseline_traffic = |app: &str, variant: &str, n: f64| -> Option<(u64, u64)> {
        let row = baseline_rows.iter().find(|r| {
            r.get("app").and_then(carlos_trace::JsonValue::as_str) == Some(app)
                && r.get("variant").and_then(carlos_trace::JsonValue::as_str) == Some(variant)
                && r.get("n").and_then(carlos_trace::JsonValue::as_f64) == Some(n)
        })?;
        let messages = field(row, "messages")?;
        let sys_bytes = row
            .get("classes")
            .and_then(carlos_trace::JsonValue::as_array)?
            .iter()
            .find(|c| c.get("class").and_then(carlos_trace::JsonValue::as_str) == Some("SYSTEM"))
            .and_then(|c| field(c, "bytes"))
            .unwrap_or(0);
        Some((messages, sys_bytes))
    };

    let mut lines = Vec::new();
    for (app, variant) in [("TSP", "Lock"), ("Quicksort", "Lock")] {
        let (base_msgs, base_sys) = baseline_traffic(app, variant, 4.0)
            .ok_or_else(|| format!("baseline has no {app}/{variant} n=4 row"))?;
        let row = rows
            .iter()
            .find(|r| r.app == app && r.variant == variant && r.n == 4)
            .ok_or_else(|| format!("report has no {app}/{variant} n=4 row"))?;
        let sys = row
            .classes
            .iter()
            .find(|c| c.class == "SYSTEM")
            .map_or(0, |c| c.bytes);
        #[allow(clippy::cast_precision_loss)]
        for (metric, now, base) in [
            ("messages", row.messages, base_msgs),
            ("SYSTEM bytes", sys, base_sys),
        ] {
            if now as f64 > base as f64 * TRAFFIC_TOLERANCE {
                return Err(format!(
                    "{app}/{variant} n=4 {metric} regressed: {now} vs baseline {base} (>5%)"
                ));
            }
            lines.push(format!(
                "{app}/{variant} n=4 {metric}: {now} (baseline {base})"
            ));
        }
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-node quick report end to end: every cell runs, the JSON is
    /// valid (checked with carlos-trace's own parser), and the class
    /// ledgers are populated and self-consistent.
    #[test]
    fn quick_report_rows_and_json_are_consistent() {
        let opts = ReportOptions {
            quick: true,
            max_nodes: 2,
        };
        let rows = run_report(&opts).expect("quick report runs clean");
        // 7 legacy (app, variant) groups plus 4 variable-granularity
        // groups, × 2 cluster sizes.
        assert_eq!(rows.len(), 22);
        for r in &rows {
            assert!(r.secs > 0.0, "{}/{} has zero elapsed", r.app, r.variant);
            if r.n > 1 {
                assert!(r.messages > 0, "{}/{} sent nothing", r.app, r.variant);
                let sent: u64 = r.classes.iter().map(|c| c.sent).sum();
                let dispatched: u64 = r.classes.iter().map(|c| c.dispatched).sum();
                assert!(sent > 0);
                assert_eq!(sent, dispatched, "{}/{} lost messages", r.app, r.variant);
                assert!(
                    r.classes.iter().any(|c| c.cost_ns > 0),
                    "{}/{} attributed no protocol cost",
                    r.app,
                    r.variant
                );
            }
        }
        let json = to_json(&rows, &[], &opts);
        let doc = carlos_trace::json::parse(&json).expect("report JSON parses");
        let parsed = doc
            .get("rows")
            .and_then(carlos_trace::JsonValue::as_array)
            .expect("rows array");
        assert_eq!(parsed.len(), rows.len());
        let md = to_markdown(&rows);
        assert!(md.contains("| TSP |") && md.contains("| SOR |"));
        assert!(md.contains("Per-granule-class demand traffic"));
        // The variable-granularity rows actually exercise non-page
        // granules and the per-class traffic columns see them.
        let vg: Vec<_> = rows.iter().filter(|r| r.variant.ends_with("+vg")).collect();
        assert_eq!(vg.len(), 8);
        assert!(
            vg.iter()
                .any(|r| r.n > 1 && (r.granule_fine_fetches > 0 || r.granule_bulk_fetches > 0)),
            "variable-granularity rows recorded no non-page granule fetches"
        );
    }

    fn gate_row(app: &'static str, messages: u64, sys_bytes: u64) -> ReportRow {
        ReportRow {
            app,
            variant: "Lock",
            n: 4,
            secs: 1.0,
            speedup: 1.0,
            messages,
            avg_bytes: 100,
            util: 0.1,
            classes: vec![ClassCost {
                class: "SYSTEM",
                sent: 10,
                dispatched: 10,
                bytes: sys_bytes,
                cost_ns: 1,
                mean_latency_ns: 1,
            }],
            fetch_diffs: 1,
            fetch_pages: 1,
            granule_fine_fetches: 0,
            granule_fine_bytes: 0,
            granule_page_fetches: 1,
            granule_page_bytes: 100,
            granule_bulk_fetches: 0,
            granule_bulk_bytes: 0,
            wait_lock_ns: 0,
            wait_barrier_ns: 0,
            paper: None,
        }
    }

    /// The traffic gate passes a run against its own JSON, tolerates small
    /// (<5%) growth, and rejects anything beyond on either metric.
    #[test]
    fn traffic_gate_catches_regressions() {
        let opts = ReportOptions {
            quick: true,
            max_nodes: 4,
        };
        let baseline_rows = vec![gate_row("TSP", 1000, 50_000), gate_row("Quicksort", 2000, 80_000)];
        let baseline = to_json(&baseline_rows, &[], &opts);

        let lines = traffic_gate(&baseline_rows, &baseline).expect("self-comparison passes");
        assert_eq!(lines.len(), 4, "two metrics per gated app: {lines:?}");

        let small_growth = vec![gate_row("TSP", 1040, 51_000), gate_row("Quicksort", 2000, 80_000)];
        assert!(traffic_gate(&small_growth, &baseline).is_ok(), "<5% growth tolerated");

        let msg_regress = vec![gate_row("TSP", 1100, 50_000), gate_row("Quicksort", 2000, 80_000)];
        let err = traffic_gate(&msg_regress, &baseline).unwrap_err();
        assert!(err.contains("TSP") && err.contains("messages"), "{err}");

        let byte_regress = vec![gate_row("TSP", 1000, 50_000), gate_row("Quicksort", 2000, 90_000)];
        let err = traffic_gate(&byte_regress, &baseline).unwrap_err();
        assert!(err.contains("Quicksort") && err.contains("SYSTEM bytes"), "{err}");

        assert!(
            traffic_gate(&baseline_rows, "{\"rows\": []}").is_err(),
            "missing baseline rows must fail loudly"
        );
    }

    /// The parallel 8-node rows run clean at test scale and report real
    /// traffic; their class ledgers are empty by construction (no tracer
    /// under the parallel scheduler), and the markdown still renders the
    /// traced cost table from the serial rows.
    #[test]
    fn parallel_rows_run_and_render() {
        let opts = ReportOptions {
            quick: true,
            max_nodes: 2,
        };
        let par = run_parallel_rows(&opts).expect("parallel rows run clean");
        // TSP at n = 1, 8 and SOR at n = 1, 8.
        assert_eq!(par.len(), 4);
        for r in &par {
            assert!(r.secs > 0.0, "{}/{} has zero elapsed", r.app, r.variant);
            assert!(r.classes.is_empty(), "parallel rows must be untraced");
            if r.n > 1 {
                assert!(r.messages > 0, "{}/{} sent nothing", r.app, r.variant);
            }
        }
        let mut rows = run_report(&opts).expect("serial rows");
        rows.extend(par);
        let md = to_markdown(&rows);
        assert!(md.contains("Lock/par"), "parallel rows missing: {md}");
        // The cost table must still come from traced (serial) rows.
        assert!(md.contains("| TSP | Lock |"));
    }

    /// The quick serve rows run clean — the fault-free parallel row at
    /// yield 1.0 with a clean server mirror, the chaos row shedding load
    /// with every drop attributed — the JSON round-trips through
    /// carlos-trace's parser, and the serve gate passes a run against its
    /// own output while rejecting synthetic p999 and yield regressions.
    #[test]
    fn serve_rows_run_gate_and_render() {
        let opts = ReportOptions {
            quick: true,
            max_nodes: 8,
        };
        let serve = run_serve_rows(&opts).expect("serve rows run clean");
        assert_eq!(serve.len(), 2, "quick mode: KV/par n=8 + KV/chaos n=8");
        let par = &serve[0];
        assert_eq!((par.variant, par.n), ("KV/par", 8));
        assert_eq!(par.timed_out, 0, "fault-free serving must not time out");
        assert!((par.yield_fraction - 1.0).abs() < f64::EPSILON);
        assert!(par.completed > 0 && par.ops_per_sec > 0.0 && par.bytes_per_op > 0);
        let chaos = &serve[1];
        assert_eq!((chaos.variant, chaos.n), ("KV/chaos", 8));
        assert!(chaos.yield_fraction < 1.0, "chaos must shed load");
        assert!(chaos.harvest < 1.0, "the probe window straddles the partition");
        assert_eq!(
            chaos.attempted,
            chaos.completed + chaos.timed_out,
            "every drop must be attributed"
        );

        let json = to_json(&[], &serve, &opts);
        let doc = carlos_trace::json::parse(&json).expect("serve JSON parses");
        let parsed = doc
            .get("serve_rows")
            .and_then(carlos_trace::JsonValue::as_array)
            .expect("serve_rows array");
        assert_eq!(parsed.len(), serve.len());

        let lines = serve_gate(&serve, &json).expect("self-comparison passes");
        assert_eq!(lines.len(), serve.len());

        let mut worse = serve.clone();
        worse[0].p999_ns *= 2;
        let err = serve_gate(&worse, &json).unwrap_err();
        assert!(err.contains("p999"), "{err}");
        let mut lossy = serve.clone();
        lossy[1].yield_fraction *= 0.5;
        let err = serve_gate(&lossy, &json).unwrap_err();
        assert!(err.contains("yield"), "{err}");

        let md = serve_markdown(&serve);
        assert!(md.contains("KV/par") && md.contains("KV/chaos"), "{md}");

        assert!(
            serve_gate(&serve, "{\"serve_rows\": []}").is_err(),
            "missing baseline serve rows must fail loudly"
        );
    }
}
