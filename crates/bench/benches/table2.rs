//! Regenerates Table 2 of the paper: the Quicksort application using a
//! lock-protected shared stack versus a message-based work queue
//! (Hybrid-1), plus the all-RELEASE Hybrid-2 variation.
//!
//! Run with `cargo bench -p carlos-bench --bench table2`.

fn main() {
    println!("{}", carlos_bench::table2());
}
