//! Criterion microbenchmarks of the core data structures: diff creation
//! and application, vector-timestamp operations, the wire codec, and
//! interval-store queries.
//!
//! Run with `cargo bench -p carlos-bench --bench micro`.

use carlos_lrc::{Diff, IntervalRecord, Vc};
use carlos_util::codec::Wire;
use carlos_util::rng::Xoshiro256;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

const PAGE: usize = 8192;

fn page_pair(change_every: usize) -> (Vec<u8>, Vec<u8>) {
    let mut rng = Xoshiro256::new(42);
    let twin: Vec<u8> = (0..PAGE).map(|_| rng.next_u64() as u8).collect();
    let mut cur = twin.clone();
    let mut i = 0;
    while i < PAGE {
        cur[i] = cur[i].wrapping_add(1);
        i += change_every;
    }
    (twin, cur)
}

fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    for (label, every) in [("sparse_1_in_64", 64usize), ("dense_1_in_4", 4)] {
        let (twin, cur) = page_pair(every);
        g.bench_function(format!("create_{label}"), |b| {
            b.iter(|| Diff::create(black_box(&twin), black_box(&cur)));
        });
        let diff = Diff::create(&twin, &cur);
        g.bench_function(format!("apply_{label}"), |b| {
            b.iter_batched(
                || twin.clone(),
                |mut page| {
                    diff.apply(&mut page);
                    black_box(page)
                },
                BatchSize::SmallInput,
            );
        });
        g.bench_function(format!("wire_roundtrip_{label}"), |b| {
            b.iter(|| {
                let bytes = black_box(&diff).to_wire();
                Diff::from_wire(&bytes).expect("roundtrip")
            });
        });
    }
    g.finish();
}

fn bench_vc(c: &mut Criterion) {
    let mut g = c.benchmark_group("vector_timestamp");
    let mut a = Vc::new(16);
    let mut b = Vc::new(16);
    for i in 0..16u32 {
        a.set(i, i % 5);
        b.set(i, (i + 2) % 7);
    }
    g.bench_function("dominates_16", |bch| {
        bch.iter(|| black_box(&a).dominates(black_box(&b)));
    });
    g.bench_function("join_16", |bch| {
        bch.iter_batched(
            || a.clone(),
            |mut x| {
                x.join(&b);
                black_box(x)
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("wire_roundtrip_16", |bch| {
        bch.iter(|| Vc::from_wire(&black_box(&a).to_wire()).expect("roundtrip"));
    });
    g.finish();
}

fn bench_records(c: &mut Criterion) {
    let mut g = c.benchmark_group("interval_record");
    let mut vc = Vc::new(8);
    vc.set(3, 17);
    let rec = IntervalRecord {
        node: 3,
        index: 17,
        vc,
        pages: (0..24).collect(),
    };
    g.bench_function("wire_roundtrip_24_notices", |bch| {
        bch.iter(|| IntervalRecord::from_wire(&black_box(&rec).to_wire()).expect("roundtrip"));
    });
    g.finish();
}

criterion_group!(benches, bench_diff, bench_vc, bench_records);
criterion_main!(benches);
