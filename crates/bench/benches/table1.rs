//! Regenerates Table 1 of the paper: the TSP application on CarlOS using
//! coherent shared memory and either locks or message-passing.
//!
//! Run with `cargo bench -p carlos-bench --bench table1`.

fn main() {
    println!("{}", carlos_bench::table1());
}
