//! Host wall-clock benchmarks of the hot paths touched by the
//! performance overhaul: word-level diff creation vs the retained naive
//! byte scanner, diff application, the wire codec, and end-to-end
//! 4-node TSP/SOR runs (host seconds, not virtual time). Each end-to-end
//! run also executes under the conservative parallel scheduler; the
//! serial/parallel host-second ratio lands in the JSON's `derived`
//! section as `parallel_speedup_*`, alongside `host_cores`.
//!
//! Run with `cargo bench -p carlos-bench --bench wallclock`. Results are
//! written to `BENCH_hotpath.json` at the repository root (override the
//! path with `CARLOS_BENCH_OUT`); `CARLOS_BENCH_QUICK=1` shrinks warmup,
//! sample counts, and end-to-end repetitions for CI.
//!
//! The "before" numbers come from the retained reference implementations:
//! `Diff::create_naive` is the pre-overhaul byte scanner kept as the
//! executable specification, and `encode_finish_copy` reproduces the old
//! `finish_vec` full-buffer copy.

use std::time::Instant;

use carlos_apps::sor::{run_sor, SorConfig};
use carlos_apps::tsp::{run_tsp, TspConfig, TspVariant};
use carlos_core::{Annotation, Consistency, Message};
use carlos_lrc::{Diff, IntervalRecord, Vc};
use carlos_sim::{Bucket, Cluster, SimConfig};
use carlos_util::rng::Xoshiro256;
use criterion::{black_box, BatchSize, Criterion};

/// The acceptance page size: diffing a mostly-clean 4 KiB page is the
/// common case the word-level scanner must win on.
const PAGE: usize = 4096;

/// A (twin, current) pair where roughly one byte in `change_every` moved.
/// `change_every == 0` means no changes (fully clean).
fn page_pair(change_every: usize) -> (Vec<u8>, Vec<u8>) {
    sized_pair(PAGE, change_every)
}

fn sized_pair(len: usize, change_every: usize) -> (Vec<u8>, Vec<u8>) {
    let mut rng = Xoshiro256::new(42);
    let twin: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
    let mut cur = twin.clone();
    if change_every > 0 {
        let mut i = change_every / 2;
        while i < len {
            cur[i] = cur[i].wrapping_add(1);
            i += change_every;
        }
    }
    (twin, cur)
}

/// Dirtiness ladder: clean page, one cache-line-ish run, sparse, dense,
/// fully rewritten.
const DIRTINESS: &[(&str, usize)] = &[
    ("clean", 0),
    ("mostly_clean_1_in_512", 512),
    ("sparse_1_in_64", 64),
    ("dense_1_in_8", 8),
    ("all_dirty", 1),
];

fn bench_diff_create(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff_create");
    for &(label, every) in DIRTINESS {
        let (twin, cur) = page_pair(every);
        g.bench_function(format!("word_{label}"), |b| {
            b.iter(|| Diff::create(black_box(&twin), black_box(&cur)));
        });
        g.bench_function(format!("naive_{label}"), |b| {
            b.iter(|| Diff::create_naive(black_box(&twin), black_box(&cur)));
        });
    }
    g.finish();
}

/// The variable-granularity coherence sizes: a 64 B fine granule (one
/// cache-line-ish hot scalar), a 256 B fine granule, the legacy 8 KiB
/// page, and a 1 MiB bulk granule. One create/apply row each at sparse
/// dirtiness, so BENCH_hotpath.json shows how twin/diff cost scales with
/// the granule the region table picks.
const GRANULES: &[(&str, usize)] = &[
    ("64B", 64),
    ("256B", 256),
    ("8KiB", 8192),
    ("1MiB", 1 << 20),
];

fn bench_diff_granules(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff_granule");
    for &(label, len) in GRANULES {
        // Sparse dirtiness (one byte in 64) — the demand-fetch common case.
        let (twin, cur) = sized_pair(len, 64);
        g.bench_function(format!("create_{label}"), |b| {
            b.iter(|| Diff::create(black_box(&twin), black_box(&cur)));
        });
        let diff = Diff::create(&twin, &cur);
        g.bench_function(format!("apply_{label}"), |b| {
            b.iter_batched(
                || twin.clone(),
                |mut page| {
                    diff.apply(&mut page);
                    page
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_diff_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff_apply");
    for &(label, every) in DIRTINESS {
        if every == 0 {
            continue; // An empty diff applies in no time; nothing to see.
        }
        let (twin, cur) = page_pair(every);
        let diff = Diff::create(&twin, &cur);
        g.bench_function(label, |b| {
            b.iter_batched(
                || twin.clone(),
                |mut page| {
                    diff.apply(&mut page);
                    page
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

/// A RELEASE message shaped like real lock-transfer traffic: a required
/// timestamp plus a handful of interval records.
fn release_message() -> Message {
    let n = 8;
    let mut required = Vc::new(n);
    for i in 0..n as u32 {
        required.set(i, 17 + i);
    }
    let records = (0..6u32)
        .map(|k| {
            let mut vc = Vc::new(n);
            vc.set(k % n as u32, 18 + k);
            IntervalRecord {
                node: k % n as u32,
                index: 18 + k,
                vc,
                pages: (k..k + 4).collect(),
            }
        })
        .collect();
    Message {
        src: 1,
        origin: 1,
        handler: 3,
        annotation: Annotation::Release,
        body: vec![0xAB; 64],
        consistency: Consistency::Release {
            required,
            records,
            diffs: Vec::new(),
        },
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let msg = release_message();
    let pad = 32;
    g.bench_function("encode_framed", |b| {
        b.iter(|| black_box(&msg).to_framed(pad));
    });
    g.bench_function("encode_finish_vec", |b| {
        b.iter(|| black_box(&msg).to_wire_bytes(pad));
    });
    // The pre-overhaul cost: encode, then copy the whole buffer out again
    // (what `finish_vec` used to do via `to_vec`).
    g.bench_function("encode_finish_copy", |b| {
        b.iter(|| black_box(&msg).to_wire_bytes(pad).clone());
    });
    let bytes = msg.to_wire_bytes(pad);
    g.bench_function("decode", |b| {
        b.iter(|| Message::from_wire_bytes(1, black_box(&bytes)).expect("decode"));
    });
    g.finish();
}

/// One timed end-to-end measurement: median host seconds over `reps` runs.
fn time_e2e<F: FnMut() -> u64>(reps: usize, mut run: F) -> (f64, u64) {
    let mut secs: Vec<f64> = Vec::with_capacity(reps);
    let mut virtual_ns = 0;
    for _ in 0..reps {
        let start = Instant::now();
        virtual_ns = run();
        secs.push(start.elapsed().as_secs_f64());
    }
    secs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    (secs[secs.len() / 2], virtual_ns)
}

struct E2eResult {
    id: &'static str,
    host_seconds: f64,
    virtual_ns: u64,
}

/// End-to-end 4-node runs. These exercise every hot path at once — page
/// faults, diffing, codec, transport — and report *host* seconds (the
/// virtual-time results are pinned elsewhere and must not move).
fn bench_e2e(quick: bool) -> Vec<E2eResult> {
    let reps = if quick { 1 } else { 3 };
    let mut out = Vec::new();

    let mut tsp_cfg = TspConfig::test(4, TspVariant::Lock);
    tsp_cfg.n_cities = 12;
    let (host, vns) = time_e2e(reps, || {
        let r = run_tsp(&tsp_cfg);
        black_box(r.app.report.elapsed)
    });
    eprintln!("e2e  tsp_lock_4node_12c: {host:.3} host-s ({} virtual-ms)", vns / 1_000_000);
    out.push(E2eResult {
        id: "tsp_lock_4node_12c",
        host_seconds: host,
        virtual_ns: vns,
    });

    // The same TSP run with the tracer installed, in both modes: the
    // delta is the tracer's host-time overhead (virtual time is pinned
    // identical by the golden tests, so host seconds are the only cost).
    for (id, full) in [
        ("tsp_lock_4node_12c_traced_metrics", false),
        ("tsp_lock_4node_12c_traced_full", true),
    ] {
        let base = tsp_cfg.clone();
        let (host, vns) = time_e2e(reps, || {
            let mut cfg = base.clone();
            cfg.trace = Some(if full {
                carlos_trace::Tracer::new(4)
            } else {
                carlos_trace::Tracer::metrics_only(4)
            });
            let r = run_tsp(&cfg);
            black_box(r.app.report.elapsed)
        });
        eprintln!("e2e  {id}: {host:.3} host-s ({} virtual-ms)", vns / 1_000_000);
        out.push(E2eResult {
            id,
            host_seconds: host,
            virtual_ns: vns,
        });
    }

    let mut sor_cfg = SorConfig::test(4);
    sor_cfg.rows = 130;
    sor_cfg.cols = 64;
    sor_cfg.iters = 4;
    let (host, vns) = time_e2e(reps, || {
        let r = run_sor(&sor_cfg);
        black_box(r.app.report.elapsed)
    });
    eprintln!("e2e  sor_4node_130x64: {host:.3} host-s ({} virtual-ms)", vns / 1_000_000);
    out.push(E2eResult {
        id: "sor_4node_130x64",
        host_seconds: host,
        virtual_ns: vns,
    });

    // The same runs under the conservative parallel scheduler: virtual
    // time is bit-identical (pinned by tests/parallel_golden.rs — the
    // assert below re-checks it here), so the only thing that may move
    // is host seconds. The serial/parallel host-second ratio is the
    // scheduler's speedup; on a single-core host expect ~1x or a small
    // slowdown from the op-log machinery.
    {
        let serial_vns = out
            .iter()
            .find(|r| r.id == "tsp_lock_4node_12c")
            .map(|r| r.virtual_ns);
        let par_cfg = {
            let mut c = tsp_cfg.clone();
            c.sim = c.sim.parallel(true);
            c
        };
        let (host, vns) = time_e2e(reps, || {
            let r = run_tsp(&par_cfg);
            black_box(r.app.report.elapsed)
        });
        assert_eq!(
            serial_vns,
            Some(vns),
            "parallel TSP diverged from serial virtual time"
        );
        eprintln!("e2e  tsp_lock_4node_12c_parallel: {host:.3} host-s ({} virtual-ms)", vns / 1_000_000);
        out.push(E2eResult {
            id: "tsp_lock_4node_12c_parallel",
            host_seconds: host,
            virtual_ns: vns,
        });
    }
    {
        let serial_vns = out
            .iter()
            .find(|r| r.id == "sor_4node_130x64")
            .map(|r| r.virtual_ns);
        let par_cfg = {
            let mut c = sor_cfg.clone();
            c.sim = c.sim.parallel(true);
            c
        };
        let (host, vns) = time_e2e(reps, || {
            let r = run_sor(&par_cfg);
            black_box(r.app.report.elapsed)
        });
        assert_eq!(
            serial_vns,
            Some(vns),
            "parallel SOR diverged from serial virtual time"
        );
        eprintln!("e2e  sor_4node_130x64_parallel: {host:.3} host-s ({} virtual-ms)", vns / 1_000_000);
        out.push(E2eResult {
            id: "sor_4node_130x64_parallel",
            host_seconds: host,
            virtual_ns: vns,
        });
    }

    // The same serial/parallel pairs at 8 nodes: more lanes means more
    // exploitable concurrency (and more op-log traffic per runner pass),
    // so the 8-node ratio is the multi-core gate's main signal.
    {
        let nodes = 8usize;
        let mut tsp8 = TspConfig::test(nodes, TspVariant::Lock);
        tsp8.n_cities = 12;
        let (host, serial_vns) = time_e2e(reps, || {
            let r = run_tsp(&tsp8);
            black_box(r.app.report.elapsed)
        });
        eprintln!("e2e  tsp_lock_8node_12c: {host:.3} host-s ({} virtual-ms)", serial_vns / 1_000_000);
        out.push(E2eResult {
            id: "tsp_lock_8node_12c",
            host_seconds: host,
            virtual_ns: serial_vns,
        });
        let mut par = tsp8.clone();
        par.sim = par.sim.parallel(true);
        let (host, vns) = time_e2e(reps, || {
            let r = run_tsp(&par);
            black_box(r.app.report.elapsed)
        });
        assert_eq!(serial_vns, vns, "parallel 8-node TSP diverged from serial virtual time");
        eprintln!("e2e  tsp_lock_8node_12c_parallel: {host:.3} host-s ({} virtual-ms)", vns / 1_000_000);
        out.push(E2eResult {
            id: "tsp_lock_8node_12c_parallel",
            host_seconds: host,
            virtual_ns: vns,
        });

        let mut sor8 = SorConfig::test(nodes);
        sor8.rows = 130;
        sor8.cols = 64;
        sor8.iters = 4;
        let (host, serial_vns) = time_e2e(reps, || {
            let r = run_sor(&sor8);
            black_box(r.app.report.elapsed)
        });
        eprintln!("e2e  sor_8node_130x64: {host:.3} host-s ({} virtual-ms)", serial_vns / 1_000_000);
        out.push(E2eResult {
            id: "sor_8node_130x64",
            host_seconds: host,
            virtual_ns: serial_vns,
        });
        let mut par = sor8.clone();
        par.sim = par.sim.parallel(true);
        let (host, vns) = time_e2e(reps, || {
            let r = run_sor(&par);
            black_box(r.app.report.elapsed)
        });
        assert_eq!(serial_vns, vns, "parallel 8-node SOR diverged from serial virtual time");
        eprintln!("e2e  sor_8node_130x64_parallel: {host:.3} host-s ({} virtual-ms)", vns / 1_000_000);
        out.push(E2eResult {
            id: "sor_8node_130x64_parallel",
            host_seconds: host,
            virtual_ns: vns,
        });
    }

    out
}

/// Per-op overhead of the parallel scheduler's op-log machinery, measured
/// directly: a 2-node `parallel(true)` run in which each proc issues
/// `n_ops` operations that do nothing but traverse the op-log.
///
/// - Fast-path ops (`ctx.charge`): one bounded-channel append per op,
///   replayed in batches by the runner — no rendezvous.
/// - Rendezvous ops (`ctx.counter` reads): each op parks the lane until
///   the runner replays it and publishes the outcome — the full
///   round-trip the conservative scheduler pays on every non-ff step.
///
/// Host seconds divided by total ops amortizes thread startup and kernel
/// setup across 10⁴–10⁵ ops. Returns `(key, ns_per_op)` pairs for the
/// JSON `derived` section.
fn bench_oplog(quick: bool) -> Vec<(&'static str, f64)> {
    let n_ops: u64 = if quick { 10_000 } else { 50_000 };
    let reps = if quick { 1 } else { 3 };
    let time_run = |rendezvous: bool| -> f64 {
        let mut secs: Vec<f64> = Vec::with_capacity(reps);
        for _ in 0..reps {
            let start = Instant::now();
            let mut cluster = Cluster::new(SimConfig::fast_test().parallel(true), 2);
            for node in 0..2u32 {
                cluster.spawn_node(node, move |ctx| {
                    if rendezvous {
                        for _ in 0..n_ops {
                            black_box(ctx.counter("oplog.bench"));
                        }
                    } else {
                        for _ in 0..n_ops {
                            ctx.charge(Bucket::User, 10);
                        }
                    }
                });
            }
            let _ = black_box(cluster.run());
            secs.push(start.elapsed().as_secs_f64());
        }
        secs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        secs[secs.len() / 2]
    };
    let per_op = |secs: f64| secs * 1e9 / (2.0 * n_ops as f64);
    let ff = per_op(time_run(false));
    let rv = per_op(time_run(true));
    eprintln!("oplog ff op: {ff:.0} ns/op; rendezvous op: {rv:.0} ns/op ({n_ops} ops x 2 lanes)");
    vec![
        ("oplog_ns_per_op", ff),
        ("oplog_ns_per_op_rendezvous", rv),
    ]
}

fn median_of(c: &Criterion, group: &str, id: &str) -> Option<f64> {
    c.results()
        .iter()
        .find(|r| r.group == group && r.id == id)
        .map(|r| r.median_ns)
}

fn write_json(c: &Criterion, e2e: &[E2eResult], oplog: &[(&'static str, f64)], quick: bool) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"generated_by\": \"cargo bench -p carlos-bench --bench wallclock\",\n");
    s.push_str(&format!("  \"quick_mode\": {quick},\n"));
    s.push_str("  \"benches\": [\n");
    let results = c.results();
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"median_ns\": {:.1}, \"iters\": {}}}{comma}\n",
            r.group, r.id, r.median_ns, r.iters
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"e2e\": [\n");
    for (i, r) in e2e.iter().enumerate() {
        let comma = if i + 1 == e2e.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"host_seconds\": {:.4}, \"virtual_ns\": {}}}{comma}\n",
            r.id, r.host_seconds, r.virtual_ns
        ));
    }
    s.push_str("  ],\n");

    // Derived before/after ratios (word-level scanner vs the naive
    // reference): the acceptance bar is >= 3x on a mostly-clean 4 KiB page.
    let speedup = |label: &str| -> Option<f64> {
        let word = median_of(c, "diff_create", &format!("word_{label}"))?;
        let naive = median_of(c, "diff_create", &format!("naive_{label}"))?;
        (word > 0.0).then(|| naive / word)
    };
    s.push_str("  \"derived\": {\n");
    let mut lines = Vec::new();
    for &(label, _) in DIRTINESS {
        if let Some(x) = speedup(label) {
            lines.push(format!(
                "    \"diff_create_speedup_{label}\": {x:.2}"
            ));
        }
    }
    // Tracer host-time overhead relative to the untraced TSP run.
    let e2e_secs = |id: &str| e2e.iter().find(|r| r.id == id).map(|r| r.host_seconds);
    if let Some(base) = e2e_secs("tsp_lock_4node_12c").filter(|s| *s > 0.0) {
        for (id, key) in [
            ("tsp_lock_4node_12c_traced_metrics", "tracer_overhead_metrics_only_pct"),
            ("tsp_lock_4node_12c_traced_full", "tracer_overhead_full_pct"),
        ] {
            if let Some(traced) = e2e_secs(id) {
                lines.push(format!(
                    "    \"{key}\": {:.1}",
                    (traced / base - 1.0) * 100.0
                ));
            }
        }
    }
    // Parallel-scheduler speedup: serial host seconds over parallel host
    // seconds for the same 4-node run (virtual time is bit-identical).
    // The ci.sh gate reads these keys on hosts with >= 4 cores.
    for (serial_id, par_id, key) in [
        ("tsp_lock_4node_12c", "tsp_lock_4node_12c_parallel", "parallel_speedup_tsp_4node"),
        ("sor_4node_130x64", "sor_4node_130x64_parallel", "parallel_speedup_sor_4node"),
        ("tsp_lock_8node_12c", "tsp_lock_8node_12c_parallel", "parallel_speedup_tsp_8node"),
        ("sor_8node_130x64", "sor_8node_130x64_parallel", "parallel_speedup_sor_8node"),
    ] {
        if let (Some(serial), Some(par)) = (e2e_secs(serial_id), e2e_secs(par_id)) {
            if par > 0.0 {
                lines.push(format!("    \"{key}\": {:.2}", serial / par));
            }
        }
    }
    // Amortized per-op cost of the op-log machinery itself (microbench).
    for (key, ns) in oplog {
        lines.push(format!("    \"{key}\": {ns:.0}"));
    }
    lines.push(format!(
        "    \"host_cores\": {}",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    s.push_str(&lines.join(",\n"));
    s.push_str("\n  }\n}\n");

    let path = std::env::var("CARLOS_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json").to_string()
    });
    std::fs::write(&path, s).expect("write BENCH_hotpath.json");
    eprintln!("wrote {path}");
    if let Some(x) = speedup("mostly_clean_1_in_512") {
        eprintln!("diff_create speedup on mostly-clean 4 KiB page: {x:.2}x (target >= 3x)");
    }
}

fn main() {
    let quick =
        std::env::var("CARLOS_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let mut c = Criterion::default().configure_from_args();
    bench_diff_create(&mut c);
    bench_diff_granules(&mut c);
    bench_diff_apply(&mut c);
    bench_codec(&mut c);
    let e2e = bench_e2e(quick);
    let oplog = bench_oplog(quick);
    write_json(&c, &e2e, &oplog, quick);
    c.final_summary();
}
