//! Regenerates Figure 2 of the paper: the execution-time breakdown
//! (User / Unix / CarlOS / Idle) for all six application variants on four
//! nodes.
//!
//! Run with `cargo bench -p carlos-bench --bench figure2`.

fn main() {
    let bars = carlos_bench::figure2();
    println!("{}", carlos_bench::render_figure2(&bars));
}
