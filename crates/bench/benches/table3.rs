//! Regenerates Table 3 of the paper: the Water application using
//! per-molecule locks versus update functions shipped in NONE messages.
//!
//! Run with `cargo bench -p carlos-bench --bench table3`.

fn main() {
    println!("{}", carlos_bench::table3());
}
