//! Ablation: the §4.3 update strategy versus the invalidate strategy the
//! paper's experiments used. The update strategy piggybacks diffs on
//! RELEASE messages so "the actual data transmission occurs eagerly and
//! asynchronously when the notification message is sent" (§3) — trading
//! demand round-trips for eager bytes.
//!
//! Run with `cargo bench -p carlos-bench --bench update_strategy`.

use carlos_apps::{
    qsort::{run_qsort, QsortConfig, QsortVariant},
    tsp::{run_tsp, TspConfig, TspVariant},
    water::{run_water, WaterConfig, WaterVariant},
};
use carlos_sim::Bucket;

struct Line {
    label: &'static str,
    time_s: f64,
    msgs: u64,
    kbytes: u64,
    diff_fetches: u64,
    idle_s: f64,
}

fn print(inv: &Line, upd: &Line) {
    println!(
        "  {:<12} invalidate: {:5.1}s {:>7} msgs {:>7} KB {:>6} fetches  idle {:4.1}s",
        inv.label, inv.time_s, inv.msgs, inv.kbytes, inv.diff_fetches, inv.idle_s
    );
    println!(
        "  {:<12} update:     {:5.1}s {:>7} msgs {:>7} KB {:>6} fetches  idle {:4.1}s  ({:+.1}% time)",
        "", upd.time_s, upd.msgs, upd.kbytes, upd.diff_fetches, upd.idle_s,
        (upd.time_s / inv.time_s - 1.0) * 100.0
    );
}

fn main() {
    println!("== Update vs invalidate coherence strategy (4 nodes, paper workloads) ==");

    let line = |label: &'static str, app: &carlos_apps::harness::AppReport| Line {
        label,
        time_s: app.secs,
        msgs: app.messages,
        kbytes: app.report.net.payload_bytes / 1024,
        diff_fetches: app.report.counter_total("carlos.diff_requests"),
        idle_s: app.bucket_secs(Bucket::Idle),
    };

    let inv = run_water(&WaterConfig::paper(4, WaterVariant::Lock));
    let mut cfg = WaterConfig::paper(4, WaterVariant::Lock);
    cfg.core = cfg.core.with_update_strategy();
    let upd = run_water(&cfg);
    print(&line("Water/lock", &inv.app), &line("", &upd.app));

    let inv = run_water(&WaterConfig::paper(4, WaterVariant::Hybrid));
    let mut cfg = WaterConfig::paper(4, WaterVariant::Hybrid);
    cfg.core = cfg.core.with_update_strategy();
    let upd = run_water(&cfg);
    print(&line("Water/hybrid", &inv.app), &line("", &upd.app));

    let inv = run_qsort(&QsortConfig::paper(4, QsortVariant::Lock));
    let mut cfg = QsortConfig::paper(4, QsortVariant::Lock);
    cfg.core = cfg.core.with_update_strategy();
    let upd = run_qsort(&cfg);
    assert!(upd.sorted && upd.permutation_ok);
    print(&line("QS/lock", &inv.app), &line("", &upd.app));

    let inv = run_tsp(&TspConfig::paper(4, TspVariant::Lock));
    let mut cfg = TspConfig::paper(4, TspVariant::Lock);
    cfg.core = cfg.core.with_update_strategy();
    let upd = run_tsp(&cfg);
    assert_eq!(inv.best_len, upd.best_len, "strategy must not change results");
    print(&line("TSP/lock", &inv.app), &line("", &upd.app));

    println!();
    println!("  (The paper ran invalidate only; §4.3 designed the update mode and §3");
    println!("   argues it makes shared-memory notification patterns eager. The win");
    println!("   shows where demand fetches dominate; the cost is eager bytes that");
    println!("   may never be read.)");
}
