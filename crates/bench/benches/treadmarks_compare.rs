//! Regenerates the §5 TreadMarks-versus-CarlOS comparison: running the
//! unmodified lock-and-barrier applications with TreadMarks-style
//! specialized message dispatch versus CarlOS's general annotated-message
//! handling.
//!
//! The paper reports a 5-6% total-time penalty for TSP and Quicksort
//! (attributed to the generality of CarlOS message handling amplified by
//! lock-acquisition latency under contention) and no measurable penalty
//! for Water. Only the dispatch-cost component is modeled here, so the
//! measured penalty is expected at the low end.
//!
//! Run with `cargo bench -p carlos-bench --bench treadmarks_compare`.

use carlos_apps::{
    qsort::{run_qsort, QsortConfig, QsortVariant},
    tsp::{run_tsp, TspConfig, TspVariant},
    water::{run_water, WaterConfig, WaterVariant},
};

fn main() {
    println!("== TreadMarks-style dispatch vs CarlOS generality (lock versions, 4 nodes) ==");

    let mut tmk = TspConfig::paper(4, TspVariant::Lock);
    tmk.core = tmk.core.with_treadmarks_dispatch();
    let t_tmk = run_tsp(&tmk);
    let t_car = run_tsp(&TspConfig::paper(4, TspVariant::Lock));
    println!(
        "  TSP    TreadMarks {:5.1}s   CarlOS {:5.1}s   penalty {:+.1}%   (paper: +5-6%)",
        t_tmk.app.secs,
        t_car.app.secs,
        (t_car.app.secs / t_tmk.app.secs - 1.0) * 100.0
    );

    let mut tmk = QsortConfig::paper(4, QsortVariant::Lock);
    tmk.core = tmk.core.with_treadmarks_dispatch();
    let q_tmk = run_qsort(&tmk);
    let q_car = run_qsort(&QsortConfig::paper(4, QsortVariant::Lock));
    println!(
        "  QS     TreadMarks {:5.1}s   CarlOS {:5.1}s   penalty {:+.1}%   (paper: +5-6%)",
        q_tmk.app.secs,
        q_car.app.secs,
        (q_car.app.secs / q_tmk.app.secs - 1.0) * 100.0
    );

    let mut tmk = WaterConfig::paper(4, WaterVariant::Lock);
    tmk.core = tmk.core.with_treadmarks_dispatch();
    let w_tmk = run_water(&tmk);
    let w_car = run_water(&WaterConfig::paper(4, WaterVariant::Lock));
    println!(
        "  Water  TreadMarks {:5.1}s   CarlOS {:5.1}s   penalty {:+.1}%   (paper: ~0%)",
        w_tmk.app.secs,
        w_car.app.secs,
        (w_car.app.secs / w_tmk.app.secs - 1.0) * 100.0
    );
}
